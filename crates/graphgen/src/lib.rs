//! Synthetic graph generators standing in for the paper's datasets.
//!
//! The paper evaluates on four inputs (Table 1): RMAT-N synthetic
//! power-law graphs, the Twitter follower graph, the DIMACS US-Road
//! graph and the Netflix ratings graph. The real datasets are not
//! redistributable, so this crate generates synthetic graphs with the
//! same *shape* — which is all the paper's findings depend on (it
//! explicitly notes Twitter "has a degree distribution similar to that
//! of RMAT, and benefits from the same approaches", §8):
//!
//! * [`rmat()`](rmat()) — the R-MAT recursive generator \[5\] with Graph500
//!   parameters; [`twitter_like`] is an RMAT preset with Twitter's
//!   edge factor.
//! * [`road_like`] — a 2D lattice with bidirectional edges: high
//!   diameter, per-vertex degree ≤ 4, like US-Road.
//! * [`netflix_like`] — a bipartite user→item ratings graph with
//!   Zipf-distributed item popularity, like the Netflix dataset.
//! * [`uniform()`](uniform()) — an Erdős–Rényi-style control input.
//!
//! All generators are deterministic in their seed and parallel.
//!
//! # Examples
//!
//! ```
//! // RMAT-10: 1024 vertices, 2^14 edges, power-law degrees.
//! let g = egraph_graphgen::rmat(10, 16, 42);
//! assert_eq!(g.num_vertices(), 1024);
//! assert_eq!(g.num_edges(), 16 * 1024);
//! ```

pub mod bipartite;
pub mod permute;
pub mod rmat;
pub mod road;
pub mod smallworld;
pub mod stats;
pub mod uniform;
pub mod zipf;

pub use bipartite::netflix_like;
pub use permute::{permute_vertices, shuffle_edges};
pub use rmat::{rmat, rmat_with_params, twitter_like, RmatParams};
pub use road::road_like;
pub use smallworld::small_world;
pub use stats::{degree_stats, DegreeStats};
pub use uniform::uniform;
pub use zipf::Zipf;

//! A Zipf (power-law) sampler over `0..n`, used for item popularity in
//! the bipartite ratings generator.

use rand::rngs::StdRng;
use rand::RngExt;

/// A table-based Zipf sampler: `P(k) ∝ 1 / (k + 1)^s`.
///
/// Build once (O(n)), sample in O(log n) via binary search of the CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `0..n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(total);
        }
        for v in cdf.iter_mut() {
            *v /= total;
        }
        // Guard against floating-point shortfall at the end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of values in the support.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true; see [`Zipf::new`]).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one value in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(1000, 1.1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 far exceeds rank 500, and the top 10 take a large
        // share.
        assert!(counts[0] > 50 * counts[500].max(1));
        let top10: usize = counts[..10].iter().sum();
        assert!(top10 > 100_000 / 4, "top-10 share {top10}");
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0usize; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 1_000.0, "count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_support() {
        let _ = Zipf::new(0, 1.0);
    }
}

//! A bipartite ratings-graph generator (Netflix stand-in \[35\]).
//!
//! Users `0..num_users` rate items `num_users..num_users + num_items`
//! with ratings in 1..=5; item popularity follows a Zipf law, like real
//! catalogues. Ratings carry planted taste structure (users and items
//! each belong to one of a few latent groups) so recommenders trained
//! on the output have signal to find.

use egraph_core::types::{EdgeList, WEdge};
use egraph_parallel::ops::parallel_init;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::zipf::Zipf;

/// Generates a bipartite ratings graph.
///
/// Returns user→item edges whose weight is the rating. The vertex
/// space is `num_users + num_items`; the full Netflix graph is 0.5 M
/// vertices / 100 M ratings.
///
/// # Panics
///
/// Panics if `num_users` or `num_items` is zero.
pub fn netflix_like(
    num_users: usize,
    num_items: usize,
    ratings_per_user: usize,
    seed: u64,
) -> EdgeList<WEdge> {
    assert!(
        num_users > 0 && num_items > 0,
        "both sides must be non-empty"
    );
    let zipf = Zipf::new(num_items, 1.1);
    const GROUPS: u64 = 4;
    let ne = num_users * ratings_per_user;
    let edges = parallel_init(ne, 1 << 12, |i| {
        let user = i / ratings_per_user;
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
        let item = zipf.sample(&mut rng);
        // Planted structure: same-group pairs rate high.
        let user_group = (user as u64).wrapping_mul(0x9E37_79B9) % GROUPS;
        let item_group = (item as u64).wrapping_mul(0x85EB_CA6B) % GROUPS;
        let base = if user_group == item_group { 4.5 } else { 2.0 };
        let noise: f32 = rng.random_range(-1.0f32..1.0);
        let rating = (base + noise).clamp(1.0, 5.0);
        WEdge::new(user as u32, (num_users + item) as u32, rating)
    });
    EdgeList::from_parts_unchecked(num_users + num_items, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_is_bipartite() {
        let g = netflix_like(100, 50, 10, 1);
        assert_eq!(g.num_vertices(), 150);
        assert_eq!(g.num_edges(), 1000);
        for e in g.edges() {
            assert!(e.src < 100, "source must be a user");
            assert!((100..150).contains(&e.dst), "destination must be an item");
            assert!((1.0..=5.0).contains(&e.weight));
        }
    }

    #[test]
    fn item_popularity_is_skewed() {
        let g = netflix_like(2000, 500, 20, 3);
        let mut counts = vec![0usize; 500];
        for e in g.edges() {
            counts[(e.dst - 2000) as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top: usize = counts[..10].iter().sum();
        assert!(
            top > g.num_edges() / 5,
            "top-10 items hold {top} of {} ratings",
            g.num_edges()
        );
    }

    #[test]
    fn deterministic() {
        let a = netflix_like(50, 20, 5, 9);
        let b = netflix_like(50, 20, 5, 9);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn every_user_rates() {
        let g = netflix_like(30, 10, 3, 5);
        let degrees = g.out_degrees();
        for d in degrees.iter().take(30) {
            assert_eq!(*d, 3);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_side() {
        let _ = netflix_like(0, 10, 5, 1);
    }
}

//! Vertex relabeling and edge-order shuffling.
//!
//! Vertex ids and edge order both carry locality: generators (and real
//! datasets like DIMACS road files) emit spatially correlated ids in
//! spatially correlated order, which flatters streaming layouts. These
//! utilities destroy either correlation on demand, so experiments can
//! separate "the layout is good" from "the input happened to be
//! friendly" — see the `exp_ablation_ordering` experiment.

use egraph_core::types::{EdgeList, EdgeRecord};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Returns the graph with vertices relabeled by a uniform random
/// permutation (deterministic in `seed`).
pub fn permute_vertices<E: EdgeRecord>(graph: &EdgeList<E>, seed: u64) -> EdgeList<E> {
    let nv = graph.num_vertices();
    let mut relabel: Vec<u32> = (0..nv as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..nv).rev() {
        relabel.swap(i, rng.random_range(0..=i));
    }
    let edges = egraph_parallel::ops::parallel_init(
        graph.num_edges(),
        egraph_parallel::DEFAULT_GRAIN,
        |i| {
            let e = &graph.edges()[i];
            E::new(
                relabel[e.src() as usize],
                relabel[e.dst() as usize],
                e.weight(),
            )
        },
    );
    EdgeList::from_parts_unchecked(nv, edges)
}

/// Returns the graph with its edge array order shuffled (vertex ids
/// unchanged), deterministic in `seed`.
pub fn shuffle_edges<E: EdgeRecord>(graph: &EdgeList<E>, seed: u64) -> EdgeList<E> {
    let mut edges = graph.edges().to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..edges.len()).rev() {
        edges.swap(i, rng.random_range(0..=i));
    }
    EdgeList::from_parts_unchecked(graph.num_vertices(), edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::types::Edge;

    fn sample() -> EdgeList<Edge> {
        crate::road_like(20, 10)
    }

    #[test]
    fn permutation_preserves_structure() {
        let g = sample();
        let p = permute_vertices(&g, 7);
        assert_eq!(p.num_vertices(), g.num_vertices());
        assert_eq!(p.num_edges(), g.num_edges());
        // Degree multiset is preserved.
        let mut a = g.out_degrees();
        let mut b = p.out_degrees();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // Connectivity is preserved (single component either way).
        use egraph_core::algo::wcc;
        assert_eq!(
            wcc::edge_centric(&g).component_count(),
            wcc::edge_centric(&p).component_count()
        );
    }

    #[test]
    fn permutation_changes_labels() {
        let g = sample();
        let p = permute_vertices(&g, 7);
        assert_ne!(g.edges(), p.edges());
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let g = sample();
        let s = shuffle_edges(&g, 3);
        let mut a: Vec<(u32, u32)> = g.edges().iter().map(|e| (e.src, e.dst)).collect();
        let mut b: Vec<(u32, u32)> = s.edges().iter().map(|e| (e.src, e.dst)).collect();
        assert_ne!(a, b, "order must change");
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "content must not");
    }

    #[test]
    fn deterministic_in_seed() {
        let g = sample();
        assert_eq!(
            permute_vertices(&g, 9).edges(),
            permute_vertices(&g, 9).edges()
        );
        assert_ne!(
            permute_vertices(&g, 9).edges(),
            permute_vertices(&g, 10).edges()
        );
    }
}

//! A Watts–Strogatz small-world generator.
//!
//! Small-world graphs fill the gap between the study's two shapes:
//! like the road graph they have low, uniform degree; like the
//! power-law graphs they have a *low* diameter (the rewired shortcuts).
//! Useful as a control input for the layout ablations: low degree
//! without the high diameter.

use egraph_core::types::{Edge, EdgeList};
use egraph_parallel::ops::parallel_init;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates a Watts–Strogatz small-world graph: a ring of `n`
/// vertices, each connected to its `k` nearest neighbors on each side
/// (so out-degree `2k`), with every edge's endpoint rewired to a
/// uniform random vertex with probability `p`.
///
/// Edges are directed both ways (the graph is symmetric unless
/// rewiring breaks a pair).
///
/// # Panics
///
/// Panics if `n == 0`, `k == 0`, `2k >= n`, or `p` is outside `[0, 1]`.
pub fn small_world(n: usize, k: usize, p: f64, seed: u64) -> EdgeList<Edge> {
    assert!(n > 0, "need at least one vertex");
    assert!(k > 0, "need at least one neighbor per side");
    assert!(2 * k < n, "ring neighbors must be fewer than vertices");
    assert!((0.0..=1.0).contains(&p), "rewire probability in [0, 1]");

    let ne = n * 2 * k;
    let edges = parallel_init(ne, 1 << 14, |i| {
        let v = (i / (2 * k)) as u32;
        let slot = i % (2 * k);
        // Slots 0..k: clockwise offsets 1..=k; slots k..2k: counter-
        // clockwise.
        let offset = (slot % k + 1) as u32;
        let natural = if slot < k {
            (v + offset) % n as u32
        } else {
            (v + n as u32 - offset) % n as u32
        };
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0xFF51_AFD7_ED55_8CCD));
        let dst = if rng.random::<f64>() < p {
            // Rewire to any vertex except self.
            let mut d = rng.random_range(0..n as u32 - 1);
            if d >= v {
                d += 1;
            }
            d
        } else {
            natural
        };
        Edge::new(v, dst)
    });
    EdgeList::from_parts_unchecked(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::layout::EdgeDirection;
    use egraph_core::preprocess::{CsrBuilder, Strategy};

    #[test]
    fn shape_without_rewiring_is_a_ring_lattice() {
        let g = small_world(100, 2, 0.0, 1);
        assert_eq!(g.num_edges(), 400);
        let degrees = g.out_degrees();
        assert!(degrees.iter().all(|&d| d == 4));
        // Vertex 0 connects to 1, 2, 99, 98.
        let mut n0: Vec<u32> = g
            .edges()
            .iter()
            .filter(|e| e.src == 0)
            .map(|e| e.dst)
            .collect();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2, 98, 99]);
    }

    #[test]
    fn rewiring_shrinks_the_diameter() {
        let n = 2000;
        let ring = small_world(n, 2, 0.0, 7);
        let sw = small_world(n, 2, 0.1, 7);
        let eccentricity = |g: &EdgeList<Edge>| {
            let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(g);
            let levels = egraph_core::algo::bfs::reference(adj.out(), 0);
            levels
                .iter()
                .filter(|&&l| l != u32::MAX)
                .max()
                .copied()
                .unwrap()
        };
        let ring_depth = eccentricity(&ring);
        let sw_depth = eccentricity(&sw);
        assert_eq!(ring_depth, (n / 4) as u32, "ring eccentricity is n/(2k)");
        assert!(
            sw_depth < ring_depth / 4,
            "shortcuts must collapse the diameter: {sw_depth} vs {ring_depth}"
        );
    }

    #[test]
    fn deterministic_and_in_range() {
        let a = small_world(500, 3, 0.3, 9);
        let b = small_world(500, 3, 0.3, 9);
        assert_eq!(a.edges(), b.edges());
        assert!(a.edges().iter().all(|e| e.dst < 500 && e.src < 500));
        // Rewired edges never self-loop.
        assert!(a.edges().iter().all(|e| e.src != e.dst));
    }

    #[test]
    #[should_panic(expected = "fewer than vertices")]
    fn rejects_oversized_k() {
        let _ = small_world(10, 5, 0.0, 1);
    }
}

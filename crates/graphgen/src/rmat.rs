//! The R-MAT recursive matrix generator (Chakrabarti et al. \[5\]).
//!
//! Each edge picks its (src, dst) cell by descending `scale` levels of
//! a recursively partitioned adjacency matrix with probabilities
//! (a, b, c, d) per quadrant; the Graph500 parameters (0.57, 0.19,
//! 0.19, 0.05) yield the heavy power-law skew of social graphs.

use egraph_core::types::{Edge, EdgeList};
use egraph_parallel::ops::parallel_init;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Quadrant probabilities of the recursive partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left (hub→hub) probability.
    pub a: f64,
    /// Top-right probability.
    pub b: f64,
    /// Bottom-left probability.
    pub c: f64,
}

impl RmatParams {
    /// The Graph500 parameters used by the paper's RMAT datasets.
    pub const GRAPH500: RmatParams = RmatParams {
        a: 0.57,
        b: 0.19,
        c: 0.19,
    };

    /// The implied bottom-right probability.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates an RMAT-`scale` graph: `2^scale` vertices and
/// `edge_factor · 2^scale` edges (the paper's RMAT-N uses
/// `edge_factor = 16`, i.e. `2^(N+4)` edges).
///
/// # Panics
///
/// Panics if `scale > 31` (vertex ids are `u32`).
pub fn rmat(scale: u32, edge_factor: usize, seed: u64) -> EdgeList<Edge> {
    rmat_with_params(scale, edge_factor, seed, RmatParams::GRAPH500)
}

/// [`rmat`] with explicit quadrant probabilities.
///
/// # Panics
///
/// Panics if `scale > 31` or the probabilities are malformed.
pub fn rmat_with_params(
    scale: u32,
    edge_factor: usize,
    seed: u64,
    params: RmatParams,
) -> EdgeList<Edge> {
    assert!(scale <= 31, "scale {scale} exceeds u32 vertex ids");
    assert!(
        params.a > 0.0 && params.b >= 0.0 && params.c >= 0.0 && params.d() >= 0.0,
        "malformed RMAT probabilities"
    );
    let nv = 1usize << scale;
    let ne = edge_factor * nv;
    let edges = parallel_init(ne, 1 << 14, |i| {
        // Per-edge deterministic RNG: chunk-order independent.
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        sample_edge(scale, &params, &mut rng)
    });
    EdgeList::from_parts_unchecked(nv, edges)
}

fn sample_edge(scale: u32, p: &RmatParams, rng: &mut StdRng) -> Edge {
    let mut src = 0u32;
    let mut dst = 0u32;
    for _ in 0..scale {
        src <<= 1;
        dst <<= 1;
        let r: f64 = rng.random();
        if r < p.a {
            // top-left: neither bit set
        } else if r < p.a + p.b {
            dst |= 1;
        } else if r < p.a + p.b + p.c {
            src |= 1;
        } else {
            src |= 1;
            dst |= 1;
        }
    }
    Edge::new(src, dst)
}

/// A Twitter-shaped preset: RMAT with the Twitter follower graph's
/// edge factor (1468M edges / 62M vertices ≈ 24).
///
/// The paper's full-size graph is 62 M vertices; pass the scale your
/// memory affords — the shape (power-law skew, low diameter) is what
/// the experiments depend on.
pub fn twitter_like(scale: u32, seed: u64) -> EdgeList<Edge> {
    rmat(scale, 24, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_stats;

    #[test]
    fn sizes_match_scale() {
        let g = rmat(8, 16, 1);
        assert_eq!(g.num_vertices(), 256);
        assert_eq!(g.num_edges(), 4096);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = rmat(8, 8, 7);
        let b = rmat(8, 8, 7);
        let c = rmat(8, 8, 8);
        assert_eq!(a.edges(), b.edges());
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn all_endpoints_in_range() {
        let g = rmat(10, 16, 3);
        let nv = g.num_vertices() as u32;
        assert!(g.edges().iter().all(|e| e.src < nv && e.dst < nv));
    }

    #[test]
    fn degrees_are_power_law_skewed() {
        let g = rmat(12, 16, 5);
        let stats = degree_stats(&g);
        // Power-law: the max degree dwarfs the average, and a large
        // fraction of vertices has no out-edge at all.
        assert!(
            stats.max as f64 > 20.0 * stats.avg,
            "max {} avg {}",
            stats.max,
            stats.avg
        );
        assert!(
            stats.zero_fraction > 0.2,
            "zero fraction {}",
            stats.zero_fraction
        );
    }

    #[test]
    fn uniform_params_remove_skew() {
        let g = rmat_with_params(
            12,
            16,
            5,
            RmatParams {
                a: 0.25,
                b: 0.25,
                c: 0.25,
            },
        );
        let stats = degree_stats(&g);
        assert!((stats.max as f64) < 10.0 * stats.avg.max(1.0));
    }

    #[test]
    fn twitter_preset_has_higher_edge_factor() {
        let g = twitter_like(8, 1);
        assert_eq!(g.num_edges(), 24 * 256);
    }

    #[test]
    #[should_panic(expected = "exceeds u32")]
    fn rejects_huge_scale() {
        let _ = rmat(40, 16, 0);
    }
}

//! A road-network-shaped generator.
//!
//! The US-Road graph (DIMACS \[1\]) "has a different shape than power-law
//! graphs: it has a high diameter, and all vertices have a small in/out
//! degree" (§2). A 2D lattice with bidirectional edges reproduces both
//! properties: degree ≤ 4 and diameter `width + height − 2`.

use egraph_core::types::{Edge, EdgeList};
use egraph_parallel::ops::parallel_init;

/// Generates a `width × height` lattice with bidirectional edges
/// between 4-neighbors. Vertex `(x, y)` has id `y * width + x`.
///
/// The full US-Road graph is 23.9 M vertices / 58 M edges; a
/// `width × height` lattice has `width · height` vertices and
/// `2·(2·w·h − w − h)` directed edges — pick dimensions to fit.
///
/// # Panics
///
/// Panics if either dimension is zero or the vertex count overflows
/// `u32`.
pub fn road_like(width: usize, height: usize) -> EdgeList<Edge> {
    assert!(
        width > 0 && height > 0,
        "lattice dimensions must be positive"
    );
    let nv = width
        .checked_mul(height)
        .filter(|&n| n <= u32::MAX as usize)
        .expect("lattice vertex count overflows u32 ids");

    // Per-vertex slots: up to 4 outgoing edges (right, left, down, up);
    // count exactly first, then fill in parallel.
    let horizontal = 2 * (width - 1) * height;
    let vertical = 2 * width * (height - 1);
    let ne = horizontal + vertical;

    // Edge i enumerates: rightward edges, leftward, downward, upward.
    let right = (width - 1) * height;
    let left = right;
    let down = width * (height - 1);
    let edges = parallel_init(ne, 1 << 14, |i| {
        if i < right {
            // (x, y) -> (x+1, y), x in 0..width-1
            let y = i / (width - 1);
            let x = i % (width - 1);
            Edge::new((y * width + x) as u32, (y * width + x + 1) as u32)
        } else if i < right + left {
            let j = i - right;
            let y = j / (width - 1);
            let x = j % (width - 1);
            Edge::new((y * width + x + 1) as u32, (y * width + x) as u32)
        } else if i < right + left + down {
            let j = i - right - left;
            let y = j / width;
            let x = j % width;
            Edge::new((y * width + x) as u32, ((y + 1) * width + x) as u32)
        } else {
            let j = i - right - left - down;
            let y = j / width;
            let x = j % width;
            Edge::new(((y + 1) * width + x) as u32, (y * width + x) as u32)
        }
    });
    let _ = nv;
    EdgeList::from_parts_unchecked(width * height, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_stats;

    #[test]
    fn edge_count_formula() {
        let g = road_like(10, 7);
        assert_eq!(g.num_vertices(), 70);
        assert_eq!(g.num_edges(), 2 * (2 * 10 * 7 - 10 - 7));
    }

    #[test]
    fn degrees_at_most_four() {
        let g = road_like(8, 8);
        let stats = degree_stats(&g);
        assert_eq!(stats.max, 4);
        assert!(stats.zero_fraction == 0.0);
        // Interior vertices have degree 4; average close to 4.
        assert!(stats.avg > 3.0);
    }

    #[test]
    fn is_symmetric() {
        let g = road_like(5, 4);
        let set: std::collections::HashSet<(u32, u32)> =
            g.edges().iter().map(|e| (e.src, e.dst)).collect();
        for e in g.edges() {
            assert!(set.contains(&(e.dst, e.src)), "missing reverse of {e:?}");
        }
    }

    #[test]
    fn high_diameter() {
        // BFS depth from corner to corner is width + height - 2.
        use egraph_core::layout::EdgeDirection;
        use egraph_core::preprocess::{CsrBuilder, Strategy};
        let (w, h) = (30, 20);
        let g = road_like(w, h);
        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&g);
        let levels = egraph_core::algo::bfs::reference(adj.out(), 0);
        let max_level = levels.iter().filter(|&&l| l != u32::MAX).max().unwrap();
        assert_eq!(*max_level as usize, w + h - 2);
    }

    #[test]
    fn single_row_is_a_path() {
        let g = road_like(5, 1);
        assert_eq!(g.num_edges(), 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_dimension() {
        let _ = road_like(0, 5);
    }
}

//! Degree-distribution statistics, used to characterize generated
//! graphs (and to sanity-check the generators against the shapes the
//! paper's datasets have).

use egraph_core::types::{EdgeList, EdgeRecord};

/// Summary of an out-degree distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Largest out-degree.
    pub max: u64,
    /// Mean out-degree.
    pub avg: f64,
    /// 99th-percentile out-degree.
    pub p99: u64,
    /// Fraction of vertices with no out-edges.
    pub zero_fraction: f64,
}

/// Computes out-degree statistics of a graph.
pub fn degree_stats<E: EdgeRecord>(graph: &EdgeList<E>) -> DegreeStats {
    let mut degrees = graph.out_degrees();
    let nv = degrees.len().max(1);
    let total: u64 = degrees.iter().sum();
    let zeros = degrees.iter().filter(|&&d| d == 0).count();
    degrees.sort_unstable();
    DegreeStats {
        max: degrees.last().copied().unwrap_or(0),
        avg: total as f64 / nv as f64,
        p99: degrees[(nv * 99 / 100).min(nv - 1)],
        zero_fraction: zeros as f64 / nv as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::types::Edge;

    #[test]
    fn star_graph_stats() {
        let edges: Vec<Edge> = (1..10).map(|v| Edge::new(0, v)).collect();
        let g = EdgeList::new(10, edges).unwrap();
        let s = degree_stats(&g);
        assert_eq!(s.max, 9);
        assert!((s.avg - 0.9).abs() < 1e-12);
        assert!((s.zero_fraction - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_stats() {
        let g: EdgeList<Edge> = EdgeList::new(0, vec![]).unwrap();
        let s = degree_stats(&g);
        assert_eq!(s.max, 0);
        assert_eq!(s.avg, 0.0);
    }
}

//! A uniform (Erdős–Rényi-style) random multigraph, used as a
//! no-skew control input in tests and ablations.

use egraph_core::types::{Edge, EdgeList};
use egraph_parallel::ops::parallel_init;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates `num_edges` edges whose endpoints are independently
/// uniform over `0..num_vertices`.
///
/// # Panics
///
/// Panics if `num_vertices` is zero (with a nonzero edge count) or
/// exceeds `u32`.
pub fn uniform(num_vertices: usize, num_edges: usize, seed: u64) -> EdgeList<Edge> {
    assert!(num_vertices <= u32::MAX as usize, "too many vertices");
    assert!(
        num_vertices > 0 || num_edges == 0,
        "edges need at least one vertex"
    );
    let edges = parallel_init(num_edges, 1 << 14, |i| {
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        Edge::new(
            rng.random_range(0..num_vertices as u32),
            rng.random_range(0..num_vertices as u32),
        )
    });
    EdgeList::from_parts_unchecked(num_vertices, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_stats;

    #[test]
    fn shape() {
        let g = uniform(100, 1000, 1);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 1000);
    }

    #[test]
    fn no_heavy_skew() {
        let g = uniform(1000, 16_000, 2);
        let s = degree_stats(&g);
        assert!((s.max as f64) < 4.0 * s.avg, "max {} avg {}", s.max, s.avg);
    }

    #[test]
    fn empty_graph() {
        let g = uniform(0, 0, 3);
        assert_eq!(g.num_edges(), 0);
    }
}

//! Generator invariants for arbitrary parameters: determinism,
//! endpoint validity, and the dataset shapes the experiments rely on.

use egraph_core::types::EdgeRecord;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rmat_is_deterministic_and_in_range(
        scale in 4u32..12,
        edge_factor in 1usize..20,
        seed in any::<u64>(),
    ) {
        let a = egraph_graphgen::rmat(scale, edge_factor, seed);
        let b = egraph_graphgen::rmat(scale, edge_factor, seed);
        prop_assert_eq!(a.edges(), b.edges());
        prop_assert_eq!(a.num_vertices(), 1 << scale);
        prop_assert_eq!(a.num_edges(), edge_factor << scale);
        let nv = a.num_vertices() as u32;
        prop_assert!(a.edges().iter().all(|e| e.src < nv && e.dst < nv));
    }

    #[test]
    fn road_shape_invariants(width in 2usize..60, height in 2usize..60) {
        let g = egraph_graphgen::road_like(width, height);
        prop_assert_eq!(g.num_vertices(), width * height);
        prop_assert_eq!(g.num_edges(), 2 * (2 * width * height - width - height));
        // Degree bounded by 4 and graph symmetric.
        let degrees = g.out_degrees();
        prop_assert!(degrees.iter().all(|&d| (1..=4).contains(&d)));
        let set: std::collections::HashSet<(u32, u32)> =
            g.edges().iter().map(|e| (e.src, e.dst)).collect();
        prop_assert!(g.edges().iter().all(|e| set.contains(&(e.dst, e.src))));
    }

    #[test]
    fn bipartite_edges_cross_sides_only(
        users in 1usize..200,
        items in 1usize..50,
        ratings in 1usize..10,
        seed in any::<u64>(),
    ) {
        let g = egraph_graphgen::netflix_like(users, items, ratings, seed);
        prop_assert_eq!(g.num_edges(), users * ratings);
        for e in g.edges() {
            prop_assert!((e.src() as usize) < users);
            prop_assert!((e.dst() as usize) >= users);
            prop_assert!((e.dst() as usize) < users + items);
            prop_assert!((1.0..=5.0).contains(&e.weight()));
        }
    }

    #[test]
    fn uniform_is_deterministic(nv in 1usize..500, ne in 0usize..2000, seed in any::<u64>()) {
        let a = egraph_graphgen::uniform(nv, ne, seed);
        let b = egraph_graphgen::uniform(nv, ne, seed);
        prop_assert_eq!(a.edges(), b.edges());
        prop_assert_eq!(a.num_edges(), ne);
    }

    #[test]
    fn zipf_always_samples_in_range(n in 1usize..5000, s in 0.0f64..3.0, seed in any::<u64>()) {
        use rand::SeedableRng;
        let z = egraph_graphgen::Zipf::new(n, s);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }
}

#[test]
fn different_seeds_differ() {
    let a = egraph_graphgen::rmat(10, 8, 1);
    let b = egraph_graphgen::rmat(10, 8, 2);
    assert_ne!(a.edges(), b.edges());
}

//! NUMA model invariants for arbitrary degree distributions and
//! traffic matrices.

use egraph_numa::{
    edge_balanced_ranges, range_partition, CostModel, LocalityStats, MemoryBoundness, Placement,
    Topology,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn edge_balanced_ranges_cover_and_order(
        degrees in proptest::collection::vec(0u64..1000, 0..500),
        parts in 1usize..9,
    ) {
        let ranges = edge_balanced_ranges(&degrees, parts);
        prop_assert_eq!(ranges.len(), parts);
        prop_assert_eq!(ranges.last().map(|r| r.end), Some(degrees.len()));
        let mut cursor = 0usize;
        for r in &ranges {
            prop_assert_eq!(r.start, cursor);
            prop_assert!(r.end >= r.start);
            cursor = r.end;
        }
    }

    #[test]
    fn edge_balance_quality(
        degrees in proptest::collection::vec(1u64..50, 16..400),
        parts in 2usize..5,
    ) {
        // With bounded degrees, every part's edge share is within one
        // max-degree of the ideal share.
        let ranges = edge_balanced_ranges(&degrees, parts);
        let total: u64 = degrees.iter().sum();
        let ideal = total as f64 / parts as f64;
        let max_degree = *degrees.iter().max().unwrap() as f64;
        for r in &ranges {
            let sum: u64 = degrees[r.clone()].iter().sum();
            prop_assert!(
                (sum as f64 - ideal).abs() <= ideal + max_degree,
                "part {:?} holds {} of ideal {}", r, sum, ideal
            );
        }
    }

    #[test]
    fn range_partition_is_even(n in 0usize..10_000, parts in 1usize..17) {
        let ranges = range_partition(n, parts);
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        prop_assert_eq!(sizes.iter().sum::<usize>(), n);
        let max = sizes.iter().max().copied().unwrap_or(0);
        let min = sizes.iter().min().copied().unwrap_or(0);
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn placement_owner_is_total(
        stripe in 1usize..5000,
        nodes in 1usize..9,
        index in any::<u32>(),
    ) {
        let p = Placement::Interleaved { stripe, num_nodes: nodes };
        prop_assert!(p.owner_of(index as usize) < nodes);
    }

    #[test]
    fn cost_model_is_monotone_in_each_factor(
        rf_lo in 0.0f64..1.0,
        rf_extra in 0.0f64..0.5,
        peak_lo in 0.25f64..1.0,
        peak_extra in 0.0f64..0.5,
    ) {
        // With the other factor fixed, more remote traffic and more
        // hotspot concentration must each model no faster. (Jointly
        // they can trade off: spreading traffic to remote nodes may
        // relieve a controller hotspot.)
        let model = CostModel::new(Topology::machine_b());
        let rf_hi = (rf_lo + rf_extra).min(1.0);
        let peak_hi = (peak_lo + peak_extra).min(1.0);
        let base = model.model_parts(1.0, MemoryBoundness::PAGERANK, rf_lo, peak_lo);
        let more_remote = model.model_parts(1.0, MemoryBoundness::PAGERANK, rf_hi, peak_lo);
        let more_hot = model.model_parts(1.0, MemoryBoundness::PAGERANK, rf_lo, peak_hi);
        prop_assert!(more_remote.modeled_seconds >= base.modeled_seconds - 1e-12);
        prop_assert!(more_hot.modeled_seconds >= base.modeled_seconds - 1e-12);
    }

    #[test]
    fn slowdown_is_at_least_one_for_nonnegative_models(
        traffic in proptest::collection::vec((0usize..4, 0usize..4, 1u64..1000), 1..40),
    ) {
        let stats = LocalityStats::new(4);
        for &(f, t, c) in &traffic {
            stats.record(f, t, c);
        }
        let model = CostModel::new(Topology::machine_b());
        let modeled = model.model(1.0, MemoryBoundness::TRAVERSAL, &stats);
        prop_assert!(modeled.slowdown() >= 1.0 - 1e-12);
    }
}

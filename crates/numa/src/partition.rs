//! Vertex-range partitioning primitives.
//!
//! §7.1: "The partitioning scheme divides graph data evenly across NUMA
//! nodes and places related data on the same NUMA node. Partitioning is
//! performed so as to minimize the number of edges whose source and
//! destination vertices are on different NUMA nodes, while still
//! balancing the number of vertices and edges per NUMA node."
//!
//! Following Polymer and Gemini, vertices are split into as many
//! contiguous ranges as there are NUMA nodes, with ranges chosen so
//! each holds roughly the same number of edges; the out-edges of a
//! vertex are colocated with their **target** vertex, which avoids
//! random remote writes during push-style computation.

use std::ops::Range;

/// Splits `0..num_items` into `num_parts` contiguous ranges whose
/// lengths differ by at most one.
///
/// # Examples
///
/// ```
/// let parts = egraph_numa::range_partition(10, 3);
/// assert_eq!(parts, vec![0..4, 4..7, 7..10]);
/// ```
pub fn range_partition(num_items: usize, num_parts: usize) -> Vec<Range<usize>> {
    let num_parts = num_parts.max(1);
    let base = num_items / num_parts;
    let extra = num_items % num_parts;
    let mut out = Vec::with_capacity(num_parts);
    let mut start = 0;
    for p in 0..num_parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, num_items);
    out
}

/// Splits vertices `0..degrees.len()` into `num_parts` contiguous
/// ranges with approximately equal total degree (edge count), the
/// Polymer/Gemini balance criterion.
///
/// Every range is non-empty as long as there are at least as many
/// vertices as parts; trailing parts may be empty otherwise.
///
/// # Examples
///
/// ```
/// let degrees = vec![8u64, 1, 1, 1, 1, 1, 1, 2];
/// let parts = egraph_numa::edge_balanced_ranges(&degrees, 2);
/// assert_eq!(parts[0].end - parts[0].start + parts[1].end - parts[1].start, 8);
/// ```
pub fn edge_balanced_ranges(degrees: &[u64], num_parts: usize) -> Vec<Range<usize>> {
    let num_parts = num_parts.max(1);
    let n = degrees.len();
    let total: u64 = degrees.iter().sum();
    let mut out = Vec::with_capacity(num_parts);
    let mut start = 0usize;
    let mut consumed = 0u64;
    for p in 0..num_parts {
        if start >= n {
            out.push(n..n);
            continue;
        }
        let parts_left = num_parts - p;
        let vertices_left = n - start;
        if parts_left == 1 {
            out.push(start..n);
            start = n;
            continue;
        }
        // Target: an equal share of the remaining edges, but leave at
        // least one vertex for each remaining part.
        let target = (total - consumed).div_ceil(parts_left as u64);
        let mut end = start;
        let mut sum = 0u64;
        // Leave at least one vertex for each remaining part when supply
        // allows; otherwise this part takes exactly one vertex.
        let max_end = if n - start > parts_left - 1 {
            n - (parts_left - 1)
        } else {
            start + 1
        };
        while end < max_end {
            let d = degrees[end];
            // Stop before overshooting the target badly: include the
            // vertex if that brings us closer to the target.
            if sum >= target || (sum + d > target && target - sum < sum + d - target) {
                break;
            }
            sum += d;
            end += 1;
        }
        if end == start {
            end = start + 1;
            sum = degrees[start];
        }
        let _ = vertices_left;
        consumed += sum;
        out.push(start..end);
        start = end;
    }
    debug_assert_eq!(out.len(), num_parts);
    debug_assert_eq!(out.last().map(|r| r.end), Some(n));
    out
}

/// How simulated memory is spread across NUMA nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// Pages striped round-robin across all nodes at `stripe`-item
    /// granularity (the paper's interleaved baseline).
    Interleaved {
        /// Items per stripe (e.g. a 4 KiB page worth of metadata).
        stripe: usize,
        /// Number of nodes in the machine.
        num_nodes: usize,
    },
    /// Contiguous item ranges owned by nodes (`ranges[node]`), the
    /// NUMA-aware layout produced by the partitioner.
    Partitioned(Vec<Range<usize>>),
}

impl Placement {
    /// Creates an interleaved placement with the default 4 KiB-page
    /// stripe expressed in items of `item_size` bytes.
    pub fn interleaved(num_nodes: usize, item_size: usize) -> Self {
        Placement::Interleaved {
            stripe: (4096 / item_size.max(1)).max(1),
            num_nodes: num_nodes.max(1),
        }
    }

    /// Returns which node owns item `index`.
    ///
    /// For partitioned placements, indexes beyond the last range belong
    /// to the last node.
    pub fn owner_of(&self, index: usize) -> usize {
        match self {
            Placement::Interleaved { stripe, num_nodes } => (index / stripe) % num_nodes,
            Placement::Partitioned(ranges) => {
                // Ranges are contiguous and sorted: binary search by end.
                let mut lo = 0usize;
                let mut hi = ranges.len() - 1;
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    if index < ranges[mid].end {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                lo
            }
        }
    }

    /// Number of nodes this placement spreads data over.
    pub fn num_nodes(&self) -> usize {
        match self {
            Placement::Interleaved { num_nodes, .. } => *num_nodes,
            Placement::Partitioned(ranges) => ranges.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_partition_covers_and_balances() {
        for n in [0usize, 1, 7, 100, 1001] {
            for p in [1usize, 2, 3, 8] {
                let parts = range_partition(n, p);
                assert_eq!(parts.len(), p);
                assert_eq!(parts[0].start, 0);
                assert_eq!(parts.last().unwrap().end, n);
                for w in parts.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                let max = parts.iter().map(|r| r.len()).max().unwrap();
                let min = parts.iter().map(|r| r.len()).min().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn edge_balanced_uniform_degrees() {
        let degrees = vec![2u64; 100];
        let parts = edge_balanced_ranges(&degrees, 4);
        for r in &parts {
            assert_eq!(r.len(), 25);
        }
    }

    #[test]
    fn edge_balanced_skewed_degrees() {
        // One hub with half the edges: it should sit alone-ish in its
        // part, with the rest split over the other parts.
        let mut degrees = vec![1u64; 99];
        degrees.insert(0, 99);
        let parts = edge_balanced_ranges(&degrees, 2);
        let sum0: u64 = parts[0].clone().map(|i| degrees[i]).sum();
        let sum1: u64 = parts[1].clone().map(|i| degrees[i]).sum();
        let total = 198u64;
        assert_eq!(sum0 + sum1, total);
        assert!(sum0.abs_diff(sum1) <= degrees[0]);
    }

    #[test]
    fn edge_balanced_covers_everything() {
        let degrees: Vec<u64> = (0..1000).map(|i| (i % 17) as u64).collect();
        for p in [1usize, 2, 4, 7] {
            let parts = edge_balanced_ranges(&degrees, p);
            assert_eq!(parts.len(), p);
            assert_eq!(parts[0].start, 0);
            assert_eq!(parts.last().unwrap().end, degrees.len());
            for w in parts.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }

    #[test]
    fn edge_balanced_more_parts_than_vertices() {
        let degrees = vec![5u64, 5];
        let parts = edge_balanced_ranges(&degrees, 4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.last().unwrap().end, 2);
        let covered: usize = parts.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 2);
    }

    #[test]
    fn interleaved_owner_cycles() {
        let p = Placement::Interleaved {
            stripe: 4,
            num_nodes: 2,
        };
        assert_eq!(p.owner_of(0), 0);
        assert_eq!(p.owner_of(3), 0);
        assert_eq!(p.owner_of(4), 1);
        assert_eq!(p.owner_of(8), 0);
    }

    #[test]
    fn partitioned_owner_binary_search() {
        let p = Placement::Partitioned(vec![0..10, 10..15, 15..40]);
        assert_eq!(p.owner_of(0), 0);
        assert_eq!(p.owner_of(9), 0);
        assert_eq!(p.owner_of(10), 1);
        assert_eq!(p.owner_of(14), 1);
        assert_eq!(p.owner_of(39), 2);
        assert_eq!(p.owner_of(1000), 2);
        assert_eq!(p.num_nodes(), 3);
    }
}

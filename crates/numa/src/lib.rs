//! NUMA topology models, graph-partitioning primitives and the
//! locality cost model used by the §7 experiments.
//!
//! The paper evaluates NUMA-awareness on two machines: machine A (2
//! NUMA nodes, 16 cores) and machine B (4 NUMA nodes, 32 cores). The
//! host this reproduction runs on has a single node, so this crate
//! splits the problem the way the paper's analysis does:
//!
//! * the **partitioning work** (splitting vertices into per-node
//!   subsets with balanced edge counts, colocating out-edges with their
//!   *target* vertices — the Polymer/Gemini scheme) is real code, run
//!   and measured for real ([`partition`]);
//! * the **memory-locality consequences** (local vs. remote access
//!   latency, and the memory-controller contention that §7.2 blames for
//!   the BFS slowdowns) are modelled analytically from access counts
//!   recorded during real execution ([`locality`], [`cost`]).
//!
//! The calibration constants in [`cost`] come from the public
//! latency/bandwidth characteristics of the two machine classes, not
//! from fitting the paper's result figures; see `DESIGN.md` §4.
//!
//! # Examples
//!
//! ```
//! use egraph_numa::{edge_balanced_ranges, Topology};
//!
//! let topo = Topology::machine_b();
//! assert_eq!(topo.num_nodes, 4);
//!
//! // Split 8 vertices with skewed degrees into 2 edge-balanced parts.
//! let degrees = vec![100u64, 1, 1, 1, 1, 1, 1, 94];
//! let parts = edge_balanced_ranges(&degrees, 2);
//! assert_eq!(parts.len(), 2);
//! assert_eq!(parts[0], 0..1); // the hub alone balances half the edges
//! ```

pub mod cost;
pub mod locality;
pub mod partition;
pub mod topology;

pub use cost::{CostModel, MemoryBoundness, ModeledTime};
pub use locality::LocalityStats;
pub use partition::{edge_balanced_ranges, range_partition, Placement};
pub use topology::Topology;

//! Descriptions of the evaluation machines.

/// A NUMA machine model.
///
/// Latency and bandwidth figures are representative of the machine
/// *class* (dual-socket Sandy Bridge Xeon; quad-socket Interlagos
/// Opteron); they parameterize the cost model of [`crate::cost`].
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Human-readable name used in experiment output.
    pub name: &'static str,
    /// Number of NUMA nodes (sockets).
    pub num_nodes: usize,
    /// Cores per node.
    pub cores_per_node: usize,
    /// Last-level cache per node, in bytes.
    pub llc_bytes: usize,
    /// DRAM latency for node-local accesses, nanoseconds.
    pub local_latency_ns: f64,
    /// DRAM latency for remote (cross-socket) accesses, nanoseconds.
    pub remote_latency_ns: f64,
    /// Sustainable DRAM bandwidth of one memory controller, GB/s.
    pub node_bandwidth_gbs: f64,
}

impl Topology {
    /// The paper's machine A: 2× Intel Xeon E5-2630 (8 cores each,
    /// 20 MB LLC), 128 GB RAM, 2 NUMA nodes.
    pub fn machine_a() -> Self {
        Self {
            name: "machine-A",
            num_nodes: 2,
            cores_per_node: 8,
            llc_bytes: 20 * 1024 * 1024,
            local_latency_ns: 80.0,
            remote_latency_ns: 130.0,
            node_bandwidth_gbs: 42.0,
        }
    }

    /// The paper's machine B: 4× AMD Opteron 6272 (8 cores each, 16 MB
    /// LLC), 256 GB RAM, 4 NUMA nodes. The default experiment machine.
    pub fn machine_b() -> Self {
        Self {
            name: "machine-B",
            num_nodes: 4,
            cores_per_node: 8,
            llc_bytes: 16 * 1024 * 1024,
            local_latency_ns: 95.0,
            remote_latency_ns: 190.0,
            node_bandwidth_gbs: 26.0,
        }
    }

    /// A single-node machine (NUMA effects absent); the identity
    /// baseline of the cost model.
    pub fn single_node() -> Self {
        Self {
            name: "single-node",
            num_nodes: 1,
            cores_per_node: 8,
            llc_bytes: 16 * 1024 * 1024,
            local_latency_ns: 90.0,
            remote_latency_ns: 90.0,
            node_bandwidth_gbs: 30.0,
        }
    }

    /// Total core count of the machine.
    pub fn total_cores(&self) -> usize {
        self.num_nodes * self.cores_per_node
    }

    /// The latency penalty factor of a remote access relative to a
    /// local one.
    pub fn remote_penalty(&self) -> f64 {
        self.remote_latency_ns / self.local_latency_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let a = Topology::machine_a();
        assert_eq!(a.num_nodes, 2);
        assert_eq!(a.total_cores(), 16);
        let b = Topology::machine_b();
        assert_eq!(b.num_nodes, 4);
        assert_eq!(b.total_cores(), 32);
        assert!(b.remote_penalty() > a.remote_penalty());
    }

    #[test]
    fn single_node_has_no_remote_penalty() {
        let s = Topology::single_node();
        assert_eq!(s.num_nodes, 1);
        assert!((s.remote_penalty() - 1.0).abs() < 1e-12);
    }
}

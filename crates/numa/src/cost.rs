//! The NUMA timing model.
//!
//! Execution on this reproduction's host is single-node, so the timing
//! *consequences* of data placement are derived analytically from the
//! locality matrix recorded during real execution. The model scales a
//! measured single-node algorithm time by a slowdown composed of two
//! effects the paper identifies:
//!
//! 1. **Remote-access latency** — a fraction `remote_fraction` of
//!    metadata accesses pay the cross-socket latency instead of the
//!    local one (§7.1's motivation for partitioning);
//! 2. **Memory-controller contention** — when the traffic of all nodes
//!    concentrates on one node's memory (BFS frontiers live in a single
//!    partition), that controller saturates and every access queues
//!    behind it (§7.2, citing Dashti et al. \[9\]).
//!
//! The slowdown only applies to the memory-bound share of the
//! algorithm's time ([`MemoryBoundness`]); the compute share is
//! placement-independent.
//!
//! ```text
//! latency_factor    = 1 + remote_fraction · (remote_penalty − 1)
//! contention_factor = 1 + (peak_share − 1/nodes)⁺ · (nodes − 1)
//! slowdown          = (1 − m) + m · latency_factor · contention_factor
//! modeled_time      = measured_time · slowdown
//! ```

use crate::locality::LocalityStats;
use crate::topology::Topology;

/// Fraction of an algorithm's execution time that stalls on DRAM.
///
/// Graph kernels are famously memory-bound; the presets below reflect
/// the relative compute intensity of the study's algorithms (PageRank
/// does a multiply-accumulate per edge and saturates bandwidth; BFS
/// does almost no arithmetic but its frontier fits caches better).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryBoundness(pub f64);

impl MemoryBoundness {
    /// Full-graph iterative kernels (PageRank): almost pure streaming.
    pub const PAGERANK: MemoryBoundness = MemoryBoundness(0.75);
    /// Frontier-driven traversals (BFS, SSSP, WCC).
    pub const TRAVERSAL: MemoryBoundness = MemoryBoundness(0.55);
    /// Single-pass numeric kernels (SpMV).
    pub const SPMV: MemoryBoundness = MemoryBoundness(0.65);

    /// Clamps to the meaningful `[0, 1]` range.
    pub fn clamped(self) -> f64 {
        self.0.clamp(0.0, 1.0)
    }
}

/// Result of applying the model to one measured run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeledTime {
    /// The measured single-node algorithm time, seconds.
    pub base_seconds: f64,
    /// The modeled time on the target topology, seconds.
    pub modeled_seconds: f64,
    /// Latency component of the slowdown.
    pub latency_factor: f64,
    /// Contention component of the slowdown.
    pub contention_factor: f64,
    /// Remote fraction observed in the locality matrix.
    pub remote_fraction: f64,
}

impl ModeledTime {
    /// Overall modeled slowdown relative to the measured base.
    pub fn slowdown(&self) -> f64 {
        if self.base_seconds == 0.0 {
            1.0
        } else {
            self.modeled_seconds / self.base_seconds
        }
    }
}

/// The analytic cost model for one machine.
#[derive(Debug, Clone)]
pub struct CostModel {
    topology: Topology,
}

impl CostModel {
    /// Creates a model for `topology`.
    pub fn new(topology: Topology) -> Self {
        Self { topology }
    }

    /// The machine this model describes.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Scales `measured_seconds` (single-node execution) to the modeled
    /// topology, given the access-locality matrix recorded during that
    /// execution and the algorithm's memory boundness.
    ///
    /// The hotspot concentration is taken from the matrix aggregated
    /// over the whole run; for phased algorithms whose hotspot moves
    /// between iterations (BFS), use [`CostModel::model_parts`] with a
    /// per-iteration-weighted peak share instead.
    pub fn model(
        &self,
        measured_seconds: f64,
        boundness: MemoryBoundness,
        stats: &LocalityStats,
    ) -> ModeledTime {
        self.model_parts(
            measured_seconds,
            boundness,
            stats.remote_fraction(),
            stats.peak_target_share(),
        )
    }

    /// [`CostModel::model`] with the locality summary passed
    /// explicitly: `remote_fraction` of accesses pay the cross-socket
    /// latency and `peak_target_share` of traffic converges on one
    /// memory controller at a time.
    pub fn model_parts(
        &self,
        measured_seconds: f64,
        boundness: MemoryBoundness,
        remote_fraction: f64,
        peak_target_share: f64,
    ) -> ModeledTime {
        let nodes = self.topology.num_nodes as f64;
        let m = boundness.clamped();
        let latency_factor = 1.0 + remote_fraction * (self.topology.remote_penalty() - 1.0);
        let even_share = 1.0 / nodes;
        let excess = (peak_target_share - even_share).max(0.0);
        let contention_factor = 1.0 + excess * (nodes - 1.0);
        let slowdown = (1.0 - m) + m * latency_factor * contention_factor;
        ModeledTime {
            base_seconds: measured_seconds,
            modeled_seconds: measured_seconds * slowdown,
            latency_factor,
            contention_factor,
            remote_fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_stats(nodes: usize) -> LocalityStats {
        let s = LocalityStats::new(nodes);
        for f in 0..nodes {
            for t in 0..nodes {
                s.record(f, t, 100);
            }
        }
        s
    }

    fn local_stats(nodes: usize) -> LocalityStats {
        let s = LocalityStats::new(nodes);
        for n in 0..nodes {
            s.record(n, n, 100);
        }
        s
    }

    fn hotspot_stats(nodes: usize) -> LocalityStats {
        let s = LocalityStats::new(nodes);
        for f in 0..nodes {
            s.record(f, 0, 100);
        }
        s
    }

    #[test]
    fn local_traffic_on_single_node_is_identity() {
        let model = CostModel::new(Topology::single_node());
        let t = model.model(10.0, MemoryBoundness::PAGERANK, &local_stats(1));
        assert!((t.slowdown() - 1.0).abs() < 1e-12);
        assert_eq!(t.modeled_seconds, 10.0);
    }

    #[test]
    fn numa_aware_beats_interleaved_for_spread_traffic() {
        // The PageRank case of Fig. 9b: NUMA-aware placement (mostly
        // local) must model faster than interleaved (3/4 remote on B).
        let model = CostModel::new(Topology::machine_b());
        let inter = model.model(10.0, MemoryBoundness::PAGERANK, &uniform_stats(4));
        let aware = model.model(10.0, MemoryBoundness::PAGERANK, &local_stats(4));
        assert!(inter.modeled_seconds > aware.modeled_seconds * 1.3);
    }

    #[test]
    fn hotspot_contention_punishes_numa_aware_bfs() {
        // The BFS case of Fig. 9a/10: all nodes hammering one target
        // node must model slower than evenly interleaved traffic.
        let model = CostModel::new(Topology::machine_b());
        let inter = model.model(1.0, MemoryBoundness::TRAVERSAL, &uniform_stats(4));
        let hotspot = model.model(1.0, MemoryBoundness::TRAVERSAL, &hotspot_stats(4));
        assert!(hotspot.modeled_seconds > inter.modeled_seconds * 1.5);
        assert!(hotspot.contention_factor > 2.0);
    }

    #[test]
    fn machine_b_amplifies_machine_a() {
        // 4 nodes with a bigger remote penalty: both effects larger
        // than machine A's — the paper's "only on large machines".
        let a = CostModel::new(Topology::machine_a());
        let b = CostModel::new(Topology::machine_b());
        let gain_a = {
            let i = a.model(1.0, MemoryBoundness::PAGERANK, &uniform_stats(2));
            let l = a.model(1.0, MemoryBoundness::PAGERANK, &local_stats(2));
            i.modeled_seconds / l.modeled_seconds
        };
        let gain_b = {
            let i = b.model(1.0, MemoryBoundness::PAGERANK, &uniform_stats(4));
            let l = b.model(1.0, MemoryBoundness::PAGERANK, &local_stats(4));
            i.modeled_seconds / l.modeled_seconds
        };
        assert!(gain_b > gain_a);
    }

    #[test]
    fn zero_base_time_slowdown_is_one() {
        let model = CostModel::new(Topology::machine_a());
        let t = model.model(0.0, MemoryBoundness::SPMV, &uniform_stats(2));
        assert_eq!(t.slowdown(), 1.0);
    }

    #[test]
    fn boundness_zero_means_no_penalty() {
        let model = CostModel::new(Topology::machine_b());
        let t = model.model(5.0, MemoryBoundness(0.0), &hotspot_stats(4));
        assert!((t.slowdown() - 1.0).abs() < 1e-12);
    }
}

//! Access-locality accounting.
//!
//! While a partitioned (or interleaved) execution runs, the engine
//! records, for every vertex-metadata access, which node issued it and
//! which node owns the target datum. The resulting node-to-node matrix
//! is the input of the cost model: its off-diagonal mass is remote
//! traffic, and the concentration of its column sums reveals the
//! memory-controller hotspots behind the paper's BFS anomaly (§7.2).

use std::sync::atomic::{AtomicU64, Ordering};

/// A node-to-node access matrix (`from` issues an access to memory
/// owned by `to`).
#[derive(Debug)]
pub struct LocalityStats {
    num_nodes: usize,
    /// Row-major `num_nodes × num_nodes` counters.
    matrix: Vec<AtomicU64>,
}

impl LocalityStats {
    /// Creates a zeroed matrix for a machine with `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        let num_nodes = num_nodes.max(1);
        Self {
            num_nodes,
            matrix: (0..num_nodes * num_nodes)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    /// Number of nodes this matrix covers.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Records `count` accesses issued by node `from` to memory owned
    /// by node `to`.
    #[inline]
    pub fn record(&self, from: usize, to: usize, count: u64) {
        self.matrix[from * self.num_nodes + to].fetch_add(count, Ordering::Relaxed);
    }

    /// Returns the counter for one (from, to) pair.
    pub fn get(&self, from: usize, to: usize) -> u64 {
        self.matrix[from * self.num_nodes + to].load(Ordering::Relaxed)
    }

    /// Total number of recorded accesses.
    pub fn total(&self) -> u64 {
        self.matrix.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Fraction of accesses whose target lives on a different node than
    /// the issuer. Zero when nothing was recorded.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let local: u64 = (0..self.num_nodes).map(|n| self.get(n, n)).sum();
        (total - local) as f64 / total as f64
    }

    /// The largest share of total traffic absorbed by a single target
    /// node — 1/num_nodes for perfectly spread traffic, 1.0 when every
    /// access hits one node's memory controller.
    pub fn peak_target_share(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0 / self.num_nodes as f64;
        }
        let peak = (0..self.num_nodes)
            .map(|to| {
                (0..self.num_nodes)
                    .map(|from| self.get(from, to))
                    .sum::<u64>()
            })
            .max()
            .unwrap_or(0);
        peak as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_defaults() {
        let s = LocalityStats::new(4);
        assert_eq!(s.total(), 0);
        assert_eq!(s.remote_fraction(), 0.0);
        assert!((s.peak_target_share() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn remote_fraction_counts_off_diagonal() {
        let s = LocalityStats::new(2);
        s.record(0, 0, 75);
        s.record(0, 1, 25);
        assert_eq!(s.total(), 100);
        assert!((s.remote_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn peak_share_detects_hotspot() {
        let s = LocalityStats::new(4);
        for from in 0..4 {
            s.record(from, 2, 100); // everyone hammers node 2
        }
        assert!((s.peak_target_share() - 1.0).abs() < 1e-12);
        assert!((s.remote_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn spread_traffic_has_min_peak_share() {
        let s = LocalityStats::new(4);
        for from in 0..4 {
            for to in 0..4 {
                s.record(from, to, 10);
            }
        }
        assert!((s.peak_target_share() - 0.25).abs() < 1e-12);
        assert!((s.remote_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn single_node_is_always_local() {
        let s = LocalityStats::new(1);
        s.record(0, 0, 10);
        assert_eq!(s.remote_fraction(), 0.0);
        assert_eq!(s.peak_target_share(), 1.0);
    }
}

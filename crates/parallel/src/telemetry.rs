//! Opt-in runtime counters for the pool: parallel regions, chunks
//! executed, steals, and per-worker busy time.
//!
//! The counters are process-global atomics behind a single `enabled`
//! gate, so the instrumented fast paths pay one relaxed load when
//! telemetry is off — the same zero-cost contract as the
//! `NullProbe`/`NullRecorder` pair in the core crate, adapted to a
//! crate that the core depends on (so it cannot use those traits
//! directly). Enable with [`enable`], read a consistent-enough view
//! with [`snapshot`], and clear between runs with [`reset`].
//!
//! Relaxed orderings are deliberate: the counters feed end-of-run
//! reports, not synchronization, and every `broadcast` joins all
//! workers before `snapshot` can observe their updates.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Upper bound on tracked workers; matches the `ThreadPool` clamp.
const MAX_WORKERS: usize = 256;

static ENABLED: AtomicBool = AtomicBool::new(false);
static REGIONS: AtomicU64 = AtomicU64::new(0);
static CHUNKS: AtomicU64 = AtomicU64::new(0);
static TASKS: AtomicU64 = AtomicU64::new(0);
static STEALS: [AtomicU64; MAX_WORKERS] = [const { AtomicU64::new(0) }; MAX_WORKERS];
static BUSY_NANOS: [AtomicU64; MAX_WORKERS] = [const { AtomicU64::new(0) }; MAX_WORKERS];

/// Turns the pool counters on and zeroes them, starting a fresh
/// collection window. Off by default.
///
/// The zeroing matters for pool reuse: the pool survives across runs
/// (including after a worker panic), so without it a second
/// instrumented run would report the first run's steals and busy time
/// on top of its own. Call [`reset`] instead to zero without changing
/// the collection state.
pub fn enable() {
    reset();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the pool counters off (the counts keep their values).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the counters are currently collecting.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes every counter (collection state is unchanged).
pub fn reset() {
    REGIONS.store(0, Ordering::Relaxed);
    CHUNKS.store(0, Ordering::Relaxed);
    TASKS.store(0, Ordering::Relaxed);
    for slot in &STEALS {
        slot.store(0, Ordering::Relaxed);
    }
    for slot in &BUSY_NANOS {
        slot.store(0, Ordering::Relaxed);
    }
}

#[inline]
pub(crate) fn on_region() {
    if enabled() {
        REGIONS.fetch_add(1, Ordering::Relaxed);
    }
}

#[inline]
pub(crate) fn on_chunk() {
    if enabled() {
        CHUNKS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Credits one successful steal to the worker that performed it, so
/// end-of-run reports can show *who* had to go stealing — an idle-time
/// signal the aggregate count hides.
#[inline]
pub(crate) fn on_steal(worker: usize) {
    if enabled() && worker < MAX_WORKERS {
        STEALS[worker].fetch_add(1, Ordering::Relaxed);
    }
}

#[inline]
pub(crate) fn on_task() {
    if enabled() {
        TASKS.fetch_add(1, Ordering::Relaxed);
    }
}

#[inline]
pub(crate) fn on_busy(worker: usize, nanos: u64) {
    if worker < MAX_WORKERS {
        BUSY_NANOS[worker].fetch_add(nanos, Ordering::Relaxed);
    }
}

/// A point-in-time copy of the pool counters.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolSnapshot {
    /// Parallel regions broadcast to the pool.
    pub regions: u64,
    /// Chunks grabbed from shared-counter loops plus pieces processed
    /// by the stealing scheduler.
    pub chunks: u64,
    /// Successful steals in the work-stealing scheduler, summed over
    /// workers (see [`steals_per_worker`](Self::steals_per_worker) for
    /// the split).
    pub steals: u64,
    /// Dynamic tasks executed.
    pub tasks: u64,
    /// Successful steals per worker, indexed by `WorkerId`. A worker
    /// with many steals ran out of local work early — the flip side of
    /// a high [`load_imbalance`](Self::load_imbalance).
    pub steals_per_worker: Vec<u64>,
    /// Busy seconds per worker, indexed by `WorkerId`; only workers
    /// that ran at least one region appear as non-zero.
    pub busy_seconds: Vec<f64>,
}

impl PoolSnapshot {
    /// Total busy seconds summed over workers.
    pub fn total_busy_seconds(&self) -> f64 {
        self.busy_seconds.iter().sum()
    }

    /// Max-over-mean busy time across workers that did any work: 1.0
    /// is a perfectly balanced run, higher means the slowest worker
    /// carried proportionally more of the load. Returns 1.0 when no
    /// busy time was recorded.
    pub fn load_imbalance(&self) -> f64 {
        let active: Vec<f64> = self
            .busy_seconds
            .iter()
            .copied()
            .filter(|&s| s > 0.0)
            .collect();
        if active.is_empty() {
            return 1.0;
        }
        let max = active.iter().cloned().fold(0.0f64, f64::max);
        let mean = active.iter().sum::<f64>() / active.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }
}

/// Reads the current counter values.
///
/// `busy_seconds` covers the global pool's workers. The view is only
/// guaranteed consistent when no parallel region is in flight (the
/// intended use: snapshot after the instrumented run finishes).
pub fn snapshot() -> PoolSnapshot {
    let workers = crate::current_num_threads().min(MAX_WORKERS);
    let steals_per_worker: Vec<u64> = STEALS[..workers]
        .iter()
        .map(|n| n.load(Ordering::Relaxed))
        .collect();
    PoolSnapshot {
        regions: REGIONS.load(Ordering::Relaxed),
        chunks: CHUNKS.load(Ordering::Relaxed),
        steals: steals_per_worker.iter().sum(),
        tasks: TASKS.load(Ordering::Relaxed),
        steals_per_worker,
        busy_seconds: BUSY_NANOS[..workers]
            .iter()
            .map(|n| n.load(Ordering::Relaxed) as f64 * 1e-9)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_counters_stay_zero() {
        // Telemetry is off by default; instrumented ops must not count.
        // (Runs first in the module namespace; other tests here are the
        // only ones that enable the gate, and they reset after.)
        reset();
        crate::parallel_for(0..100_000, 1024, |_r| {});
        let snap = snapshot();
        assert_eq!(snap.regions, 0);
        assert_eq!(snap.chunks, 0);
    }

    #[test]
    fn load_imbalance_of_balanced_run_is_one() {
        let snap = PoolSnapshot {
            regions: 1,
            chunks: 4,
            steals: 0,
            tasks: 0,
            steals_per_worker: vec![0, 0, 0, 0],
            busy_seconds: vec![2.0, 2.0, 2.0, 2.0],
        };
        assert!((snap.load_imbalance() - 1.0).abs() < 1e-12);
        assert!((snap.total_busy_seconds() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn load_imbalance_ignores_idle_workers() {
        let snap = PoolSnapshot {
            regions: 1,
            chunks: 4,
            steals: 0,
            tasks: 0,
            steals_per_worker: vec![0, 0, 0, 0],
            busy_seconds: vec![3.0, 1.0, 0.0, 0.0],
        };
        // max 3, mean over active workers (3+1)/2 = 2 -> 1.5.
        assert!((snap.load_imbalance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_reports_balance_one() {
        let snap = PoolSnapshot {
            regions: 0,
            chunks: 0,
            steals: 0,
            tasks: 0,
            steals_per_worker: vec![],
            busy_seconds: vec![],
        };
        assert!((snap.load_imbalance() - 1.0).abs() < 1e-12);
    }
}

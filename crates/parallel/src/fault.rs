//! Deterministic, seeded fault injection for the worker pool.
//!
//! The conformance harness (`egraph-testkit`) needs to prove that the
//! runtime never hangs and never silently corrupts results when the
//! schedule degenerates: workers that stall, workers that die, and
//! steal-heavy schedules where every thief fights over one deque. This
//! module provides a process-global [`FaultPlan`] that the pool and the
//! stealing scheduler consult at region entry.
//!
//! The disabled-path cost is a single relaxed atomic load per region
//! entry (the same pattern as [`crate::telemetry`]), so production runs
//! pay nothing. All injected behavior is a pure function of
//! `(seed, region ordinal, worker id)`, which makes every failure
//! reproducible from the logged seed.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

/// A deterministic schedule of pool-level faults.
///
/// Install with [`install`], remove with [`clear`] (use
/// [`FaultGuard`] to make removal panic-safe — injected panics unwind
/// through caller code by design).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every injected decision.
    pub seed: u64,
    /// Sleep each worker for a deterministic 0–200µs at region entry,
    /// derived from `(seed, region, worker)`. Stresses imbalance and
    /// termination without changing results.
    pub delay_workers: bool,
    /// Panic inside this worker's region-entry hook.
    pub panic_worker: Option<usize>,
    /// First region ordinal (1-based, counted from [`install`]) at
    /// which `panic_worker` fires. Lets a test run a few clean regions
    /// before the fault lands.
    pub panic_from_region: u64,
    /// Seed all initial [`crate::stealing::stealing_for`] work into
    /// worker 0's deque so every other worker is forced to steal.
    pub steal_storm: bool,
}

impl FaultPlan {
    /// A plan with no faults enabled, carrying `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            delay_workers: false,
            panic_worker: None,
            panic_from_region: 1,
            steal_storm: false,
        }
    }

    /// Enables deterministic per-worker delays.
    pub fn delay_workers(mut self) -> Self {
        self.delay_workers = true;
        self
    }

    /// Panics `worker` in every region starting from `from_region`
    /// (1-based ordinal counted from [`install`]).
    pub fn panic_worker(mut self, worker: usize, from_region: u64) -> Self {
        self.panic_worker = Some(worker);
        self.panic_from_region = from_region.max(1);
        self
    }

    /// Forces all initial stealing work onto worker 0's deque.
    pub fn steal_storm(mut self) -> Self {
        self.steal_storm = true;
        self
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static REGIONS: AtomicU64 = AtomicU64::new(0);
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

/// Installs `plan` process-wide and resets the region ordinal counter.
///
/// Fault injection is global state: tests that install plans must not
/// run concurrently with each other (serialize them with a mutex or a
/// single `#[test]`).
pub fn install(plan: FaultPlan) {
    let mut guard = PLAN.lock();
    REGIONS.store(0, Ordering::SeqCst);
    *guard = Some(plan);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Removes any installed plan; subsequent regions run fault-free.
pub fn clear() {
    ENABLED.store(false, Ordering::SeqCst);
    *PLAN.lock() = None;
}

/// Whether a fault plan is currently installed.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears the installed plan on drop, even when an injected panic
/// unwinds through the test body.
#[derive(Debug)]
pub struct FaultGuard(());

impl FaultGuard {
    /// Installs `plan` and returns a guard that clears it on drop.
    #[must_use]
    pub fn install(plan: FaultPlan) -> Self {
        install(plan);
        Self(())
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        clear();
    }
}

/// Called by `broadcast` once per top-level region.
#[inline]
pub(crate) fn on_region() {
    if !enabled() {
        return;
    }
    REGIONS.fetch_add(1, Ordering::SeqCst);
}

/// Called once per worker at region entry; applies delays and panics.
#[inline]
pub(crate) fn on_worker_run(worker: usize) {
    if !enabled() {
        return;
    }
    on_worker_run_slow(worker);
}

#[cold]
fn on_worker_run_slow(worker: usize) {
    let plan = match *PLAN.lock() {
        Some(plan) => plan,
        None => return,
    };
    let region = REGIONS.load(Ordering::SeqCst);
    if let Some(target) = plan.panic_worker {
        if worker == target && region >= plan.panic_from_region {
            panic!(
                "injected fault (seed {}): worker {worker} panicked in region {region}",
                plan.seed
            );
        }
    }
    if plan.delay_workers {
        let micros =
            mix(plan.seed ^ region.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ worker as u64) % 200;
        if micros > 0 {
            std::thread::sleep(Duration::from_micros(micros));
        }
    }
}

/// Whether the stealing scheduler should skew all initial work onto
/// one deque.
#[inline]
pub(crate) fn steal_storm() -> bool {
    if !enabled() {
        return false;
    }
    matches!(
        *PLAN.lock(),
        Some(FaultPlan {
            steal_storm: true,
            ..
        })
    )
}

/// SplitMix64 finalizer — decorrelates the (seed, region, worker) mix.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_mixes() {
        assert_eq!(mix(42), mix(42));
        assert_ne!(mix(1), mix(2));
    }

    #[test]
    fn builder_sets_fields() {
        let plan = FaultPlan::new(7)
            .delay_workers()
            .panic_worker(3, 2)
            .steal_storm();
        assert_eq!(plan.seed, 7);
        assert!(plan.delay_workers);
        assert_eq!(plan.panic_worker, Some(3));
        assert_eq!(plan.panic_from_region, 2);
        assert!(plan.steal_storm);
    }

    #[test]
    fn panic_from_region_is_at_least_one() {
        let plan = FaultPlan::new(0).panic_worker(0, 0);
        assert_eq!(plan.panic_from_region, 1);
    }
}

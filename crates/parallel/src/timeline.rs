//! Per-worker timeline spans: who ran what, when, for how long.
//!
//! The pool's counter telemetry ([`crate::telemetry`]) answers "how
//! much" — regions, chunks, steals, busy seconds. This module answers
//! "when": each worker owns a fixed-capacity ring of span slots, and
//! instrumented code records begin/end pairs for parallel regions,
//! engine steps, and pre-processing phases. The result can be exported
//! as Chrome trace-event JSON ([`chrome_trace_json`]) and opened in
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev) to see the
//! paper's push/pull step structure laid out on a per-worker time axis.
//!
//! # Recording model
//!
//! Recording is lock-free and allocation-free on the hot path:
//!
//! * one relaxed atomic load when the timeline is disabled (the same
//!   zero-cost gate contract as the counter telemetry),
//! * when enabled, a span guard captures the start offset; on drop it
//!   claims a slot in the current worker's track with one `fetch_add`
//!   and fills the slot with relaxed stores, publishing with a release
//!   flag.
//!
//! Tracks never wrap: when a track's ring is full, further spans on
//! that worker are counted in [`dropped_spans`] and discarded, so a
//! long run degrades to a truncated timeline instead of a corrupted
//! one.
//!
//! Track assignment uses [`crate::current_worker_index`]; code running
//! outside any parallel region (the driver thread between regions)
//! records onto track 0, which is also the calling thread's worker id
//! inside a region — one thread, one track.
//!
//! # Consistency
//!
//! [`snapshot`], [`chrome_trace_json`] and [`reset`] are meant to run
//! when no instrumented work is in flight (after the parallel joins),
//! exactly like `telemetry::snapshot`. A concurrent snapshot is safe —
//! unpublished slots are simply skipped — it is just not guaranteed
//! complete.

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Spans retained per worker track; later spans are dropped (and
/// counted) once a track is full.
pub const TRACK_CAPACITY: usize = 4096;

/// What a recorded span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One worker's share of a fork-join parallel region.
    Region = 0,
    /// One engine computation step (an iteration of an algorithm
    /// driver); its detail string carries the push/pull direction.
    Step = 1,
    /// A coarse run phase: load, pre-processing, store, ...
    Phase = 2,
}

impl SpanKind {
    /// The category label used in exported traces.
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::Region => "region",
            SpanKind::Step => "step",
            SpanKind::Phase => "phase",
        }
    }

    fn from_u8(v: u8) -> SpanKind {
        match v {
            0 => SpanKind::Region,
            1 => SpanKind::Step,
            _ => SpanKind::Phase,
        }
    }
}

/// One slot of a worker track. A slot is written by exactly one span
/// guard (the `fetch_add` claim hands out each index once) and becomes
/// visible to readers only after the release store to `ready`.
struct Slot {
    ready: AtomicBool,
    kind: AtomicU8,
    name_ptr: AtomicPtr<u8>,
    name_len: AtomicUsize,
    detail_ptr: AtomicPtr<u8>,
    detail_len: AtomicUsize,
    start_nanos: AtomicU64,
    duration_nanos: AtomicU64,
}

impl Slot {
    const fn empty() -> Self {
        Self {
            ready: AtomicBool::new(false),
            kind: AtomicU8::new(0),
            name_ptr: AtomicPtr::new(std::ptr::null_mut()),
            name_len: AtomicUsize::new(0),
            detail_ptr: AtomicPtr::new(std::ptr::null_mut()),
            detail_len: AtomicUsize::new(0),
            start_nanos: AtomicU64::new(0),
            duration_nanos: AtomicU64::new(0),
        }
    }
}

struct Track {
    claimed: AtomicUsize,
    slots: Box<[Slot]>,
}

struct Timeline {
    /// All span start offsets are measured from this instant.
    origin: Instant,
    tracks: Box<[Track]>,
    dropped: AtomicU64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static TIMELINE: OnceLock<Timeline> = OnceLock::new();

fn timeline() -> &'static Timeline {
    TIMELINE.get_or_init(|| {
        let workers = crate::current_num_threads();
        Timeline {
            origin: Instant::now(),
            tracks: (0..workers)
                .map(|_| Track {
                    claimed: AtomicUsize::new(0),
                    slots: (0..TRACK_CAPACITY).map(|_| Slot::empty()).collect(),
                })
                .collect(),
            dropped: AtomicU64::new(0),
        }
    })
}

/// Turns span recording on. Off by default.
///
/// The first call allocates one track per global-pool worker, so the
/// memory cost is paid only by runs that ask for a timeline. Enable
/// *after* any `EGRAPH_THREADS` handling but before the instrumented
/// run; the track count is fixed at this point.
pub fn enable() {
    timeline();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns span recording off (recorded spans are kept).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether spans are currently being recorded.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Discards every recorded span. Call between runs, with no
/// instrumented work in flight.
pub fn reset() {
    let Some(tl) = TIMELINE.get() else { return };
    for track in &tl.tracks {
        let claimed = track.claimed.swap(0, Ordering::Relaxed);
        for slot in track.slots.iter().take(claimed.min(TRACK_CAPACITY)) {
            slot.ready.store(false, Ordering::Relaxed);
        }
    }
    tl.dropped.store(0, Ordering::Relaxed);
}

/// Spans discarded because their worker's track was full.
pub fn dropped_spans() -> u64 {
    TIMELINE
        .get()
        .map(|tl| tl.dropped.load(Ordering::Relaxed))
        .unwrap_or(0)
}

/// Starts a span. Returns a guard that records the span into the
/// current worker's track when dropped; a disabled timeline hands out
/// an inert guard at the cost of one relaxed load.
///
/// `name` labels the span ("region", "pagerank_step", "load", ...);
/// `detail` carries an optional qualifier — the engine's push/pull
/// direction for steps — and may be empty.
#[inline]
pub fn span(kind: SpanKind, name: &'static str, detail: &'static str) -> TimelineSpan {
    if !enabled() {
        return TimelineSpan(None);
    }
    let tl = timeline();
    TimelineSpan(Some(ActiveSpan {
        kind,
        name,
        detail,
        start_nanos: tl.origin.elapsed().as_nanos() as u64,
        begun: Instant::now(),
    }))
}

struct ActiveSpan {
    kind: SpanKind,
    name: &'static str,
    detail: &'static str,
    start_nanos: u64,
    begun: Instant,
}

/// Guard returned by [`span`]; records the span on drop.
pub struct TimelineSpan(Option<ActiveSpan>);

impl Drop for TimelineSpan {
    fn drop(&mut self) {
        let Some(span) = self.0.take() else { return };
        let duration_nanos = span.begun.elapsed().as_nanos() as u64;
        let Some(tl) = TIMELINE.get() else { return };
        let worker = crate::current_worker_index().unwrap_or(0);
        let track = &tl.tracks[worker.min(tl.tracks.len() - 1)];
        let index = track.claimed.fetch_add(1, Ordering::Relaxed);
        if index >= TRACK_CAPACITY {
            tl.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let slot = &track.slots[index];
        slot.kind.store(span.kind as u8, Ordering::Relaxed);
        slot.name_ptr
            .store(span.name.as_ptr().cast_mut(), Ordering::Relaxed);
        slot.name_len.store(span.name.len(), Ordering::Relaxed);
        slot.detail_ptr
            .store(span.detail.as_ptr().cast_mut(), Ordering::Relaxed);
        slot.detail_len.store(span.detail.len(), Ordering::Relaxed);
        slot.start_nanos.store(span.start_nanos, Ordering::Relaxed);
        slot.duration_nanos.store(duration_nanos, Ordering::Relaxed);
        // Publish: pairs with the acquire load in `snapshot`.
        slot.ready.store(true, Ordering::Release);
    }
}

/// One recorded span, resolved back to its strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Track (worker id) the span was recorded on.
    pub worker: usize,
    /// What the span covers.
    pub kind: SpanKind,
    /// Span label.
    pub name: &'static str,
    /// Optional qualifier (push/pull direction for steps); may be empty.
    pub detail: &'static str,
    /// Start offset from the timeline origin, in nanoseconds.
    pub start_nanos: u64,
    /// Span duration in nanoseconds.
    pub duration_nanos: u64,
}

/// Copies out every published span, ordered by worker then start time.
pub fn snapshot() -> Vec<SpanRecord> {
    let Some(tl) = TIMELINE.get() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (worker, track) in tl.tracks.iter().enumerate() {
        let claimed = track.claimed.load(Ordering::Relaxed).min(TRACK_CAPACITY);
        for slot in track.slots.iter().take(claimed) {
            if !slot.ready.load(Ordering::Acquire) {
                continue;
            }
            let name = load_str(&slot.name_ptr, &slot.name_len);
            let detail = load_str(&slot.detail_ptr, &slot.detail_len);
            out.push(SpanRecord {
                worker,
                kind: SpanKind::from_u8(slot.kind.load(Ordering::Relaxed)),
                name,
                detail,
                start_nanos: slot.start_nanos.load(Ordering::Relaxed),
                duration_nanos: slot.duration_nanos.load(Ordering::Relaxed),
            });
        }
    }
    out.sort_by_key(|s| (s.worker, s.start_nanos));
    out
}

/// Reassembles the `&'static str` a span guard stored into a slot.
fn load_str(ptr: &AtomicPtr<u8>, len: &AtomicUsize) -> &'static str {
    let ptr = ptr.load(Ordering::Relaxed);
    if ptr.is_null() {
        return "";
    }
    let len = len.load(Ordering::Relaxed);
    // SAFETY: ptr/len were stored together from one `&'static str` by
    // the slot's unique writer (each claim index is handed out once),
    // and the acquire load of `ready` ordered those stores before these
    // loads. The pointee is 'static, so the reference never dangles.
    let bytes = unsafe { std::slice::from_raw_parts(ptr, len) };
    std::str::from_utf8(bytes).unwrap_or("")
}

/// Renders the recorded spans as a Chrome trace-event JSON document
/// (the `{"traceEvents": [...]}` format understood by `chrome://tracing`
/// and Perfetto): one `ph:"X"` complete event per span on its worker's
/// `tid`, preceded by `ph:"M"` thread-name metadata so tracks are
/// labelled "worker 0", "worker 1", ... Step spans carry their
/// push/pull direction under `args`.
pub fn chrome_trace_json() -> String {
    let spans = snapshot();
    let workers = TIMELINE.get().map(|tl| tl.tracks.len()).unwrap_or(0);
    let mut out = String::with_capacity(256 + spans.len() * 160);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for worker in 0..workers {
        push_event_sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{worker},\
             \"args\":{{\"name\":\"worker {worker}\"}}}}"
        ));
    }
    for span in &spans {
        push_event_sep(&mut out, &mut first);
        let ts = span.start_nanos as f64 / 1e3;
        let dur = span.duration_nanos as f64 / 1e3;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{ts:.3},\"dur\":{dur:.3}",
            escape(span.name),
            span.kind.category(),
            span.worker,
        ));
        if !span.detail.is_empty() {
            let key = match span.kind {
                SpanKind::Step => "direction",
                _ => "detail",
            };
            out.push_str(&format!(
                ",\"args\":{{\"{key}\":\"{}\"}}",
                escape(span.detail)
            ));
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

fn push_event_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

/// Minimal JSON string escaping; span labels are static identifiers,
/// but a label containing a quote must not corrupt the document.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_inert() {
        // The timeline gate is off unless a test below enabled it; an
        // inert guard records nothing either way because this test
        // never runs inside a region with the gate on.
        let guard = TimelineSpan(None);
        drop(guard);
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn span_kind_round_trips() {
        for kind in [SpanKind::Region, SpanKind::Step, SpanKind::Phase] {
            assert_eq!(SpanKind::from_u8(kind as u8), kind);
        }
        assert_eq!(SpanKind::Region.category(), "region");
        assert_eq!(SpanKind::Step.category(), "step");
        assert_eq!(SpanKind::Phase.category(), "phase");
    }
}

//! A dynamic task pool for irregular, recursive parallel work.
//!
//! The recursive MSD radix sort of §3.2 produces an unpredictable tree
//! of bucket-sorting tasks; this module runs such workloads by letting
//! every task spawn follow-up tasks into a shared [`crossbeam`] injector
//! that all pool workers drain — the work-stealing equivalent of Cilk's
//! `spawn`.

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::deque::{Injector, Steal};

use crate::pool::broadcast_current;

/// Handle through which a running task submits follow-up tasks.
pub struct Spawner<'a, T> {
    queue: &'a Injector<T>,
    in_flight: &'a AtomicUsize,
}

impl<T> Spawner<'_, T> {
    /// Enqueues `task` for execution by any worker.
    #[inline]
    pub fn spawn(&self, task: T) {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        self.queue.push(task);
    }
}

/// Runs `initial` tasks — and every task they transitively spawn — to
/// completion on the calling thread's active pool (the global pool
/// unless overridden with [`crate::pool::with_pool`]).
///
/// `f` is invoked once per task and may spawn additional tasks through
/// the provided [`Spawner`]. The call returns once no task is left
/// running or queued.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// // Sum 0..16 by recursive halving.
/// let total = AtomicU64::new(0);
/// egraph_parallel::dynamic_tasks(vec![(0u64, 16u64)], |(lo, hi), spawner| {
///     if hi - lo <= 2 {
///         total.fetch_add((lo..hi).sum::<u64>(), Ordering::Relaxed);
///     } else {
///         let mid = (lo + hi) / 2;
///         spawner.spawn((lo, mid));
///         spawner.spawn((mid, hi));
///     }
/// });
/// assert_eq!(total.load(Ordering::Relaxed), 120);
/// ```
pub fn dynamic_tasks<T, F>(initial: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T, &Spawner<'_, T>) + Sync,
{
    if initial.is_empty() {
        return;
    }
    let queue = Injector::new();
    let in_flight = AtomicUsize::new(initial.len());
    for task in initial {
        queue.push(task);
    }
    broadcast_current(&|_worker| {
        let spawner = Spawner {
            queue: &queue,
            in_flight: &in_flight,
        };
        loop {
            match queue.steal() {
                Steal::Success(task) => {
                    crate::telemetry::on_task();
                    f(task, &spawner);
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                }
                Steal::Retry => continue,
                Steal::Empty => {
                    if in_flight.load(Ordering::SeqCst) == 0 {
                        break;
                    }
                    std::hint::spin_loop();
                    std::thread::yield_now();
                }
            }
        }
    });
    debug_assert_eq!(in_flight.load(Ordering::SeqCst), 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn flat_tasks_all_run() {
        let count = AtomicU64::new(0);
        dynamic_tasks((0..1000).collect::<Vec<u32>>(), |_t, _s| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn empty_initial_returns_immediately() {
        dynamic_tasks(Vec::<u32>::new(), |_, _| panic!("no tasks expected"));
    }

    #[test]
    fn recursive_spawns_complete() {
        // Count the leaves of a binary recursion of depth 10.
        let leaves = AtomicU64::new(0);
        dynamic_tasks(vec![0u32], |depth, spawner| {
            if depth == 10 {
                leaves.fetch_add(1, Ordering::Relaxed);
            } else {
                spawner.spawn(depth + 1);
                spawner.spawn(depth + 1);
            }
        });
        assert_eq!(leaves.load(Ordering::Relaxed), 1024);
    }

    #[test]
    fn skewed_task_sizes_balance() {
        // One huge task spawning many small ones.
        let sum = AtomicU64::new(0);
        dynamic_tasks(vec![(0u64, 100_000u64)], |(lo, hi), spawner| {
            if hi - lo <= 1024 {
                sum.fetch_add((lo..hi).sum::<u64>(), Ordering::Relaxed);
            } else {
                let mid = lo + (hi - lo) / 8;
                spawner.spawn((lo, mid));
                spawner.spawn((mid, hi));
            }
        });
        let expected: u64 = (0..100_000u64).sum();
        assert_eq!(sum.load(Ordering::Relaxed), expected);
    }
}

//! Worker-local accumulation: per-worker buffers that replace shared,
//! lock-protected collections on hot paths.
//!
//! The paper's end-to-end lens makes per-iteration frontier collection
//! and pre-processing bucketing first-class costs, yet funnelling those
//! through one `Mutex<Vec>` (or one atomic cursor per key) serializes
//! every worker on a shared cache line. [`WorkerLocal<T>`] gives each
//! pool worker a private, cache-line-padded slot keyed by the
//! [`WorkerId`](crate::WorkerId) of the running region, so the common
//! case — a worker appending to its own buffer — touches no shared
//! state at all. [`parallel_collect`] then concatenates the per-worker
//! vectors into a single allocation with a size prefix sum plus a
//! parallel copy, the frontier-collection scheme of Ligra/GBBS.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::pool::{broadcast_current, current_num_threads, current_worker_index};

/// One per-worker slot, padded to its own cache line pair so that
/// neighboring workers' buffer headers never false-share.
#[repr(align(128))]
struct Slot<T> {
    /// Exclusivity flag: set while a [`WorkerGuard`] is live. Turns any
    /// accidental aliasing (re-entrant borrows, foreign threads mapping
    /// to the same slot) into a panic instead of a data race.
    busy: AtomicBool,
    value: UnsafeCell<T>,
}

/// A value replicated once per worker of the global pool.
///
/// Each worker accesses its own replica through [`WorkerLocal::with`]
/// or [`WorkerLocal::borrow`]; threads outside any parallel region map
/// to slot 0. Access is exclusive per slot and enforced at runtime, so
/// the type is safe even under misuse (a conflicting borrow panics).
///
/// # Examples
///
/// ```
/// use egraph_parallel::{parallel_for, WorkerLocal};
///
/// let buffers: WorkerLocal<Vec<usize>> = WorkerLocal::new(Vec::new);
/// parallel_for(0..1000, 64, |r| {
///     let mut buf = buffers.borrow();
///     buf.extend(r);
/// });
/// let all = egraph_parallel::parallel_collect(buffers);
/// assert_eq!(all.len(), 1000);
/// ```
pub struct WorkerLocal<T> {
    slots: Box<[Slot<T>]>,
}

// SAFETY: every access to a slot's `value` goes through the `busy`
// acquire/release protocol below, which guarantees at most one live
// `&mut T` per slot at any time; `T: Send` lets that exclusive access
// hop between threads across regions.
unsafe impl<T: Send> Sync for WorkerLocal<T> {}
// SAFETY: same protocol; ownership transfer of the whole structure is
// plain `Send` of its `T`s.
unsafe impl<T: Send> Send for WorkerLocal<T> {}

impl<T> WorkerLocal<T> {
    /// Creates one slot per worker of the calling thread's active pool
    /// (the global pool unless overridden by [`crate::pool::with_pool`]
    /// or the enclosing region), each initialized by `init`.
    pub fn new(mut init: impl FnMut() -> T) -> Self {
        Self::with_slots(current_num_threads(), &mut init)
    }

    /// Creates `n` slots (clamped to at least 1).
    fn with_slots(n: usize, init: &mut impl FnMut() -> T) -> Self {
        let slots = (0..n.max(1))
            .map(|_| Slot {
                busy: AtomicBool::new(false),
                value: UnsafeCell::new(init()),
            })
            .collect();
        Self { slots }
    }

    /// Number of per-worker slots.
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Borrows the calling worker's slot for the lifetime of the guard.
    ///
    /// Inside a parallel region this is the slot of the executing
    /// [`WorkerId`](crate::WorkerId); outside any region it is slot 0.
    /// Holding the guard across the body of a chunk loop amortizes the
    /// (uncontended) acquisition over many pushes.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already borrowed — a re-entrant borrow on
    /// the same worker, or a thread outside the global pool racing the
    /// region. Both indicate misuse; panicking keeps the type sound.
    #[inline]
    pub fn borrow(&self) -> WorkerGuard<'_, T> {
        let index = current_worker_index()
            .unwrap_or(0)
            .min(self.slots.len() - 1);
        let slot = &self.slots[index];
        assert!(
            slot.busy
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok(),
            "WorkerLocal slot {index} is already borrowed (re-entrant or cross-thread access)"
        );
        WorkerGuard { slot }
    }

    /// Runs `f` with exclusive access to the calling worker's value.
    #[inline]
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = self.borrow();
        f(&mut guard)
    }

    /// Consumes the structure, returning every slot's value in worker
    /// order (slot 0 first).
    pub fn into_values(self) -> Vec<T> {
        self.slots
            .into_vec()
            .into_iter()
            .map(|slot| slot.value.into_inner())
            .collect()
    }

    /// Iterates over all slot values. Exclusive access to `self` makes
    /// this race-free without touching the busy flags.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut().map(|slot| slot.value.get_mut())
    }
}

impl<T> std::fmt::Debug for WorkerLocal<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerLocal")
            .field("num_slots", &self.slots.len())
            .finish()
    }
}

/// Exclusive access to one worker's slot; releases on drop.
pub struct WorkerGuard<'a, T> {
    slot: &'a Slot<T>,
}

impl<T> Deref for WorkerGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: the busy flag was acquired in `borrow`, so this guard
        // is the only live access to the slot.
        unsafe { &*self.slot.value.get() }
    }
}

impl<T> DerefMut for WorkerGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: same exclusivity as `deref`.
        unsafe { &mut *self.slot.value.get() }
    }
}

impl<T> Drop for WorkerGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.slot.busy.store(false, Ordering::Release);
    }
}

/// Concatenates per-worker vectors into one allocation: a size prefix
/// sum assigns each buffer a disjoint output range, then all workers
/// copy buffers in parallel. No locks, no atomics on the data path.
///
/// Buffer order is preserved (slot 0's elements first), so callers that
/// fill slots from statically partitioned input keep a deterministic
/// result.
pub fn parallel_collect<T: Send>(locals: WorkerLocal<Vec<T>>) -> Vec<T> {
    let mut buffers = locals.into_values();
    let mut offsets = Vec::with_capacity(buffers.len());
    let mut total = 0usize;
    for buf in &buffers {
        offsets.push(total);
        total += buf.len();
    }
    if total == 0 {
        return Vec::new();
    }
    // Fast path: exactly one non-empty buffer (serial runs, single
    // worker) — reuse its allocation instead of copying.
    if buffers.iter().filter(|b| !b.is_empty()).count() == 1 {
        let index = buffers.iter().position(|b| !b.is_empty()).unwrap();
        return std::mem::take(&mut buffers[index]);
    }

    let mut out: Vec<T> = Vec::with_capacity(total);
    {
        let parts: Vec<Part<T>> = buffers
            .iter()
            .zip(&offsets)
            .map(|(buf, &offset)| Part {
                src: buf.as_ptr(),
                len: buf.len(),
                offset,
            })
            .collect();
        let out_ptr = OutPtr(out.as_mut_ptr());
        let cursor = AtomicUsize::new(0);
        let parts = &parts;
        // Buffers are handed out by a shared cursor rather than by
        // worker id so a nested (inline-serialized) region still copies
        // every buffer.
        broadcast_current(&|_worker| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= parts.len() {
                break;
            }
            let part = &parts[i];
            // SAFETY: buffer `i` is copied exactly once into the range
            // `offset..offset + len`, and those ranges are disjoint by
            // the prefix sum; the reservation above covers `total`
            // elements and the source vectors outlive the region.
            unsafe {
                std::ptr::copy_nonoverlapping(part.src, out_ptr.get().add(part.offset), part.len);
            }
        });
    }
    for buf in &mut buffers {
        // SAFETY: the elements were moved (bit-copied) into `out`;
        // truncating the length to zero forgets them in the source so
        // they drop exactly once, via `out`.
        unsafe { buf.set_len(0) };
    }
    // SAFETY: all `total` slots were initialized by the disjoint copies.
    unsafe { out.set_len(total) };
    out
}

/// A worker-local buffer whose contents are grouped into *chunks*
/// carrying caller-supplied order keys.
///
/// Dynamically scheduled regions hand chunks to whichever worker is
/// free, so plain slot-order concatenation ([`parallel_collect`]) would
/// make the output order depend on the schedule. Callers that tag each
/// chunk with a deterministic key (e.g. the chunk's start index) get
/// the schedule back out of the result: [`parallel_collect_ordered`]
/// reassembles chunks by key, producing the exact sequence a serial
/// execution would have — at any thread count.
#[derive(Debug)]
pub struct OrderedBuf<T> {
    items: Vec<T>,
    /// `(order, begin)` per chunk, in append order; a chunk extends to
    /// the next chunk's `begin` (or the end of `items`).
    chunks: Vec<(u64, usize)>,
}

impl<T> OrderedBuf<T> {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self {
            items: Vec::new(),
            chunks: Vec::new(),
        }
    }

    /// Starts a new chunk: subsequent pushes belong to it. Items pushed
    /// before any `begin_chunk` call collate with order key 0.
    #[inline]
    pub fn begin_chunk(&mut self, order: u64) {
        self.chunks.push((order, self.items.len()));
    }

    /// Starts — or continues — a trailing `u64::MAX`-keyed chunk for
    /// items without a meaningful position (they collate after every
    /// keyed chunk). Consecutive unordered appends share one chunk.
    #[inline]
    pub fn begin_unordered_chunk(&mut self) {
        if !matches!(self.chunks.last(), Some(&(u64::MAX, _))) {
            self.chunks.push((u64::MAX, self.items.len()));
        }
    }

    /// Appends one item to the current chunk.
    #[inline]
    pub fn push(&mut self, item: T) {
        self.items.push(item);
    }

    /// Appends a batch to the current chunk.
    pub fn extend_from_slice(&mut self, batch: &[T])
    where
        T: Clone,
    {
        self.items.extend_from_slice(batch);
    }

    /// Number of buffered items (across all chunks).
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer holds no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<T> Default for OrderedBuf<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Concatenates per-worker [`OrderedBuf`]s into one allocation with
/// chunks sorted by `(order key, slot, position)` — the deterministic
/// sibling of [`parallel_collect`]. With unique order keys the result
/// is independent of how chunks were scheduled across workers.
pub fn parallel_collect_ordered<T: Send>(locals: WorkerLocal<OrderedBuf<T>>) -> Vec<T> {
    let mut buffers = locals.into_values();
    let total: usize = buffers.iter().map(|b| b.items.len()).sum();
    if total == 0 {
        return Vec::new();
    }
    // Chunk descriptors: (order, slot, begin, end).
    let mut descs: Vec<(u64, u32, usize, usize)> = Vec::new();
    for (slot, buf) in buffers.iter().enumerate() {
        if buf.items.is_empty() {
            continue;
        }
        let first_begin = buf.chunks.first().map_or(buf.items.len(), |c| c.1);
        if first_begin > 0 {
            descs.push((0, slot as u32, 0, first_begin));
        }
        for (i, &(order, begin)) in buf.chunks.iter().enumerate() {
            let end = buf.chunks.get(i + 1).map_or(buf.items.len(), |c| c.1);
            if end > begin {
                descs.push((order, slot as u32, begin, end));
            }
        }
    }
    let in_order = descs.windows(2).all(|w| w[0] <= w[1]);
    descs.sort_unstable();
    // Fast path: one non-empty buffer whose chunks already sit in key
    // order (serial runs, single worker) — reuse its allocation.
    if in_order && buffers.iter().filter(|b| !b.is_empty()).count() == 1 {
        let index = buffers.iter().position(|b| !b.is_empty()).unwrap();
        return std::mem::take(&mut buffers[index]).items;
    }

    let mut out: Vec<T> = Vec::with_capacity(total);
    {
        let mut offset = 0usize;
        let parts: Vec<Part<T>> = descs
            .iter()
            .map(|&(_, slot, begin, end)| {
                let part = Part {
                    // SAFETY: `begin <= items.len()` by construction.
                    src: unsafe { buffers[slot as usize].items.as_ptr().add(begin) },
                    len: end - begin,
                    offset,
                };
                offset += end - begin;
                part
            })
            .collect();
        let out_ptr = OutPtr(out.as_mut_ptr());
        let cursor = AtomicUsize::new(0);
        let parts = &parts;
        // Shared-cursor handout (not worker-id indexing) so a nested,
        // inline-serialized region still copies every part.
        broadcast_current(&|_worker| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= parts.len() {
                break;
            }
            let part = &parts[i];
            // SAFETY: each part is claimed once; output ranges are
            // disjoint by the running-offset assignment, which covers
            // exactly `total` reserved elements.
            unsafe {
                std::ptr::copy_nonoverlapping(part.src, out_ptr.get().add(part.offset), part.len);
            }
        });
    }
    for buf in &mut buffers {
        // SAFETY: the elements were moved (bit-copied) into `out`;
        // zeroing the length forgets them in the source so they drop
        // exactly once, via `out`.
        unsafe { buf.items.set_len(0) };
    }
    // SAFETY: the parts' output ranges tile `0..total`.
    unsafe { out.set_len(total) };
    out
}

/// One source buffer of a `parallel_collect`: where it starts, how many
/// elements it holds, and its offset in the output.
struct Part<T> {
    src: *const T,
    len: usize,
    offset: usize,
}

// SAFETY: the source ranges are only read (bit-copied) and each part is
// claimed by exactly one worker via the shared cursor.
unsafe impl<T: Send> Send for Part<T> {}
// SAFETY: same single-claimant argument.
unsafe impl<T: Send> Sync for Part<T> {}

/// Raw output pointer that may cross thread boundaries (writes are to
/// disjoint ranges, see `parallel_collect`).
struct OutPtr<T>(*mut T);

impl<T> OutPtr<T> {
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: only dereferenced for disjoint per-buffer ranges.
unsafe impl<T: Send> Send for OutPtr<T> {}
// SAFETY: same disjointness argument.
unsafe impl<T: Send> Sync for OutPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel_for;

    #[test]
    fn serial_access_uses_slot_zero() {
        let local: WorkerLocal<u32> = WorkerLocal::new(|| 0);
        local.with(|v| *v += 5);
        local.with(|v| *v += 2);
        let values = local.into_values();
        assert_eq!(values[0], 7);
        assert!(values[1..].iter().all(|&v| v == 0));
    }

    #[test]
    #[should_panic(expected = "already borrowed")]
    fn reentrant_borrow_panics() {
        let local: WorkerLocal<u32> = WorkerLocal::new(|| 0);
        let _outer = local.borrow();
        let _inner = local.borrow();
    }

    #[test]
    fn parallel_collect_every_element_exactly_once() {
        let n = 100_000usize;
        let locals: WorkerLocal<Vec<usize>> = WorkerLocal::new(Vec::new);
        parallel_for(0..n, 97, |r| {
            let mut buf = locals.borrow();
            buf.extend(r);
        });
        let mut all = parallel_collect(locals);
        assert_eq!(all.len(), n);
        all.sort_unstable();
        for (i, &x) in all.iter().enumerate() {
            assert_eq!(x, i);
        }
    }

    #[test]
    fn parallel_collect_empty() {
        let locals: WorkerLocal<Vec<u64>> = WorkerLocal::new(Vec::new);
        assert!(parallel_collect(locals).is_empty());
    }

    #[test]
    fn parallel_collect_preserves_slot_order() {
        let mut locals: WorkerLocal<Vec<u32>> = WorkerLocal::new(Vec::new);
        for (i, buf) in locals.iter_mut().enumerate() {
            buf.extend([i as u32 * 2, i as u32 * 2 + 1]);
        }
        let n = locals.num_slots();
        let all = parallel_collect(locals);
        let expected: Vec<u32> = (0..2 * n as u32).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn parallel_collect_drops_non_copy_values_once() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Clone)]
        struct Tracked(#[allow(dead_code)] Box<u64>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let locals: WorkerLocal<Vec<Tracked>> = WorkerLocal::new(Vec::new);
        parallel_for(0..1000, 64, |r| {
            let mut buf = locals.borrow();
            for i in r {
                buf.push(Tracked(Box::new(i as u64)));
            }
        });
        let all = parallel_collect(locals);
        assert_eq!(all.len(), 1000);
        drop(all);
        assert_eq!(DROPS.load(Ordering::SeqCst), 1000);
    }

    #[test]
    fn ordered_collect_reassembles_serial_order() {
        // Chunks land on arbitrary workers; keys must reassemble the
        // serial sequence regardless.
        let n = 50_000usize;
        let locals: WorkerLocal<OrderedBuf<usize>> = WorkerLocal::new(OrderedBuf::new);
        parallel_for(0..n, 137, |r| {
            let mut buf = locals.borrow();
            buf.begin_chunk(r.start as u64);
            for i in r {
                if i % 5 == 0 {
                    buf.push(i);
                }
            }
        });
        let all = parallel_collect_ordered(locals);
        let expected: Vec<usize> = (0..n).filter(|i| i % 5 == 0).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn ordered_collect_sorts_scrambled_slots() {
        // Hand-place chunks on the "wrong" slots in the "wrong" local
        // order; collection must still honor the keys.
        let mut locals: WorkerLocal<OrderedBuf<u32>> = WorkerLocal::new(OrderedBuf::new);
        let n = locals.num_slots();
        for (slot, buf) in locals.iter_mut().enumerate() {
            // Descending keys within each slot, interleaved across slots.
            for k in (0..4).rev() {
                buf.begin_chunk((k * n + slot) as u64);
                buf.push((k * n + slot) as u32);
            }
        }
        let all = parallel_collect_ordered(locals);
        let expected: Vec<u32> = (0..4 * n as u32).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn ordered_collect_empty_and_prefix_items() {
        let locals: WorkerLocal<OrderedBuf<u32>> = WorkerLocal::new(OrderedBuf::new);
        assert!(parallel_collect_ordered(locals).is_empty());

        // Items pushed before any begin_chunk collate with key 0.
        let locals: WorkerLocal<OrderedBuf<u32>> = WorkerLocal::new(OrderedBuf::new);
        locals.with(|buf| {
            buf.push(1);
            buf.begin_chunk(7);
            buf.push(2);
        });
        assert_eq!(parallel_collect_ordered(locals), vec![1, 2]);
    }

    #[test]
    fn guard_amortizes_across_chunk() {
        // The guard pattern used by the engine drivers: one borrow per
        // chunk, many pushes.
        let locals: WorkerLocal<Vec<u32>> = WorkerLocal::new(Vec::new);
        parallel_for(0..10_000, 256, |r| {
            let mut buf = locals.borrow();
            for i in r {
                if i % 3 == 0 {
                    buf.push(i as u32);
                }
            }
        });
        let mut all = parallel_collect(locals);
        all.sort_unstable();
        let expected: Vec<u32> = (0..10_000).filter(|i| i % 3 == 0).collect();
        assert_eq!(all, expected);
    }
}

//! Atomic floating-point cells.
//!
//! PageRank, SpMV and ALS accumulate `f32`/`f64` contributions from many
//! threads. Rust's standard library has no atomic floats, so these
//! wrappers store the bit pattern in an atomic integer and implement
//! read-modify-write operations with compare-exchange loops — the
//! "atomics" synchronization strategy the engine offers as an
//! alternative to the paper's per-vertex locks.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

macro_rules! atomic_float {
    ($name:ident, $float:ty, $atomic:ty, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Default)]
        pub struct $name {
            bits: $atomic,
        }

        impl $name {
            /// Creates a new cell holding `value`.
            #[inline]
            pub fn new(value: $float) -> Self {
                Self {
                    bits: <$atomic>::new(value.to_bits()),
                }
            }

            /// Returns the current value.
            #[inline]
            pub fn load(&self, order: Ordering) -> $float {
                <$float>::from_bits(self.bits.load(order))
            }

            /// Stores `value`.
            #[inline]
            pub fn store(&self, value: $float, order: Ordering) {
                self.bits.store(value.to_bits(), order);
            }

            /// Atomically adds `delta` and returns the previous value.
            ///
            /// Implemented as a compare-exchange loop; under contention
            /// it retries until the update lands.
            #[inline]
            pub fn fetch_add(&self, delta: $float, order: Ordering) -> $float {
                let mut current = self.bits.load(Ordering::Relaxed);
                loop {
                    let new = (<$float>::from_bits(current) + delta).to_bits();
                    match self
                        .bits
                        .compare_exchange_weak(current, new, order, Ordering::Relaxed)
                    {
                        Ok(prev) => return <$float>::from_bits(prev),
                        Err(observed) => current = observed,
                    }
                }
            }

            /// Atomically lowers the cell to `min(current, value)` and
            /// returns whether the stored value changed.
            ///
            /// Used by SSSP's relaxations, where a vertex distance only
            /// ever decreases.
            #[inline]
            pub fn fetch_min(&self, value: $float, order: Ordering) -> bool {
                let mut current = self.bits.load(Ordering::Relaxed);
                loop {
                    if <$float>::from_bits(current) <= value {
                        return false;
                    }
                    match self.bits.compare_exchange_weak(
                        current,
                        value.to_bits(),
                        order,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return true,
                        Err(observed) => current = observed,
                    }
                }
            }
        }
    };
}

atomic_float!(
    AtomicF32,
    f32,
    AtomicU32,
    "An `f32` that can be updated atomically from many threads."
);
atomic_float!(
    AtomicF64,
    f64,
    AtomicU64,
    "An `f64` that can be updated atomically from many threads."
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel_for;

    #[test]
    fn load_store_roundtrip() {
        let a = AtomicF32::new(1.5);
        assert_eq!(a.load(Ordering::SeqCst), 1.5);
        a.store(-2.25, Ordering::SeqCst);
        assert_eq!(a.load(Ordering::SeqCst), -2.25);
    }

    #[test]
    fn concurrent_fetch_add_is_exact_for_representable_sums() {
        // 0.25 sums exactly in f64; concurrency must not lose updates.
        let a = AtomicF64::new(0.0);
        parallel_for(0..10_000, 64, |r| {
            for _ in r {
                a.fetch_add(0.25, Ordering::Relaxed);
            }
        });
        assert_eq!(a.load(Ordering::SeqCst), 2500.0);
    }

    #[test]
    fn fetch_min_keeps_minimum() {
        let a = AtomicF32::new(f32::INFINITY);
        assert!(a.fetch_min(10.0, Ordering::Relaxed));
        assert!(!a.fetch_min(11.0, Ordering::Relaxed));
        assert!(a.fetch_min(3.0, Ordering::Relaxed));
        assert_eq!(a.load(Ordering::SeqCst), 3.0);
    }

    #[test]
    fn concurrent_fetch_min_converges() {
        let a = AtomicF64::new(f64::INFINITY);
        parallel_for(0..10_000, 64, |r| {
            for i in r {
                a.fetch_min(i as f64, Ordering::Relaxed);
            }
        });
        assert_eq!(a.load(Ordering::SeqCst), 0.0);
    }

    #[test]
    fn fetch_add_returns_previous() {
        let a = AtomicF32::new(1.0);
        assert_eq!(a.fetch_add(2.0, Ordering::SeqCst), 1.0);
        assert_eq!(a.load(Ordering::SeqCst), 3.0);
    }

    #[test]
    fn default_is_zero() {
        let a = AtomicF64::default();
        assert_eq!(a.load(Ordering::SeqCst), 0.0);
    }
}

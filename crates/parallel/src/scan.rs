//! Parallel prefix sums.
//!
//! Prefix sums convert per-vertex counts into CSR offsets and per-bucket
//! histograms into scatter offsets; both the count-sort and radix-sort
//! pre-processing paths of the paper depend on them.

use crate::ops::{for_each_chunk_mut, parallel_for};

/// Element types the scans operate on.
pub trait ScanItem: Copy + Send + Sync {
    /// The additive identity.
    fn zero() -> Self;
    /// Wrapping-free addition; overflow is a caller bug (counts fit the
    /// type by construction).
    fn add(self, other: Self) -> Self;
}

macro_rules! impl_scan_item {
    ($($t:ty),*) => {$(
        impl ScanItem for $t {
            #[inline]
            fn zero() -> Self { 0 }
            #[inline]
            fn add(self, other: Self) -> Self { self + other }
        }
    )*};
}

impl_scan_item!(u32, u64, usize);

const SCAN_BLOCK: usize = 1 << 15;

/// In-place exclusive prefix sum; returns the total of all elements.
///
/// After the call, `data[i]` holds the sum of the original
/// `data[..i]`.
///
/// # Examples
///
/// ```
/// let mut v = vec![3u64, 1, 4, 1, 5];
/// let total = egraph_parallel::exclusive_prefix_sum(&mut v);
/// assert_eq!(total, 14);
/// assert_eq!(v, vec![0, 3, 4, 8, 9]);
/// ```
pub fn exclusive_prefix_sum<T: ScanItem>(data: &mut [T]) -> T {
    if data.len() < 2 * SCAN_BLOCK {
        return exclusive_scan_serial(data);
    }
    // Phase 1: per-block totals.
    let num_blocks = data.len().div_ceil(SCAN_BLOCK);
    let mut block_totals = vec![T::zero(); num_blocks];
    {
        let totals_ptr = SyncSlice(block_totals.as_mut_ptr());
        parallel_for(0..num_blocks, 1, |blocks| {
            for b in blocks {
                let start = b * SCAN_BLOCK;
                let end = data.len().min(start + SCAN_BLOCK);
                let mut sum = T::zero();
                for x in &data[start..end] {
                    sum = sum.add(*x);
                }
                // SAFETY: each block index `b` is visited exactly once,
                // so writes to `block_totals[b]` never alias.
                unsafe { *totals_ptr.get().add(b) = sum };
            }
        });
    }
    // Phase 2: serial scan over the (small) block totals.
    let total = exclusive_scan_serial(&mut block_totals);
    // Phase 3: per-block local scans seeded with the block offset.
    for_each_chunk_mut(data, SCAN_BLOCK, |offset, chunk| {
        let mut running = block_totals[offset / SCAN_BLOCK];
        for x in chunk.iter_mut() {
            let v = *x;
            *x = running;
            running = running.add(v);
        }
    });
    total
}

/// In-place inclusive prefix sum; returns the total.
///
/// After the call, `data[i]` holds the sum of the original
/// `data[..=i]`.
pub fn inclusive_prefix_sum<T: ScanItem>(data: &mut [T]) -> T {
    let total = exclusive_prefix_sum(data);
    // Shift exclusive -> inclusive by adding the original values back;
    // recompute from neighbors instead to avoid storing a copy.
    // data_excl[i] = sum(orig[..i]); incl[i] = excl[i+1] for i < n-1,
    // incl[n-1] = total.
    if data.is_empty() {
        return total;
    }
    for i in 0..data.len() - 1 {
        data[i] = data[i + 1];
    }
    let last = data.len() - 1;
    data[last] = total;
    total
}

fn exclusive_scan_serial<T: ScanItem>(data: &mut [T]) -> T {
    let mut running = T::zero();
    for x in data.iter_mut() {
        let v = *x;
        *x = running;
        running = running.add(v);
    }
    running
}

struct SyncSlice<T>(*mut T);

impl<T> SyncSlice<T> {
    /// Returns the wrapped pointer (forces whole-struct closure capture).
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}
// SAFETY: used only for disjoint per-index writes (see call sites).
unsafe impl<T: Send> Send for SyncSlice<T> {}
// SAFETY: same — no shared mutable access to any single element.
unsafe impl<T: Send> Sync for SyncSlice<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_exclusive(v: &[u64]) -> (Vec<u64>, u64) {
        let mut out = Vec::with_capacity(v.len());
        let mut run = 0u64;
        for &x in v {
            out.push(run);
            run += x;
        }
        (out, run)
    }

    #[test]
    fn small_exclusive_scan() {
        let mut v = vec![1u64, 2, 3, 4];
        let total = exclusive_prefix_sum(&mut v);
        assert_eq!(total, 10);
        assert_eq!(v, vec![0, 1, 3, 6]);
    }

    #[test]
    fn empty_scan() {
        let mut v: Vec<u64> = vec![];
        assert_eq!(exclusive_prefix_sum(&mut v), 0);
        assert_eq!(inclusive_prefix_sum(&mut v), 0);
    }

    #[test]
    fn large_scan_matches_reference() {
        let v: Vec<u64> = (0..300_000).map(|i| (i * 7 + 3) % 11).collect();
        let (expected, expected_total) = reference_exclusive(&v);
        let mut got = v.clone();
        let total = exclusive_prefix_sum(&mut got);
        assert_eq!(total, expected_total);
        assert_eq!(got, expected);
    }

    #[test]
    fn inclusive_scan_matches_reference() {
        let v: Vec<u64> = (0..100_000).map(|i| i % 5).collect();
        let mut got = v.clone();
        let total = inclusive_prefix_sum(&mut got);
        let mut run = 0;
        for (i, &x) in v.iter().enumerate() {
            run += x;
            assert_eq!(got[i], run, "at {i}");
        }
        assert_eq!(total, run);
    }

    #[test]
    fn u32_scan() {
        let mut v = vec![5u32; 10];
        assert_eq!(exclusive_prefix_sum(&mut v), 50);
        assert_eq!(v[9], 45);
    }
}

//! The persistent worker pool and its fork-join "parallel region" protocol.
//!
//! A [`ThreadPool`] owns `N - 1` background worker threads; the thread
//! that calls [`ThreadPool::broadcast`] always participates as worker 0,
//! so a pool of size 1 runs everything inline and spawns no threads at
//! all (important on single-core machines, where the experiments still
//! run the exact same code path).
//!
//! A parallel region executes one `Fn(WorkerId)` closure once on every
//! worker. All higher-level operations (chunked loops, reductions,
//! dynamic task pools) are built from this single primitive plus shared
//! atomics, mirroring how the paper's Cilk runtime distributes chunks of
//! a shared work queue among threads.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

/// Identifier of the worker executing a region closure.
///
/// Worker ids are dense in `0..num_threads` and stable for the lifetime
/// of a region, which makes them suitable for indexing per-thread
/// scratch buffers (e.g. the per-thread histograms of the radix sort).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkerId(pub(crate) usize);

impl WorkerId {
    /// Returns the dense index of this worker in `0..num_threads`.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Type-erased pointer to the region closure.
///
/// The pointee lives on the caller's stack; `broadcast` blocks until all
/// workers have finished running it, which is what makes the erasure of
/// its lifetime sound.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(WorkerId) + Sync));

// SAFETY: the pointee is `Sync` (shared access from many threads is
// allowed) and `broadcast` does not return until every worker is done
// with the pointer, so it never dangles while shared.
unsafe impl Send for JobPtr {}

struct RegionSlot {
    /// Monotonically increasing region counter; workers use it to detect
    /// fresh work.
    epoch: u64,
    /// The closure to run, present while a region is active.
    job: Option<JobPtr>,
    /// Background workers that have not yet finished the current region.
    remaining: usize,
}

struct Shared {
    num_threads: usize,
    slot: Mutex<RegionSlot>,
    /// Workers sleep here between regions.
    work_cv: Condvar,
    /// The caller sleeps here while workers drain the region.
    done_cv: Condvar,
    shutdown: AtomicBool,
}

thread_local! {
    /// Worker id of the region currently executing on this thread, if
    /// any. Used both to hand out ids and to detect nested regions,
    /// which run inline (Cilk-style serialization of nested spawns).
    static CURRENT_WORKER: Cell<Option<usize>> = const { Cell::new(None) };
}

/// A fixed-size fork-join worker pool.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use egraph_parallel::ThreadPool;
///
/// let pool = ThreadPool::new(4);
/// let hits = AtomicUsize::new(0);
/// pool.broadcast(&|_worker| {
///     hits.fetch_add(1, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 4);
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool that runs regions on `num_threads` threads in
    /// total (the calling thread plus `num_threads - 1` background
    /// workers). `num_threads` is clamped to `1..=256`.
    pub fn new(num_threads: usize) -> Self {
        let num_threads = num_threads.clamp(1, 256);
        let shared = Arc::new(Shared {
            num_threads,
            slot: Mutex::new(RegionSlot {
                epoch: 0,
                job: None,
                remaining: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (1..num_threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("egraph-worker-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("failed to spawn egraph worker thread")
            })
            .collect();
        Self { shared, handles }
    }

    /// Creates a pool sized from `EGRAPH_THREADS` or, failing that, the
    /// machine's available parallelism.
    pub fn with_default_size() -> Self {
        Self::new(default_num_threads())
    }

    /// Returns the total number of threads regions run on, including the
    /// caller.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.shared.num_threads
    }

    /// Runs `f` once on every worker (including the calling thread as
    /// worker 0) and returns when all invocations have completed.
    ///
    /// Nested calls from inside a region run `f` inline on the current
    /// worker instead of deadlocking, so parallel operations compose
    /// (they merely lose parallelism when nested).
    pub fn broadcast(&self, f: &(dyn Fn(WorkerId) + Sync)) {
        if let Some(current) = CURRENT_WORKER.with(Cell::get) {
            // Nested region: serialize on the current worker. Nested
            // work is already inside the outer region's busy window, so
            // it is not counted again.
            f(WorkerId(current));
            return;
        }
        crate::telemetry::on_region();
        if self.shared.num_threads == 1 {
            CURRENT_WORKER.with(|c| c.set(Some(0)));
            run_timed(f, WorkerId(0));
            CURRENT_WORKER.with(|c| c.set(None));
            return;
        }

        let ptr: *const (dyn Fn(WorkerId) + Sync) = f;
        // SAFETY: we only erase the lifetime of the trait object; the
        // pointer is stored in the shared slot and `broadcast` blocks
        // below until `remaining == 0`, i.e. until no worker can still
        // dereference it.
        let job = JobPtr(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(WorkerId) + Sync),
                *const (dyn Fn(WorkerId) + Sync + 'static),
            >(ptr)
        });

        {
            let mut slot = self.shared.slot.lock();
            debug_assert!(slot.job.is_none(), "overlapping parallel regions");
            slot.epoch += 1;
            slot.job = Some(job);
            slot.remaining = self.shared.num_threads - 1;
            self.shared.work_cv.notify_all();
        }

        // The caller participates as worker 0.
        CURRENT_WORKER.with(|c| c.set(Some(0)));
        run_timed(f, WorkerId(0));
        CURRENT_WORKER.with(|c| c.set(None));

        let mut slot = self.shared.slot.lock();
        while slot.remaining > 0 {
            self.shared.done_cv.wait(&mut slot);
        }
        slot.job = None;
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _slot = self.shared.slot.lock();
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Runs one worker's share of a region, attributing its wall time to
/// the telemetry busy counters and the timeline (when they are
/// collecting — each costs one relaxed load otherwise).
#[inline]
fn run_timed(f: &(dyn Fn(WorkerId) + Sync), worker: WorkerId) {
    let _span = crate::timeline::span(crate::timeline::SpanKind::Region, "region", "");
    if crate::telemetry::enabled() {
        let start = std::time::Instant::now();
        f(worker);
        crate::telemetry::on_busy(worker.index(), start.elapsed().as_nanos() as u64);
    } else {
        f(worker);
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                match slot.job {
                    Some(job) if slot.epoch != last_epoch => {
                        last_epoch = slot.epoch;
                        break job;
                    }
                    _ => shared.work_cv.wait(&mut slot),
                }
            }
        };

        CURRENT_WORKER.with(|c| c.set(Some(index)));
        // SAFETY: `broadcast` keeps the pointee alive until `remaining`
        // drops to zero, which happens strictly after this call returns.
        run_timed(unsafe { &*job.0 }, WorkerId(index));
        CURRENT_WORKER.with(|c| c.set(None));

        let mut slot = shared.slot.lock();
        slot.remaining -= 1;
        if slot.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// Returns the index of the worker currently executing a parallel
/// region on this thread, or `None` outside any region.
///
/// Worker-local storage ([`crate::WorkerLocal`]) uses this to pick the
/// calling worker's private slot without threading a [`WorkerId`]
/// through every closure layer.
#[inline]
pub fn current_worker_index() -> Option<usize> {
    CURRENT_WORKER.with(Cell::get)
}

/// Computes the default pool size: `EGRAPH_THREADS` if set and valid,
/// otherwise the available parallelism of the machine.
pub fn default_num_threads() -> usize {
    if let Ok(value) = std::env::var("EGRAPH_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n >= 1 {
                return n.min(256);
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Returns the process-wide pool, creating it on first use.
pub fn global_pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(ThreadPool::with_default_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn broadcast_runs_once_per_worker() {
        let pool = ThreadPool::new(8);
        let flags: Vec<AtomicBool> = (0..8).map(|_| AtomicBool::new(false)).collect();
        pool.broadcast(&|w| {
            assert!(!flags[w.index()].swap(true, Ordering::SeqCst));
        });
        assert!(flags.iter().all(|f| f.load(Ordering::SeqCst)));
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let count = AtomicUsize::new(0);
        pool.broadcast(&|w| {
            assert_eq!(w.index(), 0);
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nested_broadcast_serializes() {
        let pool = ThreadPool::new(4);
        let count = AtomicUsize::new(0);
        pool.broadcast(&|_| {
            // A nested region must not deadlock; it runs inline, once.
            pool.broadcast(&|_| {
                count.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn repeated_regions_reuse_workers() {
        let pool = ThreadPool::new(4);
        let count = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.broadcast(&|_| {
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(count.load(Ordering::SeqCst), 400);
    }

    #[test]
    fn clamps_thread_count() {
        assert_eq!(ThreadPool::new(0).num_threads(), 1);
        assert_eq!(ThreadPool::new(1_000_000).num_threads(), 256);
    }

    #[test]
    fn borrows_caller_stack_data() {
        let pool = ThreadPool::new(4);
        let data = vec![1u64; 1024];
        let sum = AtomicUsize::new(0);
        pool.broadcast(&|w| {
            let chunk = 1024 / 4;
            let start = w.index() * chunk;
            let local: u64 = data[start..start + chunk].iter().sum();
            sum.fetch_add(local as usize, Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 1024);
    }
}

//! The persistent worker pool and its fork-join "parallel region" protocol.
//!
//! A [`ThreadPool`] owns `N - 1` background worker threads; the thread
//! that calls [`ThreadPool::broadcast`] always participates as worker 0,
//! so a pool of size 1 runs everything inline and spawns no threads at
//! all (important on single-core machines, where the experiments still
//! run the exact same code path).
//!
//! A parallel region executes one `Fn(WorkerId)` closure once on every
//! worker. All higher-level operations (chunked loops, reductions,
//! dynamic task pools) are built from this single primitive plus shared
//! atomics, mirroring how the paper's Cilk runtime distributes chunks of
//! a shared work queue among threads.

use std::cell::Cell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

/// A panic payload carried from a worker back to the caller.
type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Identifier of the worker executing a region closure.
///
/// Worker ids are dense in `0..num_threads` and stable for the lifetime
/// of a region, which makes them suitable for indexing per-thread
/// scratch buffers (e.g. the per-thread histograms of the radix sort).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkerId(pub(crate) usize);

impl WorkerId {
    /// Returns the dense index of this worker in `0..num_threads`.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Type-erased pointer to the region closure.
///
/// The pointee lives on the caller's stack; `broadcast` blocks until all
/// workers have finished running it, which is what makes the erasure of
/// its lifetime sound.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(WorkerId) + Sync));

// SAFETY: the pointee is `Sync` (shared access from many threads is
// allowed) and `broadcast` does not return until every worker is done
// with the pointer, so it never dangles while shared.
unsafe impl Send for JobPtr {}

struct RegionSlot {
    /// Monotonically increasing region counter; workers use it to detect
    /// fresh work.
    epoch: u64,
    /// The closure to run, present while a region is active.
    job: Option<JobPtr>,
    /// Background workers that have not yet finished the current region.
    remaining: usize,
    /// First panic payload captured in the current region, if any.
    /// Re-thrown on the calling thread once the region has drained.
    panic: Option<PanicPayload>,
}

struct Shared {
    num_threads: usize,
    slot: Mutex<RegionSlot>,
    /// Workers sleep here between regions.
    work_cv: Condvar,
    /// The caller sleeps here while workers drain the region.
    done_cv: Condvar,
    shutdown: AtomicBool,
}

thread_local! {
    /// Worker id of the region currently executing on this thread, if
    /// any. Used both to hand out ids and to detect nested regions,
    /// which run inline (Cilk-style serialization of nested spawns).
    static CURRENT_WORKER: Cell<Option<usize>> = const { Cell::new(None) };
    /// Pool override installed by [`with_pool`] on this thread, if any.
    /// Raw pointer because the override is strictly scoped: `with_pool`
    /// borrows the pool for the closure's duration and restores the
    /// previous value (panic-safe) before returning.
    static SCOPED_POOL: Cell<Option<*const ThreadPool>> = const { Cell::new(None) };
    /// Thread count of the region currently executing on this thread
    /// (0 outside any region). Nested operations on worker threads size
    /// their per-worker scratch from this, so they match the pool that
    /// is actually broadcasting rather than the global one.
    static REGION_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Restores the worker-identity thread-locals even if the region
/// closure unwinds.
struct WorkerScope {
    prev_worker: Option<usize>,
    prev_threads: usize,
}

impl WorkerScope {
    fn enter(index: usize, region_threads: usize) -> Self {
        let prev_worker = CURRENT_WORKER.with(|c| c.replace(Some(index)));
        let prev_threads = REGION_THREADS.with(|c| c.replace(region_threads));
        Self {
            prev_worker,
            prev_threads,
        }
    }
}

impl Drop for WorkerScope {
    fn drop(&mut self) {
        CURRENT_WORKER.with(|c| c.set(self.prev_worker));
        REGION_THREADS.with(|c| c.set(self.prev_threads));
    }
}

/// Runs `f` with `pool` installed as the calling thread's active pool:
/// for the duration of the closure, [`current_num_threads`] and every
/// parallel operation in this crate (and operations built on it in
/// `egraph-core` / `egraph-sort`) broadcast on `pool` instead of the
/// process-wide [`global_pool`].
///
/// Overrides nest: the previous override (if any) is restored when `f`
/// returns or unwinds. The override is per-thread and does not
/// propagate to threads spawned inside `f`.
///
/// This is what lets a single test process exercise the same algorithm
/// at thread counts {1, 2, 4, 8} deterministically, without mutating
/// `EGRAPH_THREADS` or the global pool.
pub fn with_pool<R>(pool: &ThreadPool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<*const ThreadPool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            SCOPED_POOL.with(|c| c.set(self.0));
        }
    }
    let prev = SCOPED_POOL.with(|c| c.replace(Some(pool as *const ThreadPool)));
    let _restore = Restore(prev);
    f()
}

/// The number of workers parallel operations started from this thread
/// will run on: the active region's width when called from inside a
/// region, otherwise the scoped pool installed by [`with_pool`],
/// otherwise the [`global_pool`].
///
/// Per-worker scratch (reduction slots, histograms, worker-local
/// buffers) must be sized from this, never from `global_pool()`
/// directly, so that scoped pools of any width stay in bounds.
#[inline]
pub fn current_num_threads() -> usize {
    let region = REGION_THREADS.with(Cell::get);
    if region > 0 {
        return region;
    }
    if let Some(ptr) = SCOPED_POOL.with(Cell::get) {
        // SAFETY: `with_pool` keeps the pool borrowed while the
        // override is installed and uninstalls it before returning.
        return unsafe { (*ptr).num_threads() };
    }
    global_pool().num_threads()
}

/// Runs `f` once per worker on the calling thread's active pool (see
/// [`current_num_threads`] for the resolution order). Inside a region
/// this serializes onto the current worker exactly like a nested
/// [`ThreadPool::broadcast`].
pub fn broadcast_current(f: &(dyn Fn(WorkerId) + Sync)) {
    if let Some(current) = CURRENT_WORKER.with(Cell::get) {
        // Nested region: serialize inline without touching any pool
        // (the global pool may not even exist yet on worker threads).
        f(WorkerId(current));
        return;
    }
    if let Some(ptr) = SCOPED_POOL.with(Cell::get) {
        // SAFETY: see `current_num_threads`.
        unsafe { (*ptr).broadcast(f) };
        return;
    }
    global_pool().broadcast(f);
}

/// A fixed-size fork-join worker pool.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use egraph_parallel::ThreadPool;
///
/// let pool = ThreadPool::new(4);
/// let hits = AtomicUsize::new(0);
/// pool.broadcast(&|_worker| {
///     hits.fetch_add(1, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 4);
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool that runs regions on `num_threads` threads in
    /// total (the calling thread plus `num_threads - 1` background
    /// workers). `num_threads` is clamped to `1..=256`.
    pub fn new(num_threads: usize) -> Self {
        let num_threads = num_threads.clamp(1, 256);
        let shared = Arc::new(Shared {
            num_threads,
            slot: Mutex::new(RegionSlot {
                epoch: 0,
                job: None,
                remaining: 0,
                panic: None,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (1..num_threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("egraph-worker-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("failed to spawn egraph worker thread")
            })
            .collect();
        Self { shared, handles }
    }

    /// Creates a pool sized from `EGRAPH_THREADS` or, failing that, the
    /// machine's available parallelism.
    pub fn with_default_size() -> Self {
        Self::new(default_num_threads())
    }

    /// Returns the total number of threads regions run on, including the
    /// caller.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.shared.num_threads
    }

    /// Runs `f` once on every worker (including the calling thread as
    /// worker 0) and returns when all invocations have completed.
    ///
    /// Nested calls from inside a region run `f` inline on the current
    /// worker instead of deadlocking, so parallel operations compose
    /// (they merely lose parallelism when nested).
    ///
    /// # Panics
    ///
    /// If any worker's invocation of `f` panics, the region still
    /// drains cleanly (every worker finishes or unwinds, the pool stays
    /// usable) and the first captured payload is re-thrown on the
    /// calling thread — a worker panic can never hang the pool or be
    /// silently swallowed.
    pub fn broadcast(&self, f: &(dyn Fn(WorkerId) + Sync)) {
        if let Some(current) = CURRENT_WORKER.with(Cell::get) {
            // Nested region: serialize on the current worker. Nested
            // work is already inside the outer region's busy window, so
            // it is not counted again.
            f(WorkerId(current));
            return;
        }
        crate::telemetry::on_region();
        crate::fault::on_region();
        if self.shared.num_threads == 1 {
            let _scope = WorkerScope::enter(0, 1);
            run_timed(f, WorkerId(0));
            return;
        }

        let ptr: *const (dyn Fn(WorkerId) + Sync) = f;
        // SAFETY: we only erase the lifetime of the trait object; the
        // pointer is stored in the shared slot and `broadcast` blocks
        // below until `remaining == 0`, i.e. until no worker can still
        // dereference it.
        let job = JobPtr(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(WorkerId) + Sync),
                *const (dyn Fn(WorkerId) + Sync + 'static),
            >(ptr)
        });

        {
            let mut slot = self.shared.slot.lock();
            debug_assert!(slot.job.is_none(), "overlapping parallel regions");
            slot.epoch += 1;
            slot.job = Some(job);
            slot.remaining = self.shared.num_threads - 1;
            slot.panic = None;
            self.shared.work_cv.notify_all();
        }

        // The caller participates as worker 0. Catch its unwind so the
        // job pointer stays published until every background worker has
        // finished with it, then re-throw.
        let caller_result = {
            let _scope = WorkerScope::enter(0, self.shared.num_threads);
            std::panic::catch_unwind(AssertUnwindSafe(|| run_timed(f, WorkerId(0))))
        };

        let panic = {
            let mut slot = self.shared.slot.lock();
            while slot.remaining > 0 {
                self.shared.done_cv.wait(&mut slot);
            }
            slot.job = None;
            slot.panic.take()
        };
        if let Err(payload) = caller_result {
            std::panic::resume_unwind(payload);
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _slot = self.shared.slot.lock();
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Runs one worker's share of a region, attributing its wall time to
/// the telemetry busy counters and the timeline (when they are
/// collecting — each costs one relaxed load otherwise).
#[inline]
fn run_timed(f: &(dyn Fn(WorkerId) + Sync), worker: WorkerId) {
    let _span = crate::timeline::span(crate::timeline::SpanKind::Region, "region", "");
    crate::fault::on_worker_run(worker.index());
    if crate::telemetry::enabled() {
        let start = std::time::Instant::now();
        f(worker);
        crate::telemetry::on_busy(worker.index(), start.elapsed().as_nanos() as u64);
    } else {
        f(worker);
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                match slot.job {
                    Some(job) if slot.epoch != last_epoch => {
                        last_epoch = slot.epoch;
                        break job;
                    }
                    _ => shared.work_cv.wait(&mut slot),
                }
            }
        };

        let result = {
            let _scope = WorkerScope::enter(index, shared.num_threads);
            // SAFETY: `broadcast` keeps the pointee alive until
            // `remaining` drops to zero, which happens strictly after
            // this call returns (or unwinds into the catch below).
            std::panic::catch_unwind(AssertUnwindSafe(|| {
                run_timed(unsafe { &*job.0 }, WorkerId(index))
            }))
        };

        // Decrement unconditionally: a panicking worker must still
        // retire from the region or `broadcast` would wait forever.
        let mut slot = shared.slot.lock();
        if let Err(payload) = result {
            if slot.panic.is_none() {
                slot.panic = Some(payload);
            }
        }
        slot.remaining -= 1;
        if slot.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// Returns the index of the worker currently executing a parallel
/// region on this thread, or `None` outside any region.
///
/// Worker-local storage ([`crate::WorkerLocal`]) uses this to pick the
/// calling worker's private slot without threading a [`WorkerId`]
/// through every closure layer.
#[inline]
pub fn current_worker_index() -> Option<usize> {
    CURRENT_WORKER.with(Cell::get)
}

/// Computes the default pool size: `EGRAPH_THREADS` if set and valid,
/// otherwise the available parallelism of the machine.
pub fn default_num_threads() -> usize {
    if let Ok(value) = std::env::var("EGRAPH_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n >= 1 {
                return n.min(256);
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Returns the process-wide pool, creating it on first use.
pub fn global_pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(ThreadPool::with_default_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn broadcast_runs_once_per_worker() {
        let pool = ThreadPool::new(8);
        let flags: Vec<AtomicBool> = (0..8).map(|_| AtomicBool::new(false)).collect();
        pool.broadcast(&|w| {
            assert!(!flags[w.index()].swap(true, Ordering::SeqCst));
        });
        assert!(flags.iter().all(|f| f.load(Ordering::SeqCst)));
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let count = AtomicUsize::new(0);
        pool.broadcast(&|w| {
            assert_eq!(w.index(), 0);
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nested_broadcast_serializes() {
        let pool = ThreadPool::new(4);
        let count = AtomicUsize::new(0);
        pool.broadcast(&|_| {
            // A nested region must not deadlock; it runs inline, once.
            pool.broadcast(&|_| {
                count.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn repeated_regions_reuse_workers() {
        let pool = ThreadPool::new(4);
        let count = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.broadcast(&|_| {
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(count.load(Ordering::SeqCst), 400);
    }

    #[test]
    fn clamps_thread_count() {
        assert_eq!(ThreadPool::new(0).num_threads(), 1);
        assert_eq!(ThreadPool::new(1_000_000).num_threads(), 256);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(&|w| {
                if w.index() == 2 {
                    panic!("injected worker panic");
                }
            });
        }));
        let payload = result.expect_err("worker panic must propagate to the caller");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(message.contains("injected worker panic"), "{message}");
        // The region drained cleanly: the pool still runs full regions.
        let count = AtomicUsize::new(0);
        pool.broadcast(&|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn caller_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(&|w| {
                if w.index() == 0 {
                    panic!("caller-side panic");
                }
            });
        }));
        assert!(result.is_err());
        assert!(current_worker_index().is_none(), "worker scope must reset");
        let count = AtomicUsize::new(0);
        pool.broadcast(&|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn single_thread_panic_restores_worker_scope() {
        let pool = ThreadPool::new(1);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(&|_| panic!("inline panic"));
        }));
        assert!(result.is_err());
        assert!(current_worker_index().is_none());
        assert_eq!(REGION_THREADS.with(Cell::get), 0);
    }

    #[test]
    fn with_pool_overrides_current_pool() {
        let wide = ThreadPool::new(8);
        let narrow = ThreadPool::new(2);
        with_pool(&wide, || {
            assert_eq!(current_num_threads(), 8);
            let seen = AtomicUsize::new(0);
            broadcast_current(&|_| {
                seen.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(seen.load(Ordering::SeqCst), 8);
            with_pool(&narrow, || {
                assert_eq!(current_num_threads(), 2);
            });
            // Inner override is restored on exit.
            assert_eq!(current_num_threads(), 8);
        });
    }

    #[test]
    fn region_threads_visible_to_nested_code() {
        let pool = ThreadPool::new(4);
        with_pool(&pool, || {
            broadcast_current(&|_| {
                // Nested per-worker sizing must see the broadcasting
                // pool's width, not the global pool's.
                assert_eq!(current_num_threads(), 4);
            });
        });
    }

    #[test]
    fn with_pool_restores_override_on_panic() {
        let pool = ThreadPool::new(3);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            with_pool(&pool, || panic!("escape"));
        }));
        assert!(result.is_err());
        assert!(SCOPED_POOL.with(Cell::get).is_none());
    }

    #[test]
    fn borrows_caller_stack_data() {
        let pool = ThreadPool::new(4);
        let data = vec![1u64; 1024];
        let sum = AtomicUsize::new(0);
        pool.broadcast(&|w| {
            let chunk = 1024 / 4;
            let start = w.index() * chunk;
            let local: u64 = data[start..start + chunk].iter().sum();
            sum.fetch_add(local as usize, Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 1024);
    }
}

//! A per-worker-deque work-stealing scheduler — the literal Cilk
//! execution model, offered alongside the shared-counter chunk queue of
//! [`crate::ops`].
//!
//! The shared-counter queue (one atomic `fetch_add` per chunk) is the
//! cheaper scheduler for flat loops, but it serializes all workers on
//! one cache line. Classic work stealing gives every worker a private
//! deque — owners pop LIFO from the bottom, thieves steal FIFO from the
//! top — so a balanced workload runs with zero shared-counter traffic
//! and an imbalanced one rebalances through stealing. The
//! `engine_ablations` bench compares the two on even and skewed loops.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::deque::{Steal, Stealer, Worker};

use crate::pool::{broadcast_current, current_num_threads};

/// Below this many items a range is executed rather than split.
const SPLIT_THRESHOLD_FACTOR: usize = 4;

/// Runs `f` over disjoint sub-ranges of `range` using per-worker
/// deques with work stealing.
///
/// Each worker starts with an equal slice of the range; it repeatedly
/// splits its bottom item in half until pieces reach the grain size,
/// processes pieces LIFO, and steals FIFO from a random victim when its
/// own deque runs dry.
///
/// Semantics match [`crate::parallel_for`]: every index is visited
/// exactly once, and the call blocks until all work is done.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// let total = AtomicU64::new(0);
/// egraph_parallel::stealing::stealing_for(0..10_000, 64, |r| {
///     total.fetch_add(r.len() as u64, Ordering::Relaxed);
/// });
/// assert_eq!(total.load(Ordering::Relaxed), 10_000);
/// ```
pub fn stealing_for<F>(range: Range<usize>, grain: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let grain = grain.max(1);
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return;
    }
    let workers = current_num_threads();
    if workers == 1 || len <= grain * SPLIT_THRESHOLD_FACTOR {
        f(range);
        return;
    }

    // One deque per worker, seeded with an equal slice of the range.
    // Under an injected steal storm every slice lands in worker 0's
    // deque instead, forcing all other workers through the steal path.
    let storm = crate::fault::steal_storm();
    let locals: Vec<Worker<Range<usize>>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<Range<usize>>> = locals.iter().map(Worker::stealer).collect();
    let per_worker = len.div_ceil(workers);
    for i in 0..workers {
        let start = range.start + i * per_worker;
        let end = range.end.min(start + per_worker);
        if start < end {
            locals[if storm { 0 } else { i }].push(start..end);
        }
    }
    // Hand each worker its own deque through an indexed slot table.
    let slots: Vec<parking_lot::Mutex<Option<Worker<Range<usize>>>>> = locals
        .into_iter()
        .map(|w| parking_lot::Mutex::new(Some(w)))
        .collect();
    let in_flight = AtomicUsize::new(len);

    broadcast_current(&|worker_id| {
        let me = worker_id.index();
        let local = slots[me]
            .lock()
            .take()
            .expect("each worker claims its own deque exactly once");
        let mut rng_state = 0x9E37_79B9u64.wrapping_mul(me as u64 + 1) | 1;
        loop {
            // Drain the local deque, splitting big pieces.
            while let Some(piece) = local.pop() {
                process_piece(piece, grain, &local, &f, &in_flight);
            }
            if in_flight.load(Ordering::Acquire) == 0 {
                break;
            }
            // Steal from a pseudo-random victim.
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let victim = (rng_state >> 33) as usize % stealers.len();
            match stealers[victim].steal() {
                Steal::Success(piece) => {
                    crate::telemetry::on_steal(me);
                    process_piece(piece, grain, &local, &f, &in_flight);
                }
                Steal::Retry => {}
                Steal::Empty => {
                    if in_flight.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    std::hint::spin_loop();
                }
            }
        }
    });
    debug_assert_eq!(in_flight.load(Ordering::SeqCst), 0);
}

#[inline]
fn process_piece<F>(
    piece: Range<usize>,
    grain: usize,
    local: &Worker<Range<usize>>,
    f: &F,
    in_flight: &AtomicUsize,
) where
    F: Fn(Range<usize>) + Sync,
{
    let mut piece = piece;
    // Split until small enough, pushing halves for thieves.
    while piece.len() > grain {
        let mid = piece.start + piece.len() / 2;
        local.push(mid..piece.end);
        piece = piece.start..mid;
    }
    let n = piece.len();
    crate::telemetry::on_chunk();
    f(piece);
    in_flight.fetch_sub(n, Ordering::AcqRel);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_index_once() {
        let n = 200_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        stealing_for(0..n, 512, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_range_is_noop() {
        stealing_for(3..3, 16, |_| panic!("must not run"));
    }

    #[test]
    fn small_range_runs_inline() {
        let count = AtomicU64::new(0);
        stealing_for(0..10, 100, |r| {
            count.fetch_add(r.len() as u64, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn skewed_costs_still_complete() {
        // Quadratic cost on the first few indices — stealing must
        // still terminate with full coverage.
        let n = 10_000usize;
        let sum = AtomicU64::new(0);
        stealing_for(0..n, 64, |r| {
            let mut acc = 0u64;
            for i in r {
                let reps = if i < 8 { 10_000 } else { 1 };
                for _ in 0..reps {
                    acc = acc.wrapping_add(i as u64);
                }
            }
            sum.fetch_add(acc, Ordering::Relaxed);
        });
        assert!(sum.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn agrees_with_shared_counter_queue() {
        let data: Vec<u64> = (0..100_000).map(|i| i % 13).collect();
        let expected: u64 = data.iter().sum();
        let total = AtomicU64::new(0);
        stealing_for(0..data.len(), 1000, |r| {
            total.fetch_add(data[r].iter().sum::<u64>(), Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), expected);
    }
}

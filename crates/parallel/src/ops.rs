//! Chunked self-scheduling loops over index ranges and slices.
//!
//! These reproduce the paper's work distribution scheme: the iteration
//! space is a shared work queue and every worker repeatedly grabs the
//! next `grain`-sized chunk (one atomic `fetch_add`), so load imbalance
//! between chunks is absorbed without any static partitioning.

use std::mem::MaybeUninit;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::pool::{broadcast_current, current_num_threads};

/// Default chunk size for the self-scheduling loops.
///
/// Large enough that the per-chunk `fetch_add` is negligible, small
/// enough to balance skewed per-item costs (power-law vertex degrees).
pub const DEFAULT_GRAIN: usize = 4096;

/// Runs `f` over disjoint sub-ranges covering `range`, in parallel.
///
/// Chunks are handed out dynamically in `grain`-sized units; `f` may be
/// called many times per worker and never with an empty range.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// let total = AtomicU64::new(0);
/// egraph_parallel::parallel_for(0..1000, 128, |r| {
///     total.fetch_add(r.len() as u64, Ordering::Relaxed);
/// });
/// assert_eq!(total.load(Ordering::Relaxed), 1000);
/// ```
pub fn parallel_for<F>(range: Range<usize>, grain: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let grain = grain.max(1);
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return;
    }
    if len <= grain {
        crate::telemetry::on_chunk();
        f(range);
        return;
    }
    let base = range.start;
    let end = range.end;
    let cursor = AtomicUsize::new(base);
    broadcast_current(&|_worker| loop {
        let start = cursor.fetch_add(grain, Ordering::Relaxed);
        if start >= end {
            break;
        }
        crate::telemetry::on_chunk();
        f(start..end.min(start + grain));
    });
}

/// Parallel map-reduce over an index range.
///
/// Each worker folds the chunks it grabs into a private accumulator
/// created by `identity`; the per-worker accumulators are then combined
/// sequentially with `combine`.
///
/// # Examples
///
/// ```
/// let max = egraph_parallel::parallel_reduce(
///     0..100usize,
///     16,
///     || 0usize,
///     |acc, r| acc.max(r.end - 1),
///     |a, b| a.max(b),
/// );
/// assert_eq!(max, 99);
/// ```
pub fn parallel_reduce<A, Id, Fold, Combine>(
    range: Range<usize>,
    grain: usize,
    identity: Id,
    fold: Fold,
    combine: Combine,
) -> A
where
    A: Send,
    Id: Fn() -> A + Sync,
    Fold: Fn(A, Range<usize>) -> A + Sync,
    Combine: Fn(A, A) -> A,
{
    let grain = grain.max(1);
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return identity();
    }
    if len <= grain {
        crate::telemetry::on_chunk();
        return fold(identity(), range);
    }
    let end = range.end;
    let cursor = AtomicUsize::new(range.start);
    // Fixed per-worker result slots: each worker writes only its own
    // index, so the partial collection needs no lock.
    let mut partials: Vec<Option<A>> = (0..current_num_threads()).map(|_| None).collect();
    {
        let slots = SendPtr(partials.as_mut_ptr());
        broadcast_current(&|worker| {
            let mut acc = identity();
            let mut did_work = false;
            loop {
                let start = cursor.fetch_add(grain, Ordering::Relaxed);
                if start >= end {
                    break;
                }
                did_work = true;
                crate::telemetry::on_chunk();
                acc = fold(acc, start..end.min(start + grain));
            }
            if did_work {
                // SAFETY: worker ids are dense and unique within the
                // region, so each slot has exactly one writer, and the
                // borrow of `partials` outlives the blocking region.
                unsafe { *slots.get().add(worker.index()) = Some(acc) };
            }
        });
    }
    partials.into_iter().flatten().fold(identity(), combine)
}

/// Runs `f(offset, chunk)` over disjoint `grain`-sized chunks of `data`.
pub fn for_each_chunk<T, F>(data: &[T], grain: usize, f: F)
where
    T: Sync,
    F: Fn(usize, &[T]) + Sync,
{
    parallel_for(0..data.len(), grain, |r| f(r.start, &data[r]));
}

/// Runs `f(offset, chunk)` over disjoint mutable chunks of `data`.
///
/// Every element is visited exactly once; chunks handed to different
/// workers never overlap, which is what makes the aliasing below sound.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], grain: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    let ptr = SendPtr(data.as_mut_ptr());
    parallel_for(0..len, grain, |r| {
        // SAFETY: `parallel_for` hands out disjoint ranges of `0..len`,
        // so each `from_raw_parts_mut` covers elements no other worker
        // touches, and the borrow of `data` outlives the region because
        // `parallel_for` blocks until completion.
        let chunk = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(r.start), r.len()) };
        f(r.start, chunk);
    });
}

/// Builds a `Vec<T>` of length `n` by computing each element in parallel.
///
/// `f(i)` must be pure with respect to the index; elements are written
/// exactly once.
pub fn parallel_init<T, F>(n: usize, grain: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: `MaybeUninit<T>` needs no initialization, and the capacity
    // was just reserved.
    unsafe { out.set_len(n) };
    for_each_chunk_mut(&mut out, grain, |offset, chunk| {
        for (i, slot) in chunk.iter_mut().enumerate() {
            slot.write(f(offset + i));
        }
    });
    // SAFETY: every slot in `0..n` was written exactly once above, so
    // the vector is fully initialized; `MaybeUninit<T>` and `T` have the
    // same layout.
    unsafe {
        let mut out = std::mem::ManuallyDrop::new(out);
        Vec::from_raw_parts(out.as_mut_ptr().cast::<T>(), out.len(), out.capacity())
    }
}

/// Raw pointer wrapper that may cross thread boundaries.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Returns the wrapped pointer (forces whole-struct closure capture).
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: the pointer is only dereferenced through disjoint chunks (see
// `for_each_chunk_mut`), so concurrent access never aliases.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: same reasoning — the wrapper itself exposes no shared access.
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_covers_every_index_once() {
        let n = 100_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for(0..n, 777, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_empty_range_is_noop() {
        parallel_for(5..5, 16, |_| panic!("must not be called"));
    }

    #[test]
    fn parallel_for_small_range_runs_inline() {
        let hits = AtomicU64::new(0);
        parallel_for(0..3, 100, |r| {
            assert_eq!(r, 0..3);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn reduce_sums_match_sequential() {
        let data: Vec<u64> = (0..50_000).map(|i| i * 3 + 1).collect();
        let expected: u64 = data.iter().sum();
        let got = parallel_reduce(
            0..data.len(),
            1000,
            || 0u64,
            |acc, r| acc + data[r].iter().sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(got, expected);
    }

    #[test]
    fn reduce_empty_returns_identity() {
        let got = parallel_reduce(0..0, 8, || 42u32, |a, _| a + 1, |a, b| a + b);
        assert_eq!(got, 42);
    }

    #[test]
    fn chunk_mut_touches_every_element_once() {
        let mut data = vec![0u32; 12_345];
        for_each_chunk_mut(&mut data, 128, |offset, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x += (offset + i) as u32;
            }
        });
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x, i as u32);
        }
    }

    #[test]
    fn parallel_init_matches_serial() {
        let v = parallel_init(10_000, 64, |i| i as u64 * 2);
        assert_eq!(v.len(), 10_000);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as u64 * 2);
        }
    }

    #[test]
    fn parallel_init_empty() {
        let v: Vec<u8> = parallel_init(0, 64, |_| 0);
        assert!(v.is_empty());
    }

    #[test]
    fn parallel_init_drops_values_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Tracked;
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let v = parallel_init(1000, 32, |_| Tracked);
        drop(v);
        assert_eq!(DROPS.load(Ordering::SeqCst), 1000);
    }
}

//! A small fork-join parallel runtime used by every EverythingGraph crate.
//!
//! The paper parallelizes both pre-processing and computation with the
//! Cilk 4.8 runtime: "the subset of vertices or edges to be processed
//! during a computation step is kept in a work queue. Threads take work
//! items from the queue in large enough chunks to reduce the work
//! distribution overheads" (§2). This crate reproduces that execution
//! model in safe-to-use Rust:
//!
//! * a persistent [`ThreadPool`] of worker threads (plus the calling
//!   thread, which always participates in a parallel region),
//! * chunked self-scheduling loops ([`parallel_for`], [`parallel_reduce`],
//!   [`for_each_chunk`]) in which workers grab fixed-size chunks from a
//!   shared queue — the paper's "work queue" model,
//! * a dynamic task pool ([`dynamic_tasks`]) with work stealing semantics
//!   for irregular, recursive workloads (the recursive parallel radix
//!   sort of §3.2 is its main client),
//! * parallel prefix sums ([`scan`]) used by the count-sort and CSR
//!   builders,
//! * worker-local accumulation buffers ([`WorkerLocal`]) with a
//!   prefix-sum [`parallel_collect`] and its order-preserving sibling
//!   [`parallel_collect_ordered`], which replace shared locked
//!   collections on the frontier and pre-processing hot paths, and
//! * atomic float adapters ([`atomicf`]) used by PageRank, SpMV and ALS.
//!
//! The number of workers defaults to the machine's available parallelism
//! and can be overridden with the `EGRAPH_THREADS` environment variable
//! or per-pool with [`ThreadPool::new`].
//!
//! # Examples
//!
//! ```
//! let data: Vec<u64> = (0..10_000).collect();
//! let sum = egraph_parallel::parallel_reduce(
//!     0..data.len(),
//!     1024,
//!     || 0u64,
//!     |acc, range| acc + data[range].iter().sum::<u64>(),
//!     |a, b| a + b,
//! );
//! assert_eq!(sum, 10_000 * 9_999 / 2);
//! ```

pub mod atomicf;
pub mod dynamic;
pub mod fault;
pub mod ops;
pub mod pool;
pub mod scan;
pub mod stealing;
pub mod telemetry;
pub mod timeline;
pub mod worker_local;

pub use dynamic::{dynamic_tasks, Spawner};
pub use ops::{
    for_each_chunk, for_each_chunk_mut, parallel_for, parallel_init, parallel_reduce, DEFAULT_GRAIN,
};
pub use pool::{
    broadcast_current, current_num_threads, current_worker_index, global_pool, with_pool,
    ThreadPool, WorkerId,
};
pub use scan::{exclusive_prefix_sum, inclusive_prefix_sum};
pub use worker_local::{
    parallel_collect, parallel_collect_ordered, OrderedBuf, WorkerGuard, WorkerLocal,
};

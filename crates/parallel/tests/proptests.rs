//! Property tests for the parallel runtime: every combinator must agree
//! with its obvious sequential counterpart for arbitrary inputs, grain
//! sizes and pool shapes.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parallel_for_visits_each_index_once(
        len in 0usize..20_000,
        grain in 1usize..5_000,
    ) {
        let hits: Vec<AtomicU64> = (0..len).map(|_| AtomicU64::new(0)).collect();
        egraph_parallel::parallel_for(0..len, grain, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn reduce_equals_sequential_sum(
        data in proptest::collection::vec(0u64..1_000_000, 0..20_000),
        grain in 1usize..4_096,
    ) {
        let expected: u64 = data.iter().sum();
        let got = egraph_parallel::parallel_reduce(
            0..data.len(),
            grain,
            || 0u64,
            |acc, r| acc + data[r].iter().sum::<u64>(),
            |a, b| a + b,
        );
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn exclusive_scan_matches_reference(
        data in proptest::collection::vec(0u64..1_000, 0..100_000),
    ) {
        let mut got = data.clone();
        let total = egraph_parallel::exclusive_prefix_sum(&mut got);
        let mut run = 0u64;
        for (i, &x) in data.iter().enumerate() {
            prop_assert_eq!(got[i], run);
            run += x;
        }
        prop_assert_eq!(total, run);
    }

    #[test]
    fn inclusive_scan_matches_reference(
        data in proptest::collection::vec(0u64..1_000, 0..50_000),
    ) {
        let mut got = data.clone();
        let total = egraph_parallel::inclusive_prefix_sum(&mut got);
        let mut run = 0u64;
        for (i, &x) in data.iter().enumerate() {
            run += x;
            prop_assert_eq!(got[i], run);
        }
        prop_assert_eq!(total, run);
    }

    #[test]
    fn dynamic_tasks_recursive_sum(
        n in 0u64..50_000,
        fanout_threshold in 1u64..4_096,
    ) {
        let sum = AtomicU64::new(0);
        egraph_parallel::dynamic_tasks(vec![(0u64, n)], |(lo, hi), spawner| {
            if hi - lo <= fanout_threshold {
                sum.fetch_add((lo..hi).sum::<u64>(), Ordering::Relaxed);
            } else {
                let mid = lo + (hi - lo) / 2;
                spawner.spawn((lo, mid));
                spawner.spawn((mid, hi));
            }
        });
        let expected: u64 = (0..n).sum();
        prop_assert_eq!(sum.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn parallel_init_equals_map(
        n in 0usize..30_000,
        grain in 1usize..4_096,
        seed in any::<u64>(),
    ) {
        let f = |i: usize| (i as u64).wrapping_mul(seed | 1);
        let got = egraph_parallel::ops::parallel_init(n, grain, f);
        let expected: Vec<u64> = (0..n).map(f).collect();
        prop_assert_eq!(got, expected);
    }
}

//! Integration tests for the observability surface: timeline spans and
//! per-worker steal counts.
//!
//! These live in their own test binary (own process) because they flip
//! the global telemetry/timeline gates, which the library's unit tests
//! assume stay off.

use std::sync::{Mutex, Once};

use egraph_parallel::stealing::stealing_for;
use egraph_parallel::telemetry;
use egraph_parallel::timeline::{self, SpanKind};

/// Serializes the tests that flip the process-global telemetry gate, so
/// one test's `enable()` (which zeroes the counters) cannot wipe the
/// counts another test is accumulating.
static TELEMETRY_GATE: Mutex<()> = Mutex::new(());

/// Pins the global pool to 4 workers before any test touches it, so
/// the per-worker assertions are meaningful regardless of host size.
fn init() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        std::env::set_var("EGRAPH_THREADS", "4");
        assert_eq!(egraph_parallel::current_num_threads(), 4);
    });
}

#[test]
fn timeline_records_region_spans_per_worker() {
    init();
    timeline::enable();
    timeline::reset();
    egraph_parallel::parallel_for(0..100_000, 1024, |_r| {
        std::hint::black_box(0u64);
    });
    {
        let _step = timeline::span(SpanKind::Step, "test_step", "push");
        egraph_parallel::parallel_for(0..10_000, 1024, |_r| {});
    }
    timeline::disable();

    let spans = timeline::snapshot();
    let regions: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Region)
        .collect();
    // Two parallel regions ran on a 4-thread pool: every worker logged
    // one region span per region it executed; worker 0 (the caller)
    // ran both.
    assert!(regions.iter().filter(|s| s.worker == 0).count() >= 2);
    let distinct_workers: std::collections::BTreeSet<_> =
        regions.iter().map(|s| s.worker).collect();
    assert!(
        distinct_workers.len() >= 2,
        "expected region spans on several workers, got {distinct_workers:?}"
    );
    let step = spans
        .iter()
        .find(|s| s.kind == SpanKind::Step)
        .expect("step span recorded");
    assert_eq!(step.name, "test_step");
    assert_eq!(step.detail, "push");
    assert_eq!(step.worker, 0);
    assert_eq!(timeline::dropped_spans(), 0);
}

#[test]
fn chrome_trace_export_has_tracks_and_directions() {
    init();
    timeline::enable();
    {
        let _step = timeline::span(SpanKind::Step, "export_step", "pull");
        egraph_parallel::parallel_for(0..10_000, 512, |_r| {});
    }
    timeline::disable();

    let json = timeline::chrome_trace_json();
    // Shape checks against the Chrome trace-event format: a single
    // traceEvents array, thread-name metadata per worker track, "X"
    // complete events, and the push/pull annotation on step spans.
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.ends_with("]}"));
    for worker in 0..4 {
        assert!(
            json.contains(&format!("\"args\":{{\"name\":\"worker {worker}\"}}")),
            "missing thread_name metadata for worker {worker}"
        );
    }
    assert!(json.contains("\"ph\":\"M\""));
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"cat\":\"region\""));
    assert!(json.contains("\"name\":\"export_step\""));
    assert!(json.contains("\"args\":{\"direction\":\"pull\"}"));
    assert!(json.contains("\"ts\":"));
    assert!(json.contains("\"dur\":"));
}

#[test]
fn skewed_workload_shows_up_in_steals_and_imbalance() {
    init();
    let _gate = TELEMETRY_GATE.lock().unwrap();
    telemetry::enable();
    // All the real work sits in the first quarter of the range — the
    // slice seeded to worker 0's deque — so the other workers run dry
    // immediately and must steal to contribute.
    let n = 4_096;
    stealing_for(0..n, 16, |piece| {
        for i in piece {
            if i < n / 4 {
                let mut x = i as u64 + 1;
                for _ in 0..20_000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                std::hint::black_box(x);
            }
        }
    });
    telemetry::disable();

    let snap = telemetry::snapshot();
    assert_eq!(snap.steals_per_worker.len(), 4);
    assert_eq!(snap.steals_per_worker.iter().sum::<u64>(), snap.steals);
    assert!(
        snap.steals > 0,
        "a skewed workload must force steals, got {:?}",
        snap.steals_per_worker
    );
    // The thieves are the workers whose seeded slices were cheap, not
    // the one that owned the heavy quarter from the start.
    let thieves = snap
        .steals_per_worker
        .iter()
        .skip(1)
        .filter(|&&s| s > 0)
        .count();
    assert!(
        thieves >= 1,
        "expected at least one non-owner worker to steal, got {:?}",
        snap.steals_per_worker
    );
    // Work stealing rebalances execution, but the imbalance metric is
    // still well-formed over the same run.
    assert!(snap.load_imbalance() >= 1.0);
    assert!(snap.total_busy_seconds() > 0.0);
}

#[test]
fn enable_resets_per_worker_steal_counters_between_runs() {
    init();
    let _gate = TELEMETRY_GATE.lock().unwrap();

    // Run 1: the same skewed workload as above forces steals. The pool
    // is persistent (and reusable after panics since the fault-injection
    // work), so these counts would survive into the next run if enable()
    // did not open a fresh window.
    telemetry::enable();
    let n = 4_096;
    stealing_for(0..n, 16, |piece| {
        for i in piece {
            if i < n / 4 {
                let mut x = i as u64 + 1;
                for _ in 0..20_000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                std::hint::black_box(x);
            }
        }
    });
    telemetry::disable();
    let first = telemetry::snapshot();
    assert!(
        first.steals > 0,
        "precondition: run 1 must record steals, got {:?}",
        first.steals_per_worker
    );

    // Run 2 on the SAME pool: a perfectly balanced workload. A fresh
    // collection window must show zero steals — not run 1's leftovers.
    telemetry::enable();
    egraph_parallel::parallel_for(0..1_000, 64, |_r| {
        std::hint::black_box(0u64);
    });
    telemetry::disable();
    let second = telemetry::snapshot();
    assert_eq!(
        second.steals_per_worker,
        vec![0, 0, 0, 0],
        "per-worker steal counters must reset between pool reuses"
    );
    assert_eq!(second.steals, 0);
    assert!(second.regions >= 1, "run 2's own activity is still counted");
}

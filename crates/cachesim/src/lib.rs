//! A last-level-cache (LLC) simulator for graph-kernel miss-ratio
//! measurements.
//!
//! The paper reports LLC miss percentages measured with hardware
//! performance counters (Tables 2 and 4) and attributes them to the
//! three memory accesses every graph kernel performs per edge: fetching
//! the **edge** itself, fetching the **source vertex metadata** and
//! fetching the **destination vertex metadata** (§5). This crate
//! replaces the hardware counters with a software model:
//!
//! * [`SetAssocCache`] — a set-associative, LRU, 64-byte-line cache
//!   sized like the evaluation machines' LLCs (16 MB for machine B,
//!   20 MB for machine A),
//! * [`MemProbe`] — the instrumentation trait the `egraph-core` engine
//!   is generic over. The default [`NullProbe`] compiles to nothing, so
//!   timing runs pay zero cost; an [`LlcProbe`] records every simulated
//!   access and produces per-access-kind hit/miss statistics.
//!
//! Address streams use real byte distances (`edge_index * edge_size`,
//! `vertex_id * metadata_stride`) in disjoint address regions, so
//! spatial and temporal locality — the whole point of the paper's §5 —
//! are modelled faithfully.
//!
//! # Examples
//!
//! ```
//! use egraph_cachesim::{AccessKind, CacheConfig, LlcProbe, MemProbe};
//!
//! let probe = LlcProbe::new(CacheConfig::machine_b_llc());
//! // A sequential scan mostly hits (one miss per 64-byte line).
//! for i in 0..10_000u64 {
//!     probe.touch(AccessKind::Edge, i * 8);
//! }
//! let report = probe.report();
//! assert!(report.overall_miss_ratio() < 0.15);
//! ```

pub mod cache;
pub mod hierarchy;
pub mod probe;

pub use cache::{CacheConfig, CacheStats, SetAssocCache};
pub use hierarchy::{AccessOutcome, CacheHierarchy, StreamPrefetcher};
pub use probe::{AccessKind, HierarchyProbe, LlcProbe, MemProbe, MissReport, NullProbe};

//! The set-associative cache model.

/// Geometry of a simulated cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Associativity (lines per set).
    pub ways: usize,
    /// Line size in bytes; must be a power of two.
    pub line_size: usize,
}

impl CacheConfig {
    /// The LLC of the paper's machine A (2× Intel Xeon E5-2630, 20 MB
    /// LLC per socket).
    pub fn machine_a_llc() -> Self {
        Self {
            capacity: 20 * 1024 * 1024,
            ways: 20,
            line_size: 64,
        }
    }

    /// The LLC of the paper's machine B (4× AMD Opteron 6272, 16 MB
    /// LLC per socket) — the default measurement machine.
    pub fn machine_b_llc() -> Self {
        Self {
            capacity: 16 * 1024 * 1024,
            ways: 16,
            line_size: 64,
        }
    }

    /// A tiny cache, useful in tests where evictions must happen fast.
    pub fn tiny(capacity: usize, ways: usize) -> Self {
        Self {
            capacity,
            ways,
            line_size: 64,
        }
    }

    fn num_sets(&self) -> usize {
        (self.capacity / (self.line_size * self.ways)).max(1)
    }
}

/// Hit/miss counters of a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses observed.
    pub accesses: u64,
    /// Accesses that missed in the cache.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of accesses that missed (0 when nothing was accessed).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache with LRU replacement.
///
/// Addresses are plain `u64` byte addresses; callers lay out their
/// simulated data structures in any disjoint address regions they like.
#[derive(Debug)]
pub struct SetAssocCache {
    config: CacheConfig,
    /// `sets * ways` tags; `u64::MAX` marks an empty way.
    tags: Vec<u64>,
    /// Per-way last-access timestamps for LRU.
    stamps: Vec<u64>,
    clock: u64,
    stats: CacheStats,
    set_mask: u64,
    line_shift: u32,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two or `ways` is zero.
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(config.ways > 0, "cache must have at least one way");
        let sets = config.num_sets().next_power_of_two();
        Self {
            config,
            tags: vec![u64::MAX; sets * config.ways],
            stamps: vec![0; sets * config.ways],
            clock: 0,
            stats: CacheStats::default(),
            set_mask: sets as u64 - 1,
            line_shift: config.line_size.trailing_zeros(),
        }
    }

    /// Returns the cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Simulates one access to byte address `addr`; returns `true` on a
    /// hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let ways = self.config.ways;
        let base = set * ways;

        let mut victim = base;
        let mut victim_stamp = u64::MAX;
        for i in base..base + ways {
            if self.tags[i] == line {
                self.stamps[i] = self.clock;
                return true;
            }
            if self.stamps[i] < victim_stamp {
                victim_stamp = self.stamps[i];
                victim = i;
            }
        }
        self.stats.misses += 1;
        self.tags[victim] = line;
        self.stamps[victim] = self.clock;
        false
    }

    /// Returns the counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.clock = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_scan_misses_once_per_line() {
        let mut c = SetAssocCache::new(CacheConfig::tiny(64 * 1024, 8));
        for addr in 0..4096u64 {
            c.access(addr);
        }
        let s = c.stats();
        assert_eq!(s.accesses, 4096);
        assert_eq!(s.misses, 4096 / 64);
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = SetAssocCache::new(CacheConfig::tiny(4096, 4));
        assert!(!c.access(128));
        assert!(c.access(128));
        assert!(c.access(130)); // same line
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let cfg = CacheConfig::tiny(4096, 4);
        let mut c = SetAssocCache::new(cfg);
        // Touch 4x the capacity cyclically with 64-byte strides: LRU on
        // a cyclic pattern larger than capacity misses every time.
        let lines = (4 * cfg.capacity / cfg.line_size) as u64;
        for round in 0..4 {
            for i in 0..lines {
                c.access(i * 64);
            }
            let _ = round;
        }
        let s = c.stats();
        assert_eq!(s.misses, s.accesses);
    }

    #[test]
    fn working_set_within_cache_hits_after_warmup() {
        let cfg = CacheConfig::tiny(64 * 1024, 16);
        let mut c = SetAssocCache::new(cfg);
        let lines = (cfg.capacity / cfg.line_size / 2) as u64;
        for _ in 0..8 {
            for i in 0..lines {
                c.access(i * 64);
            }
        }
        let s = c.stats();
        // Only the cold misses of the first round.
        assert_eq!(s.misses, lines);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 1 set of 2 ways: line size 64, capacity 128.
        let mut c = SetAssocCache::new(CacheConfig {
            capacity: 128,
            ways: 2,
            line_size: 64,
        });
        assert!(!c.access(0)); // A
        assert!(!c.access(1 << 20)); // B (same set, different tag)
        assert!(c.access(0)); // A again -> B is LRU
        assert!(!c.access(2 << 20)); // C evicts B
        assert!(c.access(0)); // A still resident
        assert!(!c.access(1 << 20)); // B was evicted
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = SetAssocCache::new(CacheConfig::tiny(4096, 4));
        c.access(0);
        c.access(0);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.access(0));
    }

    #[test]
    fn machine_presets_have_expected_geometry() {
        let a = SetAssocCache::new(CacheConfig::machine_a_llc());
        let b = SetAssocCache::new(CacheConfig::machine_b_llc());
        assert_eq!(a.config().capacity, 20 * 1024 * 1024);
        assert_eq!(b.config().capacity, 16 * 1024 * 1024);
    }

    #[test]
    fn miss_ratio_of_empty_stats_is_zero() {
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }
}

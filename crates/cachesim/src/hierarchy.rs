//! A two-level cache hierarchy with a stream prefetcher.
//!
//! Hardware LLC-miss percentages (what the paper's Tables 2 and 4
//! report) are measured *at the LLC*: the private L1/L2 levels absorb
//! short-range reuse first, so the LLC only sees one access per line of
//! streamed data, while every random metadata access that exceeds the
//! private levels reaches it. A single flat cache therefore
//! under-reports the miss *ratio* relative to hardware counters. This
//! module models:
//!
//! * a private **L2** in front of the simulated LLC (absorbing
//!   within-line and short-range reuse),
//! * a simple sequential **stream prefetcher** at the LLC (the reason
//!   "edges are streamed, they are prefetched efficiently and do not
//!   incur cache misses", §5.1).

use crate::cache::{CacheConfig, CacheStats, SetAssocCache};

/// Number of concurrent streams the prefetcher tracks.
const PREFETCH_STREAMS: usize = 16;
/// Lines fetched ahead once a stream is established.
const PREFETCH_DEGREE: u64 = 4;

/// A sequential stream detector + next-line prefetcher.
#[derive(Debug)]
pub struct StreamPrefetcher {
    /// Last line seen per tracked stream (round-robin allocation).
    streams: [u64; PREFETCH_STREAMS],
    next_slot: usize,
    /// Lines that have been prefetched but not yet demanded.
    prefetched: Vec<u64>,
    /// Statistics: demand accesses satisfied by a prefetch.
    pub useful_prefetches: u64,
}

impl StreamPrefetcher {
    /// Creates an empty prefetcher.
    pub fn new() -> Self {
        Self {
            streams: [u64::MAX; PREFETCH_STREAMS],
            next_slot: 0,
            prefetched: Vec::with_capacity(PREFETCH_STREAMS * PREFETCH_DEGREE as usize),
            useful_prefetches: 0,
        }
    }

    /// Observes a demand access to `line`; returns `true` if the line
    /// was covered by an outstanding prefetch. Detects ascending
    /// sequential streams and issues `PREFETCH_DEGREE` lines ahead.
    pub fn access(&mut self, line: u64) -> bool {
        let covered = if let Some(pos) = self.prefetched.iter().position(|&l| l == line) {
            self.prefetched.swap_remove(pos);
            self.useful_prefetches += 1;
            true
        } else {
            false
        };
        // Stream continuation?
        if let Some(slot) = self
            .streams
            .iter()
            .position(|&l| l != u64::MAX && line == l + 1)
        {
            self.streams[slot] = line;
            // Keep running ahead of the stream.
            for k in 1..=PREFETCH_DEGREE {
                let ahead = line + k;
                if !self.prefetched.contains(&ahead) {
                    if self.prefetched.len() >= PREFETCH_STREAMS * PREFETCH_DEGREE as usize {
                        self.prefetched.remove(0);
                    }
                    self.prefetched.push(ahead);
                }
            }
        } else if !self.streams.contains(&line) {
            // Start tracking a potential new stream.
            self.streams[self.next_slot] = line;
            self.next_slot = (self.next_slot + 1) % PREFETCH_STREAMS;
        }
        covered
    }
}

impl Default for StreamPrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

/// Outcome of one hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Satisfied by the private level; invisible to LLC counters.
    L2Hit,
    /// Reached the LLC and hit (demand hit or useful prefetch).
    LlcHit,
    /// Reached the LLC and missed to memory.
    LlcMiss,
}

/// A private L2 in front of a shared LLC with a stream prefetcher.
#[derive(Debug)]
pub struct CacheHierarchy {
    l2: SetAssocCache,
    llc: SetAssocCache,
    prefetcher: StreamPrefetcher,
    line_shift: u32,
    llc_stats: CacheStats,
}

impl CacheHierarchy {
    /// Creates a hierarchy. Line sizes of both levels must match.
    ///
    /// # Panics
    ///
    /// Panics if the configs disagree on line size.
    pub fn new(l2: CacheConfig, llc: CacheConfig) -> Self {
        assert_eq!(l2.line_size, llc.line_size, "line sizes must match");
        let line_shift = l2.line_size.trailing_zeros();
        Self {
            l2: SetAssocCache::new(l2),
            llc: SetAssocCache::new(llc),
            prefetcher: StreamPrefetcher::new(),
            line_shift,
            llc_stats: CacheStats::default(),
        }
    }

    /// A hierarchy shaped like the paper's machine B: 2 MB L2 (the
    /// Opteron module's L2) in front of the 16 MB LLC.
    pub fn machine_b() -> Self {
        Self::new(
            CacheConfig {
                capacity: 2 * 1024 * 1024,
                ways: 16,
                line_size: 64,
            },
            CacheConfig::machine_b_llc(),
        )
    }

    /// Simulates one access; returns where it was satisfied.
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        if self.l2.access(addr) {
            return AccessOutcome::L2Hit;
        }
        // Reached the LLC: demand access plus prefetcher lookup.
        let line = addr >> self.line_shift;
        let prefetched = self.prefetcher.access(line);
        let hit = self.llc.access(addr) || prefetched;
        self.llc_stats.accesses += 1;
        if hit {
            AccessOutcome::LlcHit
        } else {
            self.llc_stats.misses += 1;
            AccessOutcome::LlcMiss
        }
    }

    /// LLC-level counters — the quantity hardware "LLC miss %" reports.
    pub fn llc_stats(&self) -> CacheStats {
        self.llc_stats
    }

    /// Useful prefetches so far.
    pub fn useful_prefetches(&self) -> u64 {
        self.prefetcher.useful_prefetches
    }

    /// Clears both levels, the prefetcher and all counters.
    pub fn reset(&mut self) {
        self.l2.reset();
        self.llc.reset();
        self.prefetcher = StreamPrefetcher::new();
        self.llc_stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(
            CacheConfig::tiny(8 * 1024, 8),
            CacheConfig::tiny(64 * 1024, 16),
        )
    }

    #[test]
    fn within_line_reuse_is_absorbed_by_l2() {
        let mut h = small_hierarchy();
        assert_ne!(h.access(0), AccessOutcome::L2Hit);
        for b in 1..64u64 {
            assert_eq!(h.access(b), AccessOutcome::L2Hit, "byte {b}");
        }
        assert_eq!(h.llc_stats().accesses, 1);
    }

    #[test]
    fn sequential_stream_gets_prefetched() {
        let mut h = small_hierarchy();
        // Stream far beyond both capacities: after warmup, prefetches
        // cover the stream.
        for i in 0..100_000u64 {
            h.access(i * 64);
        }
        let stats = h.llc_stats();
        assert_eq!(stats.accesses, 100_000, "one LLC access per line");
        assert!(
            (stats.misses as f64) < 0.05 * stats.accesses as f64,
            "stream should be prefetched: {} misses",
            stats.misses
        );
        assert!(h.useful_prefetches() > 90_000);
    }

    #[test]
    fn random_accesses_beyond_llc_miss() {
        let mut h = small_hierarchy();
        let mut state = 1u64;
        for _ in 0..50_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.access((state >> 16) % (64 << 20));
        }
        let stats = h.llc_stats();
        assert!(stats.miss_ratio() > 0.9, "ratio {}", stats.miss_ratio());
    }

    #[test]
    fn llc_resident_working_set_hits_at_llc() {
        let mut h = small_hierarchy();
        // Working set: bigger than L2 (8K) but within LLC (64K); use a
        // non-sequential order so the prefetcher does not mask LLC hits
        // and within-line reuse does not pin it in L2.
        let lines = 48 * 1024 / 64; // 768 lines
        for round in 0..20u64 {
            for i in 0..lines as u64 {
                let line = (i * 37) % lines as u64;
                h.access(line * 64 + (round % 2) * 8);
            }
        }
        let stats = h.llc_stats();
        // After the cold round, LLC hits dominate.
        assert!(
            stats.miss_ratio() < 0.2,
            "llc-resident set should hit: {}",
            stats.miss_ratio()
        );
    }

    #[test]
    fn reset_clears_state() {
        let mut h = small_hierarchy();
        h.access(0);
        h.reset();
        assert_eq!(h.llc_stats(), CacheStats::default());
        assert_eq!(h.useful_prefetches(), 0);
    }

    #[test]
    #[should_panic(expected = "line sizes")]
    fn mismatched_line_sizes_rejected() {
        let _ = CacheHierarchy::new(
            CacheConfig {
                capacity: 1024,
                ways: 2,
                line_size: 32,
            },
            CacheConfig::tiny(4096, 4),
        );
    }
}

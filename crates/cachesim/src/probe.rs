//! The instrumentation interface between the execution engine and the
//! cache model.

use parking_lot::Mutex;

use crate::cache::{CacheConfig, CacheStats, SetAssocCache};

/// The three access classes of a graph kernel (§5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Fetching an edge from the layout (streamed for edge arrays and
    /// grids, mostly streamed for adjacency lists).
    Edge,
    /// Fetching the metadata of the edge's source vertex.
    SrcMeta,
    /// Fetching the metadata of the edge's destination vertex.
    DstMeta,
}

impl AccessKind {
    /// All access kinds, in report order.
    pub const ALL: [AccessKind; 3] = [AccessKind::Edge, AccessKind::SrcMeta, AccessKind::DstMeta];

    fn index(self) -> usize {
        match self {
            AccessKind::Edge => 0,
            AccessKind::SrcMeta => 1,
            AccessKind::DstMeta => 2,
        }
    }
}

/// Memory-access instrumentation hook.
///
/// The engine is generic over this trait; the [`NullProbe`]
/// implementation is a no-op that the optimizer removes entirely, so
/// production runs are not slowed down by the existence of the
/// instrumentation.
pub trait MemProbe: Sync {
    /// Reports whether this probe records anything. Engines may skip
    /// address computation when `false`.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// Records one access of `kind` at simulated byte address `addr`.
    fn touch(&self, kind: AccessKind, addr: u64);
}

/// The zero-cost probe used for timing runs.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullProbe;

impl MemProbe for NullProbe {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn touch(&self, _kind: AccessKind, _addr: u64) {}
}

/// Per-kind and overall miss statistics produced by an [`LlcProbe`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MissReport {
    /// Counters per [`AccessKind`] (indexed Edge, SrcMeta, DstMeta).
    pub per_kind: [CacheStats; 3],
}

impl MissReport {
    /// Counters for one access kind.
    pub fn kind(&self, kind: AccessKind) -> CacheStats {
        self.per_kind[kind.index()]
    }

    /// Total counters across all kinds.
    pub fn total(&self) -> CacheStats {
        let mut t = CacheStats::default();
        for s in &self.per_kind {
            t.accesses += s.accesses;
            t.misses += s.misses;
        }
        t
    }

    /// The overall miss ratio, the number the paper's Tables 2 and 4
    /// report as "LLC misses (%)".
    pub fn overall_miss_ratio(&self) -> f64 {
        self.total().miss_ratio()
    }
}

/// A probe that drives a shared [`SetAssocCache`], modelling the LLC
/// that all cores of a socket share.
///
/// The cache sits behind a mutex: measurement runs trade speed for
/// fidelity. Use [`NullProbe`] for timing runs.
pub struct LlcProbe {
    inner: Mutex<ProbeInner>,
}

struct ProbeInner {
    cache: SetAssocCache,
    per_kind: [CacheStats; 3],
}

impl LlcProbe {
    /// Creates a probe over an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        Self {
            inner: Mutex::new(ProbeInner {
                cache: SetAssocCache::new(config),
                per_kind: [CacheStats::default(); 3],
            }),
        }
    }

    /// Returns the statistics accumulated so far.
    pub fn report(&self) -> MissReport {
        let inner = self.inner.lock();
        MissReport {
            per_kind: inner.per_kind,
        }
    }

    /// Clears the cache contents and all counters.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.cache.reset();
        inner.per_kind = [CacheStats::default(); 3];
    }
}

impl MemProbe for LlcProbe {
    fn touch(&self, kind: AccessKind, addr: u64) {
        let mut inner = self.inner.lock();
        let hit = inner.cache.access(addr);
        let stats = &mut inner.per_kind[kind.index()];
        stats.accesses += 1;
        if !hit {
            stats.misses += 1;
        }
    }
}

/// A probe that drives a two-level [`CacheHierarchy`](crate::hierarchy::CacheHierarchy) and reports
/// LLC-level statistics — the closest software analogue of the
/// hardware counters the paper used.
///
/// Accesses absorbed by the private L2 never reach the counters, so
/// the reported "LLC miss %" has the same semantics as `perf`'s.
pub struct HierarchyProbe {
    inner: Mutex<HierarchyInner>,
}

struct HierarchyInner {
    hierarchy: crate::hierarchy::CacheHierarchy,
    per_kind: [CacheStats; 3],
}

impl HierarchyProbe {
    /// Creates a probe over an empty hierarchy.
    pub fn new(hierarchy: crate::hierarchy::CacheHierarchy) -> Self {
        Self {
            inner: Mutex::new(HierarchyInner {
                hierarchy,
                per_kind: [CacheStats::default(); 3],
            }),
        }
    }

    /// Returns the LLC-level statistics accumulated so far.
    pub fn report(&self) -> MissReport {
        let inner = self.inner.lock();
        MissReport {
            per_kind: inner.per_kind,
        }
    }

    /// Useful prefetches observed at the LLC.
    pub fn useful_prefetches(&self) -> u64 {
        self.inner.lock().hierarchy.useful_prefetches()
    }

    /// Clears caches, prefetcher and counters.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.hierarchy.reset();
        inner.per_kind = [CacheStats::default(); 3];
    }
}

impl MemProbe for HierarchyProbe {
    fn touch(&self, kind: AccessKind, addr: u64) {
        use crate::hierarchy::AccessOutcome;
        let mut inner = self.inner.lock();
        let outcome = inner.hierarchy.access(addr);
        let stats = &mut inner.per_kind[kind.index()];
        match outcome {
            AccessOutcome::L2Hit => {}
            AccessOutcome::LlcHit => stats.accesses += 1,
            AccessOutcome::LlcMiss => {
                stats.accesses += 1;
                stats.misses += 1;
            }
        }
    }
}

/// Well-separated base addresses for the simulated regions, so the
/// engine can place edges and vertex metadata in non-overlapping parts
/// of the simulated address space.
pub mod regions {
    /// Base address of the edge storage region.
    pub const EDGES: u64 = 0x0100_0000_0000;
    /// Base address of the source-metadata region.
    pub const SRC_META: u64 = 0x0200_0000_0000;
    /// Base address of the destination-metadata region.
    pub const DST_META: u64 = 0x0300_0000_0000;
    /// Base address of the per-vertex offset/index region (CSR index).
    pub const INDEX: u64 = 0x0400_0000_0000;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_probe_is_disabled() {
        let p = NullProbe;
        assert!(!p.enabled());
        p.touch(AccessKind::Edge, 0);
    }

    #[test]
    fn llc_probe_counts_per_kind() {
        let p = LlcProbe::new(CacheConfig::tiny(4096, 4));
        p.touch(AccessKind::Edge, 0);
        p.touch(AccessKind::Edge, 0);
        p.touch(AccessKind::DstMeta, 1 << 30);
        let r = p.report();
        assert_eq!(r.kind(AccessKind::Edge).accesses, 2);
        assert_eq!(r.kind(AccessKind::Edge).misses, 1);
        assert_eq!(r.kind(AccessKind::DstMeta).misses, 1);
        assert_eq!(r.kind(AccessKind::SrcMeta).accesses, 0);
        assert_eq!(r.total().accesses, 3);
    }

    #[test]
    fn random_vs_sequential_miss_ratios_order() {
        // The miss ratio of a random stream over a large footprint must
        // exceed the miss ratio of a sequential stream — the §5 effect.
        let cfg = CacheConfig::tiny(256 * 1024, 16);
        let seq = LlcProbe::new(cfg);
        for i in 0..200_000u64 {
            seq.touch(AccessKind::Edge, i * 8);
        }
        let rand = LlcProbe::new(cfg);
        let mut state = 0x9E37_79B9u64;
        for _ in 0..200_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rand.touch(AccessKind::DstMeta, (state >> 16) % (64 << 20));
        }
        // A stride-8 scan touches each 64-byte line 8 times: exactly
        // 1/8 of accesses miss.
        assert!((seq.report().overall_miss_ratio() - 0.125).abs() < 1e-9);
        assert!(rand.report().overall_miss_ratio() > 0.5);
    }

    #[test]
    fn reset_clears_report() {
        let p = LlcProbe::new(CacheConfig::tiny(4096, 4));
        p.touch(AccessKind::Edge, 0);
        p.reset();
        assert_eq!(p.report().total().accesses, 0);
    }

    #[test]
    fn regions_do_not_collide_within_large_footprints() {
        // 1 TiB apart: even multi-billion-edge simulations stay in
        // their own region.
        const { assert!(regions::SRC_META - regions::EDGES >= 1 << 40) };
        const { assert!(regions::DST_META - regions::SRC_META >= 1 << 40) };
        const { assert!(regions::INDEX - regions::DST_META >= 1 << 40) };
    }

    #[test]
    fn all_kinds_iterable() {
        assert_eq!(AccessKind::ALL.len(), 3);
    }
}

//! Cache-model invariants for arbitrary access streams.

use egraph_cachesim::{AccessKind, CacheConfig, CacheHierarchy, LlcProbe, MemProbe, SetAssocCache};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn misses_never_exceed_accesses(addrs in proptest::collection::vec(any::<u32>(), 0..5000)) {
        let mut c = SetAssocCache::new(CacheConfig::tiny(16 * 1024, 8));
        for &a in &addrs {
            c.access(a as u64);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        prop_assert!(s.misses <= s.accesses);
    }

    #[test]
    fn immediate_repeat_always_hits(addrs in proptest::collection::vec(any::<u32>(), 1..2000)) {
        let mut c = SetAssocCache::new(CacheConfig::tiny(16 * 1024, 8));
        for &a in &addrs {
            c.access(a as u64);
            prop_assert!(c.access(a as u64), "immediate re-access of {a} missed");
        }
    }

    #[test]
    fn working_set_within_one_way_set_never_evicts(
        lines in proptest::collection::vec(0u64..4, 1..200),
    ) {
        // 4 distinct lines mapping anywhere in a 8-way cache: after
        // the first (cold) touch of each line, everything hits.
        let mut c = SetAssocCache::new(CacheConfig::tiny(64 * 1024, 8));
        let mut seen = std::collections::HashSet::new();
        for &l in &lines {
            let hit = c.access(l * 64);
            if seen.contains(&l) {
                prop_assert!(hit);
            }
            seen.insert(l);
        }
    }

    #[test]
    fn hierarchy_llc_traffic_is_a_subset(
        addrs in proptest::collection::vec(any::<u32>(), 0..3000),
    ) {
        let mut h = CacheHierarchy::new(
            CacheConfig::tiny(4 * 1024, 8),
            CacheConfig::tiny(32 * 1024, 16),
        );
        for &a in &addrs {
            h.access(a as u64);
        }
        let llc = h.llc_stats();
        prop_assert!(llc.accesses <= addrs.len() as u64);
        prop_assert!(llc.misses <= llc.accesses);
    }

    #[test]
    fn probe_report_totals_are_consistent(
        kinds in proptest::collection::vec(0u8..3, 0..2000),
    ) {
        let probe = LlcProbe::new(CacheConfig::tiny(8 * 1024, 4));
        for (i, &k) in kinds.iter().enumerate() {
            let kind = match k {
                0 => AccessKind::Edge,
                1 => AccessKind::SrcMeta,
                _ => AccessKind::DstMeta,
            };
            probe.touch(kind, (i as u64) * 64 % (1 << 20));
        }
        let r = probe.report();
        prop_assert_eq!(r.total().accesses, kinds.len() as u64);
        let per_kind_sum: u64 = AccessKind::ALL.iter().map(|&k| r.kind(k).accesses).sum();
        prop_assert_eq!(per_kind_sum, kinds.len() as u64);
    }
}

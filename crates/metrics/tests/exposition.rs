//! Prometheus text exposition conformance tests: label escaping,
//! histogram bucket cumulativity + `+Inf`, and counter monotonicity
//! across scrapes under concurrent increments.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use egraph_metrics::{Histogram, MetricsRegistry};

/// Pull the value of the first sample line for `name{...labels...}`.
fn sample_value(text: &str, prefix: &str) -> f64 {
    let line = text
        .lines()
        .find(|l| l.starts_with(prefix) && !l.starts_with('#'))
        .unwrap_or_else(|| panic!("no sample starting with `{prefix}` in:\n{text}"));
    line.rsplit(' ').next().unwrap().parse().unwrap()
}

#[test]
fn label_values_escape_quotes_backslashes_newlines() {
    let r = MetricsRegistry::new();
    r.counter_with_labels(
        "weird_total",
        "weird labels",
        &[
            ("quote", "say \"hi\""),
            ("slash", r"C:\graphs"),
            ("newline", "two\nlines"),
        ],
    )
    .add(7);
    let text = r.render();
    let line = text
        .lines()
        .find(|l| l.starts_with("weird_total{"))
        .expect("sample line");
    assert!(
        line.contains(r#"quote="say \"hi\"""#),
        "quotes must be escaped: {line}"
    );
    assert!(
        line.contains(r#"slash="C:\\graphs""#),
        "backslashes must be escaped: {line}"
    );
    assert!(
        line.contains(r#"newline="two\nlines""#),
        "newlines must be escaped to literal \\n: {line}"
    );
    assert!(line.ends_with(" 7"), "value preserved: {line}");
    assert!(
        !line.contains('\n') || line.lines().count() == 1,
        "sample must stay on one physical line"
    );
}

#[test]
fn help_text_escapes_newlines_and_backslashes() {
    let r = MetricsRegistry::new();
    r.counter("h_total", "first\nsecond \\ third").add(1);
    let text = r.render();
    assert!(
        text.contains("# HELP h_total first\\nsecond \\\\ third"),
        "HELP escaping:\n{text}"
    );
}

#[test]
fn histogram_buckets_are_cumulative_and_inf_terminated() {
    let r = MetricsRegistry::new();
    let h = r.histogram_with_bounds("lat_seconds", "latency", &[], vec![0.5, 1.0, 2.0, 4.0]);
    for v in [0.1, 0.4, 0.9, 1.5, 3.0, 3.5, 99.0] {
        h.observe(v);
    }
    let text = r.render();
    let b = |le: &str| sample_value(&text, &format!("lat_seconds_bucket{{le=\"{le}\"}}"));
    assert_eq!(b("0.5"), 2.0);
    assert_eq!(b("1"), 3.0);
    assert_eq!(b("2"), 4.0);
    assert_eq!(b("4"), 6.0);
    assert_eq!(b("+Inf"), 7.0, "+Inf bucket equals total count");
    // Cumulativity: every bucket ≥ the previous one.
    let mut prev = 0.0;
    for le in ["0.5", "1", "2", "4", "+Inf"] {
        let v = b(le);
        assert!(v >= prev, "bucket le={le} regressed: {v} < {prev}");
        prev = v;
    }
    assert_eq!(sample_value(&text, "lat_seconds_count"), 7.0);
    let sum: f64 = [0.1, 0.4, 0.9, 1.5, 3.0, 3.5, 99.0].iter().sum();
    assert!((sample_value(&text, "lat_seconds_sum") - sum).abs() < 1e-9);
}

#[test]
fn histogram_observation_above_all_bounds_only_counts_in_inf() {
    let r = MetricsRegistry::new();
    let h = r.histogram_with_bounds("big", "big values", &[], vec![1.0]);
    h.observe(1e12);
    let text = r.render();
    assert_eq!(sample_value(&text, "big_bucket{le=\"1\"}"), 0.0);
    assert_eq!(sample_value(&text, "big_bucket{le=\"+Inf\"}"), 1.0);
}

#[test]
fn counters_monotonic_across_scrapes_under_concurrent_increments() {
    let r = Arc::new(MetricsRegistry::new());
    let c = r.counter("busy_total", "incremented concurrently");
    let h = r.histogram_with_bounds("busy_seconds", "hist", &[], Histogram::log2_bounds(-4, 4));
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..4)
        .map(|i| {
            let c = c.clone();
            let h = h.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    c.inc();
                    h.observe((i as f64 + 1.0) * 0.1);
                    n += 1;
                }
                n
            })
        })
        .collect();

    let mut prev_counter = -1.0;
    let mut prev_inf = -1.0;
    for _ in 0..50 {
        let text = r.render();
        let v = sample_value(&text, "busy_total ");
        let inf = sample_value(&text, "busy_seconds_bucket{le=\"+Inf\"}");
        let count = sample_value(&text, "busy_seconds_count");
        assert!(
            v >= prev_counter,
            "counter went backwards across scrapes: {v} < {prev_counter}"
        );
        assert!(
            inf >= prev_inf,
            "+Inf bucket went backwards across scrapes: {inf} < {prev_inf}"
        );
        assert!(
            inf <= count + 1e-9 && count <= inf + 1e-9,
            "+Inf bucket must equal count: {inf} vs {count}"
        );
        prev_counter = v;
        prev_inf = inf;
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    let text = r.render();
    assert_eq!(sample_value(&text, "busy_total ") as u64, total);
    assert_eq!(sample_value(&text, "busy_seconds_count") as u64, total);
}

#[test]
fn scrape_time_callbacks_render_as_their_kind() {
    let r = MetricsRegistry::new();
    r.counter_fn("cb_total", "callback counter", || 42.0);
    r.gauge_fn("cb_gauge", "callback gauge", || -1.5);
    let text = r.render();
    assert!(text.contains("# TYPE cb_total counter"));
    assert!(text.contains("cb_total 42"));
    assert!(text.contains("# TYPE cb_gauge gauge"));
    assert!(text.contains("cb_gauge -1.5"));
}

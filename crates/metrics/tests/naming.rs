//! Metric-naming conventions gate: every built-in metric family this
//! crate registers must pass [`MetricsRegistry::lint_names`] — counters
//! end in `_total`, seconds histograms in `_seconds`, and all names and
//! label keys use the Prometheus charset. Offenders fail CI here before
//! a scrape ever sees them.
//!
//! Only *clean* registrations may touch the global registry in this
//! binary (tests run in parallel and lint reads everything registered);
//! violation shapes are covered by unit tests on local registries.

use egraph_metrics::{global, register_alloc_metrics, register_pool_metrics};

#[test]
fn built_in_metric_families_pass_the_naming_lint() {
    register_pool_metrics();
    register_alloc_metrics();
    let violations = global().lint_names();
    assert!(violations.is_empty(), "naming violations: {violations:?}");
}

#[test]
fn serve_style_labelled_registrations_pass_the_naming_lint() {
    let r = global();
    r.histogram_seconds_with_labels(
        "egraph_serve_queue_seconds",
        "lint shape check",
        &[("algo", "bfs"), ("layout", "adj")],
    );
    r.counter_with_labels(
        "egraph_serve_queries_total",
        "lint shape check",
        &[("algo", "bfs")],
    );
    let violations = r.lint_names();
    assert!(violations.is_empty(), "naming violations: {violations:?}");
}

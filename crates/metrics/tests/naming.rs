//! Metric-naming conventions gate: every built-in metric family this
//! crate registers must pass [`MetricsRegistry::lint_names`] — counters
//! end in `_total`, seconds histograms in `_seconds`, and all names and
//! label keys use the Prometheus charset. Offenders fail CI here before
//! a scrape ever sees them.
//!
//! Only *clean* registrations may touch the global registry in this
//! binary (tests run in parallel and lint reads everything registered);
//! violation shapes are covered by unit tests on local registries.

use egraph_metrics::{global, register_alloc_metrics, register_pool_metrics};

#[test]
fn built_in_metric_families_pass_the_naming_lint() {
    register_pool_metrics();
    register_alloc_metrics();
    let violations = global().lint_names();
    assert!(violations.is_empty(), "naming violations: {violations:?}");
}

#[test]
fn iteration_telemetry_families_pass_the_naming_lint() {
    // The exact shapes `egraph run --metrics-addr` registers for the
    // per-iteration stream (schema-v4 telemetry): histograms for the
    // step distributions, a counter for direction flips, and a gauge
    // for the live iteration index.
    let r = global();
    r.histogram_seconds("egraph_iter_seconds", "lint shape check");
    r.histogram_with_bounds(
        "egraph_iter_density",
        "lint shape check",
        &[],
        vec![0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0],
    );
    r.histogram_with_bounds(
        "egraph_iter_frontier_vertices",
        "lint shape check",
        &[],
        egraph_metrics::Histogram::log2_bounds(0, 30),
    );
    r.counter("egraph_iter_direction_flips_total", "lint shape check");
    r.gauge("egraph_iter_current", "lint shape check");
    let violations = r.lint_names();
    assert!(violations.is_empty(), "naming violations: {violations:?}");
}

#[test]
fn serve_style_labelled_registrations_pass_the_naming_lint() {
    let r = global();
    r.histogram_seconds_with_labels(
        "egraph_serve_queue_seconds",
        "lint shape check",
        &[("algo", "bfs"), ("layout", "adj")],
    );
    r.counter_with_labels(
        "egraph_serve_queries_total",
        "lint shape check",
        &[("algo", "bfs")],
    );
    let violations = r.lint_names();
    assert!(violations.is_empty(), "naming violations: {violations:?}");
}

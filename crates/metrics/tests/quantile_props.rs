//! Property tests for histogram quantile estimation against exact
//! references.
//!
//! With rank `r = q·n`, the estimator picks the first bucket whose
//! cumulative count reaches `r`; the exact `q`-quantile (the
//! `⌈r⌉`-th smallest observation) lies in that same bucket. The
//! estimate must therefore always fall within the exact value's bucket
//! — a one-bucket (≤2× for log2 bounds) error guarantee, not just a
//! smoke check.

use egraph_metrics::{Histogram, MetricsRegistry};
use proptest::prelude::*;

/// The exact quantile under the estimator's rank definition.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank - 1]
}

/// The `[lower, upper]` log2 bucket containing `value`.
fn bucket_of(bounds: &[f64], value: f64) -> (f64, f64) {
    let mut lower = 0.0;
    for &upper in bounds {
        if value <= upper {
            return (lower, upper);
        }
        lower = upper;
    }
    (lower, f64::INFINITY)
}

proptest! {
    #[test]
    fn estimate_lands_in_the_exact_quantiles_bucket(
        raw_us in proptest::collection::vec(1u64..10_000_000, 1..200),
        q_millis in 0u32..=1000,
    ) {
        let q = f64::from(q_millis) / 1000.0;
        let r = MetricsRegistry::new();
        let h = r.histogram_seconds("qp_seconds", "quantile property");
        let mut values: Vec<f64> = raw_us.iter().map(|&us| us as f64 * 1e-6).collect();
        for &v in &values {
            h.observe(v);
        }
        values.sort_by(f64::total_cmp);
        let exact = exact_quantile(&values, q);
        let (lower, upper) = bucket_of(h.bounds(), exact);
        let est = h.quantile(q).expect("non-empty histogram");
        prop_assert!(
            (lower..=upper).contains(&est),
            "q={q} exact={exact} bucket=({lower}, {upper}] est={est}"
        );
    }

    #[test]
    fn known_distributions_match_exact_within_a_factor_of_two(
        scale_us in 1u64..100_000,
    ) {
        // Uniform 1..=100 multiples of the scale: exact percentiles are
        // known in closed form; the log2-bucket estimate may be off by
        // at most its bucket width. The scale keeps every value under
        // the 16 s top bound so nothing lands in +Inf.
        let r = MetricsRegistry::new();
        let h = r.histogram_seconds("kd_seconds", "known distribution");
        let step = scale_us as f64 * 1e-6;
        for i in 1..=100u32 {
            h.observe(f64::from(i) * step);
        }
        for (q, exact_multiple) in [(0.5, 50.0), (0.9, 90.0), (0.99, 99.0)] {
            let exact: f64 = exact_multiple * step;
            let est = h.quantile(q).expect("non-empty histogram");
            prop_assert!(
                est >= exact / 2.0 && est <= exact * 2.0,
                "q={q} exact={exact} est={est}"
            );
        }
    }
}

#[test]
fn quantiles_are_monotone_in_q() {
    let r = MetricsRegistry::new();
    let h = r.histogram_with_bounds("mono", "monotonicity", &[], Histogram::log2_bounds(-10, 4));
    for i in 1..=1000u32 {
        h.observe(f64::from(i) * 1e-3);
    }
    let mut last = 0.0;
    for q_millis in 0..=1000u32 {
        let est = h.quantile(f64::from(q_millis) / 1000.0).unwrap();
        assert!(est >= last, "quantile not monotone at q={q_millis}/1000");
        last = est;
    }
}

//! Tests that run with `TrackingAlloc` actually installed as the global
//! allocator. This integration-test binary installs it unconditionally,
//! so tier-1 `cargo test` exercises the installed code path without any
//! cargo feature; production binaries install the same static behind
//! their `alloc-track` feature.

use std::sync::Mutex;

use egraph_metrics::alloc::{self, TrackingAlloc};

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

// Phase windows publish to a process-global tag; serialize the tests
// that open windows so concurrent test threads don't cross-attribute.
static WINDOW_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn installed_allocator_accounts_bytes_and_peaks() {
    let _guard = WINDOW_LOCK.lock().unwrap();
    assert!(
        alloc::tracking_installed(),
        "allocator observed allocations"
    );

    let before = alloc::totals();
    const N: usize = 1 << 20;
    let window = alloc::window("algorithm");
    let buf: Vec<u8> = vec![42u8; N];
    std::hint::black_box(&buf);
    let held_live = alloc::live_bytes();
    drop(buf);
    let stats = window.finish();
    let after = alloc::totals();

    assert!(
        after.allocated_bytes >= before.allocated_bytes + N as u64,
        "1 MiB allocation must be counted: {} -> {}",
        before.allocated_bytes,
        after.allocated_bytes
    );
    assert!(after.alloc_calls > before.alloc_calls);
    assert!(
        held_live >= N as u64,
        "live bytes track the held buffer: {held_live}"
    );
    assert!(
        stats.allocated_bytes >= N as u64,
        "window attributes the allocation to its phase: {stats:?}"
    );
    assert!(
        stats.freed_bytes >= N as u64,
        "drop inside the window is attributed too: {stats:?}"
    );
    assert!(
        stats.peak_bytes >= N as u64,
        "peak covers the buffer: {stats:?}"
    );
    assert!(alloc::peak_bytes() >= stats.peak_bytes);
}

#[test]
fn worker_thread_allocations_attribute_to_open_window() {
    let _guard = WINDOW_LOCK.lock().unwrap();
    let window = alloc::window("preprocess");
    let handle = std::thread::spawn(|| {
        let v: Vec<u64> = (0..100_000).collect();
        std::hint::black_box(&v);
        drop(v);
    });
    handle.join().unwrap();
    let stats = window.finish();
    assert!(
        stats.allocated_bytes >= 800_000,
        "allocations from a thread spawned inside the window count: {stats:?}"
    );
}

#[test]
fn thread_local_override_beats_window_phase() {
    let _guard = WINDOW_LOCK.lock().unwrap();
    let window = alloc::window("load");
    let handle = std::thread::spawn(|| {
        // This thread opts out of the window's phase; its allocations
        // must not be attributed to `load`.
        alloc::set_thread_phase(Some(0));
        let v: Vec<u64> = (0..200_000).collect();
        std::hint::black_box(&v);
        drop(v);
        alloc::set_thread_phase(None);
    });
    handle.join().unwrap();
    let stats = window.finish();
    assert!(
        stats.allocated_bytes < 800_000,
        "overridden thread's 1.6 MB must not land in the window: {stats:?}"
    );
}

#[test]
fn rss_and_live_agree_on_order_of_magnitude() {
    if let Some(rss) = alloc::rss_bytes() {
        assert!(
            rss >= alloc::live_bytes() / 4,
            "RSS ({rss}) should not be wildly below live heap ({})",
            alloc::live_bytes()
        );
    }
}

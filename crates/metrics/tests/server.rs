//! End-to-end tests of the `/metrics` endpoint over a real TCP socket.

use std::io::{Read, Write};
use std::net::TcpStream;

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

#[test]
fn serves_metrics_healthz_and_404() {
    egraph_metrics::global()
        .counter("server_test_requests_total", "test counter")
        .add(9);
    let server = egraph_metrics::serve("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.addr();
    assert_ne!(addr.port(), 0, "ephemeral port resolved");

    let metrics = get(addr, "/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"), "{metrics}");
    assert!(
        metrics.contains("text/plain; version=0.0.4"),
        "exposition content type: {metrics}"
    );
    assert!(
        metrics.contains("server_test_requests_total 9"),
        "body carries registry contents: {metrics}"
    );

    let health = get(addr, "/healthz");
    assert!(health.starts_with("HTTP/1.1 200 OK\r\n"));
    assert!(health.ends_with("ok\n"));

    let missing = get(addr, "/nope");
    assert!(missing.starts_with("HTTP/1.1 404"));

    // Sequential scrapes keep working (Connection: close per request).
    let again = get(addr, "/metrics");
    assert!(again.starts_with("HTTP/1.1 200 OK\r\n"));

    server.shutdown();
}

#[test]
fn shutdown_frees_the_port() {
    let server = egraph_metrics::serve("127.0.0.1:0").expect("bind");
    let addr = server.addr();
    server.shutdown();
    // After shutdown nothing is listening; a fresh bind to the same port
    // must succeed.
    let rebound = std::net::TcpListener::bind(addr).expect("port released after shutdown");
    drop(rebound);
}

//! Allocation tracking: a [`GlobalAlloc`] wrapper over the system
//! allocator that attributes allocated / freed / peak-live bytes to the
//! current telemetry phase, plus a `/proc/self/statm` RSS sampler as the
//! always-available fallback.
//!
//! # Design constraints
//!
//! The accounting path runs *inside* `alloc`/`dealloc`, so it must never
//! allocate, lock, or re-enter the allocator: it touches only `static`
//! atomics and one `const`-initialized thread-local `Cell` (read through
//! [`std::thread::LocalKey::try_with`] so allocations during TLS
//! teardown stay safe).
//!
//! # Phase attribution
//!
//! A phase *window* ([`window`]) publishes its phase id to a process-wide
//! atomic; threads (including pool workers spawned inside the window)
//! attribute to that phase unless they carry a thread-local override set
//! with [`set_thread_phase`]. Windows are how `PhaseProfiler` brackets
//! the load/preprocess/algorithm/store phases: entering a window
//! re-baselines the phase's peak to the current live bytes, so the
//! reported `peak_bytes` is the maximum *total live heap* observed while
//! the window was open.
//!
//! # Installation
//!
//! The wrapper only observes anything when a binary installs it:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: egraph_metrics::alloc::TrackingAlloc = egraph_metrics::alloc::TrackingAlloc;
//! ```
//!
//! Binaries in this workspace gate that line behind their `alloc-track`
//! cargo feature. Every stats accessor is safe to call regardless and
//! reads as zero when the allocator is not installed
//! ([`tracking_installed`] distinguishes the cases).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Maximum number of distinct phase tags (slot 0 is the untagged
/// catch-all; phases past the limit also fold into slot 0).
pub const MAX_PHASES: usize = 32;

/// Sentinel for "no thread-local override".
const NO_PHASE: usize = usize::MAX;

struct PhaseSlot {
    allocated: AtomicU64,
    freed: AtomicU64,
    allocs: AtomicU64,
    frees: AtomicU64,
    /// Peak total-live bytes observed while this phase was current.
    /// Re-baselined by [`window`] at entry.
    peak_live: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_SLOT: PhaseSlot = PhaseSlot {
    allocated: AtomicU64::new(0),
    freed: AtomicU64::new(0),
    allocs: AtomicU64::new(0),
    frees: AtomicU64::new(0),
    peak_live: AtomicU64::new(0),
};

static PHASES: [PhaseSlot; MAX_PHASES] = [ZERO_SLOT; MAX_PHASES];

static LIVE: AtomicU64 = AtomicU64::new(0);
static GLOBAL_PEAK: AtomicU64 = AtomicU64::new(0);
static INSTALLED: AtomicBool = AtomicBool::new(false);
/// Process-wide current phase, published by [`window`].
static CURRENT_PHASE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_PHASE: Cell<usize> = const { Cell::new(NO_PHASE) };
}

#[inline]
fn current_phase() -> usize {
    let tl = THREAD_PHASE.try_with(Cell::get).unwrap_or(NO_PHASE);
    let phase = if tl != NO_PHASE {
        tl
    } else {
        CURRENT_PHASE.load(Ordering::Relaxed)
    };
    if phase < MAX_PHASES {
        phase
    } else {
        0
    }
}

#[inline]
fn on_alloc(size: usize) {
    if !INSTALLED.load(Ordering::Relaxed) {
        INSTALLED.store(true, Ordering::Relaxed);
    }
    let size = size as u64;
    let slot = &PHASES[current_phase()];
    slot.allocated.fetch_add(size, Ordering::Relaxed);
    slot.allocs.fetch_add(1, Ordering::Relaxed);
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    slot.peak_live.fetch_max(live, Ordering::Relaxed);
    GLOBAL_PEAK.fetch_max(live, Ordering::Relaxed);
}

#[inline]
fn on_free(size: usize) {
    let size = size as u64;
    let slot = &PHASES[current_phase()];
    slot.freed.fetch_add(size, Ordering::Relaxed);
    slot.frees.fetch_add(1, Ordering::Relaxed);
    // Saturating: a shrinking realloc races LIVE through two updates, and
    // the counter must never wrap past zero.
    let _ = LIVE.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_sub(size))
    });
}

/// Tracking wrapper over [`std::alloc::System`]. Install as
/// `#[global_allocator]` to activate accounting.
pub struct TrackingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the extra
// bookkeeping touches only atomics and a const-init thread-local.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_free(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_free(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Whether [`TrackingAlloc`] is installed and has observed at least one
/// allocation (in practice: immediately true at startup when installed).
pub fn tracking_installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Heap bytes currently live (0 when not installed).
pub fn live_bytes() -> u64 {
    LIVE.load(Ordering::Relaxed)
}

/// Peak live heap bytes since process start (0 when not installed).
pub fn peak_bytes() -> u64 {
    GLOBAL_PEAK.load(Ordering::Relaxed)
}

/// Totals across every phase slot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocTotals {
    pub allocated_bytes: u64,
    pub freed_bytes: u64,
    pub alloc_calls: u64,
    pub free_calls: u64,
}

/// Sum allocation totals across all phases.
pub fn totals() -> AllocTotals {
    let mut t = AllocTotals::default();
    for slot in &PHASES {
        t.allocated_bytes += slot.allocated.load(Ordering::Relaxed);
        t.freed_bytes += slot.freed.load(Ordering::Relaxed);
        t.alloc_calls += slot.allocs.load(Ordering::Relaxed);
        t.free_calls += slot.frees.load(Ordering::Relaxed);
    }
    t
}

/// Set (or clear, with `None`) this thread's phase override. Overrides
/// win over the process-wide window phase.
pub fn set_thread_phase(phase: Option<usize>) {
    let _ = THREAD_PHASE.try_with(|c| c.set(phase.unwrap_or(NO_PHASE)));
}

/// Stats captured by a finished [`PhaseWindow`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseAllocStats {
    /// Bytes allocated while the window was open.
    pub allocated_bytes: u64,
    /// Bytes freed while the window was open.
    pub freed_bytes: u64,
    /// Maximum total live heap bytes observed while the window was open.
    pub peak_bytes: u64,
    /// Live heap bytes when the window opened (subtract from
    /// `peak_bytes` for the window's incremental footprint).
    pub entry_live_bytes: u64,
}

/// An open phase attribution window; see [`window`].
pub struct PhaseWindow {
    phase: usize,
    prev: usize,
    start_allocated: u64,
    start_freed: u64,
    entry_live: u64,
}

/// Open an attribution window for `name`: allocations on every thread
/// without a thread-local override are attributed to this phase until
/// [`PhaseWindow::finish`] runs. Windows are meant to be sequential
/// (phases of one run), not nested across threads.
pub fn window(name: &str) -> PhaseWindow {
    let phase = phase_id(name);
    let entry_live = LIVE.load(Ordering::Relaxed);
    let slot = &PHASES[phase];
    // Re-baseline the peak so it reflects this window, not an earlier
    // window that reused the slot.
    slot.peak_live.store(entry_live, Ordering::Relaxed);
    let prev = CURRENT_PHASE.swap(phase, Ordering::Relaxed);
    PhaseWindow {
        phase,
        prev,
        start_allocated: slot.allocated.load(Ordering::Relaxed),
        start_freed: slot.freed.load(Ordering::Relaxed),
        entry_live,
    }
}

impl PhaseWindow {
    /// Close the window and return what it observed.
    pub fn finish(self) -> PhaseAllocStats {
        let slot = &PHASES[self.phase];
        CURRENT_PHASE.store(self.prev, Ordering::Relaxed);
        PhaseAllocStats {
            allocated_bytes: slot
                .allocated
                .load(Ordering::Relaxed)
                .saturating_sub(self.start_allocated),
            freed_bytes: slot
                .freed
                .load(Ordering::Relaxed)
                .saturating_sub(self.start_freed),
            peak_bytes: slot.peak_live.load(Ordering::Relaxed),
            entry_live_bytes: self.entry_live,
        }
    }
}

/// Intern `name` to a stable phase id (1..MAX_PHASES); unknown names
/// past the table fold into slot 0.
fn phase_id(name: &str) -> usize {
    use parking_lot::Mutex;
    static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut names = NAMES.lock();
    if let Some(i) = names.iter().position(|n| *n == name) {
        return i + 1;
    }
    if names.len() + 1 >= MAX_PHASES {
        return 0;
    }
    names.push(Box::leak(name.to_string().into_boxed_str()));
    names.len()
}

/// Resident set size in bytes from `/proc/self/statm`, or `None` where
/// procfs is unavailable (non-Linux, restricted sandboxes).
pub fn rss_bytes() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident_pages: u64 = text.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages * page_size())
}

/// System page size, read once from `/proc/self/auxv` (`AT_PAGESZ`),
/// defaulting to 4096.
fn page_size() -> u64 {
    static PAGE: OnceLock<u64> = OnceLock::new();
    *PAGE.get_or_init(|| {
        const AT_PAGESZ: u64 = 6;
        if let Ok(raw) = std::fs::read("/proc/self/auxv") {
            for pair in raw.chunks_exact(16) {
                let key = u64::from_ne_bytes(pair[..8].try_into().unwrap());
                let val = u64::from_ne_bytes(pair[8..].try_into().unwrap());
                if key == AT_PAGESZ && val > 0 {
                    return val;
                }
            }
        }
        4096
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary for this module does NOT install TrackingAlloc, so
    // these tests cover the uninstalled/fallback paths; the installed
    // paths live in tests/alloc_track.rs (its own binary with a
    // #[global_allocator]).

    #[test]
    fn uninstalled_stats_read_zero() {
        assert!(!tracking_installed());
        assert_eq!(live_bytes(), 0);
        assert_eq!(peak_bytes(), 0);
        assert_eq!(totals(), AllocTotals::default());
    }

    #[test]
    fn rss_sampler_reports_nonzero_on_linux() {
        if std::path::Path::new("/proc/self/statm").exists() {
            let rss = rss_bytes().expect("statm parse");
            assert!(rss > 0, "resident set should be non-zero, got {rss}");
        }
    }

    #[test]
    fn windows_restore_previous_phase() {
        let w1 = window("load");
        let inner = window("algorithm");
        let _ = inner.finish();
        let s = w1.finish();
        assert_eq!(CURRENT_PHASE.load(Ordering::Relaxed), 0);
        // Nothing installed: all byte counts are zero.
        assert_eq!(s.allocated_bytes, 0);
        assert_eq!(s.peak_bytes, 0);
    }

    #[test]
    fn thread_phase_override_roundtrip() {
        set_thread_phase(Some(3));
        assert_eq!(current_phase(), 3);
        set_thread_phase(Some(MAX_PHASES + 10));
        assert_eq!(current_phase(), 0, "out-of-range folds to untagged");
        set_thread_phase(None);
        assert_eq!(current_phase(), 0);
    }
}

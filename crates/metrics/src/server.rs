//! A minimal `/metrics` + `/healthz` HTTP endpoint on a plain
//! `std::net::TcpListener` accept thread — no external dependencies, no
//! async runtime. Opt-in: nothing listens unless [`serve`] is called.
//!
//! The accept loop polls a non-blocking listener every 25 ms so shutdown
//! (flag set by [`MetricsServer::shutdown`] or `Drop`) is prompt without
//! needing a self-connect. Each request is answered on the accept thread
//! — scrapes are cheap (one registry render) and Prometheus scrapes are
//! serial, so a one-thread server is deliberate.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::registry::global;

/// A listener could not be established on the requested address.
///
/// Carries the offending address so operators see *which* `--listen` /
/// `--metrics-addr` value failed instead of a bare "address in use"
/// panic from a background thread.
#[derive(Debug)]
pub struct BindError {
    addr: String,
    source: std::io::Error,
}

impl BindError {
    /// Wraps an I/O error with the address that produced it.
    pub fn new(addr: impl Into<String>, source: std::io::Error) -> Self {
        Self {
            addr: addr.into(),
            source,
        }
    }

    /// The address that failed to bind.
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

impl std::fmt::Display for BindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot listen on {}: {}", self.addr, self.source)
    }
}

impl std::error::Error for BindError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// What `/healthz` reports for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Start-up work (e.g. graph loading) is still in progress; probes
    /// receive `503 loading`.
    Loading,
    /// The process is ready to serve; probes receive `200 ok`.
    Ready,
}

/// Ready by default so plain `/metrics` endpoints keep answering `ok`
/// without ever touching the health API.
static HEALTH: AtomicU8 = AtomicU8::new(1);

/// Sets the process health reported by every `/healthz` endpoint in
/// this process (the metrics server and the `egraph serve` daemon).
pub fn set_health(health: Health) {
    HEALTH.store(matches!(health, Health::Ready) as u8, Ordering::Relaxed);
}

/// The current process health.
pub fn health() -> Health {
    if HEALTH.load(Ordering::Relaxed) == 1 {
        Health::Ready
    } else {
        Health::Loading
    }
}

/// The `/healthz` status line + body for the current health state.
pub fn healthz_response() -> (&'static str, &'static str) {
    match health() {
        Health::Ready => ("200 OK", "ok\n"),
        Health::Loading => ("503 Service Unavailable", "loading\n"),
    }
}

/// Handle to a running metrics endpoint. Shuts down on drop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .finish()
    }
}

/// Bind `addr` (e.g. `127.0.0.1:9184`, port `0` for ephemeral) and serve
/// the global registry at `/metrics` plus a `/healthz` readiness probe
/// (see [`set_health`]). Returns the handle whose [`MetricsServer::addr`]
/// reports the actual bound address.
///
/// # Errors
///
/// Returns a [`BindError`] naming the requested address when the
/// listener cannot be established.
pub fn serve<A: ToSocketAddrs + std::fmt::Debug>(addr: A) -> Result<MetricsServer, BindError> {
    let wrap = |e: std::io::Error| BindError::new(format!("{addr:?}").replace('"', ""), e);
    let listener = TcpListener::bind(&addr).map_err(wrap)?;
    listener.set_nonblocking(true).map_err(wrap)?;
    let bound = listener.local_addr().map_err(wrap)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("egraph-metrics".into())
        .spawn(move || accept_loop(listener, &stop2))
        .map_err(wrap)?;
    Ok(MetricsServer {
        addr: bound,
        stop,
        thread: Some(thread),
    })
}

impl MetricsServer {
    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = handle(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn handle(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_nonblocking(false)?;
    // Read until the end of the request head (or a small cap — we only
    // need the request line; graph tools don't send bodies).
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                global().render(),
            ),
            "/healthz" => {
                let (status, body) = healthz_response();
                (status, "text/plain; charset=utf-8", body.to_string())
            }
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_string(),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

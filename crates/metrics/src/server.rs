//! A minimal `/metrics` + `/healthz` HTTP endpoint on a plain
//! `std::net::TcpListener` accept thread — no external dependencies, no
//! async runtime. Opt-in: nothing listens unless [`serve`] is called.
//!
//! The accept loop polls a non-blocking listener every 25 ms so shutdown
//! (flag set by [`MetricsServer::shutdown`] or `Drop`) is prompt without
//! needing a self-connect. Each request is answered on the accept thread
//! — scrapes are cheap (one registry render) and Prometheus scrapes are
//! serial, so a one-thread server is deliberate.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::registry::global;

/// Handle to a running metrics endpoint. Shuts down on drop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .finish()
    }
}

/// Bind `addr` (e.g. `127.0.0.1:9184`, port `0` for ephemeral) and serve
/// the global registry at `/metrics` plus a `/healthz` liveness probe.
/// Returns the handle whose [`MetricsServer::addr`] reports the actual
/// bound address.
pub fn serve<A: ToSocketAddrs>(addr: A) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("egraph-metrics".into())
        .spawn(move || accept_loop(listener, &stop2))?;
    Ok(MetricsServer {
        addr,
        stop,
        thread: Some(thread),
    })
}

impl MetricsServer {
    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = handle(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn handle(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_nonblocking(false)?;
    // Read until the end of the request head (or a small cap — we only
    // need the request line; graph tools don't send bodies).
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                global().render(),
            ),
            "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_string(),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

//! Prometheus text exposition format 0.0.4 rendering.
//!
//! One `# HELP` / `# TYPE` pair per metric name (first registration's
//! help wins), all series of a name grouped together, label values
//! escaped per the spec (`\\`, `\"`, `\n`), histograms rendered as
//! cumulative `_bucket{le=...}` series terminated by `le="+Inf"` plus
//! `_sum` and `_count`.

use std::fmt::Write as _;

use crate::registry::{Entry, Instrument, MetricsRegistry};

/// Escape a label value: backslash, double-quote and newline.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape HELP text: backslash and newline (quotes are legal there).
pub fn escape_help(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Format a sample value. Counters hold integers; everything else is a
/// shortest-roundtrip float.
fn fmt_value(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 {
            "+Inf".into()
        } else {
            "-Inf".into()
        }
    } else if v.is_nan() {
        "NaN".into()
    } else {
        format!("{v}")
    }
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn render_entry(out: &mut String, e: &Entry) {
    match &e.instrument {
        Instrument::Counter(c) => {
            let _ = writeln!(
                out,
                "{}{} {}",
                e.name,
                label_block(&e.labels, None),
                c.get()
            );
        }
        Instrument::CounterFn(f) => {
            let _ = writeln!(
                out,
                "{}{} {}",
                e.name,
                label_block(&e.labels, None),
                fmt_value(f())
            );
        }
        Instrument::Gauge(g) => {
            let _ = writeln!(
                out,
                "{}{} {}",
                e.name,
                label_block(&e.labels, None),
                fmt_value(g.get())
            );
        }
        Instrument::GaugeFn(f) => {
            let _ = writeln!(
                out,
                "{}{} {}",
                e.name,
                label_block(&e.labels, None),
                fmt_value(f())
            );
        }
        Instrument::Histogram(h) => {
            // Read count before the buckets: observe() fills the bucket
            // first and bumps the count second, so a concurrent scrape
            // can otherwise see a cumulative bucket above the +Inf total.
            let total = h.count();
            let (cumulative, _) = h.cumulative_counts();
            let total = total.max(cumulative.last().copied().unwrap_or(0));
            for (bound, cum) in h.bounds().iter().zip(&cumulative) {
                let le = fmt_value(*bound);
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    e.name,
                    label_block(&e.labels, Some(("le", &le))),
                    cum
                );
            }
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                e.name,
                label_block(&e.labels, Some(("le", "+Inf"))),
                total
            );
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                e.name,
                label_block(&e.labels, None),
                fmt_value(h.sum())
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                e.name,
                label_block(&e.labels, None),
                total
            );
        }
    }
}

/// Render every metric in `registry` to exposition text.
pub fn render(registry: &MetricsRegistry) -> String {
    let entries = registry.entries.lock();
    let mut out = String::new();
    let mut done: Vec<&str> = Vec::new();
    for e in entries.iter() {
        if done.contains(&e.name.as_str()) {
            continue;
        }
        done.push(&e.name);
        let _ = writeln!(out, "# HELP {} {}", e.name, escape_help(&e.help));
        let _ = writeln!(out, "# TYPE {} {}", e.name, e.type_str());
        for series in entries.iter().filter(|s| s.name == e.name) {
            render_entry(&mut out, series);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes() {
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
        assert_eq!(escape_help("back\\slash\nnew"), "back\\\\slash\\nnew");
    }

    #[test]
    fn grouped_render_with_help_and_type() {
        let r = MetricsRegistry::new();
        r.counter_with_labels("req_total", "requests", &[("kind", "a")])
            .add(1);
        r.gauge("g", "a gauge").set(2.5);
        r.counter_with_labels("req_total", "requests", &[("kind", "b")])
            .add(2);
        let text = r.render();
        let help_lines = text
            .lines()
            .filter(|l| l.starts_with("# HELP req_total"))
            .count();
        assert_eq!(help_lines, 1, "one HELP per name:\n{text}");
        assert!(text.contains("# TYPE req_total counter"));
        assert!(text.contains("req_total{kind=\"a\"} 1"));
        assert!(text.contains("req_total{kind=\"b\"} 2"));
        assert!(text.contains("# TYPE g gauge"));
        assert!(text.contains("g 2.5"));
        // All req_total series contiguous (grouped under one header).
        let lines: Vec<&str> = text.lines().collect();
        let first = lines
            .iter()
            .position(|l| l.starts_with("req_total"))
            .unwrap();
        assert!(lines[first + 1].starts_with("req_total"));
    }
}

//! Process-global metrics registry: counters, gauges and fixed-bucket
//! histograms keyed by `(name, labels)`.
//!
//! Registration takes a slow-path mutex; the returned handles are `Arc`s
//! whose hot-path operations ([`Counter::inc`], [`Histogram::observe`])
//! touch only the caller's padded shard. Scrapes walk the registry under
//! the same mutex but read the shards lock-free, so a live scrape never
//! blocks a worker mid-increment.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::sharded::{ShardedF64, ShardedU64};

/// Unit hint recorded per entry; [`MetricsRegistry::lint_names`] uses it
/// to enforce the `_seconds` suffix convention on duration histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    None,
    Bytes,
    Seconds,
}

/// A monotonically non-decreasing counter.
#[derive(Clone)]
pub struct Counter {
    inner: Arc<ShardedU64>,
}

impl Counter {
    fn new() -> Self {
        Self {
            inner: Arc::new(ShardedU64::new()),
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.inner.add(1);
    }

    /// Increment by `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.inner.add(delta);
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.inner.total()
    }
}

/// A gauge: a value that can move in either direction. Stored as `f64`
/// bits in a single atomic (gauges are set from one place, not
/// hot-path-incremented by many workers).
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    fn new() -> Self {
        Self {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }

    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A histogram with fixed upper-bound buckets plus an implicit `+Inf`
/// terminal bucket. Observations land in the caller's padded shard.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

struct HistogramInner {
    /// Finite upper bounds, strictly increasing. The `+Inf` bucket is
    /// implicit (its cumulative count equals the total count).
    bounds: Vec<f64>,
    /// `bounds.len()` sharded per-bucket counts (non-cumulative).
    buckets: Vec<ShardedU64>,
    count: ShardedU64,
    sum: ShardedF64,
}

impl Histogram {
    fn new(bounds: Vec<f64>) -> Self {
        let buckets = bounds.iter().map(|_| ShardedU64::new()).collect();
        Self {
            inner: Arc::new(HistogramInner {
                bounds,
                buckets,
                count: ShardedU64::new(),
                sum: ShardedF64::new(),
            }),
        }
    }

    /// Log-scale bucket bounds `2^lo ..= 2^hi`, the registry's standard
    /// shape. `log2_buckets(-20, 4)` spans ~1 µs to 16 s for seconds.
    pub fn log2_bounds(lo: i32, hi: i32) -> Vec<f64> {
        (lo..=hi).map(|e| (e as f64).exp2()).collect()
    }

    /// Record one observation.
    pub fn observe(&self, value: f64) {
        let h = &*self.inner;
        for (i, bound) in h.bounds.iter().enumerate() {
            if value <= *bound {
                h.buckets[i].add(1);
                break;
            }
        }
        // Values above every finite bound land only in +Inf (the count).
        h.count.add(1);
        h.sum.add(value);
    }

    /// Finite bucket bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.inner.bounds
    }

    /// Cumulative counts per finite bound, followed by the `+Inf` total.
    pub fn cumulative_counts(&self) -> (Vec<u64>, u64) {
        let mut acc = 0u64;
        let cumulative = self
            .inner
            .buckets
            .iter()
            .map(|b| {
                acc += b.total();
                acc
            })
            .collect();
        (cumulative, self.inner.count.total())
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.inner.sum.total()
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.total()
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) from the bucket counts,
    /// Prometheus `histogram_quantile` style: find the bucket where the
    /// cumulative count first reaches `q * count` and interpolate
    /// linearly inside it (the first bucket's lower bound is `0`).
    ///
    /// Returns `None` for an empty histogram or a `q` outside `[0, 1]`.
    /// Observations above every finite bound cap the estimate at the
    /// highest finite bound, so the error is one bucket's width — with
    /// the standard log2 bounds, a factor of at most 2.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if !(0.0..=1.0).contains(&q) {
            return None;
        }
        let (cumulative, total) = self.cumulative_counts();
        if total == 0 {
            return None;
        }
        // A zero rank would select the first bucket even when it is
        // empty; insist on at least a sliver of one observation.
        let rank = (q * total as f64).max(f64::MIN_POSITIVE);
        let bounds = self.bounds();
        let mut prev_cum = 0u64;
        for (i, &cum) in cumulative.iter().enumerate() {
            if (cum as f64) >= rank {
                let lower = if i == 0 { 0.0 } else { bounds[i - 1] };
                let upper = bounds[i];
                let in_bucket = (cum - prev_cum) as f64;
                let frac = (rank - prev_cum as f64) / in_bucket;
                return Some(lower + (upper - lower) * frac);
            }
            prev_cum = cum;
        }
        // The rank falls in the implicit +Inf bucket.
        bounds.last().copied()
    }
}

/// What a registered entry measures and how to read it at scrape time.
pub(crate) enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    /// Counter whose value is computed at scrape time (e.g. reading the
    /// pool telemetry snapshot). Must be monotonically non-decreasing.
    CounterFn(Box<dyn Fn() -> f64 + Send + Sync>),
    /// Gauge computed at scrape time.
    GaugeFn(Box<dyn Fn() -> f64 + Send + Sync>),
}

pub(crate) struct Entry {
    pub(crate) name: String,
    pub(crate) help: String,
    pub(crate) labels: Vec<(String, String)>,
    pub(crate) unit: Unit,
    pub(crate) instrument: Instrument,
}

impl Entry {
    pub(crate) fn type_str(&self) -> &'static str {
        match self.instrument {
            Instrument::Counter(_) | Instrument::CounterFn(_) => "counter",
            Instrument::Gauge(_) | Instrument::GaugeFn(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// A collection of metrics rendered together by one `/metrics` endpoint.
pub struct MetricsRegistry {
    pub(crate) entries: Mutex<Vec<Entry>>,
}

impl MetricsRegistry {
    pub const fn new() -> Self {
        Self {
            entries: Mutex::new(Vec::new()),
        }
    }

    fn position(entries: &[Entry], name: &str, labels: &[(String, String)]) -> Option<usize> {
        entries
            .iter()
            .position(|e| e.name == name && e.labels == labels)
    }

    /// Register (or fetch the existing) counter for `(name, labels)`.
    ///
    /// # Panics
    /// If the `(name, labels)` pair is already registered as a different
    /// metric kind.
    pub fn counter_with_labels(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let labels = own_labels(labels);
        let mut entries = self.entries.lock();
        if let Some(i) = Self::position(&entries, name, &labels) {
            match &entries[i].instrument {
                Instrument::Counter(c) => return c.clone(),
                _ => panic!(
                    "metric `{name}` already registered as {}",
                    entries[i].type_str()
                ),
            }
        }
        let counter = Counter::new();
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            unit: Unit::None,
            instrument: Instrument::Counter(counter.clone()),
        });
        counter
    }

    /// Register (or fetch the existing) unlabelled counter `name`.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with_labels(name, help, &[])
    }

    /// Register (or fetch the existing) gauge for `(name, labels)`.
    pub fn gauge_with_labels(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let labels = own_labels(labels);
        let mut entries = self.entries.lock();
        if let Some(i) = Self::position(&entries, name, &labels) {
            match &entries[i].instrument {
                Instrument::Gauge(g) => return g.clone(),
                _ => panic!(
                    "metric `{name}` already registered as {}",
                    entries[i].type_str()
                ),
            }
        }
        let gauge = Gauge::new();
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            unit: Unit::None,
            instrument: Instrument::Gauge(gauge.clone()),
        });
        gauge
    }

    /// Register (or fetch the existing) unlabelled gauge `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with_labels(name, help, &[])
    }

    /// Register (or fetch the existing) histogram with explicit finite
    /// bucket bounds (strictly increasing).
    pub fn histogram_with_bounds(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: Vec<f64>,
    ) -> Histogram {
        self.histogram_with_unit(name, help, labels, bounds, Unit::None)
    }

    fn histogram_with_unit(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: Vec<f64>,
        unit: Unit,
    ) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram `{name}`: bucket bounds must be strictly increasing"
        );
        let labels = own_labels(labels);
        let mut entries = self.entries.lock();
        if let Some(i) = Self::position(&entries, name, &labels) {
            match &entries[i].instrument {
                Instrument::Histogram(h) => return h.clone(),
                _ => panic!(
                    "metric `{name}` already registered as {}",
                    entries[i].type_str()
                ),
            }
        }
        let histogram = Histogram::new(bounds);
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            unit,
            instrument: Instrument::Histogram(histogram.clone()),
        });
        histogram
    }

    /// Register (or fetch the existing) histogram with the standard
    /// log2 seconds buckets (~1 µs to 16 s).
    pub fn histogram_seconds(&self, name: &str, help: &str) -> Histogram {
        self.histogram_seconds_with_labels(name, help, &[])
    }

    /// Labelled variant of [`MetricsRegistry::histogram_seconds`] — one
    /// series per label set, the shape the serve engine uses for its
    /// per-algo / per-layout lifecycle-stage histograms.
    pub fn histogram_seconds_with_labels(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Histogram {
        self.histogram_with_unit(
            name,
            help,
            labels,
            Histogram::log2_bounds(-20, 4),
            Unit::Seconds,
        )
    }

    /// Register a counter whose value is computed at scrape time. The
    /// callback must be monotonically non-decreasing. Idempotent: if the
    /// `(name, labels=[])` pair exists, the existing callback is kept.
    pub fn counter_fn<F>(&self, name: &str, help: &str, f: F)
    where
        F: Fn() -> f64 + Send + Sync + 'static,
    {
        let mut entries = self.entries.lock();
        if Self::position(&entries, name, &[]).is_some() {
            return;
        }
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels: Vec::new(),
            unit: Unit::None,
            instrument: Instrument::CounterFn(Box::new(f)),
        });
    }

    /// Register a gauge whose value is computed at scrape time.
    /// Idempotent like [`MetricsRegistry::counter_fn`].
    pub fn gauge_fn<F>(&self, name: &str, help: &str, f: F)
    where
        F: Fn() -> f64 + Send + Sync + 'static,
    {
        let mut entries = self.entries.lock();
        if Self::position(&entries, name, &[]).is_some() {
            return;
        }
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels: Vec::new(),
            unit: Unit::None,
            instrument: Instrument::GaugeFn(Box::new(f)),
        });
    }

    /// Check every registered entry against the repo's metric-naming
    /// conventions and return one human-readable violation per offense:
    ///
    /// - metric names and label keys match the Prometheus charset
    ///   (`[a-zA-Z_:][a-zA-Z0-9_:]*`, no `:` in label keys);
    /// - counters (stored and scrape-time) end in `_total`;
    /// - histograms observing seconds end in `_seconds`;
    /// - the suffixes are honest the other way around too: gauges and
    ///   histograms must not end in `_total` (that suffix promises
    ///   monotonic counter semantics to recording rules), and a
    ///   histogram not observing seconds must not claim `_seconds`.
    ///
    /// An empty vec means the registry is clean; the conventions test
    /// asserts exactly that after registering every built-in family.
    pub fn lint_names(&self) -> Vec<String> {
        fn valid_name(name: &str, allow_colon: bool) -> bool {
            !name.is_empty()
                && name.chars().enumerate().all(|(i, c)| {
                    c.is_ascii_alphabetic()
                        || c == '_'
                        || (allow_colon && c == ':')
                        || (i > 0 && c.is_ascii_digit())
                })
        }
        let entries = self.entries.lock();
        let mut violations = Vec::new();
        for e in entries.iter() {
            if !valid_name(&e.name, true) {
                violations.push(format!("`{}`: invalid metric name", e.name));
            }
            for (key, _) in &e.labels {
                if !valid_name(key, false) {
                    violations.push(format!("`{}`: invalid label key `{key}`", e.name));
                }
            }
            match &e.instrument {
                Instrument::Counter(_) | Instrument::CounterFn(_) => {
                    if !e.name.ends_with("_total") {
                        violations.push(format!("`{}`: counter must end in `_total`", e.name));
                    }
                }
                Instrument::Histogram(_) => {
                    if e.unit == Unit::Seconds && !e.name.ends_with("_seconds") {
                        violations.push(format!(
                            "`{}`: seconds histogram must end in `_seconds`",
                            e.name
                        ));
                    }
                    if e.unit != Unit::Seconds && e.name.ends_with("_seconds") {
                        violations.push(format!(
                            "`{}`: histogram is not observing seconds, drop `_seconds`",
                            e.name
                        ));
                    }
                    if e.name.ends_with("_total") {
                        violations
                            .push(format!("`{}`: histogram must not end in `_total`", e.name));
                    }
                }
                Instrument::Gauge(_) | Instrument::GaugeFn(_) => {
                    if e.name.ends_with("_total") {
                        violations.push(format!(
                            "`{}`: gauge must not end in `_total` (counters own that suffix)",
                            e.name
                        ));
                    }
                }
            }
        }
        violations
    }

    /// Render every registered metric in Prometheus text exposition
    /// format 0.0.4.
    pub fn render(&self) -> String {
        crate::expose::render(self)
    }

    /// Remove every registered metric. Intended for tests.
    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

static GLOBAL: MetricsRegistry = MetricsRegistry::new();

/// The process-global registry served by [`crate::serve`].
pub fn global() -> &'static MetricsRegistry {
    &GLOBAL
}

/// Map an arbitrary dotted counter name (e.g. `engine.edges_examined`)
/// to a valid Prometheus metric name: `[a-zA-Z_:][a-zA-Z0-9_:]*`, with
/// every invalid character replaced by `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let valid =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if valid { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip_and_idempotent_registration() {
        let r = MetricsRegistry::new();
        let c1 = r.counter("requests_total", "requests");
        c1.add(3);
        let c2 = r.counter("requests_total", "requests");
        c2.inc();
        assert_eq!(c1.get(), 4);
        assert_eq!(c2.get(), 4);
    }

    #[test]
    fn labels_distinguish_series() {
        let r = MetricsRegistry::new();
        let a = r.counter_with_labels("ops_total", "ops", &[("kind", "push")]);
        let b = r.counter_with_labels("ops_total", "ops", &[("kind", "pull")]);
        a.add(2);
        b.add(5);
        assert_eq!(a.get(), 2);
        assert_eq!(b.get(), 5);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let r = MetricsRegistry::new();
        r.counter("x_total", "x");
        r.gauge("x_total", "x");
    }

    #[test]
    fn gauge_set_get() {
        let r = MetricsRegistry::new();
        let g = r.gauge("temp", "temperature");
        g.set(-3.5);
        assert_eq!(g.get(), -3.5);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let r = MetricsRegistry::new();
        let h = r.histogram_with_bounds("lat", "latency", &[], vec![1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        let (cum, total) = h.cumulative_counts();
        assert_eq!(cum, vec![1, 2, 3]);
        assert_eq!(total, 4);
        assert!((h.sum() - 105.0).abs() < 1e-9);
    }

    #[test]
    fn log2_bounds_shape() {
        let b = Histogram::log2_bounds(-2, 2);
        assert_eq!(b, vec![0.25, 0.5, 1.0, 2.0, 4.0]);
    }

    #[test]
    fn quantile_interpolates_within_the_right_bucket() {
        let r = MetricsRegistry::new();
        let h = r.histogram_with_bounds("q", "q", &[], vec![1.0, 2.0, 4.0, 8.0]);
        // 10 observations in (2, 4]: every quantile lands in that bucket.
        for _ in 0..10 {
            h.observe(3.0);
        }
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            let est = h.quantile(q).unwrap();
            assert!((2.0..=4.0).contains(&est), "q={q} est={est}");
        }
        // The median of 10×3.0 + 10×7.0 sits at the boundary between the
        // two occupied buckets; p25 and p75 must stay inside their own.
        for _ in 0..10 {
            h.observe(7.0);
        }
        let p25 = h.quantile(0.25).unwrap();
        let p75 = h.quantile(0.75).unwrap();
        assert!((2.0..=4.0).contains(&p25), "p25={p25}");
        assert!((4.0..=8.0).contains(&p75), "p75={p75}");
    }

    #[test]
    fn quantile_edge_cases() {
        let r = MetricsRegistry::new();
        let h = r.histogram_with_bounds("qe", "qe", &[], vec![1.0, 2.0]);
        assert_eq!(h.quantile(0.5), None, "empty histogram");
        h.observe(0.5);
        assert_eq!(h.quantile(-0.1), None);
        assert_eq!(h.quantile(1.1), None);
        // Overflow observations cap at the highest finite bound.
        h.observe(1e9);
        assert_eq!(h.quantile(1.0), Some(2.0));
    }

    #[test]
    fn lint_names_flags_each_convention_violation() {
        let r = MetricsRegistry::new();
        r.counter("good_total", "ok");
        r.gauge("any_gauge_name", "gauges are free-form");
        r.histogram_seconds("good_seconds", "ok");
        r.histogram_with_bounds("raw_sizes", "unit-less is fine", &[], vec![1.0]);
        assert_eq!(r.lint_names(), Vec::<String>::new());

        r.counter("bad_counter", "missing _total");
        r.histogram_seconds_with_labels("bad_latency", "missing _seconds", &[("algo", "bfs")]);
        let violations = r.lint_names();
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].contains("bad_counter"));
        assert!(violations[1].contains("bad_latency"));
    }

    #[test]
    fn lint_names_flags_dishonest_suffixes() {
        // A gauge claiming `_total` masquerades as a counter.
        let r = MetricsRegistry::new();
        r.gauge("connections_total", "not actually monotonic");
        let violations = r.lint_names();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("connections_total"));

        // A unit-less histogram claiming `_seconds` lies about its unit;
        // one claiming `_total` lies about its kind.
        let r = MetricsRegistry::new();
        r.histogram_with_bounds("queue_depth_seconds", "depths", &[], vec![1.0, 8.0]);
        r.histogram_with_bounds("waves_total", "sizes", &[], vec![1.0, 8.0]);
        let violations = r.lint_names();
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].contains("queue_depth_seconds"));
        assert!(violations[1].contains("waves_total"));
    }

    #[test]
    fn sanitize_names() {
        assert_eq!(
            sanitize_metric_name("engine.edges_examined"),
            "engine_edges_examined"
        );
        assert_eq!(sanitize_metric_name("9lives"), "_lives");
        assert_eq!(sanitize_metric_name("a9"), "a9");
        assert_eq!(sanitize_metric_name(""), "_");
    }
}

//! Live metrics and memory observability for the EverythingGraph runtime.
//!
//! Three layers, all zero-external-dependency:
//!
//! * [`registry`] — a process-global metrics registry holding counters,
//!   gauges and fixed-log-bucket histograms. Hot-path increments land in
//!   cache-line-padded per-worker shards ([`sharded`]) indexed by
//!   [`egraph_parallel::current_worker_index`], so workers never contend
//!   on a shared cache line and a concurrent scrape never blocks a
//!   worker. (The registry deliberately does *not* reuse
//!   [`egraph_parallel::WorkerLocal`] directly: `WorkerLocal`'s
//!   exclusive-borrow protocol panics on concurrent access, which is
//!   exactly what a live `/metrics` scrape from a server thread would
//!   trigger. The padded-shard layout keeps the same worker-local idea
//!   while staying lock-free for readers.)
//! * [`expose`] — Prometheus text exposition format 0.0.4 rendering with
//!   full label escaping, cumulative histogram buckets and a `+Inf`
//!   terminal bucket.
//! * [`server`] — an opt-in `/metrics` + `/healthz` HTTP endpoint on a
//!   plain `std::net::TcpListener` accept thread.
//!
//! The fourth piece, [`alloc`], is a tracking [`core::alloc::GlobalAlloc`]
//! wrapper over the system allocator that attributes allocated / freed /
//! peak-live bytes to the current telemetry phase, plus a
//! `/proc/self/statm` RSS sampler as the always-available fallback.
//! Binaries opt in by installing [`alloc::TrackingAlloc`] as their
//! `#[global_allocator]` (conventionally behind an `alloc-track` cargo
//! feature); the stats API is always safe to call and reads as zero when
//! the allocator is not installed.

pub mod alloc;
pub mod expose;
pub mod registry;
pub mod server;
pub mod sharded;

pub use registry::{
    global, sanitize_metric_name, Counter, Gauge, Histogram, MetricsRegistry, Unit,
};
pub use server::{health, healthz_response, serve, set_health, BindError, Health, MetricsServer};

/// Register gauges/counters for the `egraph-parallel` pool telemetry
/// (steals, busy seconds, regions, chunks, tasks, load imbalance).
///
/// The callbacks read [`egraph_parallel::telemetry::snapshot`] on every
/// scrape, so `/metrics` always reports exactly the totals that a final
/// `RunTrace` records from the same source. Idempotent: repeated calls
/// reuse the existing registrations.
pub fn register_pool_metrics() {
    let r = global();
    r.counter_fn(
        "egraph_pool_steals_total",
        "Chunks obtained by stealing from another worker's deque.",
        || egraph_parallel::telemetry::snapshot().steals as f64,
    );
    r.counter_fn(
        "egraph_pool_regions_total",
        "Parallel regions executed by the pool.",
        || egraph_parallel::telemetry::snapshot().regions as f64,
    );
    r.counter_fn(
        "egraph_pool_chunks_total",
        "Chunks claimed from shared work queues.",
        || egraph_parallel::telemetry::snapshot().chunks as f64,
    );
    r.counter_fn(
        "egraph_pool_tasks_total",
        "Dynamic tasks executed by the pool.",
        || egraph_parallel::telemetry::snapshot().tasks as f64,
    );
    r.counter_fn(
        "egraph_pool_busy_seconds_total",
        "Total worker busy time across all workers.",
        || egraph_parallel::telemetry::snapshot().total_busy_seconds(),
    );
    r.gauge_fn(
        "egraph_pool_load_imbalance",
        "Max worker busy time divided by mean worker busy time (1.0 = perfectly balanced).",
        || egraph_parallel::telemetry::snapshot().load_imbalance(),
    );
}

/// Register gauges/counters for the tracking-allocator statistics and the
/// `/proc/self/statm` RSS fallback. Safe to call whether or not
/// [`alloc::TrackingAlloc`] is installed; uninstalled stats read as zero.
pub fn register_alloc_metrics() {
    let r = global();
    r.gauge_fn(
        "egraph_alloc_live_bytes",
        "Heap bytes currently live according to the tracking allocator (0 if not installed).",
        || alloc::live_bytes() as f64,
    );
    r.gauge_fn(
        "egraph_alloc_peak_bytes",
        "Peak live heap bytes observed by the tracking allocator (0 if not installed).",
        || alloc::peak_bytes() as f64,
    );
    r.counter_fn(
        "egraph_alloc_allocated_bytes_total",
        "Total heap bytes allocated since process start (0 if the tracking allocator is not installed).",
        || alloc::totals().allocated_bytes as f64,
    );
    r.counter_fn(
        "egraph_alloc_freed_bytes_total",
        "Total heap bytes freed since process start (0 if the tracking allocator is not installed).",
        || alloc::totals().freed_bytes as f64,
    );
    r.gauge_fn(
        "egraph_process_resident_bytes",
        "Resident set size sampled from /proc/self/statm (0 where unavailable).",
        || alloc::rss_bytes().unwrap_or(0) as f64,
    );
}

//! Cache-line-padded sharded atomics for contention-free hot-path counting.
//!
//! Each shard lives on its own 128-byte-aligned cache line (two lines on
//! common x86 prefetch pairs). A worker increments the shard matching its
//! pool worker index, so concurrent workers touch disjoint lines; readers
//! sum all shards with relaxed loads. Per-location atomic coherence makes
//! every shard monotonically non-decreasing for counters, so a later
//! scrape can never observe a smaller total than an earlier one.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of shards per sharded value. Power of two so the worker index
/// maps with a mask; 32 covers typical core counts without ballooning the
/// footprint of each metric (32 × 128 B = 4 KiB per sharded counter).
pub const SHARDS: usize = 32;

#[repr(align(128))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Index of the shard the current thread should update.
#[inline]
pub fn shard_index() -> usize {
    egraph_parallel::current_worker_index().unwrap_or(0) & (SHARDS - 1)
}

/// A `u64` split across padded per-worker shards.
pub struct ShardedU64 {
    shards: Box<[PaddedU64]>,
}

impl ShardedU64 {
    pub fn new() -> Self {
        let mut shards = Vec::with_capacity(SHARDS);
        shards.resize_with(SHARDS, PaddedU64::default);
        Self {
            shards: shards.into_boxed_slice(),
        }
    }

    /// Add `delta` to the current worker's shard.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.shards[shard_index()]
            .0
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Sum of all shards. Monotonically non-decreasing across calls when
    /// only `add` is used in between.
    pub fn total(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl Default for ShardedU64 {
    fn default() -> Self {
        Self::new()
    }
}

/// An `f64` accumulator split across padded per-worker shards, stored as
/// bit-patterns in `AtomicU64` and updated with a CAS loop. Used for
/// histogram sums.
pub struct ShardedF64 {
    shards: Box<[PaddedU64]>,
}

impl ShardedF64 {
    pub fn new() -> Self {
        let mut shards = Vec::with_capacity(SHARDS);
        shards.resize_with(SHARDS, PaddedU64::default);
        Self {
            shards: shards.into_boxed_slice(),
        }
    }

    /// Add `delta` to the current worker's shard.
    #[inline]
    pub fn add(&self, delta: f64) {
        let cell = &self.shards[shard_index()].0;
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Sum of all shards.
    pub fn total(&self) -> f64 {
        self.shards
            .iter()
            .map(|s| f64::from_bits(s.0.load(Ordering::Relaxed)))
            .sum()
    }
}

impl Default for ShardedF64 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sharded_u64_sums_across_threads() {
        let v = Arc::new(ShardedU64::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let v = Arc::clone(&v);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        v.add(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(v.total(), 40_000);
    }

    #[test]
    fn sharded_f64_accumulates() {
        let v = ShardedF64::new();
        for _ in 0..1000 {
            v.add(0.5);
        }
        assert!((v.total() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn shard_index_in_range_off_pool() {
        assert!(shard_index() < SHARDS);
    }
}

//! Property tests for the text formats (SNAP and DIMACS): round-trips
//! preserve the graph exactly, and arbitrary corruption — malformed
//! lines, truncation at any byte, random bytes — surfaces as a typed
//! [`TextError`], never a panic.

use egraph_core::types::{Edge, EdgeList, EdgeRecord, WEdge};
use egraph_storage::{read_dimacs, read_snap, write_snap, TextError};
use proptest::prelude::*;

/// Builds an in-bounds edge list from raw (src, dst) draws.
fn edge_list(nv: usize, pairs: &[(u32, u32)]) -> EdgeList<Edge> {
    let edges = pairs
        .iter()
        .map(|&(s, d)| Edge::new(s % nv as u32, d % nv as u32))
        .collect();
    EdgeList::new(nv, edges).unwrap()
}

proptest! {
    #[test]
    fn snap_round_trip_is_exact(
        nv in 1usize..200,
        pairs in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..400),
    ) {
        let graph = edge_list(nv, &pairs);
        let mut text = Vec::new();
        write_snap(&mut text, &graph).unwrap();
        let back: EdgeList<Edge> = read_snap(&text[..], Some(nv))
            .map_err(|e| TestCaseError::fail(format!("round-trip failed: {e}")))?;
        prop_assert_eq!(back.num_vertices(), graph.num_vertices());
        prop_assert_eq!(back.edges(), graph.edges());
    }

    #[test]
    fn weighted_snap_round_trip_preserves_weights(
        nv in 1usize..100,
        triples in proptest::collection::vec((any::<u32>(), any::<u32>(), 1u32..1_000_000), 0..200),
    ) {
        let edges: Vec<WEdge> = triples
            .iter()
            .map(|&(s, d, w)| WEdge::new(s % nv as u32, d % nv as u32, w as f32 / 1024.0))
            .collect();
        let graph = EdgeList::new(nv, edges).unwrap();
        let mut text = Vec::new();
        write_snap(&mut text, &graph).unwrap();
        let back: EdgeList<WEdge> = read_snap(&text[..], Some(nv))
            .map_err(|e| TestCaseError::fail(format!("round-trip failed: {e}")))?;
        for (a, b) in back.edges().iter().zip(graph.edges()) {
            prop_assert_eq!(a.src(), b.src());
            prop_assert_eq!(a.dst(), b.dst());
            // Weights survive the decimal round-trip within print precision.
            prop_assert!((a.weight() - b.weight()).abs() <= b.weight().abs() * 1e-5);
        }
    }

    #[test]
    fn truncated_snap_never_panics(
        nv in 1usize..60,
        pairs in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..60),
        cut_seed in any::<u64>(),
    ) {
        let graph = edge_list(nv, &pairs);
        let mut text = Vec::new();
        write_snap(&mut text, &graph).unwrap();
        let cut = (cut_seed % text.len() as u64) as usize;
        // A truncated SNAP file either parses (the cut fell on a line
        // boundary — the format carries no length header) or fails with
        // a typed parse error; it must never panic.
        match read_snap::<Edge, _>(&text[..cut], Some(nv)) {
            Ok(shorter) => prop_assert!(shorter.num_edges() <= graph.num_edges()),
            Err(TextError::Parse { line, .. }) => prop_assert!(line >= 1),
            Err(TextError::Io(_) | TextError::Graph(_)) => {}
        }
    }

    #[test]
    fn random_bytes_never_panic_either_parser(
        data in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        let _ = read_snap::<Edge, _>(&data[..], None);
        let _ = read_dimacs(&data[..]);
    }

    #[test]
    fn malformed_snap_lines_report_their_line_number(
        good in 0usize..5,
        junk_raw in proptest::collection::vec(0u8..27, 1..20),
    ) {
        // Letters and spaces only: never parseable as vertex ids.
        let junk: String = junk_raw
            .iter()
            .map(|&b| if b == 26 { ' ' } else { (b'a' + b) as char })
            .collect();
        let mut text = String::new();
        for i in 0..good {
            text.push_str(&format!("{i} {i}\n"));
        }
        text.push_str(&junk);
        text.push('\n');
        match read_snap::<Edge, _>(text.as_bytes(), None) {
            Err(TextError::Parse { line, .. }) => prop_assert_eq!(line, good + 1),
            Ok(_) => prop_assert!(
                junk.trim().is_empty(),
                "junk line '{junk}' parsed as an edge"
            ),
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error: {other}"))),
        }
    }

    #[test]
    fn truncated_dimacs_never_panics(
        nv in 1usize..40,
        pairs in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..40),
        cut_seed in any::<u64>(),
    ) {
        let graph = edge_list(nv, &pairs);
        let mut text = format!("p sp {} {}\n", graph.num_vertices(), graph.num_edges());
        for e in graph.edges() {
            text.push_str(&format!("a {} {} 1\n", e.src + 1, e.dst + 1));
        }
        let bytes = text.as_bytes();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        // DIMACS declares its arc count, so any cut before the end must
        // fail with a typed error — a silently shorter graph is a bug.
        match read_dimacs(&bytes[..cut]) {
            Ok(back) => prop_assert_eq!(back.num_edges(), graph.num_edges()),
            Err(TextError::Io(_) | TextError::Parse { .. } | TextError::Graph(_)) => {}
        }
    }

    #[test]
    fn dimacs_rejects_out_of_range_ids(nv in 1u32..50, over in 1u32..10) {
        let text = format!("p sp {nv} 1\na {} 1 1\n", nv + over);
        prop_assert!(matches!(
            read_dimacs(text.as_bytes()),
            Err(TextError::Parse { .. })
        ));
    }
}

#[test]
fn dimacs_round_trip_through_snap_types() {
    // A well-formed DIMACS file parses to the expected 0-based graph.
    let text = "c tiny\np sp 3 2\na 1 2 0.5\na 3 1 2.25\n";
    let g = read_dimacs(text.as_bytes()).unwrap();
    assert_eq!(g.num_vertices(), 3);
    assert_eq!(g.edges(), &[WEdge::new(0, 1, 0.5), WEdge::new(2, 0, 2.25)]);
}

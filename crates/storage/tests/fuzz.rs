//! Failure-injection tests: the reader must return a typed error —
//! never panic, never hand back silently wrong data — for arbitrary
//! corruption of a valid file.

use egraph_core::types::{Edge, EdgeList, WEdge};
use egraph_storage::{read_edge_list, write_edge_list, FormatError};
use proptest::prelude::*;

fn valid_file() -> Vec<u8> {
    let graph = EdgeList::new(
        100,
        (0..500u32)
            .map(|i| Edge::new(i % 100, (i * 7) % 100))
            .collect(),
    )
    .unwrap();
    let mut buf = Vec::new();
    write_edge_list(&mut buf, &graph).unwrap();
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncation_at_any_point_is_detected(cut in 0usize..4032) {
        let mut file = valid_file();
        prop_assume!(cut < file.len());
        file.truncate(cut);
        match read_edge_list::<Edge, _>(&file[..]) {
            Err(_) => {}
            Ok(g) => {
                // Only acceptable if the truncation kept the file valid
                // — impossible here because the header pins the edge
                // count.
                prop_assert_eq!(g.num_edges(), 500, "silently wrong data");
                prop_assert_eq!(cut, valid_file().len());
            }
        }
    }

    #[test]
    fn single_byte_corruption_never_panics(
        pos in 0usize..4032,
        val in any::<u8>(),
    ) {
        let mut file = valid_file();
        prop_assume!(pos < file.len());
        file[pos] = val;
        // Must return *something* without panicking; if it parses, the
        // graph must still be structurally valid.
        if let Ok(g) = read_edge_list::<Edge, _>(&file[..]) {
            for e in g.edges() {
                prop_assert!((e.src as usize) < g.num_vertices());
                prop_assert!((e.dst as usize) < g.num_vertices());
            }
        }
    }

    #[test]
    fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = read_edge_list::<Edge, _>(&data[..]);
        let _ = read_edge_list::<WEdge, _>(&data[..]);
    }

    #[test]
    fn header_edge_count_inflation_is_truncation(extra in 1u64..1000) {
        let mut file = valid_file();
        // num_edges lives at offset 24, little endian.
        let claimed = 500 + extra;
        file[24..32].copy_from_slice(&claimed.to_le_bytes());
        let truncated = matches!(
            read_edge_list::<Edge, _>(&file[..]),
            Err(FormatError::Truncated { .. })
        );
        prop_assert!(truncated);
    }
}

#[test]
fn weighted_and_unweighted_files_are_distinguished() {
    let unweighted = valid_file();
    assert!(matches!(
        read_edge_list::<WEdge, _>(&unweighted[..]),
        Err(FormatError::WeightednessMismatch {
            file_weighted: false,
            requested_weighted: true
        })
    ));
}

//! Plain-text edge-list import/export (SNAP / DIMACS-style).
//!
//! Real datasets — the Twitter follower graph, the DIMACS road graphs —
//! ship as text edge lists. This module reads the two common dialects
//! and writes the simple one, so downstream users can run this system
//! on the paper's actual inputs:
//!
//! * **SNAP**: one `src dst` (or `src\tdst`) pair per line, `#`
//!   comments; weighted variant has a third `weight` column.
//! * **DIMACS `.gr`**: `c` comment lines, one `p sp <n> <m>` problem
//!   line, `a <src> <dst> <weight>` arc lines with **1-based** vertex
//!   ids.

use std::io::{BufRead, BufReader, Read, Write};

use egraph_core::types::{EdgeList, EdgeRecord, GraphError, WEdge};

/// Errors produced while parsing text graph formats.
#[derive(Debug)]
pub enum TextError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number.
    Parse {
        /// Line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The parsed edges do not form a valid graph.
    Graph(GraphError),
}

impl std::fmt::Display for TextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TextError::Io(e) => write!(f, "i/o error: {e}"),
            TextError::Parse { line, message } => write!(f, "line {line}: {message}"),
            TextError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for TextError {}

impl From<std::io::Error> for TextError {
    fn from(e: std::io::Error) -> Self {
        TextError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> TextError {
    TextError::Parse {
        line,
        message: message.into(),
    }
}

/// Reads a SNAP-style edge list: whitespace-separated `src dst
/// [weight]` per line, `#` comments. The vertex count is
/// `max id + 1` unless `num_vertices` pins it.
///
/// # Errors
///
/// Returns [`TextError`] on malformed lines or out-of-range ids.
pub fn read_snap<E: EdgeRecord, R: Read>(
    r: R,
    num_vertices: Option<usize>,
) -> Result<EdgeList<E>, TextError> {
    let _timer = crate::counters::ReadTimer::start();
    let mut edges: Vec<E> = Vec::new();
    let mut max_id = 0u32;
    let mut bytes = 0u64;
    for (i, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        bytes += line.len() as u64 + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let src: u32 = parts
            .next()
            .ok_or_else(|| parse_err(i + 1, "missing source"))?
            .parse()
            .map_err(|_| parse_err(i + 1, "source is not a vertex id"))?;
        let dst: u32 = parts
            .next()
            .ok_or_else(|| parse_err(i + 1, "missing destination"))?
            .parse()
            .map_err(|_| parse_err(i + 1, "destination is not a vertex id"))?;
        let weight: f32 = match parts.next() {
            None => 1.0,
            Some(w) => w
                .parse()
                .map_err(|_| parse_err(i + 1, "weight is not a number"))?,
        };
        if parts.next().is_some() {
            return Err(parse_err(i + 1, "trailing fields"));
        }
        max_id = max_id.max(src).max(dst);
        edges.push(E::new(src, dst, weight));
    }
    let nv = num_vertices.unwrap_or(if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    });
    crate::counters::on_read(bytes, edges.len() as u64);
    EdgeList::new(nv, edges).map_err(TextError::Graph)
}

/// Reads a DIMACS shortest-path `.gr` file (1-based ids, `a` arc
/// lines, weights required).
///
/// # Errors
///
/// Returns [`TextError`] on malformed lines, a missing problem line,
/// or id/count mismatches.
pub fn read_dimacs<R: Read>(r: R) -> Result<EdgeList<WEdge>, TextError> {
    let _timer = crate::counters::ReadTimer::start();
    let mut edges: Vec<WEdge> = Vec::new();
    let mut declared: Option<(usize, usize)> = None;
    let mut bytes = 0u64;
    for (i, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        bytes += line.len() as u64 + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("p ") {
            let mut parts = rest.split_whitespace();
            let kind = parts.next().unwrap_or("");
            if kind != "sp" {
                return Err(parse_err(
                    i + 1,
                    format!("unsupported problem type '{kind}'"),
                ));
            }
            let n: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| parse_err(i + 1, "bad vertex count"))?;
            let m: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| parse_err(i + 1, "bad arc count"))?;
            declared = Some((n, m));
            edges.reserve(m);
            continue;
        }
        if let Some(rest) = line.strip_prefix("a ") {
            let (n, _) = declared.ok_or_else(|| parse_err(i + 1, "arc before problem line"))?;
            let mut parts = rest.split_whitespace();
            let src: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| parse_err(i + 1, "bad source"))?;
            let dst: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| parse_err(i + 1, "bad destination"))?;
            let weight: f32 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| parse_err(i + 1, "bad weight"))?;
            if src == 0 || dst == 0 || src > n || dst > n {
                return Err(parse_err(i + 1, "vertex id out of the declared range"));
            }
            edges.push(WEdge::new(src as u32 - 1, dst as u32 - 1, weight));
            continue;
        }
        return Err(parse_err(i + 1, format!("unrecognized line '{line}'")));
    }
    let (n, m) = declared.ok_or_else(|| parse_err(0, "missing problem line"))?;
    if edges.len() != m {
        return Err(parse_err(
            0,
            format!("problem line declared {m} arcs, file has {}", edges.len()),
        ));
    }
    crate::counters::on_read(bytes, edges.len() as u64);
    EdgeList::new(n, edges).map_err(TextError::Graph)
}

/// Writes a SNAP-style edge list (`src dst` or `src dst weight` per
/// line, with a header comment).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_snap<E: EdgeRecord, W: Write>(mut w: W, graph: &EdgeList<E>) -> std::io::Result<()> {
    writeln!(
        w,
        "# {} vertices, {} edges{}",
        graph.num_vertices(),
        graph.num_edges(),
        if E::WEIGHTED { ", weighted" } else { "" }
    )?;
    let mut buf = String::with_capacity(1 << 16);
    for e in graph.edges() {
        use std::fmt::Write as _;
        if E::WEIGHTED {
            let _ = writeln!(buf, "{} {} {}", e.src(), e.dst(), e.weight());
        } else {
            let _ = writeln!(buf, "{} {}", e.src(), e.dst());
        }
        if buf.len() > (1 << 16) - 64 {
            w.write_all(buf.as_bytes())?;
            buf.clear();
        }
    }
    w.write_all(buf.as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::types::Edge;

    #[test]
    fn snap_roundtrip_unweighted() {
        let graph = EdgeList::new(4, vec![Edge::new(0, 1), Edge::new(3, 2)]).unwrap();
        let mut text = Vec::new();
        write_snap(&mut text, &graph).unwrap();
        let back: EdgeList<Edge> = read_snap(&text[..], None).unwrap();
        assert_eq!(back, graph);
    }

    #[test]
    fn snap_roundtrip_weighted() {
        let graph = EdgeList::new(3, vec![WEdge::new(0, 1, 2.5), WEdge::new(2, 0, 0.25)]).unwrap();
        let mut text = Vec::new();
        write_snap(&mut text, &graph).unwrap();
        let back: EdgeList<WEdge> = read_snap(&text[..], None).unwrap();
        assert_eq!(back, graph);
    }

    #[test]
    fn snap_skips_comments_and_blank_lines() {
        let text = "# header\n\n0 1\n# middle\n1\t2\n";
        let g: EdgeList<Edge> = read_snap(text.as_bytes(), None).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    fn snap_reports_line_numbers() {
        let text = "0 1\nbanana 2\n";
        match read_snap::<Edge, _>(text.as_bytes(), None) {
            Err(TextError::Parse { line: 2, .. }) => {}
            other => panic!("expected parse error on line 2, got {other:?}"),
        }
    }

    #[test]
    fn snap_pinned_vertex_count_validates() {
        let text = "0 5\n";
        assert!(read_snap::<Edge, _>(text.as_bytes(), Some(3)).is_err());
        assert!(read_snap::<Edge, _>(text.as_bytes(), Some(6)).is_ok());
    }

    #[test]
    fn dimacs_parses_one_based_ids() {
        let text = "c example\np sp 3 2\na 1 2 5\na 3 1 7\n";
        let g = read_dimacs(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.edges()[0], WEdge::new(0, 1, 5.0));
        assert_eq!(g.edges()[1], WEdge::new(2, 0, 7.0));
    }

    #[test]
    fn dimacs_detects_count_mismatch() {
        let text = "p sp 3 5\na 1 2 5\n";
        assert!(matches!(
            read_dimacs(text.as_bytes()),
            Err(TextError::Parse { .. })
        ));
    }

    #[test]
    fn dimacs_rejects_out_of_range_ids() {
        let text = "p sp 2 1\na 1 9 5\n";
        assert!(read_dimacs(text.as_bytes()).is_err());
    }

    #[test]
    fn dimacs_rejects_arc_before_problem_line() {
        let text = "a 1 2 5\n";
        assert!(read_dimacs(text.as_bytes()).is_err());
    }

    #[test]
    fn empty_snap_is_empty_graph() {
        let g: EdgeList<Edge> = read_snap("# nothing\n".as_bytes(), None).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}

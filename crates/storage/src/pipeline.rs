//! The loading/pre-processing overlap model (§3.4, Table 3).
//!
//! "Doing a radix sort can only be partially overlapped with loading
//! the graph in memory. In contrast, the dynamic approach of allocating
//! and resizing per-vertex edge arrays can be fully overlapped with
//! loading. For count sort, only the first pass can be overlapped."
//!
//! An [`OverlapPlan`] splits a construction technique's work into the
//! part that runs *while* chunks arrive and the part that must wait for
//! the full array; the makespan is then
//! `max(load, overlapped work) + post work` — a two-stage pipeline with
//! negligible per-chunk latency.

use crate::medium::Medium;

/// A construction technique's overlap structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapPlan {
    /// Seconds of work that can run concurrently with loading (per-chunk
    /// consumption).
    pub overlapped_seconds: f64,
    /// Seconds of work that can only start once loading has finished.
    pub post_seconds: f64,
}

impl OverlapPlan {
    /// Dynamic per-vertex building: all of the measured pre-processing
    /// work streams with the chunks.
    pub fn dynamic(preprocess_seconds: f64) -> Self {
        Self {
            overlapped_seconds: preprocess_seconds,
            post_seconds: 0.0,
        }
    }

    /// Count sort: the counting pass (roughly half the work) streams;
    /// the scatter pass needs the complete array.
    pub fn count_sort(count_pass_seconds: f64, scatter_pass_seconds: f64) -> Self {
        Self {
            overlapped_seconds: count_pass_seconds,
            post_seconds: scatter_pass_seconds,
        }
    }

    /// Radix sort: nothing overlaps — the sort needs the whole array.
    pub fn radix(preprocess_seconds: f64) -> Self {
        Self {
            overlapped_seconds: 0.0,
            post_seconds: preprocess_seconds,
        }
    }

    /// End-to-end seconds to load `bytes` from `medium` and build the
    /// layout.
    pub fn makespan(&self, medium: Medium, bytes: u64) -> f64 {
        let load = medium.load_seconds(bytes);
        load.max(self.overlapped_seconds) + self.post_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1_000_000_000;

    #[test]
    fn dynamic_hides_behind_slow_load() {
        // 10 s of dynamic building under a 20 s load: free.
        let plan = OverlapPlan::dynamic(10.0);
        let hdd_2gb = plan.makespan(Medium::hdd(), 2 * GB);
        assert!((hdd_2gb - 20.0).abs() < 1e-9);
    }

    #[test]
    fn radix_always_pays_in_full() {
        let plan = OverlapPlan::radix(4.0);
        let hdd = plan.makespan(Medium::hdd(), GB);
        assert!((hdd - 14.0).abs() < 1e-9);
    }

    #[test]
    fn table3_ordering_flips_with_medium() {
        // Shape of Table 3: dynamic takes ~20 s of building, radix ~4 s
        // (Table 2's in-memory ratio). On a slow disk the dynamic
        // approach wins because it hides behind the load; in memory the
        // radix sort wins outright.
        let dynamic = OverlapPlan::dynamic(20.0);
        let radix = OverlapPlan::radix(4.0);
        let bytes = 2 * GB;

        let mem_dynamic = dynamic.makespan(Medium::memory(), bytes);
        let mem_radix = radix.makespan(Medium::memory(), bytes);
        assert!(mem_radix < mem_dynamic);

        let hdd_dynamic = dynamic.makespan(Medium::hdd(), bytes);
        let hdd_radix = radix.makespan(Medium::hdd(), bytes);
        assert!(hdd_dynamic < hdd_radix, "{hdd_dynamic} vs {hdd_radix}");
    }

    #[test]
    fn count_sort_overlaps_first_pass_only() {
        let plan = OverlapPlan::count_sort(6.0, 6.0);
        // Fast load: the count pass bounds the first stage.
        let fast = plan.makespan(Medium::ssd(), GB);
        assert!((fast - (6.0f64.max(1e9 / 380e6) + 6.0)).abs() < 1e-9);
        // Slow load: first stage bounded by the load.
        let slow = plan.makespan(Medium::hdd(), 2 * GB);
        assert!((slow - 26.0).abs() < 1e-9);
    }

    #[test]
    fn memory_medium_reduces_to_raw_preprocess() {
        let plan = OverlapPlan::count_sort(3.0, 5.0);
        assert!((plan.makespan(Medium::memory(), GB) - 8.0).abs() < 1e-9);
    }
}

//! Opt-in storage counters: bytes read, records parsed, and time
//! spent in the readers.
//!
//! Same shape as `egraph_parallel::telemetry` — process-global atomics
//! behind one `enabled` gate so the read paths pay a single relaxed
//! load when collection is off. Enable with [`enable`] before loading,
//! read with [`snapshot`] after, and [`reset`] between runs.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static BYTES_READ: AtomicU64 = AtomicU64::new(0);
static RECORDS_PARSED: AtomicU64 = AtomicU64::new(0);
static READ_NANOS: AtomicU64 = AtomicU64::new(0);

/// Turns the storage counters on and zeroes them, starting a fresh
/// collection window (same semantics as
/// `egraph_parallel::telemetry::enable`). Off by default.
pub fn enable() {
    reset();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Registers scrape-time metrics for the storage counters on the
/// global `egraph-metrics` registry. The callbacks read [`snapshot`] on
/// every scrape — the same source an end-of-run `RunTrace` records —
/// so a live `/metrics` scrape and the final trace always agree.
/// Idempotent.
pub fn register_metrics() {
    let r = egraph_metrics::global();
    r.counter_fn(
        "egraph_storage_bytes_read_total",
        "Payload bytes consumed by the storage readers.",
        || snapshot().bytes_read as f64,
    );
    r.counter_fn(
        "egraph_storage_records_parsed_total",
        "Edge records decoded by the storage readers.",
        || snapshot().records_parsed as f64,
    );
    r.counter_fn(
        "egraph_storage_read_seconds_total",
        "Wall seconds spent inside the storage readers.",
        || snapshot().read_seconds,
    );
    r.gauge_fn(
        "egraph_storage_throughput_bytes_per_sec",
        "Read throughput (0 when no read time has been recorded).",
        || snapshot().throughput_bytes_per_sec(),
    );
}

/// Turns the storage counters off (the counts keep their values).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the counters are currently collecting.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes every counter (collection state is unchanged).
pub fn reset() {
    BYTES_READ.store(0, Ordering::Relaxed);
    RECORDS_PARSED.store(0, Ordering::Relaxed);
    READ_NANOS.store(0, Ordering::Relaxed);
}

#[inline]
pub(crate) fn on_read(bytes: u64, records: u64) {
    if enabled() {
        BYTES_READ.fetch_add(bytes, Ordering::Relaxed);
        RECORDS_PARSED.fetch_add(records, Ordering::Relaxed);
    }
}

/// Guard that attributes the time between construction and drop to the
/// reader-seconds counter (only when collection is on at construction).
pub(crate) struct ReadTimer(Option<Instant>);

impl ReadTimer {
    pub(crate) fn start() -> Self {
        Self(enabled().then(Instant::now))
    }
}

impl Drop for ReadTimer {
    fn drop(&mut self) {
        if let Some(start) = self.0 {
            READ_NANOS.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of the storage counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageSnapshot {
    /// Payload bytes consumed by the readers (headers included).
    pub bytes_read: u64,
    /// Edge records decoded.
    pub records_parsed: u64,
    /// Wall seconds spent inside the readers.
    pub read_seconds: f64,
}

impl StorageSnapshot {
    /// Read throughput in bytes per second (0.0 when no time was
    /// recorded).
    pub fn throughput_bytes_per_sec(&self) -> f64 {
        if self.read_seconds > 0.0 {
            self.bytes_read as f64 / self.read_seconds
        } else {
            0.0
        }
    }
}

/// Reads the current counter values.
pub fn snapshot() -> StorageSnapshot {
    StorageSnapshot {
        bytes_read: BYTES_READ.load(Ordering::Relaxed),
        records_parsed: RECORDS_PARSED.load(Ordering::Relaxed),
        read_seconds: READ_NANOS.load(Ordering::Relaxed) as f64 * 1e-9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_handles_zero_time() {
        let snap = StorageSnapshot {
            bytes_read: 100,
            records_parsed: 10,
            read_seconds: 0.0,
        };
        assert_eq!(snap.throughput_bytes_per_sec(), 0.0);
    }

    #[test]
    fn throughput_is_bytes_over_seconds() {
        let snap = StorageSnapshot {
            bytes_read: 1_000,
            records_parsed: 125,
            read_seconds: 2.0,
        };
        assert!((snap.throughput_bytes_per_sec() - 500.0).abs() < 1e-9);
    }
}

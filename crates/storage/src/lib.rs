//! Storage: the binary edge-array format and the loading model.
//!
//! §3.4–3.5 of the paper extend the pre-processing comparison to
//! include the time to load the graph from storage: an SSD
//! (380 MB/s) and a spinning disk (100 MB/s). The key observation is
//! that construction techniques differ in how much of their work can
//! *overlap* with loading — dynamic building overlaps fully, count
//! sort's first pass overlaps, radix sort not at all — which flips the
//! Table 2 ranking on slow media (Table 3).
//!
//! This crate provides:
//!
//! * [`format`](mod@format) — a validated binary edge-array format ("the layout of
//!   edge arrays matches the format of the input file", §3.2), with
//!   whole-file and chunked readers;
//! * [`medium`] — storage-medium presets (memory / SSD / HDD);
//! * [`throttle`] — a real token-bucket throttled reader, for
//!   integration tests that exercise actual streaming;
//! * [`pipeline`] — the virtual-clock overlap model used by the
//!   Table 3 experiment at scales where real sleeping would dominate;
//! * [`fault`] — deterministic I/O fault injection (short reads,
//!   truncation, mid-stream errors) for the conformance harness.

pub mod counters;
pub mod fault;
pub mod format;
pub mod medium;
pub mod pipeline;
pub mod results;
pub mod text;
pub mod throttle;

pub use fault::{FaultedReader, IoFault};
pub use format::{read_edge_list, read_edge_list_chunked, write_edge_list, FormatError};
pub use medium::Medium;
pub use pipeline::OverlapPlan;
pub use results::{read_f32_result, read_u32_result, write_f32_result, write_u32_result};
pub use text::{read_dimacs, read_snap, write_snap, TextError};
pub use throttle::ThrottledReader;

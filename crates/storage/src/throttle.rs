//! A wall-clock token-bucket throttled reader.
//!
//! Used by integration tests to exercise *real* streaming at a bounded
//! rate; the large-scale Table 3 experiment uses the virtual-clock
//! model in [`crate::pipeline`] instead (sleeping 60+ seconds per
//! configuration would dominate bench time without adding fidelity).

use std::io::Read;
use std::time::Instant;

/// Wraps a reader, limiting sustained throughput to a byte rate.
#[derive(Debug)]
pub struct ThrottledReader<R> {
    inner: R,
    bytes_per_sec: f64,
    started: Option<Instant>,
    consumed: u64,
}

impl<R: Read> ThrottledReader<R> {
    /// Creates a reader limited to `bytes_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not strictly positive.
    pub fn new(inner: R, bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec > 0.0 && bytes_per_sec.is_finite(),
            "throughput must be positive"
        );
        Self {
            inner,
            bytes_per_sec,
            started: None,
            consumed: 0,
        }
    }

    /// Total bytes delivered so far.
    pub fn bytes_read(&self) -> u64 {
        self.consumed
    }

    /// Unwraps the inner reader.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for ThrottledReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let started = *self.started.get_or_insert_with(Instant::now);
        // How long the bytes delivered so far *should* have taken.
        let due = self.consumed as f64 / self.bytes_per_sec;
        let elapsed = started.elapsed().as_secs_f64();
        if due > elapsed {
            std::thread::sleep(std::time::Duration::from_secs_f64(due - elapsed));
        }
        // Deliver at most ~50 ms worth of data per call so the rate
        // stays smooth even for huge buffers.
        let max_chunk = ((self.bytes_per_sec * 0.05) as usize).max(1);
        let take = buf.len().min(max_chunk);
        let n = self.inner.read(&mut buf[..take])?;
        self.consumed += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_all_bytes() {
        let data = vec![7u8; 10_000];
        let mut out = Vec::new();
        let mut r = ThrottledReader::new(&data[..], 1e9);
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(r.bytes_read(), 10_000);
    }

    #[test]
    fn rate_is_enforced() {
        // 50 KB at 500 KB/s should take ~100 ms.
        let data = vec![0u8; 50_000];
        let mut out = Vec::new();
        let start = Instant::now();
        ThrottledReader::new(&data[..], 500_000.0)
            .read_to_end(&mut out)
            .unwrap();
        let elapsed = start.elapsed().as_secs_f64();
        assert!(elapsed >= 0.08, "finished too fast: {elapsed}s");
        assert!(elapsed < 1.0, "finished too slow: {elapsed}s");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_rate() {
        let _ = ThrottledReader::new(&[][..], 0.0);
    }
}

//! Storing computation results — the final step of the paper's
//! end-to-end pipeline ("loading the graph […], pre-processing […],
//! executing the actual graph algorithm, and **storing the results**",
//! §1).
//!
//! Results are per-vertex arrays: BFS parents and WCC labels are
//! `u32`, SSSP distances / PageRank ranks / SpMV outputs are `f32`.
//! The format mirrors the edge format: a small validated header plus
//! raw little-endian values.

use std::io::{Read, Write};

use bytes::{Buf, BufMut};

use crate::format::FormatError;

/// Result-file magic.
pub const RESULT_MAGIC: [u8; 4] = *b"EGRR";
const HEADER_LEN: usize = 16;

/// Element type tag stored in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dtype {
    U32 = 0,
    F32 = 1,
}

fn write_header<W: Write>(w: &mut W, dtype: Dtype, len: usize) -> std::io::Result<()> {
    let mut header = Vec::with_capacity(HEADER_LEN);
    header.put_slice(&RESULT_MAGIC);
    header.put_u32_le(dtype as u32);
    header.put_u64_le(len as u64);
    w.write_all(&header)
}

fn read_header<R: Read>(r: &mut R, expect: Dtype) -> Result<u64, FormatError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let mut buf = &header[..];
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if magic != RESULT_MAGIC {
        return Err(FormatError::BadMagic(magic));
    }
    let dtype = buf.get_u32_le();
    if dtype != expect as u32 {
        return Err(FormatError::UnsupportedVersion(dtype));
    }
    Ok(buf.get_u64_le())
}

/// Writes a `u32` per-vertex result array (BFS parents, WCC labels).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_u32_result<W: Write>(mut w: W, values: &[u32]) -> std::io::Result<()> {
    write_header(&mut w, Dtype::U32, values.len())?;
    let mut buf = Vec::with_capacity(4 * 64 * 1024);
    for chunk in values.chunks(64 * 1024) {
        buf.clear();
        for &v in chunk {
            buf.put_u32_le(v);
        }
        w.write_all(&buf)?;
    }
    w.flush()
}

/// Reads a `u32` result array.
///
/// # Errors
///
/// Returns a [`FormatError`] on malformed input.
pub fn read_u32_result<R: Read>(mut r: R) -> Result<Vec<u32>, FormatError> {
    let len = read_header(&mut r, Dtype::U32)? as usize;
    let mut raw = vec![0u8; len * 4];
    r.read_exact(&mut raw).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FormatError::Truncated {
                expected_edges: len as u64,
                found_edges: 0,
            }
        } else {
            FormatError::Io(e)
        }
    })?;
    let mut buf = &raw[..];
    Ok((0..len).map(|_| buf.get_u32_le()).collect())
}

/// Writes an `f32` per-vertex result array (distances, ranks).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_f32_result<W: Write>(mut w: W, values: &[f32]) -> std::io::Result<()> {
    write_header(&mut w, Dtype::F32, values.len())?;
    let mut buf = Vec::with_capacity(4 * 64 * 1024);
    for chunk in values.chunks(64 * 1024) {
        buf.clear();
        for &v in chunk {
            buf.put_f32_le(v);
        }
        w.write_all(&buf)?;
    }
    w.flush()
}

/// Reads an `f32` result array.
///
/// # Errors
///
/// Returns a [`FormatError`] on malformed input.
pub fn read_f32_result<R: Read>(mut r: R) -> Result<Vec<f32>, FormatError> {
    let len = read_header(&mut r, Dtype::F32)? as usize;
    let mut raw = vec![0u8; len * 4];
    r.read_exact(&mut raw).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FormatError::Truncated {
                expected_edges: len as u64,
                found_edges: 0,
            }
        } else {
            FormatError::Io(e)
        }
    })?;
    let mut buf = &raw[..];
    Ok((0..len).map(|_| buf.get_f32_le()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip() {
        let values: Vec<u32> = (0..100_000).map(|i| i * 7).collect();
        let mut file = Vec::new();
        write_u32_result(&mut file, &values).unwrap();
        assert_eq!(read_u32_result(&file[..]).unwrap(), values);
    }

    #[test]
    fn f32_roundtrip_with_specials() {
        let values = vec![0.0f32, -1.5, f32::INFINITY, f32::MAX, 1e-30];
        let mut file = Vec::new();
        write_f32_result(&mut file, &values).unwrap();
        assert_eq!(read_f32_result(&file[..]).unwrap(), values);
    }

    #[test]
    fn dtype_mismatch_detected() {
        let mut file = Vec::new();
        write_u32_result(&mut file, &[1, 2, 3]).unwrap();
        assert!(read_f32_result(&file[..]).is_err());
    }

    #[test]
    fn truncated_result_detected() {
        let mut file = Vec::new();
        write_u32_result(&mut file, &[1, 2, 3]).unwrap();
        file.truncate(file.len() - 2);
        assert!(matches!(
            read_u32_result(&file[..]),
            Err(FormatError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_magic_detected() {
        let mut file = Vec::new();
        write_u32_result(&mut file, &[1]).unwrap();
        file[0] = b'Z';
        assert!(matches!(
            read_u32_result(&file[..]),
            Err(FormatError::BadMagic(_))
        ));
    }

    #[test]
    fn empty_result_roundtrip() {
        let mut file = Vec::new();
        write_f32_result(&mut file, &[]).unwrap();
        assert!(read_f32_result(&file[..]).unwrap().is_empty());
    }
}

//! Storage-medium presets matching the paper's evaluation hardware.

/// A storage medium with a sustained sequential-read bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Medium {
    /// Display name used in experiment tables.
    pub name: &'static str,
    /// Sustained read bandwidth in bytes/second; `None` means the
    /// input is already in memory (loading is free).
    pub bandwidth: Option<f64>,
}

impl Medium {
    /// Input already resident in memory (§3.3's assumption).
    pub const fn memory() -> Self {
        Self {
            name: "memory",
            bandwidth: None,
        }
    }

    /// The paper's SSD: 380 MB/s maximum bandwidth.
    pub const fn ssd() -> Self {
        Self {
            name: "ssd",
            bandwidth: Some(380.0 * 1e6),
        }
    }

    /// The paper's spinning disk: 100 MB/s.
    pub const fn hdd() -> Self {
        Self {
            name: "hdd",
            bandwidth: Some(100.0 * 1e6),
        }
    }

    /// Seconds needed to sequentially read `bytes` from this medium.
    pub fn load_seconds(&self, bytes: u64) -> f64 {
        match self.bandwidth {
            None => 0.0,
            Some(bw) => bytes as f64 / bw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_loads_instantly() {
        assert_eq!(Medium::memory().load_seconds(1 << 30), 0.0);
    }

    #[test]
    fn hdd_slower_than_ssd() {
        let bytes = 1_000_000_000;
        let ssd = Medium::ssd().load_seconds(bytes);
        let hdd = Medium::hdd().load_seconds(bytes);
        assert!(hdd > 3.0 * ssd);
        assert!(
            (hdd - 10.0).abs() < 0.1,
            "1 GB at 100 MB/s = 10 s, got {hdd}"
        );
    }
}

//! The binary edge-array file format.
//!
//! Layout (little endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "EGRF"
//! 4       4     version (currently 1)
//! 8       4     flags (bit 0: records carry an f32 weight)
//! 12      4     reserved (zero)
//! 16      8     num_vertices
//! 24      8     num_edges
//! 32      …     records: (src u32, dst u32[, weight f32]) × num_edges
//! ```

use std::fmt;
use std::io::{Read, Write};

use bytes::{Buf, BufMut};

use egraph_core::types::{EdgeList, EdgeRecord, GraphError};

/// File magic.
pub const MAGIC: [u8; 4] = *b"EGRF";
/// Current format version.
pub const VERSION: u32 = 1;
const HEADER_LEN: usize = 32;

/// Errors produced while reading an edge-array file.
#[derive(Debug)]
pub enum FormatError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the expected magic.
    BadMagic([u8; 4]),
    /// The file uses an unsupported format version.
    UnsupportedVersion(u32),
    /// The file's weightedness does not match the requested record
    /// type.
    WeightednessMismatch {
        /// Whether the file stores weights.
        file_weighted: bool,
        /// Whether the requested record type expects weights.
        requested_weighted: bool,
    },
    /// The file ended before `num_edges` records were read.
    Truncated {
        /// Records expected from the header.
        expected_edges: u64,
        /// Records actually present.
        found_edges: u64,
    },
    /// The records reference vertices outside the declared range.
    Graph(GraphError),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::Io(e) => write!(f, "i/o error: {e}"),
            FormatError::BadMagic(m) => write!(f, "bad magic {m:?}, expected {MAGIC:?}"),
            FormatError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            FormatError::WeightednessMismatch {
                file_weighted,
                requested_weighted,
            } => write!(
                f,
                "file weighted={file_weighted} but requested record type weighted={requested_weighted}"
            ),
            FormatError::Truncated {
                expected_edges,
                found_edges,
            } => write!(f, "truncated: expected {expected_edges} edges, found {found_edges}"),
            FormatError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for FormatError {}

impl From<std::io::Error> for FormatError {
    fn from(e: std::io::Error) -> Self {
        FormatError::Io(e)
    }
}

fn record_len<E: EdgeRecord>() -> usize {
    if E::WEIGHTED {
        12
    } else {
        8
    }
}

/// Writes an edge list in the binary format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_edge_list<E: EdgeRecord, W: Write>(
    mut w: W,
    graph: &EdgeList<E>,
) -> std::io::Result<()> {
    let mut header = Vec::with_capacity(HEADER_LEN);
    header.put_slice(&MAGIC);
    header.put_u32_le(VERSION);
    header.put_u32_le(u32::from(E::WEIGHTED));
    header.put_u32_le(0);
    header.put_u64_le(graph.num_vertices() as u64);
    header.put_u64_le(graph.num_edges() as u64);
    w.write_all(&header)?;

    // Serialize in sizeable batches to keep write() counts low.
    let mut buf = Vec::with_capacity(record_len::<E>() * 64 * 1024);
    for chunk in graph.edges().chunks(64 * 1024) {
        buf.clear();
        for e in chunk {
            buf.put_u32_le(e.src());
            buf.put_u32_le(e.dst());
            if E::WEIGHTED {
                buf.put_f32_le(e.weight());
            }
        }
        w.write_all(&buf)?;
    }
    w.flush()
}

/// Parsed header of an edge-array file.
#[derive(Debug, Clone, Copy)]
pub struct Header {
    /// Whether records carry weights.
    pub weighted: bool,
    /// Declared vertex count.
    pub num_vertices: u64,
    /// Declared edge count.
    pub num_edges: u64,
}

fn read_header<E: EdgeRecord, R: Read>(r: &mut R) -> Result<Header, FormatError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FormatError::Truncated {
                expected_edges: 0,
                found_edges: 0,
            }
        } else {
            FormatError::Io(e)
        }
    })?;
    crate::counters::on_read(HEADER_LEN as u64, 0);
    let mut buf = &header[..];
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(FormatError::BadMagic(magic));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(FormatError::UnsupportedVersion(version));
    }
    let flags = buf.get_u32_le();
    let _reserved = buf.get_u32_le();
    let weighted = flags & 1 != 0;
    if weighted != E::WEIGHTED {
        return Err(FormatError::WeightednessMismatch {
            file_weighted: weighted,
            requested_weighted: E::WEIGHTED,
        });
    }
    Ok(Header {
        weighted,
        num_vertices: buf.get_u64_le(),
        num_edges: buf.get_u64_le(),
    })
}

/// Reads a whole edge-array file.
///
/// # Errors
///
/// Returns a [`FormatError`] on malformed input, including truncation
/// and out-of-range vertex ids.
pub fn read_edge_list<E: EdgeRecord, R: Read>(mut r: R) -> Result<EdgeList<E>, FormatError> {
    let _timer = crate::counters::ReadTimer::start();
    let header = read_header::<E, R>(&mut r)?;
    let mut edges = Vec::with_capacity(header.num_edges.min(1 << 28) as usize);
    read_records::<E, R>(&mut r, header.num_edges, |chunk| {
        edges.extend_from_slice(chunk)
    })?;
    EdgeList::new(header.num_vertices as usize, edges).map_err(FormatError::Graph)
}

/// Streams an edge-array file in chunks, invoking `sink` as records
/// arrive — the entry point for pipelines that overlap pre-processing
/// with loading (§3.4). Returns the header.
///
/// # Errors
///
/// Returns a [`FormatError`] on malformed input. Records handed to
/// `sink` before an error are not rolled back.
pub fn read_edge_list_chunked<E: EdgeRecord, R: Read>(
    mut r: R,
    mut sink: impl FnMut(&[E]),
) -> Result<Header, FormatError> {
    let _timer = crate::counters::ReadTimer::start();
    let header = read_header::<E, R>(&mut r)?;
    read_records::<E, R>(&mut r, header.num_edges, |chunk| sink(chunk))?;
    Ok(header)
}

const CHUNK_RECORDS: usize = 64 * 1024;

fn read_records<E: EdgeRecord, R: Read>(
    r: &mut R,
    num_edges: u64,
    mut sink: impl FnMut(&[E]),
) -> Result<(), FormatError> {
    let rec = record_len::<E>();
    let mut remaining = num_edges;
    let mut raw = vec![0u8; rec * CHUNK_RECORDS];
    let mut decoded: Vec<E> = Vec::with_capacity(CHUNK_RECORDS);
    let mut read_edges = 0u64;
    while remaining > 0 {
        let take = (remaining as usize).min(CHUNK_RECORDS);
        let bytes = &mut raw[..take * rec];
        if let Err(e) = r.read_exact(bytes) {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                return Err(FormatError::Truncated {
                    expected_edges: num_edges,
                    found_edges: read_edges,
                });
            }
            return Err(FormatError::Io(e));
        }
        decoded.clear();
        let mut buf = &bytes[..];
        for _ in 0..take {
            let src = buf.get_u32_le();
            let dst = buf.get_u32_le();
            let weight = if E::WEIGHTED { buf.get_f32_le() } else { 1.0 };
            decoded.push(E::new(src, dst, weight));
        }
        sink(&decoded);
        crate::counters::on_read((take * rec) as u64, take as u64);
        read_edges += take as u64;
        remaining -= take as u64;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::types::{Edge, WEdge};

    fn sample() -> EdgeList<Edge> {
        EdgeList::new(5, vec![Edge::new(0, 1), Edge::new(4, 2), Edge::new(3, 3)]).unwrap()
    }

    #[test]
    fn roundtrip_unweighted() {
        let graph = sample();
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &graph).unwrap();
        let back: EdgeList<Edge> = read_edge_list(&buf[..]).unwrap();
        assert_eq!(back, graph);
    }

    #[test]
    fn roundtrip_weighted() {
        let graph = EdgeList::new(3, vec![WEdge::new(0, 1, 2.5), WEdge::new(2, 0, -1.0)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &graph).unwrap();
        let back: EdgeList<WEdge> = read_edge_list(&buf[..]).unwrap();
        assert_eq!(back, graph);
    }

    #[test]
    fn bad_magic_detected() {
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &sample()).unwrap();
        buf[0] = b'X';
        match read_edge_list::<Edge, _>(&buf[..]) {
            Err(FormatError::BadMagic(_)) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn version_mismatch_detected() {
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &sample()).unwrap();
        buf[4] = 99;
        assert!(matches!(
            read_edge_list::<Edge, _>(&buf[..]),
            Err(FormatError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn weightedness_mismatch_detected() {
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &sample()).unwrap();
        assert!(matches!(
            read_edge_list::<WEdge, _>(&buf[..]),
            Err(FormatError::WeightednessMismatch { .. })
        ));
    }

    #[test]
    fn truncation_detected() {
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 5);
        match read_edge_list::<Edge, _>(&buf[..]) {
            Err(FormatError::Truncated {
                expected_edges: 3,
                found_edges,
            }) => assert!(found_edges < 3),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_vertex_detected() {
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &sample()).unwrap();
        // Corrupt num_vertices down to 2.
        buf[16] = 2;
        assert!(matches!(
            read_edge_list::<Edge, _>(&buf[..]),
            Err(FormatError::Graph(_))
        ));
    }

    #[test]
    fn chunked_read_equals_whole_read() {
        // Cross the chunk boundary: 200k edges > 64k chunk.
        let edges: Vec<Edge> = (0..200_000u32)
            .map(|i| Edge::new(i % 500, (i * 7) % 500))
            .collect();
        let graph = EdgeList::new(500, edges).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &graph).unwrap();
        let mut streamed = Vec::new();
        let header =
            read_edge_list_chunked::<Edge, _>(&buf[..], |chunk| streamed.extend_from_slice(chunk))
                .unwrap();
        assert_eq!(header.num_edges, 200_000);
        assert_eq!(streamed, graph.edges());
    }

    #[test]
    fn empty_graph_roundtrip() {
        let graph: EdgeList<Edge> = EdgeList::new(0, vec![]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &graph).unwrap();
        let back: EdgeList<Edge> = read_edge_list(&buf[..]).unwrap();
        assert_eq!(back.num_edges(), 0);
    }

    #[test]
    fn empty_file_is_truncated_error() {
        assert!(matches!(
            read_edge_list::<Edge, _>(&[][..]),
            Err(FormatError::Truncated { .. })
        ));
    }
}

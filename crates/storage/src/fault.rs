//! Deterministic I/O fault injection for the storage readers.
//!
//! Every reader in this crate is generic over [`std::io::Read`], so a
//! [`FaultedReader`] can wrap any source and inject the failure modes
//! real storage exhibits — short reads, files truncated mid-record, and
//! hard I/O errors — without touching the filesystem. The conformance
//! harness (`egraph-testkit`) uses this to prove that every fault
//! surfaces as a typed error ([`crate::FormatError`] /
//! [`crate::TextError`]) and never as a panic, a hang, or a silently
//! corrupted graph.
//!
//! All behavior is a pure function of the plan (and its seed, for
//! short reads), so failures reproduce exactly from logged seeds.

use std::io::Read;

/// What the wrapped reader does to the byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// Serve every `read` call with a deterministic, pseudo-random
    /// short length (at least 1 byte). The stream content is unchanged,
    /// so a correct caller must produce identical results — this is the
    /// "no silently wrong results" probe for loop-around-`read` code.
    ShortReads {
        /// Seed of the per-call length sequence.
        seed: u64,
    },
    /// Deliver only the first `offset` bytes, then clean end-of-file —
    /// a file truncated mid-stream.
    TruncateAt {
        /// Bytes delivered before the premature EOF.
        offset: u64,
    },
    /// Deliver the first `offset` bytes, then fail every `read` with
    /// [`std::io::ErrorKind::Other`] — a device error mid-stream.
    ErrorAt {
        /// Bytes delivered before the first error.
        offset: u64,
    },
}

/// A [`Read`] adapter that injects one [`IoFault`] into an inner
/// reader.
#[derive(Debug)]
pub struct FaultedReader<R> {
    inner: R,
    fault: IoFault,
    /// Bytes successfully delivered so far.
    pos: u64,
    /// SplitMix64 state for `ShortReads`.
    rng: u64,
}

impl<R: Read> FaultedReader<R> {
    /// Wraps `inner`, injecting `fault`.
    pub fn new(inner: R, fault: IoFault) -> Self {
        let rng = match fault {
            IoFault::ShortReads { seed } => seed | 1,
            _ => 0,
        };
        Self {
            inner,
            fault,
            pos: 0,
            rng,
        }
    }

    /// Bytes delivered to the caller so far.
    pub fn bytes_delivered(&self) -> u64 {
        self.pos
    }

    fn next_rand(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.rng;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
}

impl<R: Read> Read for FaultedReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let limit = match self.fault {
            IoFault::ShortReads { .. } => {
                let r = self.next_rand();
                1 + (r as usize) % buf.len()
            }
            IoFault::TruncateAt { offset } => {
                let left = offset.saturating_sub(self.pos);
                if left == 0 {
                    return Ok(0);
                }
                buf.len().min(left as usize)
            }
            IoFault::ErrorAt { offset } => {
                let left = offset.saturating_sub(self.pos);
                if left == 0 {
                    return Err(std::io::Error::other(format!(
                        "injected i/o fault at byte {}",
                        self.pos
                    )));
                }
                buf.len().min(left as usize)
            }
        };
        let n = self.inner.read(&mut buf[..limit])?;
        self.pos += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut r: impl Read) -> std::io::Result<Vec<u8>> {
        let mut out = Vec::new();
        r.read_to_end(&mut out)?;
        Ok(out)
    }

    #[test]
    fn short_reads_preserve_content() {
        let data: Vec<u8> = (0..=255).cycle().take(10_000).collect();
        for seed in 0..8 {
            let got = drain(FaultedReader::new(&data[..], IoFault::ShortReads { seed })).unwrap();
            assert_eq!(got, data, "seed {seed}");
        }
    }

    #[test]
    fn short_reads_actually_shorten() {
        let data = vec![7u8; 4096];
        let mut reader = FaultedReader::new(&data[..], IoFault::ShortReads { seed: 3 });
        let mut buf = vec![0u8; 4096];
        let n = reader.read(&mut buf).unwrap();
        assert!(n > 0 && n < 4096, "first read returned {n}");
    }

    #[test]
    fn truncation_stops_at_offset() {
        let data = vec![1u8; 1000];
        let got = drain(FaultedReader::new(
            &data[..],
            IoFault::TruncateAt { offset: 137 },
        ))
        .unwrap();
        assert_eq!(got.len(), 137);
    }

    #[test]
    fn error_fires_after_offset() {
        let data = vec![2u8; 1000];
        let mut reader = FaultedReader::new(&data[..], IoFault::ErrorAt { offset: 64 });
        let mut out = Vec::new();
        let err = reader.read_to_end(&mut out).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::Other);
        assert_eq!(reader.bytes_delivered(), 64);
    }

    #[test]
    fn error_at_zero_fails_immediately() {
        let data = [3u8; 10];
        let mut reader = FaultedReader::new(&data[..], IoFault::ErrorAt { offset: 0 });
        let mut buf = [0u8; 4];
        assert!(reader.read(&mut buf).is_err());
    }
}

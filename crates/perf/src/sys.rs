//! Raw Linux bindings: `perf_event_open(2)` and the handful of libc
//! calls needed to drive the returned file descriptors.
//!
//! The workspace builds without a network registry, so instead of the
//! `libc`/`perf-event` crates this module declares the four symbols it
//! needs from the C library that `std` already links, and lays out
//! `perf_event_attr` by hand. Only the fields this crate sets are
//! named; the rest of the kernel's (growing) struct is explicit zero
//! padding, with `attr.size` telling the kernel how much we filled in.

use std::io;

/// `PERF_TYPE_*` event classes.
pub const PERF_TYPE_HARDWARE: u32 = 0;
pub const PERF_TYPE_SOFTWARE: u32 = 1;
pub const PERF_TYPE_HW_CACHE: u32 = 3;

/// `PERF_COUNT_HW_*` configs for [`PERF_TYPE_HARDWARE`].
pub const PERF_COUNT_HW_CPU_CYCLES: u64 = 0;
pub const PERF_COUNT_HW_INSTRUCTIONS: u64 = 1;
pub const PERF_COUNT_HW_BRANCH_MISSES: u64 = 5;

/// `PERF_COUNT_SW_*` configs for [`PERF_TYPE_SOFTWARE`].
pub const PERF_COUNT_SW_TASK_CLOCK: u64 = 1;
pub const PERF_COUNT_SW_PAGE_FAULTS: u64 = 2;
pub const PERF_COUNT_SW_CONTEXT_SWITCHES: u64 = 3;

/// Cache-event config = `id | (op << 8) | (result << 16)`.
pub const PERF_COUNT_HW_CACHE_LL: u64 = 2;
pub const PERF_COUNT_HW_CACHE_OP_READ: u64 = 0;
pub const PERF_COUNT_HW_CACHE_RESULT_ACCESS: u64 = 0;
pub const PERF_COUNT_HW_CACHE_RESULT_MISS: u64 = 1;

/// Builds a `PERF_TYPE_HW_CACHE` config value.
pub const fn hw_cache_config(id: u64, op: u64, result: u64) -> u64 {
    id | (op << 8) | (result << 16)
}

/// `read_format`: ask for the multiplexing timestamps with each value.
const PERF_FORMAT_TOTAL_TIME_ENABLED: u64 = 1 << 0;
const PERF_FORMAT_TOTAL_TIME_RUNNING: u64 = 1 << 1;

/// Flag bits of the `perf_event_attr` bitfield word, in kernel order.
const ATTR_FLAG_INHERIT: u64 = 1 << 1;
const ATTR_FLAG_EXCLUDE_KERNEL: u64 = 1 << 5;
const ATTR_FLAG_EXCLUDE_HV: u64 = 1 << 6;

/// `PERF_ATTR_SIZE_VER1` (72 bytes): through the breakpoint union —
/// every field this crate uses exists at this size, and every kernel
/// since 2.6.33 accepts it.
const ATTR_SIZE_VER1: u32 = 72;

/// The leading fields of `perf_event_attr`, hand-laid-out.
#[repr(C)]
struct PerfEventAttr {
    typ: u32,
    size: u32,
    config: u64,
    sample_period: u64,
    sample_type: u64,
    read_format: u64,
    flags: u64,
    wakeup_events: u32,
    bp_type: u32,
    bp_addr: u64,
    bp_len: u64,
}

#[cfg(target_arch = "x86_64")]
const SYS_PERF_EVENT_OPEN: i64 = 298;
#[cfg(any(target_arch = "aarch64", target_arch = "riscv64"))]
const SYS_PERF_EVENT_OPEN: i64 = 241;
#[cfg(not(any(
    target_arch = "x86_64",
    target_arch = "aarch64",
    target_arch = "riscv64"
)))]
const SYS_PERF_EVENT_OPEN: i64 = -1;

extern "C" {
    fn syscall(num: i64, ...) -> i64;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

/// An open perf event file descriptor, counting from creation.
#[derive(Debug)]
pub struct EventFd(i32);

impl EventFd {
    /// Opens one counting event for this process and its future child
    /// threads (`pid = 0`, `cpu = -1`, `inherit = 1`), restricted to
    /// user space so the default `perf_event_paranoid = 2` policy
    /// allows it.
    pub fn open(typ: u32, config: u64) -> io::Result<Self> {
        if SYS_PERF_EVENT_OPEN < 0 {
            return Err(io::Error::from(io::ErrorKind::Unsupported));
        }
        let attr = PerfEventAttr {
            typ,
            size: ATTR_SIZE_VER1,
            config,
            sample_period: 0,
            sample_type: 0,
            read_format: PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING,
            flags: ATTR_FLAG_INHERIT | ATTR_FLAG_EXCLUDE_KERNEL | ATTR_FLAG_EXCLUDE_HV,
            wakeup_events: 0,
            bp_type: 0,
            bp_addr: 0,
            bp_len: 0,
        };
        // SAFETY: the attr pointer is valid for the duration of the
        // call and `attr.size` matches the initialized prefix; the
        // remaining arguments are plain integers per the syscall ABI.
        let fd = unsafe {
            syscall(
                SYS_PERF_EVENT_OPEN,
                &attr as *const PerfEventAttr,
                0i32,  // pid: this process
                -1i32, // cpu: any
                -1i32, // group_fd: each event is its own group (inherit
                //          forbids PERF_FORMAT_GROUP reads)
                0u64, // flags
            )
        };
        if fd < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(Self(fd as i32))
        }
    }

    /// Reads the current `{value, time_enabled, time_running}` triple.
    pub fn read_counts(&self) -> io::Result<Counts> {
        let mut buf = [0u64; 3];
        // SAFETY: the buffer is 24 writable bytes, matching the read
        // format requested at open (value + two timestamps).
        let n = unsafe { read(self.0, buf.as_mut_ptr().cast::<u8>(), 24) };
        if n == 24 {
            Ok(Counts {
                value: buf[0],
                time_enabled: buf[1],
                time_running: buf[2],
            })
        } else if n < 0 {
            Err(io::Error::last_os_error())
        } else {
            Err(io::Error::from(io::ErrorKind::UnexpectedEof))
        }
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: self.0 is an fd this struct opened and uniquely owns.
        unsafe {
            close(self.0);
        }
    }
}

/// One raw reading of an event fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counts {
    /// Accumulated counter value.
    pub value: u64,
    /// Nanoseconds the event was enabled.
    pub time_enabled: u64,
    /// Nanoseconds the event was actually counting (less than
    /// `time_enabled` when the PMU multiplexed).
    pub time_running: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_clock_counts_or_fails_cleanly() {
        // Software events need no PMU; they are refused only by seccomp
        // or paranoid settings. Either outcome is acceptable — what is
        // not acceptable is a panic.
        match EventFd::open(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK) {
            Ok(fd) => {
                let mut x = 1u64;
                for i in 0..200_000u64 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                std::hint::black_box(x);
                let counts = fd.read_counts().expect("open fd must be readable");
                assert!(counts.time_enabled > 0);
            }
            Err(e) => {
                eprintln!("perf_event_open unavailable here: {e}");
            }
        }
    }

    #[test]
    fn cache_config_packs_fields() {
        assert_eq!(
            hw_cache_config(
                PERF_COUNT_HW_CACHE_LL,
                PERF_COUNT_HW_CACHE_OP_READ,
                PERF_COUNT_HW_CACHE_RESULT_MISS
            ),
            0x10002
        );
    }
}

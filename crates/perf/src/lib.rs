//! Hardware performance counters via raw `perf_event_open`.
//!
//! The paper's headline evidence — Table 4's LLC miss ratios, Table 2's
//! pre-processing miss counts — was measured with hardware performance
//! counters, not simulation. This crate gives the reproduction the same
//! footing: a thin, dependency-free wrapper over the Linux
//! `perf_event_open(2)` syscall (invoked directly through the
//! already-linked libc, no external crate) exposing the counter kinds
//! the paper's methodology needs, plus a scoped [`PhaseCounters`] guard
//! that attributes deltas to named run phases.
//!
//! # Graceful degradation — the central contract
//!
//! Reading the PMU is a privilege, not a given: non-Linux hosts have no
//! `perf_event_open`, containers commonly filter the syscall with
//! seccomp, `kernel.perf_event_paranoid` may forbid unprivileged use,
//! and virtual machines often expose no PMU at all (hardware events
//! fail with `ENOENT` while software events still work). A
//! [`PerfCounters`] handle therefore *never fails to construct* — each
//! counter that cannot be opened is individually marked unavailable,
//! and a fully disabled handle still hands out [`PhaseCounters`] guards
//! whose samples simply carry no values. Callers write one code path;
//! runs never abort because the host is restricted.
//!
//! # Multiplexing
//!
//! More counters than PMU slots means the kernel time-multiplexes them.
//! Every counter is opened with `PERF_FORMAT_TOTAL_TIME_ENABLED |
//! PERF_FORMAT_TOTAL_TIME_RUNNING`, and [`PhaseCounters::finish`]
//! scales each delta by `enabled/running` for the phase window — the
//! same estimate `perf stat` reports.
//!
//! # Worker-thread coverage
//!
//! Counters are opened with `inherit = 1`, so threads spawned *after*
//! the handle is created (in particular the worker pool, which is built
//! lazily on first parallel operation) are counted too. Open the handle
//! before the first parallel region for full coverage; threads that
//! already exist when the handle opens are not retroactively attached.
//!
//! # Examples
//!
//! ```
//! use egraph_perf::{CounterKind, PerfCounters};
//!
//! let counters = PerfCounters::open();   // never fails
//! let phase = counters.phase();
//! let mut acc = 0u64;
//! for i in 0..100_000u64 {
//!     acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
//! }
//! assert!(acc != 0);
//! let sample = phase.finish();
//! // On a permissive Linux host this records real cycles; on a
//! // restricted host every kind reports None — never a panic.
//! if counters.is_available() {
//!     assert!(sample.get(CounterKind::TaskClockNanos).is_some());
//! }
//! ```

mod counters;
#[cfg(target_os = "linux")]
mod sys;

pub use counters::{CounterKind, CounterReading, CounterSample, PerfCounters, PhaseCounters};

//! The portable counter surface: [`PerfCounters`], the scoped
//! [`PhaseCounters`] guard, and [`CounterSample`] deltas.

use std::fmt;

/// The counter kinds this crate knows how to open — the hardware
/// events behind the paper's Tables 2 and 4, plus three software
/// events that work even on PMU-less hosts (containers, VMs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CounterKind {
    /// Retired CPU cycles (`PERF_COUNT_HW_CPU_CYCLES`).
    Cycles,
    /// Retired instructions (`PERF_COUNT_HW_INSTRUCTIONS`).
    Instructions,
    /// Last-level-cache read accesses (`PERF_COUNT_HW_CACHE_LL`, read,
    /// access) — the denominator of the paper's "LLC misses (%)".
    LlcLoads,
    /// Last-level-cache read misses — the numerator of the paper's
    /// "LLC misses (%)".
    LlcLoadMisses,
    /// Mispredicted branches (`PERF_COUNT_HW_BRANCH_MISSES`).
    BranchMisses,
    /// Nanoseconds of CPU time (`PERF_COUNT_SW_TASK_CLOCK`); software,
    /// available even without a PMU.
    TaskClockNanos,
    /// Page faults (`PERF_COUNT_SW_PAGE_FAULTS`); software.
    PageFaults,
    /// Context switches (`PERF_COUNT_SW_CONTEXT_SWITCHES`); software.
    ContextSwitches,
}

impl CounterKind {
    /// Every kind, in canonical report order.
    pub const ALL: [CounterKind; 8] = [
        CounterKind::Cycles,
        CounterKind::Instructions,
        CounterKind::LlcLoads,
        CounterKind::LlcLoadMisses,
        CounterKind::BranchMisses,
        CounterKind::TaskClockNanos,
        CounterKind::PageFaults,
        CounterKind::ContextSwitches,
    ];

    /// The canonical snake_case name used in traces and reports.
    pub fn name(self) -> &'static str {
        match self {
            CounterKind::Cycles => "cycles",
            CounterKind::Instructions => "instructions",
            CounterKind::LlcLoads => "llc_loads",
            CounterKind::LlcLoadMisses => "llc_load_misses",
            CounterKind::BranchMisses => "branch_misses",
            CounterKind::TaskClockNanos => "task_clock_nanos",
            CounterKind::PageFaults => "page_faults",
            CounterKind::ContextSwitches => "context_switches",
        }
    }

    /// Parses the canonical name back.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }

    fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for CounterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Counter deltas for one phase window. Each kind is `Some(value)` when
/// its counter was open and counting, `None` when unavailable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSample {
    values: [Option<u64>; CounterKind::ALL.len()],
}

impl CounterSample {
    /// The delta for one kind, if that counter was available.
    pub fn get(&self, kind: CounterKind) -> Option<u64> {
        self.values[kind.index()]
    }

    /// Sets the delta for one kind (used by the platform backends and
    /// by tests constructing known samples).
    pub fn set(&mut self, kind: CounterKind, value: u64) {
        self.values[kind.index()] = Some(value);
    }

    /// Whether at least one counter produced a value.
    pub fn any_available(&self) -> bool {
        self.values.iter().any(Option::is_some)
    }

    /// `(kind, value)` pairs for the available counters, in canonical
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (CounterKind, u64)> + '_ {
        CounterKind::ALL
            .into_iter()
            .filter_map(|k| self.get(k).map(|v| (k, v)))
    }

    /// The hardware LLC miss ratio `llc_load_misses / llc_loads`, when
    /// both counters were available and any loads happened — the
    /// measured analogue of the cache simulator's
    /// `overall_miss_ratio()`.
    pub fn llc_miss_ratio(&self) -> Option<f64> {
        let loads = self.get(CounterKind::LlcLoads)?;
        let misses = self.get(CounterKind::LlcLoadMisses)?;
        if loads == 0 {
            None
        } else {
            Some(misses as f64 / loads as f64)
        }
    }

    /// Instructions per cycle, when both counters were available.
    pub fn ipc(&self) -> Option<f64> {
        let cycles = self.get(CounterKind::Cycles)?;
        let instructions = self.get(CounterKind::Instructions)?;
        if cycles == 0 {
            None
        } else {
            Some(instructions as f64 / cycles as f64)
        }
    }
}

/// A set of perf counters for this process (and the threads it spawns
/// after opening). Construction never fails; on restricted hosts some
/// or all counters are simply unavailable.
pub struct PerfCounters {
    inner: imp::Backend,
}

impl PerfCounters {
    /// Opens every counter kind that the host allows. Kinds the kernel
    /// refuses (no PMU, seccomp, `perf_event_paranoid`) are marked
    /// unavailable individually; the handle itself always constructs.
    pub fn open() -> Self {
        Self {
            inner: imp::Backend::open(),
        }
    }

    /// A handle with every counter disabled (what [`open`](Self::open)
    /// degrades to on non-Linux hosts).
    pub fn disabled() -> Self {
        Self {
            inner: imp::Backend::disabled(),
        }
    }

    /// Whether at least one counter is live.
    pub fn is_available(&self) -> bool {
        self.inner.available_kinds().next().is_some()
    }

    /// The kinds that opened successfully, in canonical order.
    pub fn available_kinds(&self) -> Vec<CounterKind> {
        self.inner.available_kinds().collect()
    }

    /// Why the host refused counters, for kinds that failed to open.
    /// Empty when everything opened (or on a [`disabled`](Self::disabled)
    /// handle, which never tried).
    pub fn unavailable_reasons(&self) -> Vec<(CounterKind, String)> {
        self.inner.unavailable_reasons()
    }

    /// Starts a phase window: records the current counter values so
    /// [`PhaseCounters::finish`] (or drop) can compute deltas.
    pub fn phase(&self) -> PhaseCounters<'_> {
        PhaseCounters {
            owner: self,
            start: self.inner.read_raw(),
        }
    }

    /// Takes a point-in-time reading for later use with
    /// [`delta_since`](Self::delta_since). Unlike [`phase`](Self::phase)
    /// this does not borrow the handle, so a stream of back-to-back
    /// windows (one per algorithm iteration) can keep the previous
    /// reading around without self-referential lifetimes.
    pub fn reading(&self) -> CounterReading {
        CounterReading {
            raw: self.inner.read_raw(),
        }
    }

    /// The multiplex-scaled counter deltas accumulated between `start`
    /// and now. The reading must come from this handle; mixing handles
    /// yields meaningless (but safe) numbers.
    pub fn delta_since(&self, start: &CounterReading) -> CounterSample {
        self.inner.delta_since(&start.raw)
    }

    fn sample_since(&self, start: &imp::RawReading) -> CounterSample {
        self.inner.delta_since(start)
    }
}

/// An opaque point-in-time counter reading from
/// [`PerfCounters::reading`]; feed it back to
/// [`PerfCounters::delta_since`] to close the window.
pub struct CounterReading {
    raw: imp::RawReading,
}

impl fmt::Debug for CounterReading {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("CounterReading")
    }
}

impl fmt::Debug for PerfCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PerfCounters")
            .field("available", &self.available_kinds())
            .finish()
    }
}

/// Scoped counter window over one named run phase. Obtain from
/// [`PerfCounters::phase`]; call [`finish`](Self::finish) to get the
/// deltas (dropping without finishing simply discards the window).
pub struct PhaseCounters<'a> {
    owner: &'a PerfCounters,
    start: imp::RawReading,
}

impl PhaseCounters<'_> {
    /// Ends the window and returns the multiplex-scaled counter deltas.
    /// (Dropping without finishing needs no cleanup: counters free-run
    /// and the start reading is just forgotten.)
    pub fn finish(self) -> CounterSample {
        self.owner.sample_since(&self.start)
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{CounterKind, CounterSample};
    use crate::sys;

    fn event_spec(kind: CounterKind) -> (u32, u64) {
        match kind {
            CounterKind::Cycles => (sys::PERF_TYPE_HARDWARE, sys::PERF_COUNT_HW_CPU_CYCLES),
            CounterKind::Instructions => (sys::PERF_TYPE_HARDWARE, sys::PERF_COUNT_HW_INSTRUCTIONS),
            CounterKind::LlcLoads => (
                sys::PERF_TYPE_HW_CACHE,
                sys::hw_cache_config(
                    sys::PERF_COUNT_HW_CACHE_LL,
                    sys::PERF_COUNT_HW_CACHE_OP_READ,
                    sys::PERF_COUNT_HW_CACHE_RESULT_ACCESS,
                ),
            ),
            CounterKind::LlcLoadMisses => (
                sys::PERF_TYPE_HW_CACHE,
                sys::hw_cache_config(
                    sys::PERF_COUNT_HW_CACHE_LL,
                    sys::PERF_COUNT_HW_CACHE_OP_READ,
                    sys::PERF_COUNT_HW_CACHE_RESULT_MISS,
                ),
            ),
            CounterKind::BranchMisses => {
                (sys::PERF_TYPE_HARDWARE, sys::PERF_COUNT_HW_BRANCH_MISSES)
            }
            CounterKind::TaskClockNanos => (sys::PERF_TYPE_SOFTWARE, sys::PERF_COUNT_SW_TASK_CLOCK),
            CounterKind::PageFaults => (sys::PERF_TYPE_SOFTWARE, sys::PERF_COUNT_SW_PAGE_FAULTS),
            CounterKind::ContextSwitches => {
                (sys::PERF_TYPE_SOFTWARE, sys::PERF_COUNT_SW_CONTEXT_SWITCHES)
            }
        }
    }

    enum Slot {
        Open(sys::EventFd),
        Failed(String),
        NeverTried,
    }

    pub(super) struct Backend {
        slots: [Slot; CounterKind::ALL.len()],
    }

    pub(super) struct RawReading {
        counts: [Option<sys::Counts>; CounterKind::ALL.len()],
    }

    impl Backend {
        pub(super) fn open() -> Self {
            Self {
                slots: CounterKind::ALL.map(|kind| {
                    let (typ, config) = event_spec(kind);
                    match sys::EventFd::open(typ, config) {
                        Ok(fd) => Slot::Open(fd),
                        Err(e) => Slot::Failed(e.to_string()),
                    }
                }),
            }
        }

        pub(super) fn disabled() -> Self {
            Self {
                slots: [(); CounterKind::ALL.len()].map(|()| Slot::NeverTried),
            }
        }

        pub(super) fn available_kinds(&self) -> impl Iterator<Item = CounterKind> + '_ {
            CounterKind::ALL
                .into_iter()
                .zip(&self.slots)
                .filter_map(|(k, s)| matches!(s, Slot::Open(_)).then_some(k))
        }

        pub(super) fn unavailable_reasons(&self) -> Vec<(CounterKind, String)> {
            CounterKind::ALL
                .into_iter()
                .zip(&self.slots)
                .filter_map(|(k, s)| match s {
                    Slot::Failed(reason) => Some((k, reason.clone())),
                    _ => None,
                })
                .collect()
        }

        pub(super) fn read_raw(&self) -> RawReading {
            RawReading {
                counts: CounterKind::ALL.map(|kind| match &self.slots[kind as usize] {
                    Slot::Open(fd) => fd.read_counts().ok(),
                    _ => None,
                }),
            }
        }

        pub(super) fn delta_since(&self, start: &RawReading) -> CounterSample {
            let end = self.read_raw();
            let mut sample = CounterSample::default();
            for kind in CounterKind::ALL {
                let (Some(a), Some(b)) = (start.counts[kind as usize], end.counts[kind as usize])
                else {
                    continue;
                };
                let value = b.value.saturating_sub(a.value);
                let enabled = b.time_enabled.saturating_sub(a.time_enabled);
                let running = b.time_running.saturating_sub(a.time_running);
                // Multiplex scaling: extrapolate to the full window, as
                // `perf stat` does. `running == enabled` (no
                // multiplexing) leaves the value untouched.
                let scaled = if running > 0 && running < enabled {
                    (value as f64 * enabled as f64 / running as f64) as u64
                } else {
                    value
                };
                sample.set(kind, scaled);
            }
            sample
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{CounterKind, CounterSample};

    /// Non-Linux backend: there is no `perf_event_open`; every counter
    /// is permanently unavailable and every sample is empty.
    pub(super) struct Backend;

    pub(super) struct RawReading;

    impl Backend {
        pub(super) fn open() -> Self {
            Backend
        }

        pub(super) fn disabled() -> Self {
            Backend
        }

        pub(super) fn available_kinds(&self) -> impl Iterator<Item = CounterKind> + '_ {
            std::iter::empty()
        }

        pub(super) fn unavailable_reasons(&self) -> Vec<(CounterKind, String)> {
            Vec::new()
        }

        pub(super) fn read_raw(&self) -> RawReading {
            RawReading
        }

        pub(super) fn delta_since(&self, _start: &RawReading) -> CounterSample {
            CounterSample::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_never_panics_and_reports_availability() {
        let counters = PerfCounters::open();
        let available = counters.available_kinds();
        let unavailable = counters.unavailable_reasons();
        // Every kind is accounted for exactly once.
        assert_eq!(available.len() + unavailable.len(), CounterKind::ALL.len());
    }

    #[test]
    fn disabled_handle_yields_empty_samples() {
        let counters = PerfCounters::disabled();
        assert!(!counters.is_available());
        let sample = counters.phase().finish();
        assert!(!sample.any_available());
        assert_eq!(sample.llc_miss_ratio(), None);
    }

    #[test]
    fn phase_deltas_are_nonzero_when_counting() {
        let counters = PerfCounters::open();
        let phase = counters.phase();
        let mut x = 1u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(x);
        let sample = phase.finish();
        // On restricted hosts this is legitimately empty; when any
        // counter opened, the spin loop must have registered on it.
        if counters
            .available_kinds()
            .contains(&CounterKind::TaskClockNanos)
        {
            assert!(sample.get(CounterKind::TaskClockNanos).unwrap_or(0) > 0);
        }
        if counters.available_kinds().contains(&CounterKind::Cycles) {
            assert!(sample.get(CounterKind::Cycles).unwrap_or(0) > 0);
        }
    }

    #[test]
    fn reading_windows_chain_without_borrowing() {
        let counters = PerfCounters::open();
        let mut last = counters.reading();
        for _ in 0..3 {
            let mut x = 1u64;
            for i in 0..500_000u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(x);
            let sample = counters.delta_since(&last);
            last = counters.reading();
            if counters
                .available_kinds()
                .contains(&CounterKind::TaskClockNanos)
            {
                assert!(sample.get(CounterKind::TaskClockNanos).unwrap_or(0) > 0);
            }
        }
        // A disabled handle yields empty samples through the same path.
        let disabled = PerfCounters::disabled();
        let start = disabled.reading();
        assert!(!disabled.delta_since(&start).any_available());
    }

    #[test]
    fn sample_ratios() {
        let mut s = CounterSample::default();
        s.set(CounterKind::LlcLoads, 200);
        s.set(CounterKind::LlcLoadMisses, 50);
        s.set(CounterKind::Cycles, 1000);
        s.set(CounterKind::Instructions, 1500);
        assert_eq!(s.llc_miss_ratio(), Some(0.25));
        assert_eq!(s.ipc(), Some(1.5));
        assert_eq!(s.iter().count(), 4);
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in CounterKind::ALL {
            assert_eq!(CounterKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(CounterKind::parse("bogus"), None);
    }
}

//! Edge-case and failure-injection tests for the core crate:
//! degenerate graphs (empty, singleton, self-loops, extreme skew),
//! boundary layouts (grid side 1, huge sides), and pathological
//! algorithm inputs.

use egraph_core::algo::{bfs, pagerank, spmv, sssp, wcc};
use egraph_core::layout::EdgeDirection;
use egraph_core::preprocess::{CsrBuilder, GridBuilder, Strategy};
use egraph_core::types::{Edge, EdgeList, WEdge, INVALID_VERTEX};

fn build_all(graph: &EdgeList<Edge>) -> egraph_core::layout::AdjacencyList<Edge> {
    CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both).build(graph)
}

#[test]
fn single_vertex_no_edges() {
    let graph = EdgeList::new(1, vec![]).unwrap();
    let adj = build_all(&graph);
    let r = bfs::push(&adj, 0);
    assert_eq!(r.reachable_count(), 1);
    assert_eq!(r.parent, vec![0]);

    let degrees = vec![0u32];
    let pr = pagerank::pull(
        adj.incoming(),
        &degrees,
        pagerank::PagerankConfig::default(),
    );
    assert_eq!(pr.ranks.len(), 1);
    assert!(pr.ranks[0] > 0.0);
}

#[test]
fn self_loops_only() {
    let graph = EdgeList::new(3, (0..3).map(|v| Edge::new(v, v)).collect()).unwrap();
    let adj = build_all(&graph);
    for root in 0..3 {
        let r = bfs::push(&adj, root);
        assert_eq!(r.reachable_count(), 1, "self-loops reach nothing new");
    }
    let r = wcc::edge_centric(&graph);
    assert_eq!(r.component_count(), 3);
}

#[test]
fn star_in_and_out() {
    // Extreme out-skew: vertex 0 points at everyone.
    let n = 10_000u32;
    let out_star = EdgeList::new(n as usize, (1..n).map(|v| Edge::new(0, v)).collect()).unwrap();
    let adj = build_all(&out_star);
    let r = bfs::push(&adj, 0);
    assert_eq!(r.reachable_count(), n as usize);
    assert!(r.level[1..].iter().all(|&l| l == 1));

    // Extreme in-skew: everyone points at vertex 0.
    let in_star = EdgeList::new(n as usize, (1..n).map(|v| Edge::new(v, 0)).collect()).unwrap();
    let adj = build_all(&in_star);
    let r = bfs::push(&adj, 5);
    assert_eq!(r.reachable_count(), 2);
    assert_eq!(r.level[0], 1);

    let degrees: Vec<u32> = in_star.out_degrees().iter().map(|&d| d as u32).collect();
    let pr = pagerank::pull(
        adj.incoming(),
        &degrees,
        pagerank::PagerankConfig::default(),
    );
    let top = pr.top_k(1);
    assert_eq!(top, vec![0], "the sink hub must rank first");
}

#[test]
fn grid_side_one_is_a_single_cell() {
    let graph = EdgeList::new(100, (0..99).map(|v| Edge::new(v, v + 1)).collect()).unwrap();
    let grid = GridBuilder::new(Strategy::RadixSort).side(1).build(&graph);
    assert_eq!(grid.cell(0, 0).len(), 99);
    let r = bfs::grid(&grid, 0);
    assert_eq!(r.reachable_count(), 100);
}

#[test]
fn grid_side_larger_than_vertices() {
    let graph = EdgeList::new(3, vec![Edge::new(0, 1), Edge::new(1, 2)]).unwrap();
    let grid = GridBuilder::new(Strategy::CountSort).side(8).build(&graph);
    assert_eq!(grid.num_edges(), 2);
    let r = bfs::grid(&grid, 0);
    assert_eq!(r.reachable_count(), 3);
}

#[test]
fn bfs_from_isolated_vertex() {
    let graph = EdgeList::new(5, vec![Edge::new(1, 2), Edge::new(2, 3)]).unwrap();
    let adj = build_all(&graph);
    for r in [
        bfs::push(&adj, 0),
        bfs::pull(&adj, 0),
        bfs::push_pull(&adj, 0),
    ] {
        assert_eq!(r.reachable_count(), 1);
        assert_eq!(r.parent[0], 0);
        assert!(r.parent[1..].iter().all(|&p| p == INVALID_VERTEX));
    }
}

#[test]
fn sssp_with_zero_weight_edges() {
    let graph = EdgeList::new(3, vec![WEdge::new(0, 1, 0.0), WEdge::new(1, 2, 0.0)]).unwrap();
    let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&graph);
    let r = sssp::push(&adj, 0);
    assert_eq!(r.dist, vec![0.0, 0.0, 0.0]);
}

#[test]
fn sssp_parallel_edges_take_minimum() {
    let graph = EdgeList::new(
        2,
        vec![
            WEdge::new(0, 1, 9.0),
            WEdge::new(0, 1, 2.0),
            WEdge::new(0, 1, 5.0),
        ],
    )
    .unwrap();
    let adj = CsrBuilder::new(Strategy::Dynamic, EdgeDirection::Out).build(&graph);
    assert_eq!(sssp::push(&adj, 0).dist[1], 2.0);
}

#[test]
fn spmv_with_negative_weights() {
    let graph = EdgeList::new(2, vec![WEdge::new(0, 1, -3.0), WEdge::new(1, 0, 2.0)]).unwrap();
    let y = spmv::edge_centric(&graph, &[1.0, 10.0]).y;
    assert_eq!(y, vec![20.0, -3.0]);
}

#[test]
fn pagerank_on_cycle_is_uniform() {
    let n = 64u32;
    let graph = EdgeList::new(
        n as usize,
        (0..n).map(|v| Edge::new(v, (v + 1) % n)).collect(),
    )
    .unwrap();
    let degrees = vec![1u32; n as usize];
    let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::In).build(&graph);
    let pr = pagerank::pull(
        adj.incoming(),
        &degrees,
        pagerank::PagerankConfig::default(),
    );
    let expected = 1.0 / n as f32;
    for (v, &r) in pr.ranks.iter().enumerate() {
        assert!((r - expected).abs() < 1e-5, "rank[{v}] = {r}");
    }
}

#[test]
fn wcc_fully_connected_single_component() {
    let n = 50u32;
    let mut edges = Vec::new();
    for a in 0..n {
        for b in 0..n {
            if a != b {
                edges.push(Edge::new(a, b));
            }
        }
    }
    let graph = EdgeList::new(n as usize, edges).unwrap();
    assert_eq!(wcc::edge_centric(&graph).component_count(), 1);
}

#[test]
fn duplicate_heavy_multigraph() {
    // 10k copies of the same edge: layouts and algorithms must cope.
    let graph = EdgeList::new(2, vec![Edge::new(0, 1); 10_000]).unwrap();
    let adj = build_all(&graph);
    assert_eq!(adj.out().degree(0), 10_000);
    let r = bfs::push(&adj, 0);
    assert_eq!(r.reachable_count(), 2);
    let grid = GridBuilder::new(Strategy::RadixSort).side(2).build(&graph);
    assert_eq!(grid.num_edges(), 10_000);
}

#[test]
fn ids_at_the_top_of_the_range() {
    // Vertex ids close to the declared bound.
    let nv = 1_000_000usize;
    let graph = EdgeList::new(
        nv,
        vec![
            Edge::new(0, (nv - 1) as u32),
            Edge::new((nv - 1) as u32, (nv - 2) as u32),
        ],
    )
    .unwrap();
    let adj = build_all(&graph);
    let r = bfs::push(&adj, 0);
    assert_eq!(r.reachable_count(), 3);
    assert_eq!(r.level[nv - 2], 2);
}

#[test]
fn validation_rejects_edges_beyond_bound() {
    assert!(EdgeList::new(10, vec![Edge::new(0, 10)]).is_err());
    assert!(EdgeList::new(0, vec![Edge::new(0, 0)]).is_err());
}

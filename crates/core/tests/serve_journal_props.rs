//! Property tests for the serve flight recorder under concurrent
//! writers: whatever interleaving the scheduler produces, a dump must
//! never yield a torn event — every field of every returned event must
//! be internally consistent with the single `fetch_add`-claimed id that
//! produced it.

use std::sync::Arc;

use egraph_core::serve::{EventOutcome, QueryEvent, QueryJournal, QueryKind};
use proptest::prelude::*;

/// Derives every payload word deterministically from the id, so a
/// reader can prove a dumped event is untorn by re-deriving it.
fn event_for(id: u64) -> QueryEvent {
    QueryEvent {
        id,
        wave: id >> 2,
        lane: (id % 64) as u8,
        wave_size: 64,
        kind: match id % 3 {
            0 => QueryKind::Bfs,
            1 => QueryKind::Sssp,
            _ => QueryKind::KHop,
        },
        epoch: 1 + id % 5,
        source: id as u32,
        depth: (id % 7) as u32,
        enqueued_us: id * 100,
        started_us: id * 100 + 10,
        executed_us: id * 100 + 20,
        done_us: id * 100 + 30,
        checksum: id.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        outcome: if id.is_multiple_of(2) {
            EventOutcome::Answered
        } else {
            EventOutcome::Disconnected
        },
    }
}

proptest! {
    // Each case spawns real threads; keep the count bounded.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_writers_never_produce_torn_or_duplicate_events(
        writers in 1usize..8,
        per_writer in 1usize..64,
        capacity in 1usize..128,
    ) {
        let journal = Arc::new(QueryJournal::new(capacity));
        std::thread::scope(|s| {
            for w in 0..writers {
                let journal = Arc::clone(&journal);
                s.spawn(move || {
                    for i in 0..per_writer {
                        journal.record(event_for((w * per_writer + i) as u64));
                    }
                });
            }
        });
        let total = (writers * per_writer) as u64;
        prop_assert_eq!(journal.recorded(), total);

        // Quiescent now, so no slot can be mid-write: the dump returns
        // exactly min(total, capacity) events, each bit-identical to
        // the event its id derives, with no id appearing twice.
        let dump = journal.dump(usize::MAX);
        prop_assert_eq!(dump.len() as u64, total.min(capacity as u64));
        let mut seen = std::collections::HashSet::new();
        for e in &dump {
            prop_assert_eq!(*e, event_for(e.id), "torn event for id {}", e.id);
            prop_assert!(seen.insert(e.id), "id {} dumped twice", e.id);
        }
    }

    #[test]
    fn a_single_writer_dump_is_the_exact_oldest_first_tail(
        total in 1u64..256,
        capacity in 1usize..64,
        n in 0usize..80,
    ) {
        let journal = QueryJournal::new(capacity);
        for id in 0..total {
            journal.record(event_for(id));
        }
        let dump = journal.dump(n);
        let take = (n as u64).min(total).min(capacity as u64);
        let expected: Vec<u64> = (total - take..total).collect();
        let got: Vec<u64> = dump.iter().map(|e| e.id).collect();
        prop_assert_eq!(got, expected);
    }
}

//! Property and compatibility tests for the schema-v4 iteration
//! telemetry: whatever per-iteration records a run produces must
//! survive both serializations bit-for-bit, older schema generations
//! must keep parsing (with the v4-only sections defaulted), a foreign
//! schema must stay a *typed* error, and the decision log itself must
//! be a pure function of the graph — identical across thread counts.

use std::collections::BTreeMap;

use egraph_core::exec::ExecCtx;
use egraph_core::metrics::{DirectionDecision, StepMode};
use egraph_core::telemetry::{
    IterRecord, RunTrace, TraceError, TraceIteration, TraceRecorder, TRACE_SCHEMA,
};
use egraph_core::types::{Edge, EdgeList};
use egraph_core::variant::{run_variant, PreparedGraph, RunParams, VariantId};
use egraph_parallel::ThreadPool;
use proptest::prelude::*;

/// Builds one iteration entry from raw integer draws, with every
/// v4 field (density, decision, hardware) populated. Seconds and
/// density go through f64 `Display`, whose shortest-round-trip
/// formatting both parsers read back exactly.
#[allow(clippy::cast_precision_loss)]
fn iteration(
    step: usize,
    (frontier, edges): (usize, usize),
    secs_us: u32,
    (observed, cutoff, forced): (usize, usize, bool),
    hw_keys: usize,
) -> TraceIteration {
    let decision = if forced {
        DirectionDecision::forced(observed, cutoff)
    } else {
        DirectionDecision::heuristic(observed, cutoff)
    };
    let mut hardware = BTreeMap::new();
    for (i, key) in ["cycles", "instructions", "llc_load_misses"]
        .iter()
        .take(hw_keys)
        .enumerate()
    {
        hardware.insert(key.to_string(), (step * 1000 + i) as f64 * 0.5);
    }
    TraceIteration {
        record: IterRecord {
            step,
            frontier_size: frontier,
            edges_scanned: edges,
            seconds: f64::from(secs_us) * 1e-6,
            mode: if decision.says_pull() {
                StepMode::Pull
            } else {
                StepMode::Push
            },
            density: frontier as f64 / edges.max(1) as f64,
            decision,
        },
        hardware,
    }
}

/// A full v4 trace around the given iterations.
fn v4_trace(iterations: Vec<TraceIteration>) -> RunTrace {
    let mut t = RunTrace::new("bfs");
    t.config.insert("layout".into(), "adj".into());
    t.config.insert("flow".into(), "push-pull".into());
    t.breakdown.load = 0.25;
    t.breakdown.algorithm = 1.5;
    t.iterations = iterations;
    t
}

type IterDraw = ((usize, usize), u32, (usize, usize, bool), usize);

fn iterations_strategy() -> impl Strategy<Value = Vec<IterDraw>> {
    prop::collection::vec(
        (
            (0usize..5_000, 0usize..100_000),
            0u32..1_000_000,
            (0usize..200_000, 1usize..10_000, any::<bool>()),
            0usize..4,
        ),
        0..12,
    )
}

proptest! {
    #[test]
    fn v4_iterations_round_trip_through_json(draws in iterations_strategy()) {
        let trace = v4_trace(
            draws
                .iter()
                .enumerate()
                .map(|(step, &(fe, us, d, hw))| iteration(step, fe, us, d, hw))
                .collect(),
        );
        let parsed = RunTrace::from_json(&trace.to_json()).expect("own JSON parses");
        prop_assert_eq!(&parsed.schema, TRACE_SCHEMA);
        prop_assert_eq!(parsed, trace);
    }

    #[test]
    fn v4_iterations_round_trip_through_csv(draws in iterations_strategy()) {
        let trace = v4_trace(
            draws
                .iter()
                .enumerate()
                .map(|(step, &(fe, us, d, hw))| iteration(step, fe, us, d, hw))
                .collect(),
        );
        let parsed = RunTrace::from_csv(&trace.to_csv()).expect("own CSV parses");
        prop_assert_eq!(parsed.iterations, trace.iterations);
        prop_assert_eq!(parsed.config, trace.config);
    }

    #[test]
    fn foreign_schema_versions_stay_typed_errors(version in 5u32..10_000) {
        let tag = format!("egraph-trace/{version}");
        let doc = format!(
            r#"{{"schema": "{tag}", "algorithm": "bfs", "config": {{}},
                "breakdown": {{"load": 0, "preprocess": 0, "partition": 0,
                               "algorithm": 0, "store": 0, "total": 0}},
                "iterations": [], "counters": {{}}, "spans": []}}"#
        );
        match RunTrace::from_json(&doc) {
            Err(TraceError::UnsupportedSchema(got)) => prop_assert_eq!(got, tag.clone()),
            other => {
                return Err(TestCaseError::fail(format!(
                    "expected UnsupportedSchema, got {other:?}"
                )))
            }
        }
        let csv = format!("record,key,step,frontier_size,edges_scanned,seconds,mode,value\nmeta,schema,,,,,,{tag}\n");
        match RunTrace::from_csv(&csv) {
            Err(TraceError::UnsupportedSchema(got)) => prop_assert_eq!(got, tag),
            other => {
                return Err(TestCaseError::fail(format!(
                    "expected UnsupportedSchema, got {other:?}"
                )))
            }
        }
    }
}

#[test]
fn v1_fixture_parses_with_empty_v2_plus_sections() {
    // A pre-phases document: no `phases` key at all, iterations without
    // density/decision/hardware.
    let doc = r#"{
        "schema": "egraph-trace/1",
        "algorithm": "bfs",
        "config": {"layout": "adj"},
        "breakdown": {"load": 0.1, "preprocess": 0.2, "partition": 0,
                      "algorithm": 0.5, "store": 0, "total": 0.8},
        "iterations": [
            {"step": 0, "frontier_size": 1, "edges_scanned": 5,
             "seconds": 0.01, "mode": "push"}
        ],
        "counters": {"pool.tasks": 4},
        "spans": []
    }"#;
    let trace = RunTrace::from_json(doc).expect("v1 parses");
    assert_eq!(trace.schema, "egraph-trace/1");
    assert!(trace.phases.is_empty());
    assert_eq!(trace.iterations.len(), 1);
    let it = &trace.iterations[0];
    assert_eq!(it.record.frontier_size, 1);
    assert_eq!(it.record.density, 0.0);
    assert_eq!(it.record.decision, DirectionDecision::default());
    assert!(it.hardware.is_empty());
}

#[test]
fn v2_fixture_parses_with_phase_memory_absent() {
    // Phases arrived in v2, per-phase memory in v3: a v2 phase object
    // has no `memory` key.
    let doc = r#"{
        "schema": "egraph-trace/2",
        "algorithm": "pagerank",
        "config": {},
        "breakdown": {"load": 0, "preprocess": 0, "partition": 0,
                      "algorithm": 1.0, "store": 0, "total": 1.0},
        "iterations": [],
        "counters": {},
        "spans": [],
        "phases": [
            {"name": "algorithm", "seconds": 1.0,
             "hardware": {"cycles": 100.0}, "simulated": null}
        ]
    }"#;
    let trace = RunTrace::from_json(doc).expect("v2 parses");
    assert_eq!(trace.schema, "egraph-trace/2");
    assert_eq!(trace.phases.len(), 1);
    assert!(trace.phases[0].memory.is_none());
    assert_eq!(trace.phases[0].hardware["cycles"], 100.0);
}

#[test]
fn v3_fixtures_parse_with_default_decision_log() {
    let doc = r#"{
        "schema": "egraph-trace/3",
        "algorithm": "wcc",
        "config": {"flow": "push-pull"},
        "breakdown": {"load": 0, "preprocess": 0, "partition": 0,
                      "algorithm": 0.3, "store": 0, "total": 0.3},
        "iterations": [
            {"step": 0, "frontier_size": 10, "edges_scanned": 40,
             "seconds": 0.01, "mode": "push"},
            {"step": 1, "frontier_size": 900, "edges_scanned": 4000,
             "seconds": 0.02, "mode": "pull"}
        ],
        "counters": {},
        "spans": [],
        "phases": [
            {"name": "algorithm", "seconds": 0.3, "hardware": {},
             "simulated": null,
             "memory": {"allocated_bytes": 10, "freed_bytes": 5,
                        "peak_bytes": 10, "end_rss_bytes": 100}}
        ]
    }"#;
    let trace = RunTrace::from_json(doc).expect("v3 JSON parses");
    assert_eq!(trace.schema, "egraph-trace/3");
    assert_eq!(trace.iterations.len(), 2);
    for it in &trace.iterations {
        assert_eq!(it.record.density, 0.0);
        assert_eq!(it.record.decision, DirectionDecision::default());
        assert!(it.hardware.is_empty());
    }
    assert!(trace.phases[0].memory.is_some());

    // The CSV form of the same generation: iteration rows with an
    // empty `value` column and no iter_decision/iter_hw rows.
    let csv = "record,key,step,frontier_size,edges_scanned,seconds,mode,value\n\
               meta,schema,,,,,,egraph-trace/3\n\
               meta,algorithm,,,,,,wcc\n\
               iteration,,0,10,40,0.01,push,\n\
               iteration,,1,900,4000,0.02,pull,\n";
    let trace = RunTrace::from_csv(csv).expect("v3 CSV parses");
    assert_eq!(trace.schema, "egraph-trace/3");
    assert_eq!(trace.iterations.len(), 2);
    assert_eq!(trace.iterations[1].record.mode, StepMode::Pull);
    assert_eq!(trace.iterations[0].record.density, 0.0);
    assert_eq!(
        trace.iterations[0].record.decision,
        DirectionDecision::default()
    );
}

/// A density-skewed graph: a short lead-in chain, a hub step that
/// lights up almost every vertex at once, and a short tail — BFS
/// push-pull must switch push → pull at the hub and back after it.
fn skewed_graph() -> EdgeList {
    let spokes = 1200u32;
    let nv = spokes + 3; // chain 0,1 + spokes + tail 2
    let mut edges = vec![Edge::new(0, 1)];
    for v in 2..spokes + 2 {
        edges.push(Edge::new(1, v));
        edges.push(Edge::new(v, spokes + 2));
    }
    EdgeList::new(nv as usize, edges).expect("valid edge list")
}

/// Runs BFS push-pull over the skewed graph on a pool of `threads`
/// workers and returns the recorded decision log (everything except
/// the wall-clock seconds, which legitimately vary).
fn decision_log(threads: usize) -> Vec<(usize, usize, usize, StepMode, u64, DirectionDecision)> {
    let graph = skewed_graph();
    let recorder = TraceRecorder::new();
    let pool = ThreadPool::new(threads);
    let prepared = PreparedGraph::new(&graph);
    let id: VariantId = "bfs/adj/push-pull".parse().expect("valid variant spec");
    run_variant(
        &id,
        &ExecCtx::new(&pool).recorder(&recorder),
        &prepared,
        &RunParams::default(),
    )
    .expect("variant is in the support matrix");
    recorder
        .iterations()
        .into_iter()
        .map(|r| {
            (
                r.step,
                r.frontier_size,
                r.edges_scanned,
                r.mode,
                r.density.to_bits(),
                r.decision,
            )
        })
        .collect()
}

#[test]
fn decision_log_is_identical_across_thread_counts() {
    let baseline = decision_log(1);
    assert!(
        baseline.len() >= 3,
        "expected a multi-step run, got {baseline:?}"
    );
    let flips = baseline.windows(2).filter(|w| w[0].3 != w[1].3).count();
    assert!(
        flips >= 2,
        "the skewed graph must force a pull round trip, got {baseline:?}"
    );
    for threads in [2, 4] {
        assert_eq!(
            decision_log(threads),
            baseline,
            "decision log diverged at {threads} threads"
        );
    }
}

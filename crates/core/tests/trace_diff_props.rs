//! Property tests for the `trace diff` gate threshold logic.
//!
//! The gate must be a total, monotone function of its inputs: no
//! combination of phase seconds (including zeros and NaN from corrupt
//! traces), threshold, and floor may panic, produce NaN verdicts, or
//! flag a run that did not get slower.

use egraph_core::telemetry::{PhaseProfile, RunTrace};
use egraph_core::trace_diff::{diff_traces, DiffOptions, DiffRow};
use proptest::prelude::*;

/// A trace whose algorithm phase costs `algorithm_secs` and optionally
/// carries LLC counters.
fn trace(algorithm_secs: f64, llc: Option<(f64, f64)>) -> RunTrace {
    let mut t = RunTrace::new("bfs");
    t.breakdown.algorithm = algorithm_secs;
    let mut phase = PhaseProfile {
        name: "algorithm".into(),
        seconds: algorithm_secs,
        ..PhaseProfile::default()
    };
    if let Some((loads, misses)) = llc {
        phase.hardware.insert("llc_loads".into(), loads);
        phase.hardware.insert("llc_load_misses".into(), misses);
    }
    t.phases.push(phase);
    t
}

/// Scales a raw integer draw into seconds spanning sub-noise to long
/// phases (0 .. ~100 s with microsecond granularity).
fn secs(raw: u64) -> f64 {
    raw as f64 * 1e-6
}

proptest! {
    #[test]
    fn faster_or_equal_runs_never_regress(
        old_us in 0u64..100_000_000,
        shrink_us in 0u64..100_000_000,
        threshold_pct in 0u32..200,
    ) {
        let old_s = secs(old_us);
        let new_s = secs(old_us.saturating_sub(shrink_us));
        let opts = DiffOptions {
            threshold_pct: threshold_pct as f64,
            ..DiffOptions::default()
        };
        let diff = diff_traces(&trace(old_s, None), &trace(new_s, None), &opts);
        prop_assert!(
            !diff.has_regressions(),
            "{old_s}s -> {new_s}s flagged at {threshold_pct}%: {:?}",
            diff.regressions
        );
    }

    #[test]
    fn gate_is_monotone_in_the_threshold(
        old_us in 1u64..100_000_000,
        new_us in 1u64..100_000_000,
        tight_pct in 0u32..100,
        extra_pct in 1u32..100,
    ) {
        // If a slowdown passes a tight threshold it must pass every
        // looser one; equivalently a loose-threshold regression implies
        // a tight-threshold regression.
        let old = trace(secs(old_us), None);
        let new = trace(secs(new_us), None);
        let tight = DiffOptions { threshold_pct: tight_pct as f64, ..DiffOptions::default() };
        let loose = DiffOptions {
            threshold_pct: (tight_pct + extra_pct) as f64,
            ..DiffOptions::default()
        };
        let regressed_loose = diff_traces(&old, &new, &loose).has_regressions();
        let regressed_tight = diff_traces(&old, &new, &tight).has_regressions();
        prop_assert!(
            !regressed_loose || regressed_tight,
            "regressed at {}% but not at {}%",
            loose.threshold_pct,
            tight.threshold_pct
        );
    }

    #[test]
    fn sub_floor_phases_never_gate(
        old_us in 0u64..1000,
        new_us in 0u64..1000,
        threshold_pct in 0u32..50,
    ) {
        // Both runs stay under the 1 ms default floor: any relative
        // jitter — including appearing from zero — is noise.
        let opts = DiffOptions { threshold_pct: threshold_pct as f64, ..DiffOptions::default() };
        let diff = diff_traces(&trace(secs(old_us), None), &trace(secs(new_us), None), &opts);
        prop_assert!(!diff.has_regressions(), "{:?}", diff.regressions);
    }

    #[test]
    fn zero_second_baseline_gates_once_above_the_floor(extra_us in 1_000u64..10_000_000) {
        // A phase absent from the baseline that now costs >= the floor
        // is an infinite relative slowdown and must gate.
        let opts = DiffOptions::default();
        let new_s = opts.min_seconds + secs(extra_us);
        let diff = diff_traces(&trace(0.0, None), &trace(new_s, None), &opts);
        prop_assert!(diff.has_regressions(), "0s -> {new_s}s passed the gate");
    }

    #[test]
    fn non_finite_inputs_never_panic_or_gate(
        pick in 0usize..5,
        other_us in 0u64..10_000_000,
        loads in 0u64..1000,
    ) {
        let bad = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0, 0.0][pick];
        // NaN/inf seconds on either side, and LLC counters whose loads
        // may be zero (the division edge case), must neither panic nor
        // produce NaN verdicts.
        let llc = Some((loads as f64, bad));
        let old = trace(bad, llc);
        let new = trace(secs(other_us), Some((loads as f64, 1.0)));
        for (a, b) in [(&old, &new), (&new, &old), (&old, &old)] {
            let diff = diff_traces(a, b, &DiffOptions::default());
            for row in &diff.rows {
                prop_assert!(!row.delta_pct().is_infinite() || row.old == 0.0);
                if !row.old.is_finite() || !row.new.is_finite() {
                    prop_assert!(!row.regressed, "non-finite row gated: {}", row.metric);
                    prop_assert!(row.delta_pct().is_nan());
                }
            }
        }
    }

    #[test]
    fn delta_pct_is_total(old_bits in any::<u32>(), new_bits in any::<u32>()) {
        // Any pair of f64 values (driven through the f32 bit space for
        // coverage of NaN/inf/subnormals) yields a number, never a panic.
        let row = DiffRow {
            metric: "x".into(),
            old: f32::from_bits(old_bits) as f64,
            new: f32::from_bits(new_bits) as f64,
            gating: true,
            regressed: false,
        };
        let _ = row.delta_pct();
    }
}

#[test]
fn absent_llc_counters_produce_no_ratio_rows() {
    // loads == 0: the ratio would be 0/0 = NaN; the row must simply be
    // omitted rather than poisoning the diff.
    let old = trace(1.0, Some((0.0, 0.0)));
    let new = trace(1.0, Some((0.0, 0.0)));
    let diff = diff_traces(&old, &new, &DiffOptions::default());
    assert!(
        diff.rows
            .iter()
            .all(|r| !r.metric.contains("llc_miss_ratio")),
        "{:?}",
        diff.rows
    );
    assert!(!diff.has_regressions());
}

#[test]
fn miss_ratio_appearing_from_zero_gates() {
    let old = trace(1.0, Some((100.0, 0.0)));
    let new = trace(1.0, Some((100.0, 30.0)));
    let diff = diff_traces(&old, &new, &DiffOptions::default());
    assert!(diff.has_regressions());
    assert!(diff
        .regressions
        .iter()
        .any(|r| r.contains("appeared from zero")));
}

//! The unified variant-dispatch API: one typed identifier per
//! algorithm × layout × direction combination and one resolver,
//! [`run_variant`], that every caller (CLI, bench, testkit, serve)
//! goes through instead of hand-writing its own match-block dispatch
//! over the ~25 algorithm entry points.
//!
//! ```
//! use egraph_core::exec::ExecCtx;
//! use egraph_core::types::{Edge, EdgeList};
//! use egraph_core::variant::{PreparedGraph, RunParams, VariantId};
//!
//! let graph = EdgeList::new(3, vec![Edge::new(0, 1), Edge::new(1, 2)]).unwrap();
//! let prepared = PreparedGraph::new(&graph);
//! let id: VariantId = "bfs/adj/push".parse().unwrap();
//! let run = egraph_core::variant::run_variant(
//!     &id,
//!     &ExecCtx::new(None),
//!     &prepared,
//!     &RunParams::default(),
//! )
//! .unwrap();
//! assert_eq!(run.output.as_bfs().unwrap().reachable_count(), 3);
//! ```
//!
//! Unsupported combinations are a typed
//! [`VariantError::Unsupported`] naming the combination — never a
//! panic; [`supported_variants`] enumerates the full support matrix so
//! data-driven callers (the conformance matrix, shell completion) stay
//! in sync with the resolver by construction.

use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

use crate::algo::{bfs, pagerank, spmv, sssp, wcc};
use crate::exec::ExecCtx;
use crate::layout::{
    AdjacencyList, CcsrList, DeltaList, DeltaLog, EdgeDirection, Grid, NeighborAccess, VertexLayout,
};
use crate::metrics::timed;
use crate::preprocess::{compress_sorted_csr, CcsrBuilder, CsrBuilder, GridBuilder, Strategy};
use crate::types::{EdgeList, EdgeRecord, VertexId};

/// The algorithms of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// Breadth-first search.
    Bfs,
    /// PageRank power iteration.
    Pagerank,
    /// Single-source shortest paths.
    Sssp,
    /// Weakly connected components.
    Wcc,
    /// Sparse matrix-vector multiplication.
    Spmv,
}

impl Algo {
    /// All algorithms, in report order.
    pub const ALL: [Algo; 5] = [Algo::Bfs, Algo::Pagerank, Algo::Sssp, Algo::Wcc, Algo::Spmv];

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Bfs => "bfs",
            Algo::Pagerank => "pagerank",
            Algo::Sssp => "sssp",
            Algo::Wcc => "wcc",
            Algo::Spmv => "spmv",
        }
    }

    /// Whether the algorithm consumes edge weights (and therefore
    /// requires a weighted graph).
    pub fn needs_weights(self) -> bool {
        matches!(self, Algo::Sssp | Algo::Spmv)
    }
}

/// The edge layouts of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// CSR adjacency lists.
    Adjacency,
    /// The flat edge array (no preprocessing).
    EdgeList,
    /// The 2-D grid of edge blocks.
    Grid,
    /// Compressed CSR: delta/varint-encoded sorted neighbor lists,
    /// decoded on the fly (DESIGN.md §14).
    Ccsr,
    /// The mutable layout: a frozen CSR plus an append-only
    /// insert/delete log overlay (DESIGN.md §16). With an empty log it
    /// behaves exactly like `Adjacency`.
    Delta,
}

impl Layout {
    /// All layouts, in report order.
    pub const ALL: [Layout; 5] = [
        Layout::Adjacency,
        Layout::EdgeList,
        Layout::Grid,
        Layout::Ccsr,
        Layout::Delta,
    ];

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Layout::Adjacency => "adj",
            Layout::EdgeList => "edge",
            Layout::Grid => "grid",
            Layout::Ccsr => "ccsr",
            Layout::Delta => "delta",
        }
    }
}

/// The information-flow directions of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Sources scatter to destinations.
    Push,
    /// Destinations gather from sources.
    Pull,
    /// Direction-optimizing hybrid (Beamer's heuristic).
    PushPull,
}

impl Direction {
    /// All directions, in report order.
    pub const ALL: [Direction; 3] = [Direction::Push, Direction::Pull, Direction::PushPull];

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Direction::Push => "push",
            Direction::Pull => "pull",
            Direction::PushPull => "push-pull",
        }
    }
}

/// How push variants synchronize concurrent writes to a destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SyncMode {
    /// Atomic claims / accumulation (the default).
    #[default]
    Atomics,
    /// Per-vertex striped locks.
    Locks,
}

impl SyncMode {
    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            SyncMode::Atomics => "atomics",
            SyncMode::Locks => "locks",
        }
    }
}

impl FromStr for SyncMode {
    type Err = VariantError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "atomics" => Ok(SyncMode::Atomics),
            "locks" => Ok(SyncMode::Locks),
            other => Err(VariantError::Parse {
                what: "sync mode",
                got: other.to_string(),
                expected: "atomics|locks",
            }),
        }
    }
}

impl FromStr for Algo {
    type Err = VariantError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Algo::ALL
            .into_iter()
            .find(|a| a.name() == s)
            .ok_or_else(|| VariantError::Parse {
                what: "algorithm",
                got: s.to_string(),
                expected: "bfs|pagerank|sssp|wcc|spmv",
            })
    }
}

impl FromStr for Layout {
    type Err = VariantError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Layout::ALL
            .into_iter()
            .find(|l| l.name() == s)
            .ok_or_else(|| VariantError::Parse {
                what: "layout",
                got: s.to_string(),
                expected: "adj|edge|grid|ccsr|delta",
            })
    }
}

impl FromStr for Direction {
    type Err = VariantError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Direction::ALL
            .into_iter()
            .find(|d| d.name() == s)
            .ok_or_else(|| VariantError::Parse {
                what: "flow direction",
                got: s.to_string(),
                expected: "push|pull|push-pull",
            })
    }
}

impl fmt::Display for Algo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Display for SyncMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One algorithm × layout × direction combination, e.g.
/// `bfs/adj/push-pull`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VariantId {
    /// The algorithm.
    pub algo: Algo,
    /// The edge layout.
    pub layout: Layout,
    /// The information-flow direction.
    pub direction: Direction,
}

impl VariantId {
    /// Creates an identifier (which may name an unsupported
    /// combination — [`run_variant`] reports those as typed errors).
    pub fn new(algo: Algo, layout: Layout, direction: Direction) -> Self {
        Self {
            algo,
            layout,
            direction,
        }
    }
}

impl fmt::Display for VariantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.algo, self.layout, self.direction)
    }
}

impl FromStr for VariantId {
    type Err = VariantError;

    /// Parses `algo/layout/direction` (e.g. `"pagerank/grid/pull"`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('/');
        let (Some(algo), Some(layout), Some(direction), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(VariantError::Parse {
                what: "variant id",
                got: s.to_string(),
                expected: "algo/layout/direction",
            });
        };
        Ok(Self {
            algo: algo.parse()?,
            layout: layout.parse()?,
            direction: direction.parse()?,
        })
    }
}

/// Typed dispatch failures. Every mis-addressed combination surfaces
/// here; [`run_variant`] never panics on its inputs.
#[derive(Debug, Clone)]
pub enum VariantError {
    /// The combination names no implemented variant.
    Unsupported(VariantId),
    /// The algorithm consumes weights but the graph is unweighted.
    NeedsWeights(Algo),
    /// A traversal root outside the vertex range.
    RootOutOfRange {
        /// The requested root.
        root: VertexId,
        /// The graph's vertex count.
        num_vertices: usize,
    },
    /// A component string did not parse.
    Parse {
        /// What was being parsed ("algorithm", "layout", ...).
        what: &'static str,
        /// The offending input.
        got: String,
        /// The accepted spellings.
        expected: &'static str,
    },
}

impl fmt::Display for VariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VariantError::Unsupported(id) => write!(
                f,
                "unsupported variant {id}: {} does not implement layout '{}' with flow '{}'",
                id.algo, id.layout, id.direction
            ),
            VariantError::NeedsWeights(algo) => write!(
                f,
                "{algo} needs a weighted graph (generate with --weighted true)"
            ),
            VariantError::RootOutOfRange { root, num_vertices } => {
                write!(
                    f,
                    "root {root} out of range (graph has {num_vertices} vertices)"
                )
            }
            VariantError::Parse {
                what,
                got,
                expected,
            } => write!(f, "unknown {what} '{got}' (expected {expected})"),
        }
    }
}

impl std::error::Error for VariantError {}

/// Reports whether the combination is implemented.
pub fn is_supported(id: &VariantId) -> bool {
    use Direction::*;
    use Layout::*;
    let dirs: &[Direction] = match (id.algo, id.layout) {
        // The compressed CSR decodes to the same spans the kernels
        // iterate on uncompressed CSR, and the delta layout overlays
        // the same spans over a frozen CSR, so both support sets
        // mirror `Adjacency` exactly.
        (Algo::Bfs | Algo::Wcc, Adjacency | Ccsr | Delta) => &[Push, Pull, PushPull],
        (Algo::Bfs | Algo::Wcc, EdgeList | Grid) => &[Push],
        (Algo::Pagerank, Adjacency | Ccsr | Delta) => &[Push, Pull],
        (Algo::Pagerank, EdgeList) => &[Push],
        (Algo::Pagerank, Grid) => &[Push, Pull],
        (Algo::Sssp, Adjacency | Ccsr | Delta | EdgeList) => &[Push],
        (Algo::Sssp, Grid) => &[],
        (Algo::Spmv, Adjacency | Ccsr | Delta) => &[Push, Pull],
        (Algo::Spmv, EdgeList) => &[Push],
        (Algo::Spmv, Grid) => &[Push],
    };
    dirs.contains(&id.direction)
}

/// Every implemented combination, in stable report order. The
/// conformance matrix iterates this list, so a variant added to the
/// resolver is automatically covered.
pub fn supported_variants() -> Vec<VariantId> {
    let mut out = Vec::new();
    for algo in Algo::ALL {
        for layout in Layout::ALL {
            for direction in Direction::ALL {
                let id = VariantId::new(algo, layout, direction);
                if is_supported(&id) {
                    out.push(id);
                }
            }
        }
    }
    out
}

/// Whether [`RunParams::sync`] selects between distinct
/// implementations for this variant (atomic vs. locked push).
pub fn sync_matters(id: &VariantId) -> bool {
    matches!(
        (id.algo, id.layout, id.direction),
        (
            Algo::Bfs,
            Layout::Adjacency | Layout::Ccsr | Layout::Delta,
            Direction::Push
        ) | (
            Algo::Pagerank,
            Layout::Adjacency | Layout::Ccsr | Layout::Delta,
            Direction::Push
        ) | (Algo::Pagerank, Layout::EdgeList, Direction::Push)
            | (Algo::Pagerank, Layout::Grid, Direction::Push)
    )
}

/// Whether the variant is bit-identical across thread counts:
/// single-writer float accumulation in a fixed order (or integer /
/// min-based results, which are order-independent). Schedule-dependent
/// `f32` reordering (atomic or locked push accumulation) returns
/// `false`. DESIGN.md §11 derives the classification.
pub fn cross_thread_deterministic(id: &VariantId, sync: SyncMode) -> bool {
    match id.algo {
        // Integer fixpoints (BFS levels, WCC labels) and SSSP's
        // min-over-path-sums are order-independent on every schedule.
        Algo::Bfs | Algo::Wcc | Algo::Sssp => true,
        Algo::Pagerank => match (id.layout, id.direction) {
            (_, Direction::Pull) => true,
            // Unlocked grid push owns its column exclusively.
            (Layout::Grid, Direction::Push) => sync == SyncMode::Atomics,
            _ => false,
        },
        Algo::Spmv => matches!(
            (id.layout, id.direction),
            (_, Direction::Pull) | (Layout::Grid, Direction::Push)
        ),
    }
}

/// The default grid side for a graph of `nv` vertices (the CLI's
/// historical heuristic: one column per 256k vertices, clamped).
pub fn default_grid_side(nv: usize) -> usize {
    (nv / (1 << 18)).clamp(8, 256)
}

/// Everything a variant run needs besides the graph: traversal root,
/// PageRank configuration, push synchronization and the SpMV input
/// vector.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunParams<'a> {
    /// BFS/SSSP source vertex.
    pub root: VertexId,
    /// PageRank configuration (iterations, damping, tolerance).
    pub pagerank: pagerank::PagerankConfig,
    /// Push synchronization (ignored where [`sync_matters`] is false).
    pub sync: SyncMode,
    /// SpMV input vector; all-ones when `None`.
    pub x: Option<&'a [f32]>,
}

/// A graph plus lazily built, cached layouts. Each layout (per-
/// direction CSR, undirected CSR for WCC, grid, transposed grid) is
/// built at most once, on first use, under whatever pool/profiler the
/// requesting [`run_variant`] call supplies — so one `PreparedGraph`
/// can serve many variant runs without rebuilding, while a
/// single-variant caller pays exactly the preprocessing cost of the
/// layout it asked for.
pub struct PreparedGraph<'a, E: EdgeRecord> {
    edges: &'a EdgeList<E>,
    strategy: Strategy,
    grid_strategy: Option<Strategy>,
    sorted: bool,
    side: Option<usize>,
    deltas: Option<&'a DeltaLog<E>>,
    csr: [OnceLock<(AdjacencyList<E>, f64)>; 3],
    und_csr: OnceLock<(AdjacencyList<E>, f64)>,
    ccsr: [OnceLock<(CcsrList<E>, f64)>; 3],
    und_ccsr: OnceLock<(CcsrList<E>, f64)>,
    dcsr: [OnceLock<(DeltaList<E>, f64)>; 3],
    und_dcsr: OnceLock<(DeltaList<E>, f64)>,
    grid: OnceLock<(Grid<E>, f64)>,
    tgrid: OnceLock<(Grid<E>, f64)>,
    degrees: OnceLock<Vec<u32>>,
    delta_degrees: OnceLock<Vec<u32>>,
}

impl<'a, E: EdgeRecord> PreparedGraph<'a, E> {
    /// Wraps `edges` with default build settings (radix-sort CSR,
    /// unsorted neighbor lists, heuristic grid side).
    pub fn new(edges: &'a EdgeList<E>) -> Self {
        Self {
            edges,
            strategy: Strategy::RadixSort,
            grid_strategy: None,
            sorted: false,
            side: None,
            deltas: None,
            csr: [OnceLock::new(), OnceLock::new(), OnceLock::new()],
            und_csr: OnceLock::new(),
            ccsr: [OnceLock::new(), OnceLock::new(), OnceLock::new()],
            und_ccsr: OnceLock::new(),
            dcsr: [OnceLock::new(), OnceLock::new(), OnceLock::new()],
            und_dcsr: OnceLock::new(),
            grid: OnceLock::new(),
            tgrid: OnceLock::new(),
            degrees: OnceLock::new(),
            delta_degrees: OnceLock::new(),
        }
    }

    /// Attaches a pending delta log: `Layout::Delta` variants run on
    /// *base + log* (the merged graph) without a CSR rebuild. Without
    /// this, the delta layout runs with an empty overlay and behaves
    /// exactly like `Adjacency`.
    pub fn deltas(mut self, log: &'a DeltaLog<E>) -> Self {
        self.deltas = Some(log);
        self
    }

    /// Sets the CSR construction strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the grid construction strategy (defaults to the CSR
    /// strategy; the conformance matrix pins grids to count sort for
    /// stable within-cell edge order).
    pub fn grid_strategy(mut self, strategy: Strategy) -> Self {
        self.grid_strategy = Some(strategy);
        self
    }

    /// Sorts neighbor lists, making the CSR canonical across
    /// strategies and worker counts.
    pub fn sort_neighbors(mut self, sorted: bool) -> Self {
        self.sorted = sorted;
        self
    }

    /// Sets the grid side (defaults to [`default_grid_side`]).
    pub fn side(mut self, side: usize) -> Self {
        self.side = Some(side);
        self
    }

    /// The underlying edge list.
    pub fn edges(&self) -> &'a EdgeList<E> {
        self.edges
    }

    /// The vertex count.
    pub fn num_vertices(&self) -> usize {
        self.edges.num_vertices()
    }

    /// Out-degrees as `u32` (PageRank's normalization input).
    pub fn degrees(&self) -> &[u32] {
        self.degrees
            .get_or_init(|| self.edges.out_degrees().iter().map(|&d| d as u32).collect())
    }

    fn csr(&self, dir: EdgeDirection) -> &(AdjacencyList<E>, f64) {
        let slot = match dir {
            EdgeDirection::Out => &self.csr[0],
            EdgeDirection::In => &self.csr[1],
            EdgeDirection::Both => &self.csr[2],
        };
        slot.get_or_init(|| {
            let (adj, stats) = CsrBuilder::new(self.strategy, dir)
                .sort_neighbors(self.sorted)
                .build_timed(self.edges);
            (adj, stats.seconds)
        })
    }

    fn und_csr(&self) -> &(AdjacencyList<E>, f64) {
        self.und_csr.get_or_init(|| {
            let ((adj, stats), wall) = timed(|| {
                let undirected = self.edges.to_undirected();
                CsrBuilder::new(self.strategy, EdgeDirection::Out)
                    .sort_neighbors(self.sorted)
                    .build_timed(&undirected)
            });
            // The undirected copy is part of WCC's preprocessing cost.
            (adj, wall.max(stats.seconds))
        })
    }

    fn ccsr(&self, dir: EdgeDirection) -> &(CcsrList<E>, f64) {
        let slot = match dir {
            EdgeDirection::Out => &self.ccsr[0],
            EdgeDirection::In => &self.ccsr[1],
            EdgeDirection::Both => &self.ccsr[2],
        };
        slot.get_or_init(|| {
            if self.sorted {
                // The cached CSR is already neighbor-sorted — compress
                // it directly (and share one build between both
                // layouts, which also guarantees identical neighbor
                // order for the conformance oracle).
                let (csr, csr_seconds) = {
                    let cached = self.csr(dir);
                    (&cached.0, cached.1)
                };
                let (list, compress_seconds) = timed(|| compress_sorted_csr(csr));
                (list, csr_seconds + compress_seconds)
            } else {
                let (list, stats) = CcsrBuilder::new(self.strategy, dir).build_timed(self.edges);
                (list, stats.seconds)
            }
        })
    }

    fn und_ccsr(&self) -> &(CcsrList<E>, f64) {
        self.und_ccsr.get_or_init(|| {
            if self.sorted {
                let (csr, csr_seconds) = {
                    let cached = self.und_csr();
                    (&cached.0, cached.1)
                };
                let (list, compress_seconds) = timed(|| compress_sorted_csr(csr));
                (list, csr_seconds + compress_seconds)
            } else {
                let ((list, stats), wall) = timed(|| {
                    let undirected = self.edges.to_undirected();
                    CcsrBuilder::new(self.strategy, EdgeDirection::Out).build_timed(&undirected)
                });
                // The undirected copy is part of WCC's preprocessing
                // cost.
                (list, wall.max(stats.seconds))
            }
        })
    }

    fn dcsr(&self, dir: EdgeDirection) -> &(DeltaList<E>, f64) {
        let slot = match dir {
            EdgeDirection::Out => &self.dcsr[0],
            EdgeDirection::In => &self.dcsr[1],
            EdgeDirection::Both => &self.dcsr[2],
        };
        slot.get_or_init(|| {
            // The delta layout owns its base CSR (it outlives this
            // call's borrows), so it builds one rather than borrowing
            // the cached `csr` slot; base build plus overlay layering
            // is the layout's preprocessing cost.
            let (list, wall) = timed(|| {
                let (out, inc) = CsrBuilder::new(self.strategy, dir)
                    .sort_neighbors(self.sorted)
                    .build(self.edges)
                    .into_parts();
                let empty = DeltaLog::new();
                DeltaList::new(out, inc, self.deltas.unwrap_or(&empty))
            });
            (list, wall)
        })
    }

    fn und_dcsr(&self) -> &(DeltaList<E>, f64) {
        self.und_dcsr.get_or_init(|| {
            let (list, wall) = timed(|| {
                // Deletes are multiset-wide per *directed* edge, but the
                // symmetrized view holds copies of (s, d) from both the
                // directed (s, d) and (d, s) edges — a tombstone cannot
                // tell them apart and would over-delete. Merge first in
                // that case; insert-only logs overlay exactly.
                let has_deletes = self.deltas.is_some_and(|log| log.as_batch().has_deletes());
                let (undirected, log) = if has_deletes {
                    let merged = self.deltas.expect("has_deletes").merge_into(self.edges);
                    (merged.to_undirected(), DeltaLog::new())
                } else {
                    (
                        self.edges.to_undirected(),
                        self.deltas
                            .map(DeltaLog::to_undirected)
                            .unwrap_or_else(DeltaLog::new),
                    )
                };
                let (out, inc) = CsrBuilder::new(self.strategy, EdgeDirection::Out)
                    .sort_neighbors(self.sorted)
                    .build(&undirected)
                    .into_parts();
                DeltaList::new(out, inc, &log)
            });
            (list, wall)
        })
    }

    /// Out-degrees of the *merged* graph (base + attached delta log),
    /// the normalization input of the delta PageRank variants.
    pub fn delta_degrees(&self) -> &[u32] {
        self.delta_degrees.get_or_init(|| {
            let out = self.dcsr(EdgeDirection::Out).0.out();
            (0..self.num_vertices() as VertexId)
                .map(|v| out.degree(v) as u32)
                .collect()
        })
    }

    fn grid(&self, transposed: bool) -> &(Grid<E>, f64) {
        let slot = if transposed { &self.tgrid } else { &self.grid };
        slot.get_or_init(|| {
            let side = self
                .side
                .unwrap_or_else(|| default_grid_side(self.num_vertices()));
            let (grid, stats) = GridBuilder::new(self.grid_strategy.unwrap_or(self.strategy))
                .side(side)
                .transposed(transposed)
                .build_timed(self.edges);
            (grid, stats.seconds)
        })
    }

    /// Builds (or fetches) the layouts `id` needs and returns their
    /// accumulated build seconds. Zero for the edge-list layout, which
    /// runs straight off the input.
    fn prepare(&self, id: &VariantId) -> f64 {
        match (id.algo, id.layout) {
            (_, Layout::EdgeList) => 0.0,
            (Algo::Wcc, Layout::Adjacency) => self.und_csr().1,
            (_, Layout::Adjacency) => self.csr(csr_direction(id)).1,
            (Algo::Wcc, Layout::Ccsr) => self.und_ccsr().1,
            (_, Layout::Ccsr) => self.ccsr(csr_direction(id)).1,
            (Algo::Wcc, Layout::Delta) => self.und_dcsr().1,
            (_, Layout::Delta) => self.dcsr(csr_direction(id)).1,
            (Algo::Pagerank, Layout::Grid) if id.direction == Direction::Pull => self.grid(true).1,
            (_, Layout::Grid) => self.grid(false).1,
        }
    }
}

impl<E: EdgeRecord> fmt::Debug for PreparedGraph<'_, E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PreparedGraph")
            .field("num_vertices", &self.num_vertices())
            .field("num_edges", &self.edges.num_edges())
            .field("strategy", &self.strategy)
            .field("sorted", &self.sorted)
            .finish()
    }
}

/// The CSR direction a variant traverses: push reads out-edges, pull
/// reads in-edges, the hybrid needs both.
fn csr_direction(id: &VariantId) -> EdgeDirection {
    match id.direction {
        Direction::Push => EdgeDirection::Out,
        Direction::Pull => EdgeDirection::In,
        Direction::PushPull => EdgeDirection::Both,
    }
}

/// The typed result of a variant run.
#[derive(Debug, Clone)]
pub enum VariantOutput {
    /// BFS parents, levels and iteration log.
    Bfs(bfs::BfsResult),
    /// PageRank ranks.
    Pagerank(pagerank::PagerankResult),
    /// SSSP distances.
    Sssp(sssp::SsspResult),
    /// WCC labels.
    Wcc(wcc::WccResult),
    /// SpMV output vector.
    Spmv(spmv::SpmvResult),
}

impl VariantOutput {
    /// Wall-clock seconds the algorithm itself ran.
    pub fn algorithm_seconds(&self) -> f64 {
        match self {
            VariantOutput::Bfs(r) => r.algorithm_seconds(),
            VariantOutput::Pagerank(r) => r.seconds,
            VariantOutput::Sssp(r) => r.algorithm_seconds(),
            VariantOutput::Wcc(r) => r.algorithm_seconds(),
            VariantOutput::Spmv(r) => r.seconds,
        }
    }

    /// The BFS result, when this is one.
    pub fn as_bfs(&self) -> Option<&bfs::BfsResult> {
        match self {
            VariantOutput::Bfs(r) => Some(r),
            _ => None,
        }
    }

    /// The PageRank result, when this is one.
    pub fn as_pagerank(&self) -> Option<&pagerank::PagerankResult> {
        match self {
            VariantOutput::Pagerank(r) => Some(r),
            _ => None,
        }
    }

    /// The SSSP result, when this is one.
    pub fn as_sssp(&self) -> Option<&sssp::SsspResult> {
        match self {
            VariantOutput::Sssp(r) => Some(r),
            _ => None,
        }
    }

    /// The WCC result, when this is one.
    pub fn as_wcc(&self) -> Option<&wcc::WccResult> {
        match self {
            VariantOutput::Wcc(r) => Some(r),
            _ => None,
        }
    }

    /// The SpMV result, when this is one.
    pub fn as_spmv(&self) -> Option<&spmv::SpmvResult> {
        match self {
            VariantOutput::Spmv(r) => Some(r),
            _ => None,
        }
    }
}

/// A completed variant run: the output plus the time attribution the
/// CLI's breakdown and traces report.
#[derive(Debug, Clone)]
pub struct VariantRun {
    /// The algorithm's typed result.
    pub output: VariantOutput,
    /// Seconds spent building the layouts this run used (cached
    /// layouts report their original build time).
    pub preprocess_seconds: f64,
    /// Seconds the algorithm itself ran.
    pub algorithm_seconds: f64,
}

/// Resolves and runs one variant: builds (or reuses) the layouts the
/// combination needs, then executes it under the context's pool with
/// the context's instrumentation, attributing `"preprocess"` and
/// `"algorithm"` phases to the context's profiler.
///
/// This is the single algorithm × layout × direction match block in
/// the workspace; everything else dispatches through it.
pub fn run_variant<E: EdgeRecord>(
    id: &VariantId,
    ctx: &ExecCtx<'_>,
    graph: &PreparedGraph<'_, E>,
    params: &RunParams<'_>,
) -> Result<VariantRun, VariantError> {
    if !is_supported(id) {
        return Err(VariantError::Unsupported(*id));
    }
    if id.algo.needs_weights() && !E::WEIGHTED {
        return Err(VariantError::NeedsWeights(id.algo));
    }
    let nv = graph.num_vertices();
    if matches!(id.algo, Algo::Bfs | Algo::Sssp) && params.root as usize >= nv {
        return Err(VariantError::RootOutOfRange {
            root: params.root,
            num_vertices: nv,
        });
    }
    ctx.scoped(|| {
        let preprocess_seconds = if id.layout == Layout::EdgeList {
            0.0
        } else {
            ctx.profile(crate::exec::PHASE_PREPROCESS, || graph.prepare(id))
        };
        let output = ctx.profile(crate::exec::PHASE_ALGORITHM, || {
            execute(id, ctx, graph, params)
        });
        Ok(VariantRun {
            algorithm_seconds: output.algorithm_seconds(),
            preprocess_seconds,
            output,
        })
    })
}

/// The resolver body: every `(algo, layout, direction)` arm calls the
/// matching kernel. Only reached for supported combinations.
fn execute<E: EdgeRecord>(
    id: &VariantId,
    ctx: &ExecCtx<'_>,
    graph: &PreparedGraph<'_, E>,
    params: &RunParams<'_>,
) -> VariantOutput {
    use Direction as D;
    use Layout as L;
    let c = ctx.context();
    let root = params.root;
    let edges = graph.edges();
    let ones;
    let x: &[f32] = match params.x {
        Some(x) => x,
        None => {
            ones = vec![1.0f32; graph.num_vertices()];
            &ones
        }
    };
    match (id.algo, id.layout, id.direction) {
        (Algo::Bfs, L::Adjacency, D::Push) => VariantOutput::Bfs(match params.sync {
            SyncMode::Atomics => bfs::push_impl(&graph.csr(EdgeDirection::Out).0, root, &c),
            SyncMode::Locks => bfs::push_locked(&graph.csr(EdgeDirection::Out).0, root),
        }),
        (Algo::Bfs, L::Adjacency, D::Pull) => {
            VariantOutput::Bfs(bfs::pull_impl(&graph.csr(EdgeDirection::In).0, root, &c))
        }
        (Algo::Bfs, L::Adjacency, D::PushPull) => VariantOutput::Bfs(bfs::push_pull_impl(
            &graph.csr(EdgeDirection::Both).0,
            root,
            &c,
        )),
        (Algo::Bfs, L::EdgeList, D::Push) => {
            VariantOutput::Bfs(bfs::edge_centric_impl(edges, root, &c))
        }
        (Algo::Bfs, L::Grid, D::Push) => {
            VariantOutput::Bfs(bfs::grid_impl(&graph.grid(false).0, root, &c))
        }
        (Algo::Bfs, L::Ccsr, D::Push) => VariantOutput::Bfs(match params.sync {
            SyncMode::Atomics => bfs::push_impl(&graph.ccsr(EdgeDirection::Out).0, root, &c),
            SyncMode::Locks => bfs::push_locked(&graph.ccsr(EdgeDirection::Out).0, root),
        }),
        (Algo::Bfs, L::Ccsr, D::Pull) => {
            VariantOutput::Bfs(bfs::pull_impl(&graph.ccsr(EdgeDirection::In).0, root, &c))
        }
        (Algo::Bfs, L::Ccsr, D::PushPull) => VariantOutput::Bfs(bfs::push_pull_impl(
            &graph.ccsr(EdgeDirection::Both).0,
            root,
            &c,
        )),
        (Algo::Bfs, L::Delta, D::Push) => VariantOutput::Bfs(match params.sync {
            SyncMode::Atomics => bfs::push_impl(&graph.dcsr(EdgeDirection::Out).0, root, &c),
            SyncMode::Locks => bfs::push_locked(&graph.dcsr(EdgeDirection::Out).0, root),
        }),
        (Algo::Bfs, L::Delta, D::Pull) => {
            VariantOutput::Bfs(bfs::pull_impl(&graph.dcsr(EdgeDirection::In).0, root, &c))
        }
        (Algo::Bfs, L::Delta, D::PushPull) => VariantOutput::Bfs(bfs::push_pull_impl(
            &graph.dcsr(EdgeDirection::Both).0,
            root,
            &c,
        )),

        (Algo::Pagerank, L::Adjacency, D::Push) => VariantOutput::Pagerank(pagerank::push_impl(
            graph.csr(EdgeDirection::Out).0.out(),
            graph.degrees(),
            params.pagerank,
            pagerank_sync(params.sync),
            &c,
        )),
        (Algo::Pagerank, L::Adjacency, D::Pull) => VariantOutput::Pagerank(pagerank::pull_impl(
            graph.csr(EdgeDirection::In).0.incoming(),
            graph.degrees(),
            params.pagerank,
            &c,
        )),
        (Algo::Pagerank, L::EdgeList, D::Push) => {
            VariantOutput::Pagerank(pagerank::edge_centric_impl(
                edges,
                graph.degrees(),
                params.pagerank,
                pagerank_sync(params.sync),
                &c,
            ))
        }
        (Algo::Pagerank, L::Grid, D::Push) => VariantOutput::Pagerank(pagerank::grid_push_impl(
            &graph.grid(false).0,
            graph.degrees(),
            params.pagerank,
            params.sync == SyncMode::Locks,
            &c,
        )),
        (Algo::Pagerank, L::Grid, D::Pull) => VariantOutput::Pagerank(pagerank::grid_pull_impl(
            &graph.grid(true).0,
            graph.degrees(),
            params.pagerank,
            &c,
        )),
        (Algo::Pagerank, L::Ccsr, D::Push) => VariantOutput::Pagerank(pagerank::push_impl(
            graph.ccsr(EdgeDirection::Out).0.out(),
            graph.degrees(),
            params.pagerank,
            pagerank_sync(params.sync),
            &c,
        )),
        (Algo::Pagerank, L::Ccsr, D::Pull) => VariantOutput::Pagerank(pagerank::pull_impl(
            graph.ccsr(EdgeDirection::In).0.incoming(),
            graph.degrees(),
            params.pagerank,
            &c,
        )),
        (Algo::Pagerank, L::Delta, D::Push) => VariantOutput::Pagerank(pagerank::push_impl(
            graph.dcsr(EdgeDirection::Out).0.out(),
            graph.delta_degrees(),
            params.pagerank,
            pagerank_sync(params.sync),
            &c,
        )),
        (Algo::Pagerank, L::Delta, D::Pull) => VariantOutput::Pagerank(pagerank::pull_impl(
            graph.dcsr(EdgeDirection::In).0.incoming(),
            graph.delta_degrees(),
            params.pagerank,
            &c,
        )),

        (Algo::Sssp, L::Adjacency, D::Push) => {
            VariantOutput::Sssp(sssp::push_impl(&graph.csr(EdgeDirection::Out).0, root, &c))
        }
        (Algo::Sssp, L::EdgeList, D::Push) => {
            VariantOutput::Sssp(sssp::edge_centric_impl(edges, root, &c))
        }
        (Algo::Sssp, L::Ccsr, D::Push) => {
            VariantOutput::Sssp(sssp::push_impl(&graph.ccsr(EdgeDirection::Out).0, root, &c))
        }
        (Algo::Sssp, L::Delta, D::Push) => {
            VariantOutput::Sssp(sssp::push_impl(&graph.dcsr(EdgeDirection::Out).0, root, &c))
        }

        (Algo::Wcc, L::Adjacency, D::Push) => {
            VariantOutput::Wcc(wcc::push_impl(&graph.und_csr().0, &c))
        }
        (Algo::Wcc, L::Adjacency, D::Pull) => {
            VariantOutput::Wcc(wcc::pull_impl(&graph.und_csr().0, &c))
        }
        (Algo::Wcc, L::Adjacency, D::PushPull) => {
            VariantOutput::Wcc(wcc::push_pull_impl(&graph.und_csr().0, &c))
        }
        (Algo::Wcc, L::EdgeList, D::Push) => VariantOutput::Wcc(wcc::edge_centric_impl(edges, &c)),
        (Algo::Wcc, L::Grid, D::Push) => {
            VariantOutput::Wcc(wcc::grid_impl(&graph.grid(false).0, &c))
        }
        (Algo::Wcc, L::Ccsr, D::Push) => {
            VariantOutput::Wcc(wcc::push_impl(&graph.und_ccsr().0, &c))
        }
        (Algo::Wcc, L::Ccsr, D::Pull) => {
            VariantOutput::Wcc(wcc::pull_impl(&graph.und_ccsr().0, &c))
        }
        (Algo::Wcc, L::Ccsr, D::PushPull) => {
            VariantOutput::Wcc(wcc::push_pull_impl(&graph.und_ccsr().0, &c))
        }
        (Algo::Wcc, L::Delta, D::Push) => {
            VariantOutput::Wcc(wcc::push_impl(&graph.und_dcsr().0, &c))
        }
        (Algo::Wcc, L::Delta, D::Pull) => {
            VariantOutput::Wcc(wcc::pull_impl(&graph.und_dcsr().0, &c))
        }
        (Algo::Wcc, L::Delta, D::PushPull) => {
            VariantOutput::Wcc(wcc::push_pull_impl(&graph.und_dcsr().0, &c))
        }

        (Algo::Spmv, L::Adjacency, D::Push) => VariantOutput::Spmv(spmv::push_impl(
            graph.csr(EdgeDirection::Out).0.out(),
            x,
            &c,
        )),
        (Algo::Spmv, L::Adjacency, D::Pull) => VariantOutput::Spmv(spmv::pull_impl(
            graph.csr(EdgeDirection::In).0.incoming(),
            x,
            &c,
        )),
        (Algo::Spmv, L::EdgeList, D::Push) => {
            VariantOutput::Spmv(spmv::edge_centric_impl(edges, x, &c))
        }
        (Algo::Spmv, L::Grid, D::Push) => {
            VariantOutput::Spmv(spmv::grid_impl(&graph.grid(false).0, x, &c))
        }
        (Algo::Spmv, L::Ccsr, D::Push) => VariantOutput::Spmv(spmv::push_impl(
            graph.ccsr(EdgeDirection::Out).0.out(),
            x,
            &c,
        )),
        (Algo::Spmv, L::Ccsr, D::Pull) => VariantOutput::Spmv(spmv::pull_impl(
            graph.ccsr(EdgeDirection::In).0.incoming(),
            x,
            &c,
        )),
        (Algo::Spmv, L::Delta, D::Push) => VariantOutput::Spmv(spmv::push_impl(
            graph.dcsr(EdgeDirection::Out).0.out(),
            x,
            &c,
        )),
        (Algo::Spmv, L::Delta, D::Pull) => VariantOutput::Spmv(spmv::pull_impl(
            graph.dcsr(EdgeDirection::In).0.incoming(),
            x,
            &c,
        )),

        // `is_supported` rejected everything else before we got here.
        _ => unreachable!("run_variant checked is_supported"),
    }
}

fn pagerank_sync(sync: SyncMode) -> pagerank::PushSync {
    match sync {
        SyncMode::Atomics => pagerank::PushSync::Atomics,
        SyncMode::Locks => pagerank::PushSync::Locks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Edge, WEdge};

    fn diamond() -> EdgeList<Edge> {
        EdgeList::new(
            4,
            vec![
                Edge::new(0, 1),
                Edge::new(0, 2),
                Edge::new(1, 3),
                Edge::new(2, 3),
            ],
        )
        .unwrap()
    }

    #[test]
    fn variant_id_round_trips_through_strings() {
        for id in supported_variants() {
            let parsed: VariantId = id.to_string().parse().unwrap();
            assert_eq!(parsed, id);
        }
    }

    #[test]
    fn parse_errors_name_the_component() {
        let err = "bfs/ring/push".parse::<VariantId>().unwrap_err();
        assert!(err.to_string().contains("ring"), "{err}");
        let err = "bfs/adj".parse::<VariantId>().unwrap_err();
        assert!(err.to_string().contains("algo/layout/direction"), "{err}");
    }

    #[test]
    fn unsupported_combination_is_a_typed_error() {
        let id = VariantId::new(Algo::Sssp, Layout::Grid, Direction::Push);
        let graph = EdgeList::new(2, vec![WEdge::new(0, 1, 1.0)]).unwrap();
        let prepared = PreparedGraph::new(&graph);
        let err =
            run_variant(&id, &ExecCtx::new(None), &prepared, &RunParams::default()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("sssp") && msg.contains("grid"), "{msg}");
    }

    #[test]
    fn sssp_on_unweighted_graph_is_rejected() {
        let graph = diamond();
        let prepared = PreparedGraph::new(&graph);
        let id = VariantId::new(Algo::Sssp, Layout::Adjacency, Direction::Push);
        let err =
            run_variant(&id, &ExecCtx::new(None), &prepared, &RunParams::default()).unwrap_err();
        assert!(matches!(err, VariantError::NeedsWeights(Algo::Sssp)));
    }

    #[test]
    fn root_out_of_range_is_reported() {
        let graph = diamond();
        let prepared = PreparedGraph::new(&graph);
        let id = VariantId::new(Algo::Bfs, Layout::Adjacency, Direction::Push);
        let err = run_variant(
            &id,
            &ExecCtx::new(None),
            &prepared,
            &RunParams {
                root: 99,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, VariantError::RootOutOfRange { root: 99, .. }));
    }

    #[test]
    fn every_supported_variant_runs_on_a_small_graph() {
        let g = diamond();
        let w = EdgeList::new(
            4,
            vec![
                WEdge::new(0, 1, 1.0),
                WEdge::new(0, 2, 2.0),
                WEdge::new(1, 3, 1.0),
                WEdge::new(2, 3, 1.0),
            ],
        )
        .unwrap();
        let pg = PreparedGraph::new(&g).side(2);
        let pw = PreparedGraph::new(&w).side(2);
        let ctx = ExecCtx::new(None);
        let params = RunParams::default();
        for id in supported_variants() {
            let run = if id.algo.needs_weights() {
                run_variant(&id, &ctx, &pw, &params)
            } else {
                run_variant(&id, &ctx, &pg, &params)
            };
            let run = run.unwrap_or_else(|e| panic!("{id}: {e}"));
            match id.algo {
                Algo::Bfs => assert_eq!(run.output.as_bfs().unwrap().reachable_count(), 4, "{id}"),
                Algo::Wcc => assert_eq!(run.output.as_wcc().unwrap().component_count(), 1, "{id}"),
                Algo::Sssp => {
                    let dist = &run.output.as_sssp().unwrap().dist;
                    assert_eq!(dist[3], 2.0, "{id}");
                }
                Algo::Pagerank => {
                    assert_eq!(run.output.as_pagerank().unwrap().ranks.len(), 4, "{id}")
                }
                Algo::Spmv => assert_eq!(run.output.as_spmv().unwrap().y.len(), 4, "{id}"),
            }
        }
    }

    #[test]
    fn ccsr_variants_match_adjacency_results() {
        let g = diamond();
        let w = EdgeList::new(
            4,
            vec![
                WEdge::new(0, 1, 1.0),
                WEdge::new(0, 2, 2.0),
                WEdge::new(1, 3, 1.0),
                WEdge::new(2, 3, 1.0),
            ],
        )
        .unwrap();
        let pg = PreparedGraph::new(&g).sort_neighbors(true);
        let pw = PreparedGraph::new(&w).sort_neighbors(true);
        let ctx = ExecCtx::new(None);
        let params = RunParams::default();
        for algo in [Algo::Bfs, Algo::Wcc, Algo::Pagerank, Algo::Spmv] {
            for direction in Direction::ALL {
                let adj_id = VariantId::new(algo, Layout::Adjacency, direction);
                let ccsr_id = VariantId::new(algo, Layout::Ccsr, direction);
                assert_eq!(is_supported(&adj_id), is_supported(&ccsr_id));
                if !is_supported(&adj_id) {
                    continue;
                }
                let (a, b) = if algo.needs_weights() {
                    (
                        run_variant(&adj_id, &ctx, &pw, &params).unwrap(),
                        run_variant(&ccsr_id, &ctx, &pw, &params).unwrap(),
                    )
                } else {
                    (
                        run_variant(&adj_id, &ctx, &pg, &params).unwrap(),
                        run_variant(&ccsr_id, &ctx, &pg, &params).unwrap(),
                    )
                };
                match (a.output, b.output) {
                    (VariantOutput::Bfs(x), VariantOutput::Bfs(y)) => {
                        assert_eq!(x.level, y.level, "{ccsr_id}")
                    }
                    (VariantOutput::Wcc(x), VariantOutput::Wcc(y)) => {
                        assert_eq!(x.label, y.label, "{ccsr_id}")
                    }
                    (VariantOutput::Pagerank(x), VariantOutput::Pagerank(y)) => {
                        assert_eq!(x.ranks, y.ranks, "{ccsr_id}")
                    }
                    (VariantOutput::Spmv(x), VariantOutput::Spmv(y)) => {
                        assert_eq!(x.y, y.y, "{ccsr_id}")
                    }
                    _ => unreachable!(),
                }
            }
        }
    }

    #[test]
    fn prepared_graph_caches_layouts() {
        let g = diamond();
        let pg = PreparedGraph::new(&g);
        let a = &pg.csr(EdgeDirection::Out).0 as *const _;
        let b = &pg.csr(EdgeDirection::Out).0 as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn sync_matters_only_for_push_variants_with_two_impls() {
        assert!(sync_matters(&"bfs/adj/push".parse().unwrap()));
        assert!(sync_matters(&"pagerank/grid/push".parse().unwrap()));
        assert!(!sync_matters(&"bfs/adj/pull".parse().unwrap()));
        assert!(!sync_matters(&"spmv/adj/push".parse().unwrap()));
    }

    #[test]
    fn determinism_classification_matches_design_doc() {
        let exact = |s: &str, sync| cross_thread_deterministic(&s.parse().unwrap(), sync);
        assert!(exact("bfs/adj/push", SyncMode::Atomics));
        assert!(exact("sssp/adj/push", SyncMode::Atomics));
        assert!(exact("pagerank/adj/pull", SyncMode::Atomics));
        assert!(exact("pagerank/grid/push", SyncMode::Atomics));
        assert!(!exact("pagerank/grid/push", SyncMode::Locks));
        assert!(!exact("pagerank/adj/push", SyncMode::Atomics));
        assert!(!exact("spmv/adj/push", SyncMode::Atomics));
        assert!(exact("spmv/grid/push", SyncMode::Atomics));
        assert!(exact("spmv/adj/pull", SyncMode::Atomics));
    }
}

//! Explicitly vectorized hot-path helpers for the pull kernels:
//! gather/sum over span-sized edge batches and software prefetch of
//! source metadata (`prev[src]`) a configurable distance ahead.
//!
//! Everything here is **feature-gated and bit-exact**: the AVX2 paths
//! (behind the `simd` cargo feature, runtime-detected, disabled under
//! miri) use the same fixed 8-lane accumulator association as the
//! scalar fallback — partial sums per lane, a fixed reduction tree at
//! the end, the tail folded element-wise into lanes `0..tail`, and no
//! FMA contraction — so enabling the feature never changes results.
//! DESIGN.md §14 documents the flags.

use std::sync::OnceLock;

use crate::types::EdgeRecord;

/// Lanes of the fixed-association accumulator.
pub const GATHER_LANES: usize = 8;

/// Environment variable overriding the prefetch distance (in edges).
/// `0` disables software prefetch.
pub const PREFETCH_DIST_ENV: &str = "EGRAPH_PREFETCH_DIST";

/// Default software-prefetch distance, in edges ahead of the current
/// one. Far enough to cover an L2 miss at pull-loop issue rates,
/// near enough not to thrash the fill buffers.
pub const DEFAULT_PREFETCH_DIST: usize = 8;

/// The configured prefetch distance: [`PREFETCH_DIST_ENV`] if set,
/// otherwise [`DEFAULT_PREFETCH_DIST`]; always `0` (off) without the
/// `simd` feature and under miri, matching the feature gate of
/// [`prefetch_read`].
#[inline]
pub fn prefetch_distance() -> usize {
    if cfg!(all(feature = "simd", not(miri))) {
        static DIST: OnceLock<usize> = OnceLock::new();
        *DIST.get_or_init(|| {
            std::env::var(PREFETCH_DIST_ENV)
                .ok()
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or(DEFAULT_PREFETCH_DIST)
        })
    } else {
        0
    }
}

/// Hints the CPU to load the cache line of `p` into all cache levels.
/// A no-op without the `simd` feature, under miri, and off x86-64.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(all(feature = "simd", target_arch = "x86_64", not(miri)))]
    // SAFETY: prefetch is a pure hint; it never faults, so any pointer
    // value (even dangling) is sound to pass.
    unsafe {
        std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(p as *const i8);
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64", not(miri))))]
    let _ = p;
}

/// The fixed reduction tree shared by every path: pairwise within each
/// half, then across halves. Changing this changes results — don't.
#[inline(always)]
fn reduce_lanes(l: &[f32; GATHER_LANES]) -> f32 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

/// Scalar spec for [`gather_sum`]: 8 lane accumulators fed round-robin
/// by edge position, tail folded into lanes `0..tail`.
fn gather_sum_scalar<E: EdgeRecord>(table: &[f32], edges: &[E]) -> f32 {
    let mut lanes = [0.0f32; GATHER_LANES];
    let full = edges.len() / GATHER_LANES * GATHER_LANES;
    for g in (0..full).step_by(GATHER_LANES) {
        for (j, lane) in lanes.iter_mut().enumerate() {
            *lane += table[edges[g + j].src() as usize];
        }
    }
    for (j, e) in edges[full..].iter().enumerate() {
        lanes[j] += table[e.src() as usize];
    }
    reduce_lanes(&lanes)
}

/// Scalar spec for [`gather_mul_sum`]: like [`gather_sum_scalar`] but
/// each term is `weight * table[src]`, multiplied and added as two
/// separately rounded operations (no FMA — the AVX2 path matches).
fn gather_mul_sum_scalar<E: EdgeRecord>(table: &[f32], edges: &[E]) -> f32 {
    let mut lanes = [0.0f32; GATHER_LANES];
    let full = edges.len() / GATHER_LANES * GATHER_LANES;
    for g in (0..full).step_by(GATHER_LANES) {
        for (j, lane) in lanes.iter_mut().enumerate() {
            let e = &edges[g + j];
            *lane += e.weight() * table[e.src() as usize];
        }
    }
    for (j, e) in edges[full..].iter().enumerate() {
        lanes[j] += e.weight() * table[e.src() as usize];
    }
    reduce_lanes(&lanes)
}

#[cfg(all(feature = "simd", target_arch = "x86_64", not(miri)))]
mod avx2 {
    use super::{EdgeRecord, GATHER_LANES};
    use std::arch::x86_64::*;

    #[inline]
    pub(super) fn available() -> bool {
        static AVX2: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *AVX2.get_or_init(|| is_x86_feature_detected!("avx2"))
    }

    /// # Safety
    ///
    /// Requires AVX2, and every `e.src()` must index into `table` —
    /// guaranteed by [`crate::types::EdgeList`] endpoint validation
    /// when `table` is a per-vertex array.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gather_sum<E: EdgeRecord>(table: &[f32], edges: &[E]) -> [f32; 8] {
        let mut acc = _mm256_setzero_ps();
        let mut idx = [0i32; GATHER_LANES];
        let full = edges.len() / GATHER_LANES * GATHER_LANES;
        for g in (0..full).step_by(GATHER_LANES) {
            for (j, slot) in idx.iter_mut().enumerate() {
                *slot = edges[g + j].src() as i32;
            }
            let iv = _mm256_loadu_si256(idx.as_ptr() as *const __m256i);
            let gathered = _mm256_i32gather_ps::<4>(table.as_ptr(), iv);
            acc = _mm256_add_ps(acc, gathered);
        }
        let mut lanes = [0.0f32; GATHER_LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        for (j, e) in edges[full..].iter().enumerate() {
            lanes[j] += table[e.src() as usize];
        }
        lanes
    }

    /// # Safety
    ///
    /// Same contract as [`gather_sum`]. Uses separate mul + add (never
    /// FMA) to stay bit-identical to the scalar spec.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gather_mul_sum<E: EdgeRecord>(table: &[f32], edges: &[E]) -> [f32; 8] {
        let mut acc = _mm256_setzero_ps();
        let mut idx = [0i32; GATHER_LANES];
        let mut wbuf = [0.0f32; GATHER_LANES];
        let full = edges.len() / GATHER_LANES * GATHER_LANES;
        for g in (0..full).step_by(GATHER_LANES) {
            for j in 0..GATHER_LANES {
                let e = &edges[g + j];
                idx[j] = e.src() as i32;
                wbuf[j] = e.weight();
            }
            let iv = _mm256_loadu_si256(idx.as_ptr() as *const __m256i);
            let gathered = _mm256_i32gather_ps::<4>(table.as_ptr(), iv);
            let wv = _mm256_loadu_ps(wbuf.as_ptr());
            acc = _mm256_add_ps(acc, _mm256_mul_ps(wv, gathered));
        }
        let mut lanes = [0.0f32; GATHER_LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        for (j, e) in edges[full..].iter().enumerate() {
            lanes[j] += e.weight() * table[e.src() as usize];
        }
        lanes
    }
}

/// Sums `table[e.src()]` over a span of edges — the PageRank pull inner
/// loop. AVX2-gathered when the `simd` feature is on and the CPU has
/// it; the scalar fallback computes the exact same fixed-lane
/// association, so both paths return bit-identical sums.
///
/// # Panics
///
/// The scalar path panics if an `e.src()` is out of `table`'s bounds;
/// the AVX2 path requires the same in-bounds contract (upheld by edge
/// endpoint validation at graph construction).
#[inline]
pub fn gather_sum<E: EdgeRecord>(table: &[f32], edges: &[E]) -> f32 {
    #[cfg(all(feature = "simd", target_arch = "x86_64", not(miri)))]
    if avx2::available() {
        debug_assert!(edges.iter().all(|e| (e.src() as usize) < table.len()));
        // SAFETY: AVX2 presence checked above; indices validated by
        // `EdgeList::new` (debug-asserted here).
        let lanes = unsafe { avx2::gather_sum(table, edges) };
        return reduce_lanes(&lanes);
    }
    gather_sum_scalar(table, edges)
}

/// Sums `e.weight() * table[e.src()]` over a span of edges — the SpMV
/// pull inner loop. Same bit-exactness contract as [`gather_sum`].
#[inline]
pub fn gather_mul_sum<E: EdgeRecord>(table: &[f32], edges: &[E]) -> f32 {
    #[cfg(all(feature = "simd", target_arch = "x86_64", not(miri)))]
    if avx2::available() {
        debug_assert!(edges.iter().all(|e| (e.src() as usize) < table.len()));
        // SAFETY: as in `gather_sum`.
        let lanes = unsafe { avx2::gather_mul_sum(table, edges) };
        return reduce_lanes(&lanes);
    }
    gather_mul_sum_scalar(table, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Edge, WEdge};

    fn span(srcs: &[u32]) -> Vec<Edge> {
        srcs.iter().map(|&s| Edge::new(s, 0)).collect()
    }

    #[test]
    fn gather_sum_matches_scalar_spec_at_every_length() {
        let table: Vec<f32> = (0..256).map(|i| (i as f32).sin()).collect();
        for len in 0..=70 {
            let edges = span(&(0..len).map(|i| (i * 37) % 256).collect::<Vec<_>>());
            let got = gather_sum(&table, &edges);
            let want = gather_sum_scalar(&table, &edges);
            assert_eq!(got.to_bits(), want.to_bits(), "len {len}");
        }
    }

    #[test]
    fn gather_mul_sum_matches_scalar_spec_at_every_length() {
        let table: Vec<f32> = (0..256).map(|i| (i as f32).cos()).collect();
        for len in 0..=70u32 {
            let edges: Vec<WEdge> = (0..len)
                .map(|i| WEdge::new((i * 53) % 256, 0, 0.25 + i as f32))
                .collect();
            let got = gather_mul_sum(&table, &edges);
            let want = gather_mul_sum_scalar(&table, &edges);
            assert_eq!(got.to_bits(), want.to_bits(), "len {len}");
        }
    }

    #[test]
    fn lane_association_is_order_sensitive_but_fixed() {
        // The documented spec: lanes fed round-robin, fixed tree.
        let table = [1.0f32, 2.0, 4.0, 8.0];
        let edges = span(&[0, 1, 2, 3]);
        // Tail of 4 folds into lanes 0..4: (1+2)+(4+8) = 15.
        assert_eq!(gather_sum(&table, &edges), 15.0);
    }

    #[test]
    fn prefetch_is_a_safe_hint() {
        let data = [0u8; 64];
        prefetch_read(data.as_ptr());
        prefetch_read(std::ptr::null::<u8>()); // never faults
    }

    #[test]
    fn prefetch_distance_is_zero_without_the_feature() {
        if cfg!(all(feature = "simd", not(miri))) {
            assert!(prefetch_distance() <= 1 << 20);
        } else {
            assert_eq!(prefetch_distance(), 0);
        }
    }
}

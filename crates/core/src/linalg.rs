//! A tiny dense linear-algebra kernel: Cholesky solve of the small
//! symmetric positive-definite systems ALS builds per vertex.

/// Solves `A·x = b` in place for a symmetric positive-definite `A`.
///
/// `a` is the row-major `n × n` matrix (destroyed: its lower triangle
/// is overwritten with the Cholesky factor), `b` the right-hand side
/// (overwritten with the solution). Returns `false` when the matrix is
/// not positive definite (callers should regularize and retry).
///
/// # Panics
///
/// Panics if `a.len() != n * n` or `b.len() != n`.
///
/// # Examples
///
/// ```
/// let mut a = vec![4.0, 2.0, 2.0, 3.0];
/// let mut b = vec![10.0, 8.0];
/// assert!(egraph_core::linalg::cholesky_solve_in_place(&mut a, &mut b, 2));
/// assert!((b[0] - 1.75).abs() < 1e-12);
/// assert!((b[1] - 1.5).abs() < 1e-12);
/// ```
pub fn cholesky_solve_in_place(a: &mut [f64], b: &mut [f64], n: usize) -> bool {
    assert_eq!(a.len(), n * n, "matrix size");
    assert_eq!(b.len(), n, "rhs size");

    // Decompose: A = L·Lᵀ, storing L in the lower triangle.
    for j in 0..n {
        let mut diag = a[j * n + j];
        for k in 0..j {
            diag -= a[j * n + k] * a[j * n + k];
        }
        if diag <= 0.0 || !diag.is_finite() {
            return false;
        }
        let diag = diag.sqrt();
        a[j * n + j] = diag;
        for i in j + 1..n {
            let mut v = a[i * n + j];
            for k in 0..j {
                v -= a[i * n + k] * a[j * n + k];
            }
            a[i * n + j] = v / diag;
        }
    }

    // Forward substitution: L·y = b.
    for i in 0..n {
        let mut v = b[i];
        for k in 0..i {
            v -= a[i * n + k] * b[k];
        }
        b[i] = v / a[i * n + i];
    }

    // Back substitution: Lᵀ·x = y.
    for i in (0..n).rev() {
        let mut v = b[i];
        for k in i + 1..n {
            v -= a[k * n + i] * b[k];
        }
        b[i] = v / a[i * n + i];
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve() {
        let mut a = vec![1.0, 0.0, 0.0, 1.0];
        let mut b = vec![3.0, -4.0];
        assert!(cholesky_solve_in_place(&mut a, &mut b, 2));
        assert_eq!(b, vec![3.0, -4.0]);
    }

    #[test]
    fn known_3x3_system() {
        // A = [[6,2,1],[2,5,2],[1,2,4]], x = [1,2,3] => b = A·x.
        let a_orig = [6.0, 2.0, 1.0, 2.0, 5.0, 2.0, 1.0, 2.0, 4.0];
        let x = [1.0, 2.0, 3.0];
        let mut b = [0.0; 3];
        for i in 0..3 {
            for j in 0..3 {
                b[i] += a_orig[i * 3 + j] * x[j];
            }
        }
        let mut a = a_orig.to_vec();
        let mut b = b.to_vec();
        assert!(cholesky_solve_in_place(&mut a, &mut b, 3));
        for i in 0..3 {
            assert!((b[i] - x[i]).abs() < 1e-10, "x[{i}] = {}", b[i]);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let mut a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        let mut b = vec![1.0, 1.0];
        assert!(!cholesky_solve_in_place(&mut a, &mut b, 2));
    }

    #[test]
    fn one_by_one() {
        let mut a = vec![4.0];
        let mut b = vec![8.0];
        assert!(cholesky_solve_in_place(&mut a, &mut b, 1));
        assert_eq!(b[0], 2.0);
    }

    #[test]
    fn random_spd_systems_roundtrip() {
        let mut state = 7u64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for n in [2usize, 4, 8, 12] {
            // Build SPD as Mᵀ·M + n·I.
            let m: Vec<f64> = (0..n * n).map(|_| rnd()).collect();
            let mut a = vec![0.0; n * n];
            for i in 0..n {
                for j in 0..n {
                    let mut v = 0.0;
                    for k in 0..n {
                        v += m[k * n + i] * m[k * n + j];
                    }
                    a[i * n + j] = v + if i == j { n as f64 } else { 0.0 };
                }
            }
            let x: Vec<f64> = (0..n).map(|_| rnd()).collect();
            let mut b = vec![0.0; n];
            for i in 0..n {
                for j in 0..n {
                    b[i] += a[i * n + j] * x[j];
                }
            }
            let mut a2 = a.clone();
            assert!(cholesky_solve_in_place(&mut a2, &mut b, n));
            for i in 0..n {
                assert!((b[i] - x[i]).abs() < 1e-8, "n={n} x[{i}]");
            }
        }
    }
}

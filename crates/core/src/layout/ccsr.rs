//! Compressed CSR (`ccsr`): sorted neighbor lists stored as byte-varint
//! delta streams, chunked so a worker decodes one vertex's list without
//! touching neighboring chunks.
//!
//! The encoding follows the byte-delta scheme popularized by Ligra+ and
//! GBBS (see PAPERS.md): within each chunk of at most
//! [`SPAN_EDGES`](super::SPAN_EDGES) neighbors, the first neighbor is a
//! **zigzag varint of `first - v`** (delta from the owning vertex, which
//! may be negative) and every subsequent neighbor is an **unsigned
//! varint gap** from its predecessor (lists are sorted, so gaps are
//! non-negative; duplicates encode as gap `0`). Vertices with more than
//! one chunk prefix their stream with a **skip table** of
//! `nchunks - 1` little-endian `u32` byte offsets (relative to the end
//! of the table), so any chunk can be located and decoded independently
//! — the hook the out-of-core roadmap items build on.
//!
//! ```text
//! byte_offsets[v] .. byte_offsets[v+1]:
//! ┌────────────────────────┬─────────┬─────────┬───┐
//! │ skip table (nc-1)×u32  │ chunk 0 │ chunk 1 │ … │   nc = ⌈deg/64⌉
//! └────────────────────────┴─────────┴─────────┴───┘
//! chunk: zigzag(first−v) gap gap gap …           (≤ 64 neighbors)
//! ```
//!
//! Weights are *not* delta-encoded: a weighted graph keeps its `f32`
//! weights in a flat side array indexed by `edge_offsets[v] + k`, so
//! the neighbor stream stays byte-dense and the weight read stays one
//! indexed load.

use std::marker::PhantomData;

use crate::types::{EdgeRecord, VertexId};

use super::{NeighborAccess, SPAN_EDGES};

/// A typed decode failure. Corrupt or truncated chunk bytes surface as
/// one of these — never a panic — from the checked decode entry points
/// ([`CcsrAdjacency::decode_neighbors`], [`CcsrAdjacency::validate`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CcsrError {
    /// The byte stream ended inside a varint or skip table.
    Truncated {
        /// Owning vertex.
        vertex: VertexId,
        /// Byte offset (within the vertex's stream) of the failure.
        offset: usize,
    },
    /// A varint ran past 10 bytes / 64 value bits.
    VarintOverflow {
        /// Owning vertex.
        vertex: VertexId,
        /// Byte offset (within the vertex's stream) of the failure.
        offset: usize,
    },
    /// A decoded neighbor id falls outside `0..num_vertices`.
    NeighborOutOfRange {
        /// Owning vertex.
        vertex: VertexId,
        /// The out-of-range decoded value (widened; negative first
        /// deltas map below zero and report as wrapped `i64`).
        neighbor: i64,
    },
    /// A chunk did not start where the skip table said it would.
    SkipTableMismatch {
        /// Owning vertex.
        vertex: VertexId,
        /// Index of the mismatched chunk.
        chunk: usize,
    },
    /// Decoding consumed fewer bytes than the vertex's stream holds.
    TrailingBytes {
        /// Owning vertex.
        vertex: VertexId,
        /// Number of unconsumed bytes.
        extra: usize,
    },
}

impl std::fmt::Display for CcsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated { vertex, offset } => {
                write!(
                    f,
                    "ccsr stream of vertex {vertex} truncated at byte {offset}"
                )
            }
            Self::VarintOverflow { vertex, offset } => {
                write!(
                    f,
                    "ccsr varint overflow in vertex {vertex} at byte {offset}"
                )
            }
            Self::NeighborOutOfRange { vertex, neighbor } => {
                write!(
                    f,
                    "ccsr vertex {vertex} decoded out-of-range neighbor {neighbor}"
                )
            }
            Self::SkipTableMismatch { vertex, chunk } => {
                write!(
                    f,
                    "ccsr vertex {vertex}: chunk {chunk} disagrees with the skip table"
                )
            }
            Self::TrailingBytes { vertex, extra } => {
                write!(
                    f,
                    "ccsr vertex {vertex}: {extra} trailing bytes after the last chunk"
                )
            }
        }
    }
}

impl std::error::Error for CcsrError {}

#[inline]
pub(crate) fn zigzag(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Encoded length of one unsigned varint.
#[inline]
pub(crate) fn varint_len(x: u64) -> usize {
    // ⌈significant_bits / 7⌉, with 0 taking one byte.
    (64 - (x | 1).leading_zeros() as usize).div_ceil(7)
}

#[inline]
pub(crate) fn write_varint(out: &mut Vec<u8>, mut x: u64) {
    while x >= 0x80 {
        out.push((x as u8) | 0x80);
        x >>= 7;
    }
    out.push(x as u8);
}

/// Checked varint read; errors instead of panicking on malformed input.
fn read_varint(v: VertexId, bytes: &[u8], pos: &mut usize) -> Result<u64, CcsrError> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(CcsrError::Truncated {
                vertex: v,
                offset: *pos,
            });
        };
        if shift > 63 || (shift == 63 && (b & 0x7f) > 1) {
            return Err(CcsrError::VarintOverflow {
                vertex: v,
                offset: *pos,
            });
        }
        *pos += 1;
        x |= ((b & 0x7f) as u64) << shift;
        if b < 0x80 {
            return Ok(x);
        }
        shift += 7;
    }
}

/// Trusted varint read for the hot decode path: the stream is encoder
/// output, whose well-formedness [`CcsrAdjacency`] guarantees by
/// construction (corrupt external bytes must go through the checked
/// [`CcsrAdjacency::decode_neighbors`] instead).
#[inline]
fn read_varint_trusted(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        x |= ((b & 0x7f) as u64) << shift;
        if b < 0x80 {
            return x;
        }
        shift += 7;
    }
}

/// Compacts the low 7 bits of each byte of `w` into one value — the
/// varint payload of a window whose bytes past the terminator are
/// already zeroed. Five groups cover the 5 bytes any varint this
/// layout writes can span (u32 gaps, zigzagged 33-bit first deltas).
#[inline(always)]
fn compact7(w: u64) -> u64 {
    (w & 0x7f)
        | ((w >> 1) & (0x7f << 7))
        | ((w >> 2) & (0x7f << 14))
        | ((w >> 3) & (0x7f << 21))
        | ((w >> 4) & (0x7f << 28))
}

/// Decodes one varint out of an 8-byte little-endian window without a
/// per-byte loop or a data-dependent branch. Every varint this layout
/// writes fits in 5 bytes, so a u64 window always contains the whole
/// varint.
///
/// Returns `(value, bytes_consumed)`.
#[inline(always)]
fn decode_varint_window(w: u64) -> (u64, usize) {
    // The terminating byte is the first with its high bit clear.
    let stops = !w & 0x8080_8080_8080_8080;
    let n = (stops.trailing_zeros() as usize >> 3) + 1;
    // Drop the bytes past the terminator, then compact the 7-bit
    // groups: byte k carries value bits 7k.. at bit position 8k.
    (compact7(w & (u64::MAX >> (64 - 8 * n))), n)
}

/// Reads the next varint via the windowed decoder when 8 bytes remain,
/// falling back to the byte loop near the end of the stream.
#[inline(always)]
fn next_varint_trusted(bytes: &[u8], pos: &mut usize) -> u64 {
    if let Some(window) = bytes.get(*pos..*pos + 8) {
        let w = u64::from_le_bytes(window.try_into().expect("8-byte window"));
        let (x, n) = decode_varint_window(w);
        *pos += n;
        x
    } else {
        read_varint_trusted(bytes, pos)
    }
}

/// Encoded byte length of one sorted neighbor list (including its skip
/// table), without materializing the stream.
pub(crate) fn encoded_len(v: VertexId, neighbors: &[u32]) -> usize {
    let nchunks = neighbors.len().div_ceil(SPAN_EDGES);
    let mut len = nchunks.saturating_sub(1) * 4;
    for chunk in neighbors.chunks(SPAN_EDGES) {
        len += varint_len(zigzag(chunk[0] as i64 - v as i64));
        for w in chunk.windows(2) {
            len += varint_len((w[1] - w[0]) as u64);
        }
    }
    len
}

/// Encodes one sorted neighbor list (skip table + chunks) into `out`.
///
/// # Panics
///
/// Panics if `neighbors` is not sorted ascending — the delta encoding
/// is only defined on sorted lists.
pub(crate) fn encode_vertex(v: VertexId, neighbors: &[u32], out: &mut Vec<u8>) {
    assert!(
        neighbors.windows(2).all(|w| w[0] <= w[1]),
        "ccsr requires sorted neighbor lists (vertex {v})"
    );
    let nchunks = neighbors.len().div_ceil(SPAN_EDGES);
    let table_at = out.len();
    // Reserve the skip table; chunk offsets are filled in as they land.
    out.resize(table_at + nchunks.saturating_sub(1) * 4, 0);
    let data_at = out.len();
    for (c, chunk) in neighbors.chunks(SPAN_EDGES).enumerate() {
        if c > 0 {
            let rel = (out.len() - data_at) as u32;
            out[table_at + (c - 1) * 4..table_at + c * 4].copy_from_slice(&rel.to_le_bytes());
        }
        write_varint(out, zigzag(chunk[0] as i64 - v as i64));
        for w in chunk.windows(2) {
            write_varint(out, (w[1] - w[0]) as u64);
        }
    }
}

/// One direction of compressed adjacency (out-edges or in-edges).
#[derive(Debug, Clone)]
pub struct CcsrAdjacency<E> {
    num_vertices: usize,
    num_edges: usize,
    /// `true` when the stored neighbor of `v` is an edge *source* (an
    /// in-adjacency), mirroring [`super::Adjacency::is_by_dst`].
    by_dst: bool,
    /// `num_vertices + 1` prefix of edge counts (degrees + weight index).
    edge_offsets: Vec<u64>,
    /// `num_vertices + 1` prefix into `bytes`.
    byte_offsets: Vec<u64>,
    /// Concatenated per-vertex streams (skip table + chunks).
    bytes: Vec<u8>,
    /// Weights in edge order; empty for unweighted records.
    weights: Vec<f32>,
    _marker: PhantomData<fn() -> E>,
}

impl<E: EdgeRecord> CcsrAdjacency<E> {
    /// Wraps pre-encoded parts. Offset-table shape is validated here;
    /// stream bytes are *not* decoded — callers holding untrusted bytes
    /// must run [`Self::validate`] before handing the layout to kernels.
    ///
    /// # Panics
    ///
    /// Panics if the offset tables are not monotone `num_vertices + 1`
    /// prefixes ending at `bytes.len()` / the edge count, or if a
    /// weighted record type comes without one weight per edge.
    pub fn from_parts(
        num_vertices: usize,
        by_dst: bool,
        edge_offsets: Vec<u64>,
        byte_offsets: Vec<u64>,
        bytes: Vec<u8>,
        weights: Vec<f32>,
    ) -> Self {
        assert_eq!(edge_offsets.len(), num_vertices + 1, "edge offsets length");
        assert_eq!(byte_offsets.len(), num_vertices + 1, "byte offsets length");
        assert_eq!(
            *byte_offsets.last().unwrap() as usize,
            bytes.len(),
            "byte offsets total"
        );
        debug_assert!(edge_offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(byte_offsets.windows(2).all(|w| w[0] <= w[1]));
        let num_edges = *edge_offsets.last().unwrap() as usize;
        if E::WEIGHTED {
            assert_eq!(weights.len(), num_edges, "one weight per edge");
        }
        Self {
            num_vertices,
            num_edges,
            by_dst,
            edge_offsets,
            byte_offsets,
            bytes,
            weights,
            _marker: PhantomData,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Whether stored neighbors are edge sources (an in-adjacency).
    #[inline]
    pub fn is_by_dst(&self) -> bool {
        self.by_dst
    }

    /// Degree of vertex `v` in this direction.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.edge_offsets[v as usize + 1] - self.edge_offsets[v as usize]) as usize
    }

    /// Encoded stream length of vertex `v`, in bytes.
    #[inline]
    pub fn byte_len(&self, v: VertexId) -> usize {
        (self.byte_offsets[v as usize + 1] - self.byte_offsets[v as usize]) as usize
    }

    /// Resident heap bytes of this direction (offset tables + streams +
    /// weight side array) — the number the compression experiment and
    /// `/healthz` report.
    pub fn resident_bytes(&self) -> u64 {
        (self.edge_offsets.len() * 8
            + self.byte_offsets.len() * 8
            + self.bytes.len()
            + self.weights.len() * 4) as u64
    }

    #[inline]
    fn stream(&self, v: VertexId) -> &[u8] {
        &self.bytes
            [self.byte_offsets[v as usize] as usize..self.byte_offsets[v as usize + 1] as usize]
    }

    /// The weights of vertex `v`'s edges (empty for unweighted graphs).
    #[inline]
    pub fn weights_of(&self, v: VertexId) -> &[f32] {
        if !E::WEIGHTED {
            return &[];
        }
        &self.weights
            [self.edge_offsets[v as usize] as usize..self.edge_offsets[v as usize + 1] as usize]
    }

    /// Fully decodes vertex `v`'s neighbor list with bounds checking:
    /// corrupt or truncated bytes produce a typed [`CcsrError`], never a
    /// panic. Also cross-checks the skip table against actual chunk
    /// positions and rejects trailing bytes.
    pub fn decode_neighbors(&self, v: VertexId) -> Result<Vec<VertexId>, CcsrError> {
        let deg = self.degree(v);
        let bytes = self.stream(v);
        let mut out = Vec::with_capacity(deg);
        if deg == 0 {
            return if bytes.is_empty() {
                Ok(out)
            } else {
                Err(CcsrError::TrailingBytes {
                    vertex: v,
                    extra: bytes.len(),
                })
            };
        }
        let nchunks = deg.div_ceil(SPAN_EDGES);
        let table_len = (nchunks - 1) * 4;
        if bytes.len() < table_len {
            return Err(CcsrError::Truncated {
                vertex: v,
                offset: bytes.len(),
            });
        }
        let mut pos = table_len;
        for c in 0..nchunks {
            if c > 0 {
                let rel = u32::from_le_bytes(bytes[(c - 1) * 4..c * 4].try_into().unwrap());
                if pos != table_len + rel as usize {
                    return Err(CcsrError::SkipTableMismatch {
                        vertex: v,
                        chunk: c,
                    });
                }
            }
            let clen = SPAN_EDGES.min(deg - c * SPAN_EDGES);
            let first = v as i64 + unzigzag(read_varint(v, bytes, &mut pos)?);
            if first < 0 || first >= self.num_vertices as i64 {
                return Err(CcsrError::NeighborOutOfRange {
                    vertex: v,
                    neighbor: first,
                });
            }
            let mut prev = first as u64;
            out.push(prev as VertexId);
            for _ in 1..clen {
                let next = prev + read_varint(v, bytes, &mut pos)?;
                if next >= self.num_vertices as u64 {
                    return Err(CcsrError::NeighborOutOfRange {
                        vertex: v,
                        neighbor: next as i64,
                    });
                }
                prev = next;
                out.push(prev as VertexId);
            }
        }
        if pos != bytes.len() {
            return Err(CcsrError::TrailingBytes {
                vertex: v,
                extra: bytes.len() - pos,
            });
        }
        Ok(out)
    }

    /// Decodes one chunk of vertex `v` through the skip table — the
    /// random-access path that lets a worker read chunk `c` without
    /// decoding chunks `0..c`.
    pub fn decode_chunk(&self, v: VertexId, chunk: usize) -> Result<Vec<VertexId>, CcsrError> {
        let deg = self.degree(v);
        let nchunks = deg.div_ceil(SPAN_EDGES);
        assert!(chunk < nchunks, "chunk {chunk} out of {nchunks}");
        let bytes = self.stream(v);
        let table_len = (nchunks - 1) * 4;
        if bytes.len() < table_len {
            return Err(CcsrError::Truncated {
                vertex: v,
                offset: bytes.len(),
            });
        }
        let mut pos = if chunk == 0 {
            table_len
        } else {
            let rel = u32::from_le_bytes(bytes[(chunk - 1) * 4..chunk * 4].try_into().unwrap());
            let at = table_len + rel as usize;
            if at > bytes.len() {
                return Err(CcsrError::Truncated {
                    vertex: v,
                    offset: bytes.len(),
                });
            }
            at
        };
        let clen = SPAN_EDGES.min(deg - chunk * SPAN_EDGES);
        let mut out = Vec::with_capacity(clen);
        let first = v as i64 + unzigzag(read_varint(v, bytes, &mut pos)?);
        if first < 0 || first >= self.num_vertices as i64 {
            return Err(CcsrError::NeighborOutOfRange {
                vertex: v,
                neighbor: first,
            });
        }
        let mut prev = first as u64;
        out.push(prev as VertexId);
        for _ in 1..clen {
            let next = prev + read_varint(v, bytes, &mut pos)?;
            if next >= self.num_vertices as u64 {
                return Err(CcsrError::NeighborOutOfRange {
                    vertex: v,
                    neighbor: next as i64,
                });
            }
            prev = next;
            out.push(prev as VertexId);
        }
        Ok(out)
    }

    /// Validates every vertex's stream; the first failure is returned.
    pub fn validate(&self) -> Result<(), CcsrError> {
        for v in 0..self.num_vertices as VertexId {
            self.decode_neighbors(v)?;
        }
        Ok(())
    }

    #[inline]
    fn materialize(&self, v: VertexId, nbr: VertexId, w: f32) -> E {
        if self.by_dst {
            E::new(nbr, v, w)
        } else {
            E::new(v, nbr, w)
        }
    }
}

impl<E: EdgeRecord> NeighborAccess<E> for CcsrAdjacency<E> {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.num_edges
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        self.degree(v)
    }

    /// A simulated address for edge `k` of `v`: the stream is byte
    /// packed, so the per-edge position is approximated as a linear
    /// interpolation over the vertex's byte range — O(1), monotone
    /// within the vertex, and faithful to the smaller footprint the
    /// cache simulator should see.
    #[inline]
    fn edge_sim_addr(&self, v: VertexId, k: usize) -> u64 {
        let lo = self.byte_offsets[v as usize];
        let deg = self.degree(v).max(1) as u64;
        egraph_cachesim::probe::regions::EDGES + lo + k as u64 * self.byte_len(v) as u64 / deg
    }

    #[inline]
    fn for_each_span<F: FnMut(&[E]) -> usize>(&self, v: VertexId, mut f: F) {
        let deg = self.degree(v);
        if deg == 0 {
            return;
        }
        let bytes = self.stream(v);
        let nchunks = deg.div_ceil(SPAN_EDGES);
        let mut pos = (nchunks - 1) * 4; // skip table is only for random access
        let ebase = self.edge_offsets[v as usize] as usize;
        let mut buf = [E::new(0, 0, 0.0); SPAN_EDGES];
        let mut done = 0usize;
        while done < deg {
            let clen = SPAN_EDGES.min(deg - done);
            let mut nbr = (v as i64 + unzigzag(next_varint_trusted(bytes, &mut pos))) as VertexId;
            let w0 = if E::WEIGHTED {
                self.weights[ebase + done]
            } else {
                0.0
            };
            buf[0] = self.materialize(v, nbr, w0);
            // Phase 1 — gap decoding into a flat array. Keeping this
            // loop free of edge materialization lets the only serial
            // chains be the byte position and the stop mask; one
            // 8-byte load yields every gap varint wholly inside it
            // (2–3 on average, often 8).
            let gneed = clen - 1;
            let mut gaps = [0u32; SPAN_EDGES];
            let mut g = 0usize;
            while g < gneed {
                let window = bytes
                    .get(pos..pos + 8)
                    .map(|s| u64::from_le_bytes(s.try_into().expect("8-byte window")));
                if let Some(w) = window {
                    // One bit per terminator byte; a varint is the
                    // bytes from the previous terminator (exclusive)
                    // to its own.
                    let mut stops = !w & 0x8080_8080_8080_8080;
                    let complete = stops.count_ones() as usize;
                    if g + complete <= gneed {
                        if stops == 0x8080_8080_8080_8080 {
                            // Dense run: eight one-byte gaps — the
                            // common case inside hub vertices' lists,
                            // where sorted neighbors sit close.
                            for k in 0..8 {
                                gaps[g + k] = ((w >> (8 * k)) & 0x7f) as u32;
                            }
                            g += 8;
                            pos += 8;
                            continue;
                        }
                        // Mixed lengths: peel varints off the window;
                        // no per-varint bound checks needed since all
                        // `complete` of them are wanted.
                        let mut start = 0usize;
                        while stops != 0 {
                            let s = (stops.trailing_zeros() >> 3) as usize;
                            stops &= stops - 1;
                            let len = s + 1 - start;
                            let part = (w >> (8 * start)) & (u64::MAX >> (64 - 8 * len));
                            gaps[g] = compact7(part) as u32;
                            g += 1;
                            start = s + 1;
                        }
                        pos += start;
                        continue;
                    }
                }
                // Chunk end or stream end: take one varint at a time.
                gaps[g] = read_varint_trusted(bytes, &mut pos) as u32;
                g += 1;
            }
            // Phase 2 — prefix-sum the gaps and materialize records; a
            // clean two-op chain per edge the compiler can schedule
            // around the stores.
            for (j, &gap) in gaps[..gneed].iter().enumerate() {
                nbr += gap;
                let wt = if E::WEIGHTED {
                    self.weights[ebase + done + j + 1]
                } else {
                    0.0
                };
                buf[j + 1] = self.materialize(v, nbr, wt);
            }
            if f(&buf[..clen]) < clen {
                return;
            }
            done += clen;
        }
    }
}

/// A full compressed layout: out-direction, in-direction, or both —
/// the ccsr counterpart of [`super::AdjacencyList`].
#[derive(Debug, Clone)]
pub struct CcsrList<E> {
    num_vertices: usize,
    out: Option<CcsrAdjacency<E>>,
    inc: Option<CcsrAdjacency<E>>,
}

impl<E: EdgeRecord> CcsrList<E> {
    /// Assembles a layout from its directions.
    ///
    /// # Panics
    ///
    /// Panics if both directions are absent or their vertex counts
    /// disagree.
    pub fn new(out: Option<CcsrAdjacency<E>>, inc: Option<CcsrAdjacency<E>>) -> Self {
        let num_vertices = match (&out, &inc) {
            (Some(o), Some(i)) => {
                assert_eq!(
                    o.num_vertices(),
                    i.num_vertices(),
                    "direction vertex counts"
                );
                o.num_vertices()
            }
            (Some(o), None) => o.num_vertices(),
            (None, Some(i)) => i.num_vertices(),
            (None, None) => panic!("ccsr list needs at least one direction"),
        };
        Self {
            num_vertices,
            out,
            inc,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges (from whichever direction is present).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out
            .as_ref()
            .or(self.inc.as_ref())
            .map(CcsrAdjacency::num_edges)
            .unwrap_or(0)
    }

    /// The out-direction.
    ///
    /// # Panics
    ///
    /// Panics if the layout was built without out-edges.
    #[inline]
    pub fn out(&self) -> &CcsrAdjacency<E> {
        self.out
            .as_ref()
            .expect("ccsr layout was built without out-edges (EdgeDirection::In)")
    }

    /// The in-direction.
    ///
    /// # Panics
    ///
    /// Panics if the layout was built without in-edges.
    #[inline]
    pub fn incoming(&self) -> &CcsrAdjacency<E> {
        self.inc
            .as_ref()
            .expect("ccsr layout was built without in-edges (EdgeDirection::Out)")
    }

    /// The out-direction, if present.
    #[inline]
    pub fn out_opt(&self) -> Option<&CcsrAdjacency<E>> {
        self.out.as_ref()
    }

    /// The in-direction, if present.
    #[inline]
    pub fn incoming_opt(&self) -> Option<&CcsrAdjacency<E>> {
        self.inc.as_ref()
    }

    /// Resident heap bytes across both directions.
    pub fn resident_bytes(&self) -> u64 {
        self.out.as_ref().map_or(0, CcsrAdjacency::resident_bytes)
            + self.inc.as_ref().map_or(0, CcsrAdjacency::resident_bytes)
    }
}

impl<E: EdgeRecord> super::VertexLayout<E> for CcsrList<E> {
    type Dir = CcsrAdjacency<E>;

    #[inline]
    fn num_vertices(&self) -> usize {
        self.num_vertices()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.num_edges()
    }

    #[inline]
    fn out(&self) -> &CcsrAdjacency<E> {
        self.out()
    }

    #[inline]
    fn incoming(&self) -> &CcsrAdjacency<E> {
        self.incoming()
    }

    #[inline]
    fn out_opt(&self) -> Option<&CcsrAdjacency<E>> {
        self.out_opt()
    }

    #[inline]
    fn incoming_opt(&self) -> Option<&CcsrAdjacency<E>> {
        self.incoming_opt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Edge, WEdge};

    /// Serial encoder mirroring the parallel one in `preprocess`.
    fn encode(nv: usize, lists: &[Vec<u32>], by_dst: bool) -> CcsrAdjacency<Edge> {
        static EMPTY: Vec<u32> = Vec::new();
        let mut edge_offsets = vec![0u64; nv + 1];
        let mut byte_offsets = vec![0u64; nv + 1];
        let mut bytes = Vec::new();
        for v in 0..nv {
            let list = lists.get(v).unwrap_or(&EMPTY);
            encode_vertex(v as VertexId, list, &mut bytes);
            edge_offsets[v + 1] = edge_offsets[v] + list.len() as u64;
            byte_offsets[v + 1] = bytes.len() as u64;
        }
        CcsrAdjacency::from_parts(nv, by_dst, edge_offsets, byte_offsets, bytes, Vec::new())
    }

    fn collect_spans(adj: &CcsrAdjacency<Edge>, v: VertexId) -> Vec<u32> {
        let mut got = Vec::new();
        adj.for_each_span(v, |span| {
            got.extend(span.iter().map(|e| e.dst()));
            span.len()
        });
        got
    }

    #[test]
    fn round_trips_small_lists() {
        let lists = vec![vec![1, 2, 5], vec![], vec![0, 0, 2, 1000]];
        let adj = encode(2000, &lists, false);
        for (v, list) in lists.iter().enumerate() {
            assert_eq!(&adj.decode_neighbors(v as u32).unwrap(), list, "vertex {v}");
            assert_eq!(&collect_spans(&adj, v as u32), list, "spans of {v}");
        }
        assert_eq!(adj.num_edges(), 7);
        assert_eq!(adj.degree(2), 4);
    }

    #[test]
    fn round_trips_multi_chunk_lists_and_chunk_access() {
        // 3 chunks: 150 neighbors with irregular gaps and duplicates.
        let list: Vec<u32> = (0..150u32).map(|i| i * 37 % 4096).collect::<Vec<_>>();
        let mut list = list;
        list.sort_unstable();
        let adj = encode(4096, &[list.clone()], false);
        assert_eq!(adj.decode_neighbors(0).unwrap(), list);
        assert_eq!(collect_spans(&adj, 0), list);
        for c in 0..3 {
            let chunk = adj.decode_chunk(0, c).unwrap();
            assert_eq!(chunk, &list[c * SPAN_EDGES..(c * SPAN_EDGES + chunk.len())]);
        }
    }

    #[test]
    fn early_termination_stops_at_span_boundary() {
        let list: Vec<u32> = (0..200).collect();
        let adj = encode(200, &[list], false);
        let mut seen = 0usize;
        adj.for_each_span(0, |span| {
            seen += span.len();
            if seen >= 100 {
                span.len() - 1 // consume less than offered -> stop
            } else {
                span.len()
            }
        });
        assert_eq!(seen, 128, "stopped after the second 64-edge span");
    }

    #[test]
    fn weighted_records_read_the_side_array() {
        let mut bytes = Vec::new();
        encode_vertex(0, &[3, 9], &mut bytes);
        let total = bytes.len() as u64;
        let mut edge_offsets = vec![2u64; 11];
        edge_offsets[0] = 0;
        let mut byte_offsets = vec![total; 11];
        byte_offsets[0] = 0;
        let adj: CcsrAdjacency<WEdge> =
            CcsrAdjacency::from_parts(10, false, edge_offsets, byte_offsets, bytes, vec![0.5, 2.5]);
        let mut got = Vec::new();
        adj.for_each_span(0, |span| {
            got.extend(span.iter().map(|e| (e.dst(), e.weight())));
            span.len()
        });
        assert_eq!(got, vec![(3, 0.5), (9, 2.5)]);
        assert_eq!(adj.weights_of(0), &[0.5, 2.5]);
    }

    #[test]
    fn in_adjacency_materializes_sources() {
        let adj = encode(10, &[vec![4, 7], vec![]], true);
        let mut got = Vec::new();
        adj.for_each_span(0, |span| {
            got.extend(span.iter().map(|e| (e.src(), e.dst())));
            span.len()
        });
        assert_eq!(got, vec![(4, 0), (7, 0)]);
    }

    #[test]
    fn truncated_stream_is_a_typed_error() {
        let mut adj = encode(2000, &[vec![1, 2, 1999]], false);
        // Chop the last byte: decode must report truncation, not panic.
        // (Vertex 0 owns the whole stream; every later offset shifts.)
        adj.bytes.pop();
        for o in adj.byte_offsets.iter_mut().skip(1) {
            *o -= 1;
        }
        assert!(matches!(
            adj.decode_neighbors(0),
            Err(CcsrError::Truncated { vertex: 0, .. })
        ));
    }

    #[test]
    fn corrupt_gap_is_out_of_range_not_a_panic() {
        let mut adj = encode(16, &[vec![1, 2]], false);
        // Overwrite the gap byte with a huge single-byte varint.
        let last = adj.bytes.len() - 1;
        adj.bytes[last] = 0x7f;
        assert!(matches!(
            adj.decode_neighbors(0),
            Err(CcsrError::NeighborOutOfRange { vertex: 0, .. })
        ));
    }

    #[test]
    fn unterminated_varint_overflows() {
        let nv = 1;
        // 11 continuation bytes: overflows before running out of input.
        let bytes = vec![0x80u8; 12];
        let adj: CcsrAdjacency<Edge> =
            CcsrAdjacency::from_parts(nv, false, vec![0, 1], vec![0, 12], bytes, Vec::new());
        assert!(matches!(
            adj.decode_neighbors(0),
            Err(CcsrError::VarintOverflow { vertex: 0, .. })
        ));
    }

    #[test]
    fn corrupt_skip_table_is_detected() {
        let list: Vec<u32> = (0..100).collect();
        let mut adj = encode(100, &[list], false);
        adj.bytes[0] ^= 0x01; // first skip-table byte
        assert!(matches!(
            adj.decode_neighbors(0),
            Err(CcsrError::SkipTableMismatch {
                vertex: 0,
                chunk: 1
            })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut adj = encode(16, &[vec![1]], false);
        adj.bytes.push(0);
        for o in adj.byte_offsets.iter_mut().skip(1) {
            *o += 1;
        }
        assert!(matches!(
            adj.decode_neighbors(0),
            Err(CcsrError::TrailingBytes {
                vertex: 0,
                extra: 1
            })
        ));
    }

    #[test]
    fn resident_bytes_counts_all_arrays() {
        let adj = encode(4, &[vec![1], vec![], vec![3], vec![]], false);
        assert_eq!(
            adj.resident_bytes(),
            (5 * 8 + 5 * 8 + adj.bytes.len()) as u64
        );
    }

    #[test]
    fn varint_len_matches_write() {
        for x in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, x);
            assert_eq!(buf.len(), varint_len(x), "x = {x}");
        }
    }
}

//! The grid layout (§5.1), adapted from GridGraph \[37\].
//!
//! "Data is laid-out as a grid of cells. Each cell contains the edges
//! from a range of vertices to another range of vertices. […]
//! Computation then iterates over cells. The goal is that the metadata
//! associated with the vertices in the cell stays in cache and can
//! therefore be reused."
//!
//! The grid also partitions the graph for lock-free execution (§6.1.2):
//! edges in different **rows** have different source vertices, edges in
//! different **columns** have different destination vertices, so
//! assigning whole columns to cores makes push updates exclusive and
//! assigning whole rows makes source-side (pull) updates exclusive.

use crate::types::{EdgeRecord, VertexId};
use std::ops::Range;

/// The default grid side: "we experimentally find that a grid of
/// 256×256 cells performs best on the Twitter and RMAT26 graphs".
pub const DEFAULT_GRID_SIDE: usize = 256;

/// A P×P grid of edge cells.
#[derive(Debug, Clone)]
pub struct Grid<E> {
    num_vertices: usize,
    side: usize,
    /// Vertices per row/column range (`ceil(num_vertices / side)`).
    range_len: usize,
    /// `side * side + 1` exclusive offsets into `edges`, row-major.
    cell_offsets: Vec<u64>,
    /// Edges grouped by cell.
    edges: Vec<E>,
}

impl<E: EdgeRecord> Grid<E> {
    /// Wraps pre-grouped cell arrays.
    ///
    /// # Panics
    ///
    /// Panics if `cell_offsets` is not a monotone `side² + 1` prefix
    /// table ending at `edges.len()`.
    pub fn from_parts(
        num_vertices: usize,
        side: usize,
        cell_offsets: Vec<u64>,
        edges: Vec<E>,
    ) -> Self {
        assert!(side > 0, "grid side must be positive");
        assert_eq!(cell_offsets.len(), side * side + 1, "cell offsets length");
        assert_eq!(*cell_offsets.last().unwrap() as usize, edges.len());
        debug_assert!(cell_offsets.windows(2).all(|w| w[0] <= w[1]));
        Self {
            num_vertices,
            side,
            range_len: num_vertices.div_ceil(side).max(1),
            cell_offsets,
            edges,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Grid side P (the grid has P×P cells).
    #[inline]
    pub fn side(&self) -> usize {
        self.side
    }

    /// Vertices per row/column range.
    #[inline]
    pub fn range_len(&self) -> usize {
        self.range_len
    }

    /// The (row, column) cell coordinates of an edge.
    #[inline]
    pub fn cell_of(&self, src: VertexId, dst: VertexId) -> (usize, usize) {
        (src as usize / self.range_len, dst as usize / self.range_len)
    }

    /// The flat, row-major cell id of an edge — the radix key used to
    /// build the grid.
    #[inline]
    pub fn cell_id_of(&self, src: VertexId, dst: VertexId) -> u64 {
        let (r, c) = self.cell_of(src, dst);
        (r * self.side + c) as u64
    }

    /// Edges of cell (row, col).
    #[inline]
    pub fn cell(&self, row: usize, col: usize) -> &[E] {
        let id = row * self.side + col;
        &self.edges[self.cell_offsets[id] as usize..self.cell_offsets[id + 1] as usize]
    }

    /// Flat index of the first edge of cell (row, col), for simulated
    /// cache addressing.
    #[inline]
    pub fn cell_base_index(&self, row: usize, col: usize) -> u64 {
        self.cell_offsets[row * self.side + col]
    }

    /// The vertex range covered by row/column `i`.
    #[inline]
    pub fn vertex_range(&self, i: usize) -> Range<VertexId> {
        let lo = (i * self.range_len).min(self.num_vertices);
        let hi = ((i + 1) * self.range_len).min(self.num_vertices);
        lo as VertexId..hi as VertexId
    }

    /// Total number of edges in column `col` (all rows).
    pub fn column_edge_count(&self, col: usize) -> u64 {
        (0..self.side)
            .map(|row| {
                let id = row * self.side + col;
                self.cell_offsets[id + 1] - self.cell_offsets[id]
            })
            .sum()
    }

    /// All edges, grouped by cell (row-major).
    #[inline]
    pub fn edges(&self) -> &[E] {
        &self.edges
    }

    /// Resident heap bytes of the layout (cell offsets + edge array) —
    /// what the serve daemon's `/healthz` and the compression
    /// experiment report.
    pub fn resident_bytes(&self) -> u64 {
        (self.cell_offsets.len() * 8 + self.edges.len() * std::mem::size_of::<E>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    /// The Figure 4 example: 4 vertices, 2×2 grid, ranges {0,1} and
    /// {2,3}; edges (0,1), (1,0), (0,2), (0,3), (2,3).
    fn figure4_grid() -> Grid<Edge> {
        // Cells row-major: (0,0)={(0,1),(1,0)}, (0,1)={(0,2),(0,3)},
        // (1,0)={}, (1,1)={(2,3)}.
        Grid::from_parts(
            4,
            2,
            vec![0, 2, 4, 4, 5],
            vec![
                Edge::new(0, 1),
                Edge::new(1, 0),
                Edge::new(0, 2),
                Edge::new(0, 3),
                Edge::new(2, 3),
            ],
        )
    }

    #[test]
    fn figure4_cells() {
        let g = figure4_grid();
        assert_eq!(g.cell(0, 0), &[Edge::new(0, 1), Edge::new(1, 0)]);
        assert_eq!(g.cell(0, 1), &[Edge::new(0, 2), Edge::new(0, 3)]);
        assert_eq!(g.cell(1, 0), &[]);
        assert_eq!(g.cell(1, 1), &[Edge::new(2, 3)]);
    }

    #[test]
    fn cell_of_maps_ranges() {
        let g = figure4_grid();
        assert_eq!(g.cell_of(0, 1), (0, 0));
        assert_eq!(g.cell_of(0, 2), (0, 1));
        assert_eq!(g.cell_of(2, 3), (1, 1));
        assert_eq!(g.cell_id_of(2, 1), 2);
    }

    #[test]
    fn vertex_ranges_cover_graph() {
        let g = figure4_grid();
        assert_eq!(g.vertex_range(0), 0..2);
        assert_eq!(g.vertex_range(1), 2..4);
    }

    #[test]
    fn vertex_ranges_clamp_at_boundary() {
        // 5 vertices over a side of 3: ranges of 2, last clamped.
        let g: Grid<Edge> = Grid::from_parts(5, 3, vec![0; 10], vec![]);
        assert_eq!(g.vertex_range(0), 0..2);
        assert_eq!(g.vertex_range(1), 2..4);
        assert_eq!(g.vertex_range(2), 4..5);
    }

    #[test]
    fn column_counts() {
        let g = figure4_grid();
        assert_eq!(g.column_edge_count(0), 2);
        assert_eq!(g.column_edge_count(1), 3);
    }

    #[test]
    #[should_panic(expected = "cell offsets length")]
    fn rejects_malformed_offsets() {
        let _: Grid<Edge> = Grid::from_parts(4, 2, vec![0, 1], vec![]);
    }
}

//! The mutable delta-log layout (DESIGN.md §16).
//!
//! Every other layout in this module is frozen at build time; this one
//! layers an append-only log of edge insertions and deletions over a
//! frozen CSR so a graph can keep serving reads while it absorbs
//! updates:
//!
//! * [`DeltaBatch`] — one batch of [`DeltaOp`]s, parsed from an NDJSON
//!   delta stream with typed [`DeltaError`]s (never a panic).
//! * [`DeltaLog`] — the append-only op log plus the merge rule that
//!   folds it into an [`EdgeList`].
//! * [`DeltaAdjacency`] / [`DeltaList`] — a [`NeighborAccess`] /
//!   [`VertexLayout`] view of *base CSR + log overlay*, so every
//!   vertex-centric kernel runs on the mutated graph without a CSR
//!   rebuild.
//! * [`EpochCell`] — the epoch-style publication point: a compactor
//!   swaps in a fresh snapshot while in-flight readers keep the `Arc`
//!   they loaded (they are pinned to the old epoch, never blocked).
//! * [`DeltaGraph`] — base snapshot + pending log + compaction.
//!
//! Delete semantics are multiset-wide: `delete src dst` removes every
//! occurrence of that edge present at that point in the log (base
//! copies and earlier inserted copies alike); a later insert re-adds a
//! single new copy. This keeps merge order-sensitive in exactly the way
//! an append-only log is, and makes `merge(base, log)` reproducible by
//! any replayer.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::layout::csr::Adjacency;
use crate::layout::{NeighborAccess, VertexLayout, SPAN_EDGES};
use crate::types::{EdgeList, EdgeRecord, VertexId};

/// One edge mutation in a delta stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeltaOp<E> {
    /// Append one copy of this edge.
    Insert(E),
    /// Remove every current copy of `src → dst`.
    Delete {
        /// Source endpoint of the removed edge.
        src: VertexId,
        /// Destination endpoint of the removed edge.
        dst: VertexId,
    },
}

impl<E: EdgeRecord> DeltaOp<E> {
    /// The `(src, dst)` endpoints this op touches.
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        match self {
            DeltaOp::Insert(e) => (e.src(), e.dst()),
            DeltaOp::Delete { src, dst } => (*src, *dst),
        }
    }

    /// The same op on the reversed edge (for undirected views).
    pub fn reversed(&self) -> Self {
        match self {
            DeltaOp::Insert(e) => DeltaOp::Insert(e.reversed()),
            DeltaOp::Delete { src, dst } => DeltaOp::Delete {
                src: *dst,
                dst: *src,
            },
        }
    }
}

/// A typed delta-stream error. Malformed NDJSON input yields one of
/// these; it never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The line is not a JSON object.
    NotJson {
        /// 1-based line number in the stream.
        line: usize,
    },
    /// A required field is absent.
    MissingField {
        /// 1-based line number in the stream.
        line: usize,
        /// The missing field.
        field: &'static str,
    },
    /// A field is present but not a representable value (negative,
    /// fractional or overflowing vertex ids, unparsable numbers).
    BadField {
        /// 1-based line number in the stream.
        line: usize,
        /// The offending field.
        field: &'static str,
    },
    /// The `op` field names an unknown operation.
    UnknownOp {
        /// 1-based line number in the stream.
        line: usize,
        /// The unrecognized op string (truncated).
        op: String,
    },
    /// An endpoint does not exist in the target graph.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// Vertices in the target graph.
        num_vertices: usize,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::NotJson { line } => write!(f, "line {line}: not a JSON object"),
            DeltaError::MissingField { line, field } => {
                write!(f, "line {line}: missing field \"{field}\"")
            }
            DeltaError::BadField { line, field } => {
                write!(f, "line {line}: bad value for field \"{field}\"")
            }
            DeltaError::UnknownOp { line, op } => {
                write!(
                    f,
                    "line {line}: unknown op \"{op}\" (expected insert|delete)"
                )
            }
            DeltaError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for a graph with {num_vertices} vertices"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// Scans `line` for `"key"` and returns the raw token after the colon
/// (a quoted string's contents, or the bare number/word).
fn json_token<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let at = line.find(&needle)? + needle.len();
    let rest = line[at..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        let end = rest
            .find(|c: char| !(c.is_ascii_alphanumeric() || "+-.eE_".contains(c)))
            .unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

/// Parses a vertex-id field: a non-negative integer that fits in u32.
fn json_vertex(line: &str, key: &'static str, line_no: usize) -> Result<VertexId, DeltaError> {
    let tok = json_token(line, key).ok_or(DeltaError::MissingField {
        line: line_no,
        field: key,
    })?;
    tok.parse::<u32>().map_err(|_| DeltaError::BadField {
        line: line_no,
        field: key,
    })
}

/// One batch of delta ops, in stream order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaBatch<E> {
    /// The ops, in the order they were issued.
    pub ops: Vec<DeltaOp<E>>,
}

impl<E: EdgeRecord> DeltaBatch<E> {
    /// An empty batch.
    pub fn new() -> Self {
        Self { ops: Vec::new() }
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Whether any op is a deletion.
    pub fn has_deletes(&self) -> bool {
        self.ops
            .iter()
            .any(|op| matches!(op, DeltaOp::Delete { .. }))
    }

    /// Parses one NDJSON delta line, e.g.
    /// `{"op":"insert","src":3,"dst":9,"weight":0.5}` or
    /// `{"op":"delete","src":3,"dst":9}`. `weight` is optional and
    /// ignored by unweighted edge types.
    pub fn parse_line(line: &str, line_no: usize) -> Result<DeltaOp<E>, DeltaError> {
        let trimmed = line.trim();
        if !trimmed.starts_with('{') || !trimmed.ends_with('}') {
            return Err(DeltaError::NotJson { line: line_no });
        }
        let op = json_token(trimmed, "op").ok_or(DeltaError::MissingField {
            line: line_no,
            field: "op",
        })?;
        let src = json_vertex(trimmed, "src", line_no)?;
        let dst = json_vertex(trimmed, "dst", line_no)?;
        match op {
            "insert" | "add" => {
                let weight = match json_token(trimmed, "weight") {
                    Some(tok) => {
                        let w = tok.parse::<f32>().map_err(|_| DeltaError::BadField {
                            line: line_no,
                            field: "weight",
                        })?;
                        if !w.is_finite() {
                            return Err(DeltaError::BadField {
                                line: line_no,
                                field: "weight",
                            });
                        }
                        w
                    }
                    None => 1.0,
                };
                Ok(DeltaOp::Insert(E::new(src, dst, weight)))
            }
            "delete" | "remove" => Ok(DeltaOp::Delete { src, dst }),
            other => Err(DeltaError::UnknownOp {
                line: line_no,
                op: other.chars().take(32).collect(),
            }),
        }
    }

    /// Parses a whole NDJSON delta stream; blank lines are skipped.
    pub fn parse_ndjson(text: &str) -> Result<Self, DeltaError> {
        let mut ops = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            ops.push(Self::parse_line(line, i + 1)?);
        }
        Ok(Self { ops })
    }

    /// Checks every endpoint against `num_vertices`.
    pub fn validate(&self, num_vertices: usize) -> Result<(), DeltaError> {
        for op in &self.ops {
            let (s, d) = op.endpoints();
            for v in [s, d] {
                if v as usize >= num_vertices {
                    return Err(DeltaError::VertexOutOfRange {
                        vertex: v,
                        num_vertices,
                    });
                }
            }
        }
        Ok(())
    }
}

/// The append-only op log layered over a frozen base snapshot.
#[derive(Debug, Clone, Default)]
pub struct DeltaLog<E> {
    ops: Vec<DeltaOp<E>>,
}

impl<E: EdgeRecord> DeltaLog<E> {
    /// An empty log.
    pub fn new() -> Self {
        Self { ops: Vec::new() }
    }

    /// The ops, in append order.
    pub fn ops(&self) -> &[DeltaOp<E>] {
        &self.ops
    }

    /// Number of logged ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends one op.
    pub fn push(&mut self, op: DeltaOp<E>) {
        self.ops.push(op);
    }

    /// Appends a whole batch.
    pub fn append(&mut self, batch: &DeltaBatch<E>) {
        self.ops.extend_from_slice(&batch.ops);
    }

    /// The log as one batch (for replay).
    pub fn as_batch(&self) -> DeltaBatch<E> {
        DeltaBatch {
            ops: self.ops.clone(),
        }
    }

    /// The undirected double of this log: every op also applied to the
    /// reversed edge, matching [`EdgeList::to_undirected`].
    pub fn to_undirected(&self) -> Self {
        let mut ops = Vec::with_capacity(self.ops.len() * 2);
        for op in &self.ops {
            ops.push(*op);
            ops.push(op.reversed());
        }
        Self { ops }
    }

    /// Folds the log into `base`, producing the merged edge list: base
    /// edges surviving every delete, then the surviving inserts in log
    /// order. Endpoints must already be validated against the base.
    pub fn merge_into(&self, base: &EdgeList<E>) -> EdgeList<E> {
        let mut deleted: HashSet<(VertexId, VertexId)> = HashSet::new();
        let mut inserted: Vec<E> = Vec::new();
        for op in &self.ops {
            match op {
                DeltaOp::Insert(e) => inserted.push(*e),
                DeltaOp::Delete { src, dst } => {
                    inserted.retain(|e| (e.src(), e.dst()) != (*src, *dst));
                    deleted.insert((*src, *dst));
                }
            }
        }
        let mut merged: Vec<E> = base
            .edges()
            .iter()
            .filter(|e| !deleted.contains(&(e.src(), e.dst())))
            .copied()
            .collect();
        merged.extend_from_slice(&inserted);
        EdgeList::new(base.num_vertices(), merged)
            .expect("merged endpoints were validated against the base vertex range")
    }
}

/// One direction of the delta layout: a frozen base [`Adjacency`] plus
/// the log's per-vertex overlay (surviving inserts) and tombstones
/// (deleted base neighbors). Implements [`NeighborAccess`], so every
/// vertex-centric kernel runs on the mutated graph without rebuilding
/// the CSR.
#[derive(Debug, Clone)]
pub struct DeltaAdjacency<E> {
    base: Adjacency<E>,
    /// Surviving inserted edges, keyed by this direction's owner
    /// vertex (src for out-adjacency, dst for in-adjacency).
    added: Vec<Vec<E>>,
    /// For owners with deleted *base* neighbors: how many base edges
    /// are tombstoned and the set of deleted other-endpoints.
    removed: HashMap<VertexId, (u32, HashSet<VertexId>)>,
    num_edges: usize,
}

impl<E: EdgeRecord> DeltaAdjacency<E> {
    /// Layers `log` over `base`. Op endpoints must be in range.
    pub fn new(base: Adjacency<E>, log: &DeltaLog<E>) -> Self {
        let by_dst = base.is_by_dst();
        let owner_other =
            |src: VertexId, dst: VertexId| if by_dst { (dst, src) } else { (src, dst) };
        let nv = base.num_vertices();
        let mut added: Vec<Vec<E>> = vec![Vec::new(); nv];
        let mut tombstones: HashMap<VertexId, HashSet<VertexId>> = HashMap::new();
        let mut n_added = 0usize;
        for op in log.ops() {
            match op {
                DeltaOp::Insert(e) => {
                    let (owner, _) = owner_other(e.src(), e.dst());
                    added[owner as usize].push(*e);
                    n_added += 1;
                }
                DeltaOp::Delete { src, dst } => {
                    let (owner, other) = owner_other(*src, *dst);
                    let list = &mut added[owner as usize];
                    let before = list.len();
                    list.retain(|e| {
                        let (_, o) = owner_other(e.src(), e.dst());
                        o != other
                    });
                    n_added -= before - list.len();
                    tombstones.entry(owner).or_default().insert(other);
                }
            }
        }
        // Count how many *base* edges each tombstone set actually
        // covers; owners whose set hits nothing keep the copy-free
        // iteration path.
        let mut removed = HashMap::new();
        let mut n_removed = 0usize;
        for (owner, set) in tombstones {
            let cnt = base
                .neighbors(owner)
                .iter()
                .filter(|e| {
                    let (_, o) = owner_other(e.src(), e.dst());
                    set.contains(&o)
                })
                .count();
            if cnt > 0 {
                n_removed += cnt;
                removed.insert(owner, (cnt as u32, set));
            }
        }
        let num_edges = base.num_edges() - n_removed + n_added;
        Self {
            base,
            added,
            removed,
            num_edges,
        }
    }

    /// Whether neighbor records are keyed by destination (in-adjacency).
    pub fn is_by_dst(&self) -> bool {
        self.base.is_by_dst()
    }

    /// The frozen base this overlay wraps.
    pub fn base(&self) -> &Adjacency<E> {
        &self.base
    }

    /// Live neighbors of `v` as an owned list (test / repair helper).
    pub fn neighbors_vec(&self, v: VertexId) -> Vec<E> {
        let mut out = Vec::with_capacity(self.degree(v));
        self.for_each_span(v, |span| {
            out.extend_from_slice(span);
            span.len()
        });
        out
    }

    /// Approximate resident bytes of base plus overlay.
    pub fn resident_bytes(&self) -> u64 {
        let overlay: usize = self
            .added
            .iter()
            .map(|l| l.len() * std::mem::size_of::<E>())
            .sum();
        let tombs: usize = self
            .removed
            .values()
            .map(|(_, s)| s.len() * std::mem::size_of::<VertexId>() * 2)
            .sum();
        self.base.resident_bytes() + (overlay + tombs + self.added.len() * 24) as u64
    }

    #[inline]
    fn other_endpoint(&self, e: &E) -> VertexId {
        if self.base.is_by_dst() {
            e.src()
        } else {
            e.dst()
        }
    }
}

impl<E: EdgeRecord> NeighborAccess<E> for DeltaAdjacency<E> {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.num_edges
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        let removed = self
            .removed
            .get(&v)
            .map(|(cnt, _)| *cnt as usize)
            .unwrap_or(0);
        self.base.degree(v) - removed + self.added[v as usize].len()
    }

    #[inline]
    fn edge_sim_addr(&self, v: VertexId, k: usize) -> u64 {
        // Base edges keep their CSR address; overlay edges get a
        // distinct synthetic region so the cache simulation sees them
        // as separate (non-contiguous) lines, which is what a
        // per-vertex spill allocation would look like.
        let base_deg = self.base.degree(v);
        if k < base_deg {
            self.base.edge_sim_addr(v, k)
        } else {
            0x4000_0000_0000u64
                + (v as u64 * SPAN_EDGES as u64 + (k - base_deg) as u64)
                    * std::mem::size_of::<E>() as u64
        }
    }

    fn for_each_span<F: FnMut(&[E]) -> usize>(&self, v: VertexId, mut f: F) {
        let added = &self.added[v as usize];
        match self.removed.get(&v) {
            // No tombstoned base edge: iterate base spans in place,
            // then the overlay.
            None => {
                for span in self.base.neighbors(v).chunks(SPAN_EDGES) {
                    if f(span) < span.len() {
                        return;
                    }
                }
                for span in added.chunks(SPAN_EDGES) {
                    if f(span) < span.len() {
                        return;
                    }
                }
            }
            // Tombstones present: materialize live edges span by span.
            Some((_, tombs)) => {
                let mut buf: Vec<E> = Vec::with_capacity(SPAN_EDGES);
                let live = self
                    .base
                    .neighbors(v)
                    .iter()
                    .filter(|e| !tombs.contains(&self.other_endpoint(e)))
                    .chain(added.iter());
                for e in live {
                    buf.push(*e);
                    if buf.len() == SPAN_EDGES {
                        if f(&buf) < buf.len() {
                            return;
                        }
                        buf.clear();
                    }
                }
                if !buf.is_empty() {
                    f(&buf);
                }
            }
        }
    }
}

/// The two-direction delta layout: [`DeltaAdjacency`] per stored
/// direction, pluggable everywhere a [`VertexLayout`] is accepted.
#[derive(Debug, Clone)]
pub struct DeltaList<E> {
    out: Option<DeltaAdjacency<E>>,
    incoming: Option<DeltaAdjacency<E>>,
}

impl<E: EdgeRecord> DeltaList<E> {
    /// Wraps pre-built base directions with the same log overlay.
    pub fn new(
        out: Option<Adjacency<E>>,
        incoming: Option<Adjacency<E>>,
        log: &DeltaLog<E>,
    ) -> Self {
        Self {
            out: out.map(|a| DeltaAdjacency::new(a, log)),
            incoming: incoming.map(|a| DeltaAdjacency::new(a, log)),
        }
    }

    /// Approximate resident bytes of both directions.
    pub fn resident_bytes(&self) -> u64 {
        self.out.as_ref().map_or(0, DeltaAdjacency::resident_bytes)
            + self
                .incoming
                .as_ref()
                .map_or(0, DeltaAdjacency::resident_bytes)
    }
}

impl<E: EdgeRecord> VertexLayout<E> for DeltaList<E> {
    type Dir = DeltaAdjacency<E>;

    fn num_vertices(&self) -> usize {
        self.out
            .as_ref()
            .or(self.incoming.as_ref())
            .map_or(0, |d| d.num_vertices())
    }

    fn num_edges(&self) -> usize {
        self.out
            .as_ref()
            .or(self.incoming.as_ref())
            .map_or(0, |d| d.num_edges())
    }

    fn out(&self) -> &DeltaAdjacency<E> {
        self.out
            .as_ref()
            .expect("delta layout built without out-edges")
    }

    fn incoming(&self) -> &DeltaAdjacency<E> {
        self.incoming
            .as_ref()
            .expect("delta layout built without in-edges")
    }

    fn out_opt(&self) -> Option<&DeltaAdjacency<E>> {
        self.out.as_ref()
    }

    fn incoming_opt(&self) -> Option<&DeltaAdjacency<E>> {
        self.incoming.as_ref()
    }
}

/// Visits every live neighbor record of `v` (span iteration flattened;
/// repair passes use this).
pub fn for_each_neighbor<E: EdgeRecord, A: NeighborAccess<E>>(
    access: &A,
    v: VertexId,
    mut f: impl FnMut(&E),
) {
    access.for_each_span(v, |span| {
        for e in span {
            f(e);
        }
        span.len()
    });
}

/// The epoch-style publication cell (the arc-swap pattern, without the
/// dependency): writers [`publish`](Self::publish) a fresh value and
/// bump the epoch; readers [`load`](Self::load) the current `Arc` in a
/// nanosecond-scale critical section and then work on it for as long
/// as they like, pinned to the epoch they loaded — a compactor
/// publishing a new snapshot never blocks or invalidates them.
#[derive(Debug)]
pub struct EpochCell<T> {
    current: Mutex<Arc<T>>,
    epoch: AtomicU64,
}

impl<T> EpochCell<T> {
    /// A cell at epoch 0 holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            current: Mutex::new(Arc::new(value)),
            epoch: AtomicU64::new(0),
        }
    }

    /// The current value; the returned `Arc` stays valid (pinned to
    /// its epoch) across any number of subsequent publishes.
    pub fn load(&self) -> Arc<T> {
        self.current
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The current value and the epoch it was published at, read
    /// atomically together.
    pub fn load_with_epoch(&self) -> (Arc<T>, u64) {
        let guard = self.current.lock().unwrap_or_else(PoisonError::into_inner);
        (guard.clone(), self.epoch.load(Ordering::Acquire))
    }

    /// The current epoch (publishes so far).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publishes `value` as the new current; returns the new epoch.
    pub fn publish(&self, value: T) -> u64 {
        self.publish_arc(Arc::new(value))
    }

    /// Publishes an already-shared value; returns the new epoch.
    pub fn publish_arc(&self, value: Arc<T>) -> u64 {
        let mut guard = self.current.lock().unwrap_or_else(PoisonError::into_inner);
        *guard = value;
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }
}

/// A published graph snapshot: the merged edge list as of `epoch`.
#[derive(Debug)]
pub struct GraphSnapshot<E: EdgeRecord> {
    /// The epoch this snapshot was published at (0 = the base build).
    pub epoch: u64,
    /// The merged edge list.
    pub edges: EdgeList<E>,
}

/// Statistics of one compaction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactStats {
    /// The epoch the merged snapshot was published at.
    pub epoch: u64,
    /// Log ops folded into the snapshot.
    pub merged_ops: usize,
    /// Edges before the merge.
    pub edges_before: usize,
    /// Edges after the merge.
    pub edges_after: usize,
    /// Wall-clock seconds spent merging and publishing.
    pub seconds: f64,
}

/// A mutable graph: a frozen, epoch-published base snapshot plus the
/// pending delta log. Readers take [`snapshot`](Self::snapshot) (never
/// blocked by writers); updaters [`apply`](Self::apply) batches;
/// [`compact`](Self::compact) folds the pending log into a fresh
/// snapshot and flips the epoch pointer.
#[derive(Debug)]
pub struct DeltaGraph<E: EdgeRecord> {
    snapshot: EpochCell<GraphSnapshot<E>>,
    log: Mutex<DeltaLog<E>>,
}

impl<E: EdgeRecord> DeltaGraph<E> {
    /// Starts from `base` at epoch 0 with an empty log.
    pub fn new(base: EdgeList<E>) -> Self {
        Self {
            snapshot: EpochCell::new(GraphSnapshot {
                epoch: 0,
                edges: base,
            }),
            log: Mutex::new(DeltaLog::new()),
        }
    }

    /// Number of vertices (fixed across updates).
    pub fn num_vertices(&self) -> usize {
        self.snapshot().edges.num_vertices()
    }

    /// The current published snapshot, pinned to its epoch.
    pub fn snapshot(&self) -> Arc<GraphSnapshot<E>> {
        self.snapshot.load()
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// Pending (not yet compacted) ops.
    pub fn pending_ops(&self) -> usize {
        self.log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Pending ops as a fraction of the snapshot's edge count (the
    /// incremental-vs-recompute fallback signal).
    pub fn delta_fraction(&self) -> f64 {
        self.pending_ops() as f64 / self.snapshot().edges.num_edges().max(1) as f64
    }

    /// Validates and appends one batch to the pending log; returns the
    /// number of appended ops. On error nothing is appended.
    pub fn apply(&self, batch: &DeltaBatch<E>) -> Result<usize, DeltaError> {
        batch.validate(self.num_vertices())?;
        let mut log = self.log.lock().unwrap_or_else(PoisonError::into_inner);
        log.append(batch);
        Ok(batch.len())
    }

    /// The pending log, cloned (oracle / layout-construction helper).
    pub fn pending_log(&self) -> DeltaLog<E> {
        self.log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The merged edge list *as of now* (snapshot + pending log),
    /// without publishing anything.
    pub fn merged(&self) -> EdgeList<E> {
        let log = self.log.lock().unwrap_or_else(PoisonError::into_inner);
        log.merge_into(&self.snapshot().edges)
    }

    /// Folds the pending log into a fresh snapshot, publishes it at
    /// `epoch + 1`, and clears the log. Readers holding the old
    /// snapshot are unaffected. A no-op (same epoch reported) when the
    /// log is empty.
    pub fn compact(&self) -> CompactStats {
        let start = std::time::Instant::now();
        let mut log = self.log.lock().unwrap_or_else(PoisonError::into_inner);
        let old = self.snapshot.load();
        if log.is_empty() {
            return CompactStats {
                epoch: old.epoch,
                merged_ops: 0,
                edges_before: old.edges.num_edges(),
                edges_after: old.edges.num_edges(),
                seconds: start.elapsed().as_secs_f64(),
            };
        }
        let merged = log.merge_into(&old.edges);
        let stats = CompactStats {
            epoch: old.epoch + 1,
            merged_ops: log.len(),
            edges_before: old.edges.num_edges(),
            edges_after: merged.num_edges(),
            seconds: 0.0,
        };
        self.snapshot.publish(GraphSnapshot {
            epoch: old.epoch + 1,
            edges: merged,
        });
        *log = DeltaLog::new();
        CompactStats {
            seconds: start.elapsed().as_secs_f64(),
            ..stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::EdgeDirection;
    use crate::preprocess::{CsrBuilder, Strategy};
    use crate::types::Edge;

    fn base_graph() -> EdgeList<Edge> {
        EdgeList::new(
            5,
            vec![
                Edge::new(0, 1),
                Edge::new(0, 2),
                Edge::new(1, 2),
                Edge::new(2, 3),
                Edge::new(0, 1), // duplicate
            ],
        )
        .unwrap()
    }

    fn delta_list(graph: &EdgeList<Edge>, log: &DeltaLog<Edge>) -> DeltaList<Edge> {
        let (out, incoming) = CsrBuilder::new(Strategy::CountSort, EdgeDirection::Both)
            .sort_neighbors(true)
            .build(graph)
            .into_parts();
        DeltaList::new(out, incoming, log)
    }

    fn sorted_neighbors(d: &DeltaAdjacency<Edge>, v: VertexId) -> Vec<(u32, u32)> {
        let mut n: Vec<(u32, u32)> = d.neighbors_vec(v).iter().map(|e| (e.src, e.dst)).collect();
        n.sort_unstable();
        n
    }

    #[test]
    fn insert_and_delete_overlay_matches_merge() {
        let base = base_graph();
        let mut log = DeltaLog::new();
        log.push(DeltaOp::Insert(Edge::new(3, 4)));
        log.push(DeltaOp::Delete { src: 0, dst: 1 }); // kills both copies
        log.push(DeltaOp::Insert(Edge::new(0, 1))); // one copy back
        let list = delta_list(&base, &log);
        let merged = log.merge_into(&base);

        assert_eq!(merged.num_edges(), 5); // 5 - 2 + 2
        assert_eq!(list.num_edges(), merged.num_edges());
        assert_eq!(sorted_neighbors(list.out(), 0), vec![(0, 1), (0, 2)]);
        assert_eq!(sorted_neighbors(list.out(), 3), vec![(3, 4)]);
        assert_eq!(sorted_neighbors(list.incoming(), 1), vec![(0, 1)]);
        assert_eq!(list.out().degree(0), 2);
        assert_eq!(list.incoming().degree(4), 1);
    }

    #[test]
    fn overlay_neighbors_equal_merged_csr_everywhere() {
        let base = base_graph();
        let mut log = DeltaLog::new();
        for op in [
            DeltaOp::Insert(Edge::new(4, 0)),
            DeltaOp::Insert(Edge::new(2, 2)), // self loop
            DeltaOp::Delete { src: 2, dst: 3 },
            DeltaOp::Insert(Edge::new(1, 3)),
            DeltaOp::Delete { src: 4, dst: 0 },
        ] {
            log.push(op);
        }
        let list = delta_list(&base, &log);
        let merged = log.merge_into(&base);
        let merged_csr = CsrBuilder::new(Strategy::CountSort, EdgeDirection::Both)
            .sort_neighbors(true)
            .build(&merged);
        for v in 0..base.num_vertices() as u32 {
            let mut want: Vec<(u32, u32)> = merged_csr
                .out()
                .neighbors(v)
                .iter()
                .map(|e| (e.src, e.dst))
                .collect();
            want.sort_unstable();
            assert_eq!(sorted_neighbors(list.out(), v), want, "out {v}");
            let mut want_in: Vec<(u32, u32)> = merged_csr
                .incoming()
                .neighbors(v)
                .iter()
                .map(|e| (e.src, e.dst))
                .collect();
            want_in.sort_unstable();
            assert_eq!(sorted_neighbors(list.incoming(), v), want_in, "in {v}");
        }
    }

    #[test]
    fn span_early_termination_still_works() {
        let nv = 3usize;
        let edges: Vec<Edge> = (0..200).map(|i| Edge::new(0, (i % 2) + 1)).collect();
        let base = EdgeList::new(nv, edges).unwrap();
        let mut log = DeltaLog::new();
        log.push(DeltaOp::Delete { src: 0, dst: 1 });
        let list = delta_list(&base, &log);
        let mut spans = 0;
        list.out().for_each_span(0, |span| {
            assert!(span.len() <= SPAN_EDGES);
            spans += 1;
            0 // stop immediately
        });
        assert_eq!(spans, 1);
        assert_eq!(list.out().degree(0), 100);
    }

    #[test]
    fn ndjson_roundtrip_and_typed_errors() {
        let batch: DeltaBatch<Edge> = DeltaBatch::parse_ndjson(
            "{\"op\":\"insert\",\"src\":1,\"dst\":2}\n\n{\"op\":\"delete\",\"src\":0,\"dst\":2}\n",
        )
        .unwrap();
        assert_eq!(batch.len(), 2);
        assert!(batch.has_deletes());

        for (text, want) in [
            ("not json", DeltaError::NotJson { line: 1 }),
            (
                "{\"src\":1,\"dst\":2}",
                DeltaError::MissingField {
                    line: 1,
                    field: "op",
                },
            ),
            (
                "{\"op\":\"insert\",\"dst\":2}",
                DeltaError::MissingField {
                    line: 1,
                    field: "src",
                },
            ),
            (
                "{\"op\":\"insert\",\"src\":-3,\"dst\":2}",
                DeltaError::BadField {
                    line: 1,
                    field: "src",
                },
            ),
            (
                "{\"op\":\"frob\",\"src\":1,\"dst\":2}",
                DeltaError::UnknownOp {
                    line: 1,
                    op: "frob".into(),
                },
            ),
        ] {
            assert_eq!(
                DeltaBatch::<Edge>::parse_ndjson(text).unwrap_err(),
                want,
                "{text}"
            );
        }
    }

    #[test]
    fn apply_validates_and_compact_flips_epoch() {
        let dg = DeltaGraph::new(base_graph());
        assert_eq!(dg.epoch(), 0);
        let bad = DeltaBatch {
            ops: vec![DeltaOp::Insert(Edge::new(0, 9))],
        };
        assert_eq!(
            dg.apply(&bad).unwrap_err(),
            DeltaError::VertexOutOfRange {
                vertex: 9,
                num_vertices: 5
            }
        );
        assert_eq!(dg.pending_ops(), 0);

        let good = DeltaBatch {
            ops: vec![
                DeltaOp::Insert(Edge::new(3, 4)),
                DeltaOp::Delete { src: 0, dst: 2 },
            ],
        };
        assert_eq!(dg.apply(&good).unwrap(), 2);
        assert!(dg.delta_fraction() > 0.0);
        let merged = dg.merged();
        assert_eq!(merged.num_edges(), 5);

        let reader = dg.snapshot(); // pinned to epoch 0
        let stats = dg.compact();
        assert_eq!(stats.epoch, 1);
        assert_eq!(stats.merged_ops, 2);
        assert_eq!(stats.edges_after, 5);
        assert_eq!(dg.epoch(), 1);
        assert_eq!(dg.pending_ops(), 0);
        // The pinned reader still sees the pre-compaction graph.
        assert_eq!(reader.epoch, 0);
        assert_eq!(reader.edges.num_edges(), 5);
        assert_eq!(dg.snapshot().edges.num_edges(), 5);
        // Compacting an empty log is a no-op.
        assert_eq!(dg.compact().epoch, 1);
    }

    /// Satellite: readers pinned on the old epoch observe a consistent
    /// graph while the compactor publishes new ones. Runs under miri
    /// (the pointer-flip path is pure `Mutex<Arc>` + atomics).
    #[test]
    fn concurrent_readers_see_consistent_snapshots_during_compaction() {
        let stress = if cfg!(miri) { 4 } else { 64 };
        let dg = std::sync::Arc::new(DeltaGraph::new(base_graph()));
        std::thread::scope(|s| {
            let readers: Vec<_> = (0..4)
                .map(|_| {
                    let dg = std::sync::Arc::clone(&dg);
                    s.spawn(move || {
                        for _ in 0..stress {
                            let snap = dg.snapshot();
                            // Consistency: the edge list of a pinned
                            // snapshot never changes, whatever the
                            // compactor does meanwhile.
                            let n1 = snap.edges.num_edges();
                            std::thread::yield_now();
                            let n2 = snap.edges.num_edges();
                            assert_eq!(n1, n2);
                            assert!(snap.epoch <= dg.epoch());
                            for e in snap.edges.edges() {
                                assert!((e.src() as usize) < snap.edges.num_vertices());
                                assert!((e.dst() as usize) < snap.edges.num_vertices());
                            }
                        }
                    })
                })
                .collect();
            let writer = {
                let dg = std::sync::Arc::clone(&dg);
                s.spawn(move || {
                    for i in 0..stress {
                        let v = (i % 4) as u32;
                        dg.apply(&DeltaBatch {
                            ops: vec![DeltaOp::Insert(Edge::new(v, v + 1))],
                        })
                        .unwrap();
                        let stats = dg.compact();
                        assert_eq!(stats.epoch, (i + 1) as u64);
                    }
                })
            };
            for r in readers {
                r.join().unwrap();
            }
            writer.join().unwrap();
        });
        assert_eq!(dg.epoch(), stress as u64);
        assert_eq!(dg.snapshot().edges.num_edges(), 5 + stress);
    }
}

//! In-memory graph data layouts (§3.1, §5.1).
//!
//! * **Edge array** — the input [`crate::types::EdgeList`] itself; zero
//!   pre-processing, edge-centric computation only.
//! * **Adjacency list** ([`Adjacency`], [`AdjacencyList`]) — per-vertex
//!   edge arrays, either contiguous (CSR, built by sorting) or
//!   per-vertex allocated (built dynamically); enables vertex-centric
//!   computation on the active subset.
//! * **Grid** ([`Grid`]) — a P×P matrix of edge cells (GridGraph's
//!   layout adapted to in-memory processing); improves cache locality
//!   and enables lock-free push (column ownership) and pull (row
//!   ownership).

pub mod csr;
pub mod grid;

pub use csr::{Adjacency, AdjacencyList, EdgeDirection, Storage};
pub use grid::Grid;

//! In-memory graph data layouts (§3.1, §5.1).
//!
//! * **Edge array** — the input [`crate::types::EdgeList`] itself; zero
//!   pre-processing, edge-centric computation only.
//! * **Adjacency list** ([`Adjacency`], [`AdjacencyList`]) — per-vertex
//!   edge arrays, either contiguous (CSR, built by sorting) or
//!   per-vertex allocated (built dynamically); enables vertex-centric
//!   computation on the active subset.
//! * **Compressed CSR** ([`ccsr::CcsrAdjacency`], [`ccsr::CcsrList`]) —
//!   sorted neighbor lists as byte-varint delta streams with chunked
//!   random access; trades decode cycles for memory bandwidth
//!   (DESIGN.md §14).
//! * **Grid** ([`Grid`]) — a P×P matrix of edge cells (GridGraph's
//!   layout adapted to in-memory processing); improves cache locality
//!   and enables lock-free push (column ownership) and pull (row
//!   ownership).
//! * **Delta** ([`delta::DeltaAdjacency`], [`delta::DeltaList`]) — a
//!   frozen CSR plus an append-only insert/delete log overlay; the
//!   mutable layout, compacted into fresh snapshots behind an
//!   epoch-published pointer flip (DESIGN.md §16).

pub mod ccsr;
pub mod csr;
pub mod delta;
pub mod grid;

pub use ccsr::{CcsrAdjacency, CcsrError, CcsrList};
pub use csr::{Adjacency, AdjacencyList, EdgeDirection, Storage};
pub use delta::{
    for_each_neighbor, CompactStats, DeltaAdjacency, DeltaBatch, DeltaError, DeltaGraph, DeltaList,
    DeltaLog, DeltaOp, EpochCell, GraphSnapshot,
};
pub use grid::Grid;

use crate::types::{EdgeRecord, VertexId};

/// Maximum edges per iteration span (and per ccsr chunk).
///
/// Every vertex-centric driver visits neighbor lists in spans of at
/// most this many edges, for **every** layout — so float accumulations
/// that reassociate at span boundaries (the vectorized PageRank/SpMV
/// pull) produce bit-identical results on uncompressed and compressed
/// adjacencies alike.
pub const SPAN_EDGES: usize = 64;

/// Uniform per-vertex neighbor access for the vertex-centric engine
/// drivers: one direction of an uncompressed [`Adjacency`] or a
/// compressed [`ccsr::CcsrAdjacency`].
pub trait NeighborAccess<E: EdgeRecord>: Sync {
    /// Number of vertices.
    fn num_vertices(&self) -> usize;

    /// Number of edges in this direction.
    fn num_edges(&self) -> usize;

    /// Degree of vertex `v` in this direction.
    fn degree(&self, v: VertexId) -> usize;

    /// A simulated byte address for edge `k` of vertex `v`, used by the
    /// cache-miss instrumentation.
    fn edge_sim_addr(&self, v: VertexId, k: usize) -> u64;

    /// Visits `v`'s neighbor list in spans of at most [`SPAN_EDGES`]
    /// edges. `f` returns how many edges it consumed; returning fewer
    /// than the span's length stops the iteration (early termination).
    /// Span boundaries are identical across layouts (see
    /// [`SPAN_EDGES`]).
    fn for_each_span<F: FnMut(&[E]) -> usize>(&self, v: VertexId, f: F);
}

impl<E: EdgeRecord> NeighborAccess<E> for Adjacency<E> {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.num_vertices()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.num_edges()
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        self.degree(v)
    }

    #[inline]
    fn edge_sim_addr(&self, v: VertexId, k: usize) -> u64 {
        self.edge_sim_addr(v, k)
    }

    #[inline]
    fn for_each_span<F: FnMut(&[E]) -> usize>(&self, v: VertexId, mut f: F) {
        for span in self.neighbors(v).chunks(SPAN_EDGES) {
            if f(span) < span.len() {
                return;
            }
        }
    }
}

/// A vertex-centric layout holding up to two [`NeighborAccess`]
/// directions — implemented by [`AdjacencyList`] (CSR) and
/// [`ccsr::CcsrList`] (compressed), so the algorithm drivers run on
/// either without per-call-site changes.
pub trait VertexLayout<E: EdgeRecord>: Sync {
    /// One direction of this layout.
    type Dir: NeighborAccess<E>;

    /// Number of vertices.
    fn num_vertices(&self) -> usize;

    /// Number of edges (from whichever direction is present).
    fn num_edges(&self) -> usize;

    /// The out-direction.
    ///
    /// # Panics
    ///
    /// Panics if the layout was built without out-edges.
    fn out(&self) -> &Self::Dir;

    /// The in-direction.
    ///
    /// # Panics
    ///
    /// Panics if the layout was built without in-edges.
    fn incoming(&self) -> &Self::Dir;

    /// The out-direction, if present.
    fn out_opt(&self) -> Option<&Self::Dir>;

    /// The in-direction, if present.
    fn incoming_opt(&self) -> Option<&Self::Dir>;
}

impl<E: EdgeRecord> VertexLayout<E> for AdjacencyList<E> {
    type Dir = Adjacency<E>;

    #[inline]
    fn num_vertices(&self) -> usize {
        self.num_vertices()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.num_edges()
    }

    #[inline]
    fn out(&self) -> &Adjacency<E> {
        self.out()
    }

    #[inline]
    fn incoming(&self) -> &Adjacency<E> {
        self.incoming()
    }

    #[inline]
    fn out_opt(&self) -> Option<&Adjacency<E>> {
        self.out_opt()
    }

    #[inline]
    fn incoming_opt(&self) -> Option<&Adjacency<E>> {
        self.incoming_opt()
    }
}

//! Adjacency lists: per-vertex edge arrays.
//!
//! Two storage shapes exist, matching the paper's two construction
//! techniques (§3.2):
//!
//! * [`Storage::Csr`] — edges sorted by key vertex in one contiguous
//!   array, with per-vertex offsets into it ("vertices use an index in
//!   the sorted edge array to point to their outgoing edge array […]
//!   corresponding to compressed sparse row format"). Built by count
//!   sort or radix sort.
//! * [`Storage::PerVertex`] — individually allocated, growable
//!   per-vertex arrays, built dynamically while scanning (or loading)
//!   the input.
//!
//! Both expose the same `neighbors(v)` interface, so every algorithm
//! runs unchanged on either; what differs is construction cost and
//! memory locality — exactly the trade-off the paper measures.

use crate::types::{EdgeRecord, VertexId};

/// Which per-vertex arrays an adjacency list holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeDirection {
    /// Outgoing edges only (push-style computation).
    Out,
    /// Incoming edges only (pull-style computation).
    In,
    /// Both (required by push-pull on directed graphs; doubles the
    /// pre-processing cost, see Fig. 1 and §6.1.3).
    Both,
}

/// Physical storage of one direction of adjacency.
#[derive(Debug, Clone)]
pub enum Storage<E> {
    /// Contiguous CSR: `offsets[v]..offsets[v+1]` indexes `edges`.
    Csr {
        /// `num_vertices + 1` exclusive prefix offsets.
        offsets: Vec<u64>,
        /// Edges grouped by key vertex.
        edges: Vec<E>,
    },
    /// Individually allocated per-vertex arrays (dynamic construction).
    PerVertex(Vec<Vec<E>>),
}

/// One direction of adjacency (out-edges or in-edges).
#[derive(Debug, Clone)]
pub struct Adjacency<E> {
    num_vertices: usize,
    num_edges: usize,
    /// `true` when edges are grouped by destination (an in-CSR).
    by_dst: bool,
    storage: Storage<E>,
}

impl<E: EdgeRecord> Adjacency<E> {
    /// Wraps CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is not a monotone `num_vertices + 1` prefix
    /// table ending at `edges.len()`.
    pub fn from_csr(num_vertices: usize, offsets: Vec<u64>, edges: Vec<E>, by_dst: bool) -> Self {
        assert_eq!(offsets.len(), num_vertices + 1, "offsets length");
        assert_eq!(
            *offsets.last().unwrap() as usize,
            edges.len(),
            "offsets total"
        );
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Self {
            num_vertices,
            num_edges: edges.len(),
            by_dst,
            storage: Storage::Csr { offsets, edges },
        }
    }

    /// Wraps dynamically built per-vertex arrays.
    ///
    /// # Panics
    ///
    /// Panics if `lists.len() != num_vertices`.
    pub fn from_per_vertex(num_vertices: usize, lists: Vec<Vec<E>>, by_dst: bool) -> Self {
        assert_eq!(lists.len(), num_vertices, "one list per vertex");
        let num_edges = lists.iter().map(Vec::len).sum();
        Self {
            num_vertices,
            num_edges,
            by_dst,
            storage: Storage::PerVertex(lists),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Whether edges are grouped by destination vertex.
    #[inline]
    pub fn is_by_dst(&self) -> bool {
        self.by_dst
    }

    /// The storage shape (CSR or per-vertex).
    #[inline]
    pub fn storage(&self) -> &Storage<E> {
        &self.storage
    }

    /// The edges of vertex `v` (out-edges for an out-adjacency,
    /// in-edges for an in-adjacency).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[E] {
        match &self.storage {
            Storage::Csr { offsets, edges } => {
                &edges[offsets[v as usize] as usize..offsets[v as usize + 1] as usize]
            }
            Storage::PerVertex(lists) => &lists[v as usize],
        }
    }

    /// Degree of vertex `v` in this direction.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }

    /// A simulated byte address for edge `k` of vertex `v`, used by the
    /// cache-miss instrumentation.
    ///
    /// CSR storage is contiguous; per-vertex storage scatters each
    /// vertex's array to its own (hashed) heap location, reproducing
    /// the locality difference between the two construction techniques.
    #[inline]
    pub fn edge_sim_addr(&self, v: VertexId, k: usize) -> u64 {
        let esize = std::mem::size_of::<E>() as u64;
        match &self.storage {
            Storage::Csr { offsets, .. } => {
                egraph_cachesim::probe::regions::EDGES + (offsets[v as usize] + k as u64) * esize
            }
            Storage::PerVertex(_) => {
                // Scatter per-vertex arrays pseudo-randomly over a heap
                // region sized ~2x the edge data.
                let slot = (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    % (2 * self.num_edges.max(1) as u64);
                egraph_cachesim::probe::regions::EDGES + slot * esize + (k as u64) * esize
            }
        }
    }

    /// Degrees of all vertices, as `u64` (for partitioners). Computed
    /// in parallel: each worker fills a disjoint range of the output.
    pub fn degrees(&self) -> Vec<u64> {
        egraph_parallel::ops::parallel_init(self.num_vertices, 4096, |v| {
            self.degree(v as VertexId) as u64
        })
    }

    /// Resident heap bytes of this direction (offset table or
    /// per-vertex headers, plus edge arrays) — the uncompressed
    /// baseline the ccsr compression experiment compares against.
    pub fn resident_bytes(&self) -> u64 {
        let esize = std::mem::size_of::<E>() as u64;
        match &self.storage {
            Storage::Csr { offsets, edges } => {
                offsets.len() as u64 * 8 + edges.len() as u64 * esize
            }
            Storage::PerVertex(lists) => lists
                .iter()
                .map(|l| std::mem::size_of::<Vec<E>>() as u64 + l.capacity() as u64 * esize)
                .sum(),
        }
    }

    /// Sorts every per-vertex edge array by neighbor id — the "adj.
    /// sorted" variant of §5.1, whose extra pre-processing the paper
    /// shows never pays off.
    pub fn sort_neighbor_arrays(&mut self) {
        let by_dst = self.by_dst;
        let key = move |e: &E| {
            if by_dst {
                e.src()
            } else {
                e.dst()
            }
        };
        match &mut self.storage {
            Storage::Csr { offsets, edges } => {
                let nv = self.num_vertices;
                let offsets = &*offsets;
                // Per-vertex ranges are disjoint: sort them in parallel
                // through raw pointers.
                let base = EdgesPtr(edges.as_mut_ptr());
                egraph_parallel::parallel_for(0..nv, 1024, |r| {
                    for v in r {
                        let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
                        // SAFETY: vertex ranges `[lo, hi)` are disjoint
                        // across `v`, and the borrow lives for the
                        // whole (blocking) parallel region.
                        let slice =
                            unsafe { std::slice::from_raw_parts_mut(base.get().add(lo), hi - lo) };
                        slice.sort_unstable_by_key(|e| key(e));
                    }
                });
            }
            Storage::PerVertex(lists) => {
                egraph_parallel::for_each_chunk_mut(lists, 1024, |_, chunk| {
                    for list in chunk {
                        list.sort_unstable_by_key(|e| key(e));
                    }
                });
            }
        }
    }
}

struct EdgesPtr<E>(*mut E);
impl<E> EdgesPtr<E> {
    #[inline]
    fn get(&self) -> *mut E {
        self.0
    }
}
// SAFETY: only used for disjoint per-vertex ranges (see call site).
unsafe impl<E: Send> Send for EdgesPtr<E> {}
// SAFETY: same disjointness argument.
unsafe impl<E: Send> Sync for EdgesPtr<E> {}

/// A full adjacency-list layout: out-edges, in-edges, or both.
#[derive(Debug, Clone)]
pub struct AdjacencyList<E> {
    num_vertices: usize,
    out: Option<Adjacency<E>>,
    inc: Option<Adjacency<E>>,
}

impl<E: EdgeRecord> AdjacencyList<E> {
    /// Assembles a layout from its directions.
    ///
    /// # Panics
    ///
    /// Panics if both directions are absent or their vertex counts
    /// disagree.
    pub fn new(out: Option<Adjacency<E>>, inc: Option<Adjacency<E>>) -> Self {
        let num_vertices = match (&out, &inc) {
            (Some(o), Some(i)) => {
                assert_eq!(
                    o.num_vertices(),
                    i.num_vertices(),
                    "direction vertex counts"
                );
                o.num_vertices()
            }
            (Some(o), None) => o.num_vertices(),
            (None, Some(i)) => i.num_vertices(),
            (None, None) => panic!("adjacency list needs at least one direction"),
        };
        Self {
            num_vertices,
            out,
            inc,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges (from whichever direction is present).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out
            .as_ref()
            .or(self.inc.as_ref())
            .map(Adjacency::num_edges)
            .unwrap_or(0)
    }

    /// The out-adjacency.
    ///
    /// # Panics
    ///
    /// Panics if the layout was built without out-edges.
    #[inline]
    pub fn out(&self) -> &Adjacency<E> {
        self.out
            .as_ref()
            .expect("layout was built without out-edges (EdgeDirection::In)")
    }

    /// The in-adjacency.
    ///
    /// # Panics
    ///
    /// Panics if the layout was built without in-edges.
    #[inline]
    pub fn incoming(&self) -> &Adjacency<E> {
        self.inc
            .as_ref()
            .expect("layout was built without in-edges (EdgeDirection::Out)")
    }

    /// The out-adjacency, if present.
    #[inline]
    pub fn out_opt(&self) -> Option<&Adjacency<E>> {
        self.out.as_ref()
    }

    /// The in-adjacency, if present.
    #[inline]
    pub fn incoming_opt(&self) -> Option<&Adjacency<E>> {
        self.inc.as_ref()
    }

    /// Resident heap bytes across both directions.
    pub fn resident_bytes(&self) -> u64 {
        self.out.as_ref().map_or(0, Adjacency::resident_bytes)
            + self.inc.as_ref().map_or(0, Adjacency::resident_bytes)
    }

    /// Mutable out-adjacency, if present (used by the neighbor-sorting
    /// pre-processing variant).
    pub fn out_mut(&mut self) -> Option<&mut Adjacency<E>> {
        self.out.as_mut()
    }

    /// Mutable in-adjacency, if present.
    pub fn incoming_mut(&mut self) -> Option<&mut Adjacency<E>> {
        self.inc.as_mut()
    }

    /// Decomposes the layout into its owned directions (the delta
    /// layout wraps them with a log overlay).
    pub fn into_parts(self) -> (Option<Adjacency<E>>, Option<Adjacency<E>>) {
        (self.out, self.inc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    fn sample_csr() -> Adjacency<Edge> {
        // 0 -> 1, 0 -> 2, 2 -> 0
        Adjacency::from_csr(
            3,
            vec![0, 2, 2, 3],
            vec![Edge::new(0, 1), Edge::new(0, 2), Edge::new(2, 0)],
            false,
        )
    }

    #[test]
    fn csr_neighbors() {
        let adj = sample_csr();
        assert_eq!(adj.neighbors(0), &[Edge::new(0, 1), Edge::new(0, 2)]);
        assert_eq!(adj.neighbors(1), &[]);
        assert_eq!(adj.degree(2), 1);
        assert_eq!(adj.num_edges(), 3);
    }

    #[test]
    fn per_vertex_neighbors() {
        let adj = Adjacency::from_per_vertex(2, vec![vec![Edge::new(0, 1)], vec![]], false);
        assert_eq!(adj.neighbors(0).len(), 1);
        assert_eq!(adj.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "offsets length")]
    fn csr_rejects_bad_offsets() {
        let _ = Adjacency::<Edge>::from_csr(3, vec![0, 1], vec![Edge::new(0, 1)], false);
    }

    #[test]
    fn sorting_neighbor_arrays() {
        let mut adj = Adjacency::from_csr(
            2,
            vec![0, 3, 3],
            vec![Edge::new(0, 5), Edge::new(0, 1), Edge::new(0, 3)],
            false,
        );
        adj.sort_neighbor_arrays();
        let dsts: Vec<u32> = adj.neighbors(0).iter().map(|e| e.dst).collect();
        assert_eq!(dsts, vec![1, 3, 5]);
    }

    #[test]
    fn adjacency_list_directions() {
        let out = sample_csr();
        let list = AdjacencyList::new(Some(out), None);
        assert_eq!(list.num_vertices(), 3);
        assert_eq!(list.num_edges(), 3);
        assert!(list.out_opt().is_some());
        assert!(list.incoming_opt().is_none());
    }

    #[test]
    #[should_panic(expected = "without in-edges")]
    fn missing_direction_panics_with_message() {
        let list = AdjacencyList::new(Some(sample_csr()), None);
        let _ = list.incoming();
    }

    #[test]
    fn sim_addresses_are_contiguous_for_csr() {
        let adj = sample_csr();
        let a0 = adj.edge_sim_addr(0, 0);
        let a1 = adj.edge_sim_addr(0, 1);
        assert_eq!(a1 - a0, std::mem::size_of::<Edge>() as u64);
    }
}

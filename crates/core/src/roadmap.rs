//! The §9 decision roadmap, as an executable API.
//!
//! "The first step consists of choosing an appropriate data layout
//! […] Second, if the machine is a large NUMA machine and the algorithm
//! execution time is predicted to be large, then partitioning the graph
//! to be NUMA-aware is beneficial. Third, if the data layout and
//! computation approach chosen during the first step allow for
//! execution without locking […] it is always beneficial to remove
//! locks. Finally, when pre-processing cannot be avoided […] it should
//! be optimized by using appropriate sorting techniques."

use egraph_numa::Topology;

use crate::preprocess::Strategy;

/// Workload characteristics the roadmap reasons about.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlgorithmTraits {
    /// The algorithm finishes in a single pass over the graph (SpMV).
    pub single_pass: bool,
    /// Average fraction of vertices active per computation step
    /// (≈1.0 for PageRank, ≪1 for BFS/SSSP).
    pub active_fraction: f64,
    /// Rough expected algorithm execution time in seconds (drives the
    /// NUMA amortization decision).
    pub expected_seconds: f64,
}

impl AlgorithmTraits {
    /// Traits of a BFS-like traversal.
    pub fn traversal(expected_seconds: f64) -> Self {
        Self {
            single_pass: false,
            active_fraction: 0.1,
            expected_seconds,
        }
    }

    /// Traits of a PageRank-like full-graph iterative algorithm.
    pub fn full_graph_iterative(expected_seconds: f64) -> Self {
        Self {
            single_pass: false,
            active_fraction: 1.0,
            expected_seconds,
        }
    }

    /// Traits of a single-pass kernel (SpMV).
    pub fn single_pass() -> Self {
        Self {
            single_pass: true,
            active_fraction: 1.0,
            expected_seconds: 1.0,
        }
    }
}

/// Graph characteristics the roadmap reasons about.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphTraits {
    /// Average out-degree (edges / vertices).
    pub avg_degree: f64,
    /// Whether the graph has a high diameter with low-degree vertices
    /// (US-Road-like rather than power-law).
    pub high_diameter: bool,
}

impl GraphTraits {
    /// Derives traits from basic counts.
    pub fn new(num_vertices: usize, num_edges: usize, high_diameter: bool) -> Self {
        Self {
            avg_degree: num_edges as f64 / num_vertices.max(1) as f64,
            high_diameter,
        }
    }
}

/// Data layout recommendation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutChoice {
    /// Raw edge array (zero pre-processing).
    EdgeArray,
    /// Adjacency list (CSR).
    AdjacencyList,
    /// P×P grid.
    Grid,
}

/// Information-flow recommendation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowChoice {
    /// Push along out-edges.
    Push,
    /// Pull along in-edges (lock free on adjacency lists).
    Pull,
}

/// The roadmap's output.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// Which layout to build.
    pub layout: LayoutChoice,
    /// Which direction information should flow.
    pub flow: FlowChoice,
    /// Whether lock-free execution is available with this combination.
    pub lock_free: bool,
    /// Whether NUMA-aware partitioning is predicted to pay off.
    pub numa_aware: bool,
    /// Which pre-processing strategy to use when a layout must be
    /// built and the input is already in memory.
    pub preprocessing: Strategy,
    /// Human-readable reasoning, one line per decision.
    pub rationale: Vec<String>,
}

/// Threshold (seconds) above which NUMA partitioning cost is treated
/// as amortizable.
const NUMA_AMORTIZATION_SECONDS: f64 = 10.0;
/// Average degree above which the grid's cache reuse wins for
/// full-graph algorithms.
const GRID_DEGREE_THRESHOLD: f64 = 8.0;

/// Applies the §9 roadmap.
pub fn recommend(
    algo: &AlgorithmTraits,
    graph: &GraphTraits,
    machine: &Topology,
) -> Recommendation {
    let mut rationale = Vec::new();

    // Step 1: data layout.
    let (layout, flow) = if algo.single_pass {
        rationale
            .push("single-pass algorithm: edge array avoids all pre-processing (SpMV rule)".into());
        (LayoutChoice::EdgeArray, FlowChoice::Push)
    } else if algo.active_fraction < 0.5 {
        rationale.push(
            "small active subset per step: adjacency list in push mode skips inactive vertices"
                .into(),
        );
        (LayoutChoice::AdjacencyList, FlowChoice::Push)
    } else if graph.avg_degree >= GRID_DEGREE_THRESHOLD && !graph.high_diameter {
        rationale.push(format!(
            "full-graph iterations on a high-degree graph (avg {:.1}): grid improves cache reuse",
            graph.avg_degree
        ));
        (LayoutChoice::Grid, FlowChoice::Pull)
    } else {
        rationale.push(
            "full-graph iterations on a low-degree graph: grid cells too sparse to amortize, \
             edge array wins (US-Road PageRank rule)"
                .into(),
        );
        (LayoutChoice::EdgeArray, FlowChoice::Pull)
    };

    // Step 2: NUMA.
    let numa_aware = machine.num_nodes >= 4
        && algo.expected_seconds >= NUMA_AMORTIZATION_SECONDS
        && algo.active_fraction >= 0.5;
    if numa_aware {
        rationale.push(format!(
            "large NUMA machine ({} nodes) and long full-graph run: partitioning amortizes",
            machine.num_nodes
        ));
    } else if machine.num_nodes > 1 {
        rationale.push(
            "NUMA partitioning skipped: machine too small, run too short, or frontier too \
             concentrated (contention risk)"
                .into(),
        );
    }

    // Step 3: lock removal.
    let lock_free = matches!(
        (layout, flow),
        (LayoutChoice::AdjacencyList, FlowChoice::Pull) | (LayoutChoice::Grid, _)
    );
    if lock_free {
        rationale.push("chosen combination runs without locks: always beneficial".into());
    }

    // Step 4: pre-processing technique.
    let preprocessing = Strategy::RadixSort;
    if layout != LayoutChoice::EdgeArray {
        rationale.push(
            "layout must be built: radix sort is fastest for in-memory input (Table 2)".into(),
        );
    }

    Recommendation {
        layout,
        flow,
        lock_free,
        numa_aware,
        preprocessing,
        rationale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rmat_like() -> GraphTraits {
        GraphTraits::new(1 << 26, 1 << 30, false)
    }

    fn road_like() -> GraphTraits {
        GraphTraits::new(24_000_000, 58_000_000, true)
    }

    #[test]
    fn spmv_gets_edge_array() {
        let r = recommend(
            &AlgorithmTraits::single_pass(),
            &rmat_like(),
            &Topology::machine_b(),
        );
        assert_eq!(r.layout, LayoutChoice::EdgeArray);
        assert!(!r.numa_aware);
    }

    #[test]
    fn bfs_gets_adjacency_push() {
        let r = recommend(
            &AlgorithmTraits::traversal(2.0),
            &rmat_like(),
            &Topology::machine_b(),
        );
        assert_eq!(r.layout, LayoutChoice::AdjacencyList);
        assert_eq!(r.flow, FlowChoice::Push);
        assert!(!r.numa_aware, "BFS frontier concentration: no NUMA");
    }

    #[test]
    fn pagerank_power_law_gets_grid_lock_free() {
        let r = recommend(
            &AlgorithmTraits::full_graph_iterative(40.0),
            &rmat_like(),
            &Topology::machine_b(),
        );
        assert_eq!(r.layout, LayoutChoice::Grid);
        assert!(r.lock_free);
        assert!(r.numa_aware, "long PR run on 4 nodes: NUMA pays (Fig 9b)");
    }

    #[test]
    fn pagerank_on_road_gets_edge_array() {
        let r = recommend(
            &AlgorithmTraits::full_graph_iterative(2.0),
            &road_like(),
            &Topology::machine_b(),
        );
        assert_eq!(r.layout, LayoutChoice::EdgeArray, "Table 5 US-Road rule");
    }

    #[test]
    fn small_machine_never_numa() {
        let r = recommend(
            &AlgorithmTraits::full_graph_iterative(100.0),
            &rmat_like(),
            &Topology::machine_a(),
        );
        assert!(
            !r.numa_aware,
            "2-node machine: end-to-end never benefits (Fig 9)"
        );
    }

    #[test]
    fn rationale_is_populated() {
        let r = recommend(
            &AlgorithmTraits::traversal(1.0),
            &rmat_like(),
            &Topology::single_node(),
        );
        assert!(!r.rationale.is_empty());
        assert_eq!(r.preprocessing, Strategy::RadixSort);
    }
}

//! End-to-end time accounting.
//!
//! "Graph processing involves loading the graph as an edge array from
//! storage, pre-processing the input to construct the necessary data
//! structures, executing the actual graph algorithm, and storing the
//! results. Most papers focus solely on the algorithm phase, but we
//! demonstrate that there is an important trade-off between
//! pre-processing time and algorithm execution time." (§1)

use std::time::Instant;

use serde::Serialize;

/// Times a closure, returning its result and the elapsed seconds.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// The end-to-end breakdown of one graph-processing run, matching the
/// stacked bars of the paper's figures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct TimeBreakdown {
    /// Seconds loading the edge array from storage (0 when the input is
    /// already in memory).
    pub load: f64,
    /// Seconds building the data layout (0 for edge arrays).
    pub preprocess: f64,
    /// Seconds spent in NUMA partitioning (0 when not NUMA-aware).
    pub partition: f64,
    /// Seconds executing the algorithm itself.
    pub algorithm: f64,
    /// Seconds storing the results (0 when results stay in memory).
    pub store: f64,
}

impl TimeBreakdown {
    /// The end-to-end time.
    pub fn total(&self) -> f64 {
        self.load + self.preprocess + self.partition + self.algorithm + self.store
    }

    /// A breakdown with only an algorithm component (edge-array runs on
    /// in-memory inputs).
    pub fn algorithm_only(algorithm: f64) -> Self {
        Self {
            algorithm,
            ..Self::default()
        }
    }
}

/// Timing of one iteration (computation step) of a frontier algorithm,
/// used by the per-iteration analysis of Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct IterStat {
    /// Active vertices at the start of the step.
    pub frontier_size: usize,
    /// Out-edges examined during the step (0 when not tracked).
    pub edges_scanned: usize,
    /// Wall-clock seconds of the step.
    pub seconds: f64,
    /// Whether the step pushed or pulled.
    pub mode: StepMode,
}

/// Information-flow direction of one computation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum StepMode {
    /// Active vertices wrote their out-neighbors.
    Push,
    /// Vertices read their in-neighbors.
    Pull,
}

impl StepMode {
    /// The canonical lower-case name used in traces.
    pub fn as_str(self) -> &'static str {
        match self {
            StepMode::Push => "push",
            StepMode::Pull => "pull",
        }
    }

    /// Parses the canonical name back.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "push" => Some(StepMode::Push),
            "pull" => Some(StepMode::Pull),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_components() {
        let b = TimeBreakdown {
            load: 1.0,
            preprocess: 2.0,
            partition: 0.5,
            algorithm: 3.0,
            store: 0.25,
        };
        assert!((b.total() - 6.75).abs() < 1e-12);
    }

    #[test]
    fn algorithm_only_zeroes_rest() {
        let b = TimeBreakdown::algorithm_only(2.0);
        assert_eq!(b.load, 0.0);
        assert_eq!(b.preprocess, 0.0);
        assert_eq!(b.total(), 2.0);
    }

    #[test]
    fn timed_measures_and_returns() {
        let (value, secs) = timed(|| 41 + 1);
        assert_eq!(value, 42);
        assert!(secs >= 0.0);
    }
}

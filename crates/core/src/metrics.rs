//! End-to-end time accounting.
//!
//! "Graph processing involves loading the graph as an edge array from
//! storage, pre-processing the input to construct the necessary data
//! structures, executing the actual graph algorithm, and storing the
//! results. Most papers focus solely on the algorithm phase, but we
//! demonstrate that there is an important trade-off between
//! pre-processing time and algorithm execution time." (§1)

use std::time::Instant;

use serde::Serialize;

/// Times a closure, returning its result and the elapsed seconds.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// The end-to-end breakdown of one graph-processing run, matching the
/// stacked bars of the paper's figures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct TimeBreakdown {
    /// Seconds loading the edge array from storage (0 when the input is
    /// already in memory).
    pub load: f64,
    /// Seconds building the data layout (0 for edge arrays).
    pub preprocess: f64,
    /// Seconds spent in NUMA partitioning (0 when not NUMA-aware).
    pub partition: f64,
    /// Seconds executing the algorithm itself.
    pub algorithm: f64,
    /// Seconds storing the results (0 when results stay in memory).
    pub store: f64,
}

impl TimeBreakdown {
    /// The end-to-end time.
    pub fn total(&self) -> f64 {
        self.load + self.preprocess + self.partition + self.algorithm + self.store
    }

    /// A breakdown with only an algorithm component (edge-array runs on
    /// in-memory inputs).
    pub fn algorithm_only(algorithm: f64) -> Self {
        Self {
            algorithm,
            ..Self::default()
        }
    }
}

/// Timing of one iteration (computation step) of a frontier algorithm,
/// used by the per-iteration analysis of Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct IterStat {
    /// Active vertices at the start of the step.
    pub frontier_size: usize,
    /// Out-edges examined during the step (0 when not tracked).
    pub edges_scanned: usize,
    /// Wall-clock seconds of the step.
    pub seconds: f64,
    /// Whether the step pushed or pulled.
    pub mode: StepMode,
    /// Measured frontier density: the Ligra-style load estimate
    /// (frontier out-edges + frontier vertices) as a fraction of |E|.
    pub density: f64,
    /// The structured record of how `mode` was chosen.
    pub decision: DirectionDecision,
}

/// The structured direction-decision log of one step: the Ligra-style
/// threshold comparison (Beamer's heuristic as adopted by Ligra \[29\])
/// that picked push or pull, kept per iteration so traces can replay
/// *why* a kernel switched, not just *that* it did.
///
/// The comparison is `observed > cutoff` → pull. Kernels with a fixed
/// direction (pure push, pure pull, edge-centric, grid) still fill in
/// both sides but set `forced`, so an offline reader can tell "the
/// heuristic chose this" from "the variant had no choice".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct DirectionDecision {
    /// The observed load estimate: frontier out-edges + frontier
    /// vertices (Ligra's `m_f + n_f`).
    pub observed: usize,
    /// The switch cutoff the estimate was compared against
    /// (`|E| / 20`, floored at 1).
    pub cutoff: usize,
    /// `true` when the variant's direction is fixed and the comparison
    /// is informational only.
    pub forced: bool,
}

impl DirectionDecision {
    /// A decision made by the direction-optimizing heuristic.
    pub fn heuristic(observed: usize, cutoff: usize) -> Self {
        Self {
            observed,
            cutoff,
            forced: false,
        }
    }

    /// A fixed-direction step: the comparison is recorded but did not
    /// choose anything.
    pub fn forced(observed: usize, cutoff: usize) -> Self {
        Self {
            observed,
            cutoff,
            forced: true,
        }
    }

    /// What the Ligra comparison says: pull when the observed load
    /// exceeds the cutoff.
    pub fn says_pull(&self) -> bool {
        self.observed > self.cutoff
    }
}

impl Default for DirectionDecision {
    fn default() -> Self {
        Self::forced(0, 0)
    }
}

/// The Ligra-style switch cutoff for a graph with `num_edges` edges:
/// `|E| / 20`, floored at 1 (Beamer's push→pull threshold).
pub fn direction_cutoff(num_edges: usize) -> usize {
    (num_edges / 20).max(1)
}

/// The measured density backing a [`DirectionDecision`]: the observed
/// load estimate as a fraction of |E| (so the pull cutoff sits at
/// 1/20 = 0.05).
pub fn frontier_density(observed: usize, num_edges: usize) -> f64 {
    observed as f64 / num_edges.max(1) as f64
}

/// Information-flow direction of one computation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum StepMode {
    /// Active vertices wrote their out-neighbors.
    Push,
    /// Vertices read their in-neighbors.
    Pull,
}

impl StepMode {
    /// The canonical lower-case name used in traces.
    pub fn as_str(self) -> &'static str {
        match self {
            StepMode::Push => "push",
            StepMode::Pull => "pull",
        }
    }

    /// Parses the canonical name back.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "push" => Some(StepMode::Push),
            "pull" => Some(StepMode::Pull),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_components() {
        let b = TimeBreakdown {
            load: 1.0,
            preprocess: 2.0,
            partition: 0.5,
            algorithm: 3.0,
            store: 0.25,
        };
        assert!((b.total() - 6.75).abs() < 1e-12);
    }

    #[test]
    fn algorithm_only_zeroes_rest() {
        let b = TimeBreakdown::algorithm_only(2.0);
        assert_eq!(b.load, 0.0);
        assert_eq!(b.preprocess, 0.0);
        assert_eq!(b.total(), 2.0);
    }

    #[test]
    fn timed_measures_and_returns() {
        let (value, secs) = timed(|| 41 + 1);
        assert_eq!(value, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn direction_cutoff_matches_the_ligra_divisor() {
        assert_eq!(direction_cutoff(2000), 100);
        assert_eq!(direction_cutoff(19), 1, "floored at 1");
        assert_eq!(direction_cutoff(0), 1);
    }

    #[test]
    fn decision_comparison_is_strict() {
        let d = DirectionDecision::heuristic(100, 100);
        assert!(!d.says_pull(), "equal load stays push");
        assert!(DirectionDecision::heuristic(101, 100).says_pull());
        assert!(DirectionDecision::forced(101, 100).forced);
    }

    #[test]
    fn density_is_the_load_fraction() {
        assert!((frontier_density(100, 2000) - 0.05).abs() < 1e-12);
        assert_eq!(
            frontier_density(5, 0),
            5.0,
            "empty graph never divides by zero"
        );
    }
}

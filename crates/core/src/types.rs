//! The graph input model: vertices, edge records and edge lists.
//!
//! "Edge arrays are the simplest and the default way to distribute
//! graphs […] Graphs are stored as an array containing pairs of
//! integers corresponding to the source and the destination vertex of
//! each edge. In the remainder of the paper, we assume the graph input
//! takes the form of an edge array and needs to be further converted
//! into other formats." (§3.1)

use std::fmt;

/// Dense vertex identifier.
pub type VertexId = u32;

/// Marker for an unknown/absent vertex (e.g. an undiscovered BFS
/// parent).
pub const INVALID_VERTEX: VertexId = VertexId::MAX;

/// A fixed-size edge record stored in edge arrays, CSRs and grids.
///
/// Two implementations exist: [`Edge`] (8 bytes, unweighted — BFS, WCC,
/// PageRank) and [`WEdge`] (12 bytes, `f32` weight — SSSP, SpMV, ALS).
/// Keeping the weight inline preserves the memory-traffic
/// characteristics the paper measures: unweighted algorithms never
/// touch (or pay bandwidth for) weights they do not need.
pub trait EdgeRecord: Copy + Send + Sync + 'static {
    /// Whether this record carries a weight.
    const WEIGHTED: bool;

    /// Creates a record. Unweighted implementations ignore `weight`.
    fn new(src: VertexId, dst: VertexId, weight: f32) -> Self;
    /// The source vertex.
    fn src(&self) -> VertexId;
    /// The destination vertex.
    fn dst(&self) -> VertexId;
    /// The weight (1.0 for unweighted records).
    fn weight(&self) -> f32;

    /// The same edge with source and destination swapped.
    fn reversed(&self) -> Self {
        Self::new(self.dst(), self.src(), self.weight())
    }
}

/// An unweighted edge: two 32-bit vertex ids, 8 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(C)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
}

impl Edge {
    /// Creates an unweighted edge.
    #[inline]
    pub fn new(src: VertexId, dst: VertexId) -> Self {
        Self { src, dst }
    }
}

impl EdgeRecord for Edge {
    const WEIGHTED: bool = false;

    #[inline]
    fn new(src: VertexId, dst: VertexId, _weight: f32) -> Self {
        Self { src, dst }
    }

    #[inline]
    fn src(&self) -> VertexId {
        self.src
    }

    #[inline]
    fn dst(&self) -> VertexId {
        self.dst
    }

    #[inline]
    fn weight(&self) -> f32 {
        1.0
    }
}

/// A weighted edge: two vertex ids plus an `f32` weight, 12 bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C)]
pub struct WEdge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge weight (a distance for SSSP, a matrix entry for SpMV, a
    /// rating for ALS).
    pub weight: f32,
}

impl WEdge {
    /// Creates a weighted edge.
    #[inline]
    pub fn new(src: VertexId, dst: VertexId, weight: f32) -> Self {
        Self { src, dst, weight }
    }
}

impl EdgeRecord for WEdge {
    const WEIGHTED: bool = true;

    #[inline]
    fn new(src: VertexId, dst: VertexId, weight: f32) -> Self {
        Self { src, dst, weight }
    }

    #[inline]
    fn src(&self) -> VertexId {
        self.src
    }

    #[inline]
    fn dst(&self) -> VertexId {
        self.dst
    }

    #[inline]
    fn weight(&self) -> f32 {
        self.weight
    }
}

/// The canonical graph input: an edge array plus its vertex count.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeList<E: EdgeRecord = Edge> {
    num_vertices: usize,
    edges: Vec<E>,
}

/// Errors produced when validating an edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references a vertex id outside `0..num_vertices`.
    VertexOutOfRange {
        /// The offending id.
        vertex: VertexId,
        /// The declared vertex count.
        num_vertices: usize,
    },
    /// The vertex count exceeds what a `u32` id can address.
    TooManyVertices(usize),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "edge references vertex {vertex} but the graph has {num_vertices} vertices"
            ),
            GraphError::TooManyVertices(n) => {
                write!(f, "{n} vertices exceed the 32-bit id space")
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl<E: EdgeRecord> EdgeList<E> {
    /// Creates an edge list after validating every endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if any edge endpoint is
    /// `>= num_vertices`, and [`GraphError::TooManyVertices`] if
    /// `num_vertices` does not fit 32-bit ids.
    pub fn new(num_vertices: usize, edges: Vec<E>) -> Result<Self, GraphError> {
        if num_vertices > u32::MAX as usize {
            return Err(GraphError::TooManyVertices(num_vertices));
        }
        for e in &edges {
            for v in [e.src(), e.dst()] {
                if v as usize >= num_vertices {
                    return Err(GraphError::VertexOutOfRange {
                        vertex: v,
                        num_vertices,
                    });
                }
            }
        }
        Ok(Self {
            num_vertices,
            edges,
        })
    }

    /// Creates an edge list without validating endpoints.
    ///
    /// Intended for generators that construct edges in range by design;
    /// invariants are still checked in debug builds.
    pub fn from_parts_unchecked(num_vertices: usize, edges: Vec<E>) -> Self {
        debug_assert!(edges
            .iter()
            .all(|e| (e.src() as usize) < num_vertices && (e.dst() as usize) < num_vertices));
        Self {
            num_vertices,
            edges,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edges, in input order.
    #[inline]
    pub fn edges(&self) -> &[E] {
        &self.edges
    }

    /// Consumes the list, returning the raw edge vector.
    pub fn into_edges(self) -> Vec<E> {
        self.edges
    }

    /// Out-degree of every vertex, computed in parallel.
    pub fn out_degrees(&self) -> Vec<u64> {
        egraph_sort::key_histogram(&self.edges, self.num_vertices.max(1), |e| e.src() as u64)
    }

    /// In-degree of every vertex, computed in parallel.
    pub fn in_degrees(&self) -> Vec<u64> {
        egraph_sort::key_histogram(&self.edges, self.num_vertices.max(1), |e| e.dst() as u64)
    }

    /// Returns the vertex with the largest out-degree and that degree,
    /// or `None` for a graph with no vertices. Ties break toward the
    /// smaller vertex id.
    ///
    /// Useful for picking a well-connected root for traversals.
    pub fn max_degree_vertex(&self) -> Option<(VertexId, u64)> {
        if self.num_vertices == 0 {
            return None;
        }
        let degrees = self.out_degrees();
        let (v, d) = degrees
            .iter()
            .enumerate()
            .max_by(|(va, da), (vb, db)| da.cmp(db).then(vb.cmp(va)))
            .expect("at least one vertex");
        Some((v as VertexId, *d))
    }

    /// Returns an undirected version of this graph: every edge appears
    /// in both directions.
    ///
    /// WCC runs on undirected graphs; the paper notes this doubles the
    /// pre-processing cost of adjacency lists ("an edge has to be
    /// inserted in both the outgoing edge array of its source and its
    /// destination", §8) while edge arrays and grids need nothing —
    /// their kernels can simply process each edge in both directions.
    pub fn to_undirected(&self) -> Self {
        let mut edges = Vec::with_capacity(self.edges.len() * 2);
        edges.extend_from_slice(&self.edges);
        edges.extend(self.edges.iter().map(|e| e.reversed()));
        Self {
            num_vertices: self.num_vertices,
            edges,
        }
    }

    /// Maps the records into a different edge type (e.g. attach unit
    /// weights to an unweighted graph).
    pub fn map_records<F: EdgeRecord>(&self, f: impl Fn(&E) -> F + Sync) -> EdgeList<F> {
        let edges = egraph_parallel::ops::parallel_init(
            self.edges.len(),
            egraph_parallel::DEFAULT_GRAIN,
            |i| f(&self.edges[i]),
        );
        EdgeList {
            num_vertices: self.num_vertices,
            edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_sizes_are_packed() {
        assert_eq!(std::mem::size_of::<Edge>(), 8);
        assert_eq!(std::mem::size_of::<WEdge>(), 12);
    }

    #[test]
    fn max_degree_vertex_picks_hub() {
        let graph = EdgeList::new(
            4,
            vec![
                Edge::new(2, 0),
                Edge::new(2, 1),
                Edge::new(2, 3),
                Edge::new(0, 1),
            ],
        )
        .unwrap();
        assert_eq!(graph.max_degree_vertex(), Some((2, 3)));
        // Empty vertex set has no hub; ties break to the smaller id.
        assert_eq!(
            EdgeList::<Edge>::new(0, vec![])
                .unwrap()
                .max_degree_vertex(),
            None
        );
        let tied = EdgeList::new(3, vec![Edge::new(1, 0), Edge::new(2, 0)]).unwrap();
        assert_eq!(tied.max_degree_vertex(), Some((1, 1)));
    }

    #[test]
    fn validation_rejects_out_of_range() {
        let err = EdgeList::new(2, vec![Edge::new(0, 2)]).unwrap_err();
        assert_eq!(
            err,
            GraphError::VertexOutOfRange {
                vertex: 2,
                num_vertices: 2
            }
        );
    }

    #[test]
    fn validation_accepts_valid() {
        let list = EdgeList::new(3, vec![Edge::new(0, 1), Edge::new(2, 0)]).unwrap();
        assert_eq!(list.num_vertices(), 3);
        assert_eq!(list.num_edges(), 2);
    }

    #[test]
    fn degrees_count_correctly() {
        let list = EdgeList::new(
            4,
            vec![
                Edge::new(0, 1),
                Edge::new(0, 2),
                Edge::new(1, 2),
                Edge::new(3, 0),
            ],
        )
        .unwrap();
        assert_eq!(list.out_degrees(), vec![2, 1, 0, 1]);
        assert_eq!(list.in_degrees(), vec![1, 1, 2, 0]);
    }

    #[test]
    fn undirected_doubles_edges() {
        let list = EdgeList::new(3, vec![Edge::new(0, 1)]).unwrap();
        let undirected = list.to_undirected();
        assert_eq!(undirected.num_edges(), 2);
        assert!(undirected.edges().contains(&Edge::new(1, 0)));
    }

    #[test]
    fn reversed_swaps_endpoints_and_keeps_weight() {
        let e = WEdge::new(1, 2, 3.5);
        let r = e.reversed();
        assert_eq!((r.src, r.dst, r.weight), (2, 1, 3.5));
    }

    #[test]
    fn map_records_attaches_weights() {
        let list = EdgeList::new(3, vec![Edge::new(0, 1), Edge::new(1, 2)]).unwrap();
        let weighted: EdgeList<WEdge> =
            list.map_records(|e| WEdge::new(e.src, e.dst, (e.src + e.dst) as f32));
        assert_eq!(weighted.edges()[1].weight, 3.0);
    }

    #[test]
    fn unweighted_weight_is_one() {
        assert_eq!(Edge::new(0, 1).weight(), 1.0);
    }
}

//! Run-wide telemetry: counters, per-iteration records and phase spans
//! behind a zero-cost recording interface.
//!
//! The paper's central methodological claim is that graph systems must
//! be measured *end-to-end* (§1): load + pre-process + partition +
//! algorithm, not just the kernel. This module is the machinery that
//! makes those measurements first-class: every engine driver and
//! algorithm entry point threads an [`ExecContext`] carrying a memory
//! [`MemProbe`] and a [`Recorder`], and a run can be serialized as one
//! machine-readable [`RunTrace`] document (JSON or CSV).
//!
//! Three recorder implementations matter:
//!
//! * [`NullRecorder`] — the default; compiles away (see the trait docs),
//! * [`TraceRecorder`] — collects everything for `--trace-out`,
//! * anything user-provided — the trait is public and object-safe-free
//!   by design (generics, so the optimizer can specialize).

use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

use parking_lot::Mutex;

pub use egraph_cachesim::{CacheStats, MemProbe, NullProbe};
pub use egraph_perf::{CounterKind, CounterReading, PerfCounters};

use crate::metrics::{DirectionDecision, IterStat, StepMode, TimeBreakdown};

/// One record per computation step of a frontier algorithm, as captured
/// by a [`Recorder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterRecord {
    /// Zero-based step index.
    pub step: usize,
    /// Active vertices at the start of the step.
    pub frontier_size: usize,
    /// Edges examined during the step.
    pub edges_scanned: usize,
    /// Wall-clock seconds of the step.
    pub seconds: f64,
    /// Direction the step ran in.
    pub mode: StepMode,
    /// Measured frontier density at the start of the step (schema v4;
    /// 0 for records parsed from older documents).
    pub density: f64,
    /// The threshold comparison that chose `mode` (schema v4; the
    /// default forced decision for records parsed from older
    /// documents).
    pub decision: DirectionDecision,
}

impl IterRecord {
    /// Builds a record from a step index and an [`IterStat`].
    pub fn from_stat(step: usize, stat: &IterStat) -> Self {
        Self {
            step,
            frontier_size: stat.frontier_size,
            edges_scanned: stat.edges_scanned,
            seconds: stat.seconds,
            mode: stat.mode,
            density: stat.density,
            decision: stat.decision,
        }
    }
}

/// One entry of [`RunTrace::iterations`]: the per-step record plus the
/// hardware-counter deltas sampled over that step's window (schema v4;
/// empty for older documents, hosts without counters, or recorders
/// built without [`TraceRecorder::with_iteration_perf`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceIteration {
    /// The per-step record.
    pub record: IterRecord,
    /// Hardware counter deltas over the step window, by canonical
    /// counter name.
    pub hardware: BTreeMap<String, f64>,
}

impl From<IterRecord> for TraceIteration {
    fn from(record: IterRecord) -> Self {
        Self {
            record,
            hardware: BTreeMap::new(),
        }
    }
}

impl std::ops::Deref for TraceIteration {
    type Target = IterRecord;

    fn deref(&self) -> &IterRecord {
        &self.record
    }
}

/// A named phase duration (e.g. `"load"`, `"factor_users"`).
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Phase name.
    pub name: String,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Sink for run-wide telemetry: named counters, per-iteration records
/// and phase spans.
///
/// # The zero-cost `NullRecorder` contract
///
/// All engine drivers and algorithm entry points are *generic* over
/// `R: Recorder` rather than taking a trait object. For
/// [`NullRecorder`], `enabled()` is a constant `false` and every sink
/// method is an inlinable no-op, so after monomorphization the
/// instrumentation branches fold away and the hot path is *identical*
/// to an uninstrumented build — the same technique [`MemProbe`] /
/// [`NullProbe`] use for cache simulation. Instrumentation sites must
/// uphold the contract from their side: any work beyond calling the
/// sink methods (counter arithmetic, address math, allocation) must be
/// guarded by `if recorder.enabled()`.
pub trait Recorder: Sync {
    /// Whether this recorder stores anything. Instrumentation sites
    /// skip counter bookkeeping when `false`.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// Adds `delta` to the named counter.
    fn record_counter(&self, name: &'static str, delta: u64);

    /// Appends one per-iteration record.
    fn record_iteration(&self, record: IterRecord);

    /// Appends one phase span.
    fn record_span(&self, name: &'static str, seconds: f64);
}

/// The zero-cost recorder used when telemetry is off; see the
/// [`Recorder`] docs for the contract that makes it free.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record_counter(&self, _name: &'static str, _delta: u64) {}

    #[inline]
    fn record_iteration(&self, _record: IterRecord) {}

    #[inline]
    fn record_span(&self, _name: &'static str, _seconds: f64) {}
}

/// A recorder that collects everything into memory, for `--trace-out`
/// and the bench reporter.
///
/// Built with [`with_iteration_perf`](Self::with_iteration_perf) it
/// also attributes hardware-counter deltas to each iteration window:
/// the window for step *n* runs from the previous `record_iteration`
/// call (or recorder construction) to step *n*'s own call, which
/// matches how the kernels time their steps.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    inner: Mutex<TraceInner>,
    perf: Option<PerfCounters>,
}

#[derive(Debug, Default)]
struct TraceInner {
    iterations: Vec<IterRecord>,
    iteration_hardware: Vec<BTreeMap<String, f64>>,
    counters: BTreeMap<&'static str, u64>,
    spans: Vec<Span>,
    last_reading: Option<CounterReading>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A recorder that additionally samples `counters` at every
    /// `record_iteration` call, attributing the deltas to the iteration
    /// window that just ended. Open the counters *before* the first
    /// parallel operation so worker threads are covered (see the
    /// `egraph-perf` crate docs).
    pub fn with_iteration_perf(counters: PerfCounters) -> Self {
        let first = counters.reading();
        Self {
            inner: Mutex::new(TraceInner {
                last_reading: Some(first),
                ..TraceInner::default()
            }),
            perf: Some(counters),
        }
    }

    /// The per-iteration records collected so far.
    pub fn iterations(&self) -> Vec<IterRecord> {
        self.inner.lock().iterations.clone()
    }

    /// Per-iteration hardware counter deltas, parallel to
    /// [`iterations`](Self::iterations); maps are empty without
    /// [`with_iteration_perf`](Self::with_iteration_perf) or on
    /// restricted hosts.
    pub fn iteration_hardware(&self) -> Vec<BTreeMap<String, f64>> {
        self.inner.lock().iteration_hardware.clone()
    }

    /// The counters collected so far.
    pub fn counters(&self) -> BTreeMap<String, f64> {
        self.inner
            .lock()
            .counters
            .iter()
            .map(|(k, v)| (k.to_string(), *v as f64))
            .collect()
    }

    /// The phase spans collected so far.
    pub fn spans(&self) -> Vec<Span> {
        self.inner.lock().spans.clone()
    }
}

impl Recorder for TraceRecorder {
    fn record_counter(&self, name: &'static str, delta: u64) {
        *self.inner.lock().counters.entry(name).or_insert(0) += delta;
    }

    fn record_iteration(&self, record: IterRecord) {
        let mut inner = self.inner.lock();
        let mut hardware = BTreeMap::new();
        if let Some(perf) = &self.perf {
            if let Some(prev) = &inner.last_reading {
                for (kind, value) in perf.delta_since(prev).iter() {
                    hardware.insert(kind.name().to_string(), value as f64);
                }
            }
            inner.last_reading = Some(perf.reading());
        }
        inner.iterations.push(record);
        inner.iteration_hardware.push(hardware);
    }

    fn record_span(&self, name: &'static str, seconds: f64) {
        self.inner.lock().spans.push(Span {
            name: name.to_string(),
            seconds,
        });
    }
}

/// The execution context threaded through every engine driver and
/// algorithm entry point: a cache [`MemProbe`] plus a telemetry
/// [`Recorder`]. Both default to their null implementations, which
/// compile the instrumentation away.
///
/// Callers build an [`ExecCtx`](crate::exec::ExecCtx) and go through
/// [`run_variant`](crate::variant::run_variant); the kernels receive
/// the erased context this type carries.
///
/// # Examples
///
/// ```
/// use egraph_core::prelude::*;
///
/// let input = EdgeList::new(3, vec![Edge::new(0, 1), Edge::new(1, 2)]).unwrap();
/// let prepared = PreparedGraph::new(&input).strategy(Strategy::RadixSort);
/// let id: VariantId = "bfs/adj/push".parse().unwrap();
///
/// // Uninstrumented run (NullProbe + NullRecorder):
/// let plain = run_variant(&id, &ExecCtx::new(None), &prepared, &RunParams::default()).unwrap();
///
/// // Traced run:
/// let recorder = TraceRecorder::new();
/// let ctx = ExecCtx::new(None).recorder(&recorder);
/// let traced = run_variant(&id, &ctx, &prepared, &RunParams::default()).unwrap();
/// let (plain, traced) = (plain.output.as_bfs().unwrap(), traced.output.as_bfs().unwrap());
/// assert_eq!(plain.level, traced.level);
/// assert_eq!(recorder.iterations().len(), traced.iterations.len());
/// ```
#[derive(Debug)]
pub struct ExecContext<'a, P: MemProbe = NullProbe, R: Recorder = NullRecorder> {
    /// Memory-access instrumentation hook.
    pub probe: &'a P,
    /// Telemetry sink.
    pub recorder: &'a R,
}

impl<'a, P: MemProbe, R: Recorder> Clone for ExecContext<'a, P, R> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'a, P: MemProbe, R: Recorder> Copy for ExecContext<'a, P, R> {}

impl ExecContext<'static> {
    /// The uninstrumented context: [`NullProbe`] + [`NullRecorder`].
    pub fn new() -> Self {
        Self {
            probe: &NullProbe,
            recorder: &NullRecorder,
        }
    }
}

impl Default for ExecContext<'static> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a, P: MemProbe, R: Recorder> ExecContext<'a, P, R> {
    /// This context with a different probe.
    pub fn with_probe<P2: MemProbe>(self, probe: &'a P2) -> ExecContext<'a, P2, R> {
        ExecContext {
            probe,
            recorder: self.recorder,
        }
    }

    /// This context with a different recorder.
    pub fn with_recorder<R2: Recorder>(self, recorder: &'a R2) -> ExecContext<'a, P, R2> {
        ExecContext {
            probe: self.probe,
            recorder,
        }
    }
}

/// Per-phase profile: wall time plus the hardware counters and/or
/// simulated cache statistics measured over that phase's window.
///
/// This is the schema-v2 record that puts the paper's two measurement
/// modes side by side — real PMU counts (when the host allows
/// `perf_event_open`) and the LLC simulator's numbers — attributed to
/// the same named phase of the same run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseProfile {
    /// Phase name (`"load"`, `"preprocess"`, `"algorithm"`, ...).
    pub name: String,
    /// Wall-clock seconds of the phase window.
    pub seconds: f64,
    /// Hardware counter deltas by canonical counter name (`"cycles"`,
    /// `"llc_load_misses"`, ...). Empty when the host exposes no usable
    /// counters — the graceful-degradation marker, not an error.
    pub hardware: BTreeMap<String, f64>,
    /// Simulated cache statistics for the phase, when the run also went
    /// through the LLC simulator.
    pub simulated: Option<CacheStats>,
    /// Memory accounting for the phase (schema v3; `None` for traces
    /// parsed from v1/v2 documents).
    pub memory: Option<PhaseMemory>,
}

/// Per-phase memory accounting (schema v3): what the tracking allocator
/// attributed to the phase window plus an end-of-phase RSS sample.
///
/// When the binary does not install
/// `egraph_metrics::alloc::TrackingAlloc`, the three allocator fields
/// are zero while `end_rss_bytes` still carries the `/proc/self/statm`
/// fallback (itself zero where procfs is unavailable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseMemory {
    /// Heap bytes allocated during the phase window.
    pub allocated_bytes: u64,
    /// Heap bytes freed during the phase window.
    pub freed_bytes: u64,
    /// Peak total live heap bytes observed during the phase window.
    pub peak_bytes: u64,
    /// Resident set size sampled when the phase ended.
    pub end_rss_bytes: u64,
}

impl PhaseProfile {
    /// The measured LLC miss ratio `llc_load_misses / llc_loads`, when
    /// both hardware counters were recorded and any loads happened.
    pub fn hardware_llc_miss_ratio(&self) -> Option<f64> {
        let loads = *self.hardware.get(CounterKind::LlcLoads.name())?;
        let misses = *self.hardware.get(CounterKind::LlcLoadMisses.name())?;
        // Zero or non-finite counters (a host that exposed the event
        // name but delivered nothing, or a corrupt trace) would make
        // the division meaningless — report "no ratio" instead of NaN.
        if loads > 0.0 && loads.is_finite() && misses.is_finite() {
            Some(misses / loads)
        } else {
            None
        }
    }
}

/// The machine-readable document describing one end-to-end run:
/// the [`TimeBreakdown`], per-iteration records, per-phase profiles,
/// and whatever counters the engine, pool and storage layers reported.
///
/// Serializes to JSON ([`RunTrace::to_json`], schema
/// `egraph-trace/4`) and CSV ([`RunTrace::to_csv`]); parses back from
/// its own JSON ([`RunTrace::from_json`]) and CSV
/// ([`RunTrace::from_csv`]). Schema-v1 documents (which predate
/// [`PhaseProfile`]), v2 documents (which predate [`PhaseMemory`]) and
/// v3 documents (which predate per-iteration density/decision/hardware)
/// still parse, with the missing sections empty/defaulted.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTrace {
    /// The schema tag the document declared when parsed (one of
    /// [`ACCEPTED_SCHEMAS`]); [`TRACE_SCHEMA`] for freshly built
    /// traces. Serialization always writes the current schema.
    pub schema: String,
    /// Algorithm name (e.g. `"bfs"`).
    pub algorithm: String,
    /// Free-form run configuration (layout, flow, sync, threads, …).
    pub config: BTreeMap<String, String>,
    /// End-to-end phase timings.
    pub breakdown: TimeBreakdown,
    /// One record per computation step, with its per-step hardware
    /// counter deltas (schema v4).
    pub iterations: Vec<TraceIteration>,
    /// Named counters from all layers (engine, pool, storage).
    pub counters: BTreeMap<String, f64>,
    /// Named phase spans beyond the fixed breakdown phases.
    pub spans: Vec<Span>,
    /// Per-phase hardware/simulated profiles (schema v2; empty for
    /// traces parsed from v1 documents).
    pub phases: Vec<PhaseProfile>,
}

impl Default for RunTrace {
    fn default() -> Self {
        Self {
            schema: TRACE_SCHEMA.to_string(),
            algorithm: String::new(),
            config: BTreeMap::new(),
            breakdown: TimeBreakdown::default(),
            iterations: Vec::new(),
            counters: BTreeMap::new(),
            spans: Vec::new(),
            phases: Vec::new(),
        }
    }
}

/// Schema tag embedded in every JSON trace this version writes.
pub const TRACE_SCHEMA: &str = "egraph-trace/4";

/// The v3 schema tag (iterations without density, decision log, or
/// per-iteration hardware); still accepted by the parsers.
pub const TRACE_SCHEMA_V3: &str = "egraph-trace/3";

/// The v2 schema tag (phases without memory); still accepted by the
/// parsers.
pub const TRACE_SCHEMA_V2: &str = "egraph-trace/2";

/// The original schema tag (no phases); still accepted by the parsers.
pub const TRACE_SCHEMA_V1: &str = "egraph-trace/1";

/// The schema tags this build reads, newest first.
pub const ACCEPTED_SCHEMAS: [&str; 4] = [
    TRACE_SCHEMA,
    TRACE_SCHEMA_V3,
    TRACE_SCHEMA_V2,
    TRACE_SCHEMA_V1,
];

/// Output format for a [`RunTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object (schema [`TRACE_SCHEMA`]).
    Json,
    /// Flat CSV with a `record` discriminator column.
    Csv,
}

impl TraceFormat {
    /// Parses a format name (`"json"` / `"csv"`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "json" => Ok(TraceFormat::Json),
            "csv" => Ok(TraceFormat::Csv),
            other => Err(format!("unknown trace format '{other}' (json|csv)")),
        }
    }
}

/// Error produced when parsing a trace back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The document is not a structurally valid trace.
    Malformed(String),
    /// The document declared a schema tag this build does not read
    /// (e.g. a future `egraph-trace/4`); carries the offending tag.
    UnsupportedSchema(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Malformed(msg) => write!(f, "invalid trace: {msg}"),
            TraceError::UnsupportedSchema(tag) => write!(
                f,
                "unsupported trace schema '{tag}' (this build reads {})",
                ACCEPTED_SCHEMAS.join(", ")
            ),
        }
    }
}

impl std::error::Error for TraceError {}

impl RunTrace {
    /// Creates an empty trace for `algorithm`.
    pub fn new(algorithm: impl Into<String>) -> Self {
        Self {
            algorithm: algorithm.into(),
            ..Self::default()
        }
    }

    /// Merges everything a [`TraceRecorder`] collected into this trace.
    pub fn absorb(&mut self, recorder: &TraceRecorder) {
        self.iterations.extend(
            recorder
                .iterations()
                .into_iter()
                .zip(recorder.iteration_hardware())
                .map(|(record, hardware)| TraceIteration { record, hardware }),
        );
        self.counters.extend(recorder.counters());
        self.spans.extend(recorder.spans());
    }

    /// Counts the direction flips in the iteration sequence: steps
    /// whose mode differs from the previous step's.
    pub fn direction_flips(&self) -> usize {
        self.iterations
            .windows(2)
            .filter(|w| w[0].record.mode != w[1].record.mode)
            .count()
    }

    /// Renders the trace in `format`.
    pub fn render(&self, format: TraceFormat) -> String {
        match format {
            TraceFormat::Json => self.to_json(),
            TraceFormat::Csv => self.to_csv(),
        }
    }

    /// Serializes to a JSON object (schema [`TRACE_SCHEMA`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512 + self.iterations.len() * 96);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", json::string(TRACE_SCHEMA)));
        out.push_str(&format!(
            "  \"algorithm\": {},\n",
            json::string(&self.algorithm)
        ));
        out.push_str("  \"config\": {");
        for (i, (k, v)) in self.config.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", json::string(k), json::string(v)));
        }
        out.push_str("},\n");
        let b = &self.breakdown;
        out.push_str(&format!(
            "  \"breakdown\": {{\"load\": {}, \"preprocess\": {}, \"partition\": {}, \
             \"algorithm\": {}, \"store\": {}, \"total\": {}}},\n",
            json::number(b.load),
            json::number(b.preprocess),
            json::number(b.partition),
            json::number(b.algorithm),
            json::number(b.store),
            json::number(b.total()),
        ));
        out.push_str("  \"iterations\": [");
        for (i, it) in self.iterations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let r = &it.record;
            out.push_str(&format!(
                "\n    {{\"step\": {}, \"frontier_size\": {}, \"edges_scanned\": {}, \
                 \"seconds\": {}, \"mode\": {}, \"density\": {}, \
                 \"decision\": {{\"observed\": {}, \"cutoff\": {}, \"forced\": {}}}, \
                 \"hardware\": {{",
                r.step,
                r.frontier_size,
                r.edges_scanned,
                json::number(r.seconds),
                json::string(r.mode.as_str()),
                json::number(r.density),
                r.decision.observed,
                r.decision.cutoff,
                r.decision.forced,
            ));
            for (j, (k, v)) in it.hardware.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", json::string(k), json::number(*v)));
            }
            out.push_str("}}");
        }
        if !self.iterations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json::string(k), json::number(*v)));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
        out.push_str("  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": {}, \"seconds\": {}}}",
                json::string(&s.name),
                json::number(s.seconds)
            ));
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"phases\": [");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": {}, \"seconds\": {}, \"hardware\": {{",
                json::string(&p.name),
                json::number(p.seconds)
            ));
            for (j, (k, v)) in p.hardware.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", json::string(k), json::number(*v)));
            }
            out.push_str("}, \"simulated\": ");
            match &p.simulated {
                None => out.push_str("null"),
                Some(sim) => out.push_str(&format!(
                    "{{\"accesses\": {}, \"misses\": {}}}",
                    sim.accesses, sim.misses
                )),
            }
            out.push_str(", \"memory\": ");
            match &p.memory {
                None => out.push_str("null"),
                Some(m) => out.push_str(&format!(
                    "{{\"allocated_bytes\": {}, \"freed_bytes\": {}, \
                     \"peak_bytes\": {}, \"end_rss_bytes\": {}}}",
                    m.allocated_bytes, m.freed_bytes, m.peak_bytes, m.end_rss_bytes
                )),
            }
            out.push('}');
        }
        if !self.phases.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a trace previously produced by [`RunTrace::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] on malformed JSON, a missing/foreign
    /// schema tag, or fields of unexpected shape.
    pub fn from_json(text: &str) -> Result<Self, TraceError> {
        let value = json::parse(text).map_err(TraceError::Malformed)?;
        let obj = value
            .as_object()
            .ok_or_else(|| err("root is not an object"))?;
        let schema = get(obj, "schema")?
            .as_str()
            .ok_or_else(|| err("schema is not a string"))?;
        if !ACCEPTED_SCHEMAS.contains(&schema) {
            return Err(TraceError::UnsupportedSchema(schema.to_string()));
        }
        let mut trace = RunTrace::new(
            get(obj, "algorithm")?
                .as_str()
                .ok_or_else(|| err("algorithm is not a string"))?,
        );
        trace.schema = schema.to_string();
        for (k, v) in get(obj, "config")?
            .as_object()
            .ok_or_else(|| err("config is not an object"))?
        {
            trace.config.insert(
                k.clone(),
                v.as_str()
                    .ok_or_else(|| err("config value is not a string"))?
                    .to_string(),
            );
        }
        let b = get(obj, "breakdown")?
            .as_object()
            .ok_or_else(|| err("breakdown is not an object"))?;
        trace.breakdown = TimeBreakdown {
            load: num_field(b, "load")?,
            preprocess: num_field(b, "preprocess")?,
            partition: num_field(b, "partition")?,
            algorithm: num_field(b, "algorithm")?,
            store: num_field(b, "store")?,
        };
        for it in get(obj, "iterations")?
            .as_array()
            .ok_or_else(|| err("iterations is not an array"))?
        {
            let o = it
                .as_object()
                .ok_or_else(|| err("iteration is not an object"))?;
            let record = IterRecord {
                step: num_field(o, "step")? as usize,
                frontier_size: num_field(o, "frontier_size")? as usize,
                edges_scanned: num_field(o, "edges_scanned")? as usize,
                seconds: num_field(o, "seconds")?,
                mode: StepMode::parse(
                    get(o, "mode")?
                        .as_str()
                        .ok_or_else(|| err("mode is not a string"))?,
                )
                .ok_or_else(|| err("unknown step mode"))?,
                // `density` and `decision` arrived with schema v4;
                // tolerate their absence in older documents.
                density: match get(o, "density") {
                    Err(_) => 0.0,
                    Ok(v) => v
                        .as_number()
                        .ok_or_else(|| err("density is not a number"))?,
                },
                decision: match get(o, "decision") {
                    Err(_) => DirectionDecision::default(),
                    Ok(d) => {
                        let d = d
                            .as_object()
                            .ok_or_else(|| err("decision is not an object"))?;
                        DirectionDecision {
                            observed: num_field(d, "observed")? as usize,
                            cutoff: num_field(d, "cutoff")? as usize,
                            forced: match get(d, "forced")? {
                                json::Value::Bool(b) => *b,
                                _ => return Err(err("decision forced is not a bool")),
                            },
                        }
                    }
                },
            };
            let mut iteration = TraceIteration::from(record);
            // `hardware` is also v4-only; missing means empty.
            if let Ok(hw) = get(o, "hardware") {
                for (k, v) in hw
                    .as_object()
                    .ok_or_else(|| err("iteration hardware is not an object"))?
                {
                    iteration.hardware.insert(
                        k.clone(),
                        v.as_number()
                            .ok_or_else(|| err("hardware counter is not a number"))?,
                    );
                }
            }
            trace.iterations.push(iteration);
        }
        for (k, v) in get(obj, "counters")?
            .as_object()
            .ok_or_else(|| err("counters is not an object"))?
        {
            trace.counters.insert(
                k.clone(),
                v.as_number()
                    .ok_or_else(|| err("counter is not a number"))?,
            );
        }
        for s in get(obj, "spans")?
            .as_array()
            .ok_or_else(|| err("spans is not an array"))?
        {
            let o = s.as_object().ok_or_else(|| err("span is not an object"))?;
            trace.spans.push(Span {
                name: get(o, "name")?
                    .as_str()
                    .ok_or_else(|| err("span name is not a string"))?
                    .to_string(),
                seconds: num_field(o, "seconds")?,
            });
        }
        // `phases` arrived with schema v2; a v1 document simply has none.
        if let Ok(phases) = get(obj, "phases") {
            for p in phases
                .as_array()
                .ok_or_else(|| err("phases is not an array"))?
            {
                let o = p.as_object().ok_or_else(|| err("phase is not an object"))?;
                let mut profile = PhaseProfile {
                    name: get(o, "name")?
                        .as_str()
                        .ok_or_else(|| err("phase name is not a string"))?
                        .to_string(),
                    seconds: num_field(o, "seconds")?,
                    ..PhaseProfile::default()
                };
                for (k, v) in get(o, "hardware")?
                    .as_object()
                    .ok_or_else(|| err("phase hardware is not an object"))?
                {
                    profile.hardware.insert(
                        k.clone(),
                        v.as_number()
                            .ok_or_else(|| err("hardware counter is not a number"))?,
                    );
                }
                match get(o, "simulated")? {
                    json::Value::Null => {}
                    sim => {
                        let so = sim
                            .as_object()
                            .ok_or_else(|| err("phase simulated is not an object"))?;
                        profile.simulated = Some(CacheStats {
                            accesses: num_field(so, "accesses")? as u64,
                            misses: num_field(so, "misses")? as u64,
                        });
                    }
                }
                // `memory` arrived with schema v3; tolerate both a
                // missing key (v2 document) and an explicit null.
                match get(o, "memory") {
                    Err(_) | Ok(json::Value::Null) => {}
                    Ok(mem) => {
                        let mo = mem
                            .as_object()
                            .ok_or_else(|| err("phase memory is not an object"))?;
                        profile.memory = Some(PhaseMemory {
                            allocated_bytes: num_field(mo, "allocated_bytes")? as u64,
                            freed_bytes: num_field(mo, "freed_bytes")? as u64,
                            peak_bytes: num_field(mo, "peak_bytes")? as u64,
                            end_rss_bytes: num_field(mo, "end_rss_bytes")? as u64,
                        });
                    }
                }
                trace.phases.push(profile);
            }
        }
        Ok(trace)
    }

    /// Serializes to flat CSV. The first column discriminates the
    /// record type (`meta`, `breakdown`, `iteration`, `iter_decision`,
    /// `iter_hw`, `counter`, `span`, `phase`, `phase_hw`, `phase_sim`,
    /// `phase_mem`); unused columns are left empty. An `iteration` row
    /// carries its density in the `value` column (schema v4; empty in
    /// older documents); `iter_decision`/`iter_hw` rows attach to the
    /// preceding `iteration` row via the `step` column. Fields
    /// containing separators are quoted per RFC 4180, and
    /// [`RunTrace::from_csv`] parses the result back.
    pub fn to_csv(&self) -> String {
        let q = csv::field;
        let mut out = String::new();
        out.push_str("record,key,step,frontier_size,edges_scanned,seconds,mode,value\n");
        out.push_str(&format!(
            "meta,schema,,,,,,{}\nmeta,algorithm,,,,,,{}\n",
            TRACE_SCHEMA,
            q(&self.algorithm)
        ));
        for (k, v) in &self.config {
            out.push_str(&format!("meta,{},,,,,,{}\n", q(k), q(v)));
        }
        let b = &self.breakdown;
        for (name, secs) in [
            ("load", b.load),
            ("preprocess", b.preprocess),
            ("partition", b.partition),
            ("algorithm", b.algorithm),
            ("store", b.store),
            ("total", b.total()),
        ] {
            out.push_str(&format!("breakdown,{name},,,,{secs},,\n"));
        }
        for it in &self.iterations {
            let r = &it.record;
            out.push_str(&format!(
                "iteration,,{},{},{},{},{},{}\n",
                r.step,
                r.frontier_size,
                r.edges_scanned,
                r.seconds,
                r.mode.as_str(),
                r.density
            ));
            for (field, value) in [
                ("observed", r.decision.observed as u64),
                ("cutoff", r.decision.cutoff as u64),
                ("forced", r.decision.forced as u64),
            ] {
                out.push_str(&format!("iter_decision,,{},,,,{field},{value}\n", r.step));
            }
            for (k, v) in &it.hardware {
                out.push_str(&format!("iter_hw,,{},,,,{},{v}\n", r.step, q(k)));
            }
        }
        for (k, v) in &self.counters {
            out.push_str(&format!("counter,{},,,,,,{v}\n", q(k)));
        }
        for s in &self.spans {
            out.push_str(&format!("span,{},,,,{},,\n", q(&s.name), s.seconds));
        }
        for p in &self.phases {
            out.push_str(&format!("phase,{},,,,{},,\n", q(&p.name), p.seconds));
            for (k, v) in &p.hardware {
                out.push_str(&format!("phase_hw,{},,,,,{},{v}\n", q(&p.name), q(k)));
            }
            if let Some(sim) = &p.simulated {
                out.push_str(&format!(
                    "phase_sim,{},,,,,accesses,{}\n",
                    q(&p.name),
                    sim.accesses
                ));
                out.push_str(&format!(
                    "phase_sim,{},,,,,misses,{}\n",
                    q(&p.name),
                    sim.misses
                ));
            }
            if let Some(mem) = &p.memory {
                for (field, value) in [
                    ("allocated_bytes", mem.allocated_bytes),
                    ("freed_bytes", mem.freed_bytes),
                    ("peak_bytes", mem.peak_bytes),
                    ("end_rss_bytes", mem.end_rss_bytes),
                ] {
                    out.push_str(&format!("phase_mem,{},,,,,{field},{value}\n", q(&p.name)));
                }
            }
        }
        out
    }

    /// Parses a trace previously produced by [`RunTrace::to_csv`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] on a malformed document, an unknown
    /// record discriminator, or a missing/foreign schema row.
    pub fn from_csv(text: &str) -> Result<Self, TraceError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| err("empty document"))?;
        if csv::split(header)
            .map_err(TraceError::Malformed)?
            .first()
            .map(String::as_str)
            != Some("record")
        {
            return Err(err("missing CSV header"));
        }
        let mut trace = RunTrace::default();
        let mut saw_schema = false;
        for (lineno, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let f = csv::split(line).map_err(TraceError::Malformed)?;
            let col = |i: usize| f.get(i).map(String::as_str).unwrap_or("");
            let numcol = |i: usize| -> Result<f64, TraceError> {
                col(i)
                    .parse::<f64>()
                    .map_err(|_| err(&format!("bad number '{}' on line {}", col(i), lineno + 2)))
            };
            match col(0) {
                "meta" => match col(1) {
                    "schema" => {
                        let schema = col(7);
                        if !ACCEPTED_SCHEMAS.contains(&schema) {
                            return Err(TraceError::UnsupportedSchema(schema.to_string()));
                        }
                        trace.schema = schema.to_string();
                        saw_schema = true;
                    }
                    "algorithm" => trace.algorithm = col(7).to_string(),
                    key => {
                        trace.config.insert(key.to_string(), col(7).to_string());
                    }
                },
                "breakdown" => {
                    let secs = numcol(5)?;
                    match col(1) {
                        "load" => trace.breakdown.load = secs,
                        "preprocess" => trace.breakdown.preprocess = secs,
                        "partition" => trace.breakdown.partition = secs,
                        "algorithm" => trace.breakdown.algorithm = secs,
                        "store" => trace.breakdown.store = secs,
                        "total" => {} // derived, not stored
                        other => {
                            return Err(err(&format!("unknown breakdown phase '{other}'")));
                        }
                    }
                }
                "iteration" => trace.iterations.push(TraceIteration::from(IterRecord {
                    step: numcol(2)? as usize,
                    frontier_size: numcol(3)? as usize,
                    edges_scanned: numcol(4)? as usize,
                    seconds: numcol(5)?,
                    mode: StepMode::parse(col(6)).ok_or_else(|| err("unknown step mode"))?,
                    // The `value` column is empty in pre-v4 documents.
                    density: if col(7).is_empty() { 0.0 } else { numcol(7)? },
                    decision: DirectionDecision::default(),
                })),
                "iter_decision" => {
                    let value = numcol(7)?;
                    let it = iteration_mut(&mut trace, numcol(2)? as usize)?;
                    match col(6) {
                        "observed" => it.record.decision.observed = value as usize,
                        "cutoff" => it.record.decision.cutoff = value as usize,
                        "forced" => it.record.decision.forced = value != 0.0,
                        other => {
                            return Err(err(&format!("unknown iter_decision field '{other}'")));
                        }
                    }
                }
                "iter_hw" => {
                    let value = numcol(7)?;
                    let it = iteration_mut(&mut trace, numcol(2)? as usize)?;
                    it.hardware.insert(col(6).to_string(), value);
                }
                "counter" => {
                    trace.counters.insert(col(1).to_string(), numcol(7)?);
                }
                "span" => trace.spans.push(Span {
                    name: col(1).to_string(),
                    seconds: numcol(5)?,
                }),
                "phase" => trace.phases.push(PhaseProfile {
                    name: col(1).to_string(),
                    seconds: numcol(5)?,
                    ..PhaseProfile::default()
                }),
                "phase_hw" => {
                    let value = numcol(7)?;
                    let phase = phase_mut(&mut trace, col(1))?;
                    phase.hardware.insert(col(6).to_string(), value);
                }
                "phase_sim" => {
                    let value = numcol(7)? as u64;
                    let phase = phase_mut(&mut trace, col(1))?;
                    let sim = phase.simulated.get_or_insert_with(CacheStats::default);
                    match col(6) {
                        "accesses" => sim.accesses = value,
                        "misses" => sim.misses = value,
                        other => {
                            return Err(err(&format!("unknown phase_sim field '{other}'")));
                        }
                    }
                }
                "phase_mem" => {
                    let value = numcol(7)? as u64;
                    let phase = phase_mut(&mut trace, col(1))?;
                    let mem = phase.memory.get_or_insert_with(PhaseMemory::default);
                    match col(6) {
                        "allocated_bytes" => mem.allocated_bytes = value,
                        "freed_bytes" => mem.freed_bytes = value,
                        "peak_bytes" => mem.peak_bytes = value,
                        "end_rss_bytes" => mem.end_rss_bytes = value,
                        other => {
                            return Err(err(&format!("unknown phase_mem field '{other}'")));
                        }
                    }
                }
                other => return Err(err(&format!("unknown record type '{other}'"))),
            }
        }
        if !saw_schema {
            return Err(err("missing schema row"));
        }
        Ok(trace)
    }
}

/// Finds the already-declared iteration an `iter_decision`/`iter_hw`
/// row refers to (rows follow their `iteration` row, so it is the last
/// one with that step).
fn iteration_mut(trace: &mut RunTrace, step: usize) -> Result<&mut TraceIteration, TraceError> {
    trace
        .iterations
        .iter_mut()
        .rev()
        .find(|it| it.record.step == step)
        .ok_or_else(|| err(&format!("iteration row for undeclared step {step}")))
}

/// Finds the already-declared phase a `phase_hw`/`phase_sim` row refers
/// to (rows are emitted in phase order, so it is the last one).
fn phase_mut<'a>(trace: &'a mut RunTrace, name: &str) -> Result<&'a mut PhaseProfile, TraceError> {
    trace
        .phases
        .iter_mut()
        .rev()
        .find(|p| p.name == name)
        .ok_or_else(|| err(&format!("phase row for undeclared phase '{name}'")))
}

fn err(msg: &str) -> TraceError {
    TraceError::Malformed(msg.to_string())
}

fn get<'a>(obj: &'a [(String, json::Value)], key: &str) -> Result<&'a json::Value, TraceError> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| err(&format!("missing field '{key}'")))
}

fn num_field(obj: &[(String, json::Value)], key: &str) -> Result<f64, TraceError> {
    get(obj, key)?
        .as_number()
        .ok_or_else(|| err(&format!("field '{key}' is not a number")))
}

/// Profiles named run phases with hardware perf counters, producing
/// the [`PhaseProfile`] records of a schema-v2 [`RunTrace`].
///
/// Construction follows the [`PerfCounters`] graceful-degradation
/// contract: [`PhaseProfiler::enabled`] never fails — on a restricted
/// host the profiled phases simply carry empty `hardware` maps. A
/// [`PhaseProfiler::disabled`] profiler skips even the wall-clock
/// bookkeeping and records nothing.
///
/// Open the profiler *before* the first parallel operation: the
/// counters cover threads spawned after they open (see the
/// `egraph-perf` crate docs), which is how the lazily-created worker
/// pool gets counted.
pub struct PhaseProfiler {
    counters: Option<PerfCounters>,
    phases: Mutex<Vec<PhaseProfile>>,
}

impl PhaseProfiler {
    /// A profiler that records nothing; `profile` runs closures
    /// directly.
    pub fn disabled() -> Self {
        Self {
            counters: None,
            phases: Mutex::new(Vec::new()),
        }
    }

    /// Opens the hardware counters (never fails; see [`PerfCounters`])
    /// and starts collecting phase profiles.
    pub fn enabled() -> Self {
        Self {
            counters: Some(PerfCounters::open()),
            phases: Mutex::new(Vec::new()),
        }
    }

    /// Whether this profiler records phases at all.
    pub fn is_enabled(&self) -> bool {
        self.counters.is_some()
    }

    /// The counter kinds that actually opened, in canonical order;
    /// empty on a disabled profiler or a fully restricted host.
    pub fn available_counters(&self) -> Vec<CounterKind> {
        self.counters
            .as_ref()
            .map(|c| c.available_kinds())
            .unwrap_or_default()
    }

    /// Runs `f` as the named phase, recording its wall time, hardware
    /// counter deltas, and memory accounting (allocator attribution
    /// when `egraph_metrics::alloc::TrackingAlloc` is installed, plus
    /// the end-of-phase RSS sample).
    pub fn profile<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let Some(counters) = &self.counters else {
            return f();
        };
        let window = counters.phase();
        let alloc_window = egraph_metrics::alloc::window(name);
        let start = Instant::now();
        let out = f();
        let seconds = start.elapsed().as_secs_f64();
        let alloc_stats = alloc_window.finish();
        let sample = window.finish();
        let mut profile = PhaseProfile {
            name: name.to_string(),
            seconds,
            ..PhaseProfile::default()
        };
        for (kind, value) in sample.iter() {
            profile
                .hardware
                .insert(kind.name().to_string(), value as f64);
        }
        profile.memory = Some(PhaseMemory {
            allocated_bytes: alloc_stats.allocated_bytes,
            freed_bytes: alloc_stats.freed_bytes,
            peak_bytes: alloc_stats.peak_bytes,
            end_rss_bytes: egraph_metrics::alloc::rss_bytes().unwrap_or(0),
        });
        self.phases.lock().push(profile);
        out
    }

    /// Attaches simulated cache statistics to the most recent phase
    /// with this name (used by benches that run the same phase through
    /// the LLC simulator).
    pub fn attach_simulated(&self, name: &str, stats: CacheStats) {
        if let Some(p) = self.phases.lock().iter_mut().rev().find(|p| p.name == name) {
            p.simulated = Some(stats);
        }
    }

    /// Takes the recorded phases, leaving the profiler empty.
    pub fn take_phases(&self) -> Vec<PhaseProfile> {
        std::mem::take(&mut *self.phases.lock())
    }
}

pub mod csv {
    //! CSV field quoting and line splitting (RFC 4180 subset) for
    //! [`RunTrace::to_csv`] / [`RunTrace::from_csv`].
    //!
    //! [`RunTrace::to_csv`]: super::RunTrace::to_csv
    //! [`RunTrace::from_csv`]: super::RunTrace::from_csv

    /// Renders one field, quoting it when it contains a separator,
    /// quote, or newline.
    pub fn field(s: &str) -> String {
        if s.contains([',', '"', '\n', '\r']) {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                if c == '"' {
                    out.push('"');
                }
                out.push(c);
            }
            out.push('"');
            out
        } else {
            s.to_string()
        }
    }

    /// Splits one CSV line into its fields, undoing [`field`] quoting.
    ///
    /// # Errors
    ///
    /// Returns a message for an unterminated quoted field or stray
    /// quote.
    pub fn split(line: &str) -> Result<Vec<String>, String> {
        let mut fields = Vec::new();
        let mut cur = String::new();
        let mut chars = line.chars().peekable();
        loop {
            match chars.peek() {
                Some('"') if cur.is_empty() => {
                    chars.next();
                    loop {
                        match chars.next() {
                            Some('"') => {
                                if chars.peek() == Some(&'"') {
                                    chars.next();
                                    cur.push('"');
                                } else {
                                    break;
                                }
                            }
                            Some(c) => cur.push(c),
                            None => return Err("unterminated quoted field".to_string()),
                        }
                    }
                }
                Some(',') => {
                    chars.next();
                    fields.push(std::mem::take(&mut cur));
                }
                Some(_) => cur.push(chars.next().expect("peeked")),
                None => {
                    fields.push(cur);
                    return Ok(fields);
                }
            }
        }
    }
}

pub mod json {
    //! A minimal JSON reader/writer covering exactly what [`RunTrace`]
    //! emits (the workspace deliberately carries no serialization
    //! dependency). Strings, finite numbers, booleans, null, arrays
    //! and objects; no depth limit; objects preserve insertion order.
    //!
    //! [`RunTrace`]: super::RunTrace

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any JSON number, kept as `f64`.
        Number(f64),
        /// A string.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object, as ordered key/value pairs.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// The string content, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// The numeric value, if this is a number.
        pub fn as_number(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(v) => Some(v),
                _ => None,
            }
        }

        /// The key/value pairs, if this is an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(v) => Some(v),
                _ => None,
            }
        }
    }

    /// Renders a JSON string literal (with escaping).
    pub fn string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// Renders a JSON number. Non-finite values (which valid traces
    /// never contain) render as `null`.
    pub fn number(n: f64) -> String {
        if n.is_finite() {
            format!("{n}")
        } else {
            "null".to_string()
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed input.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected '{}' at byte {}", b as char, self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::String(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(_) => self.number(),
                None => Err("unexpected end of input".to_string()),
            }
        }

        fn literal(&mut self, lit: &str, value: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                Ok(value)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut pairs = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(pairs));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value()?;
                pairs.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                    16,
                                )
                                .map_err(|_| "bad \\u escape")?;
                                out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                                self.pos += 4;
                            }
                            _ => return Err(format!("bad escape at byte {}", self.pos)),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar.
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| "invalid UTF-8")?;
                        let c = rest.chars().next().ok_or("unexpected end in string")?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                    None => return Err("unterminated string".to_string()),
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let text =
                std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "invalid number")?;
            text.parse::<f64>()
                .map(Value::Number)
                .map_err(|_| format!("invalid number '{text}' at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled() {
        let r = NullRecorder;
        assert!(!r.enabled());
        r.record_counter("x", 1);
        r.record_iteration(IterRecord {
            step: 0,
            frontier_size: 0,
            edges_scanned: 0,
            seconds: 0.0,
            mode: StepMode::Push,
            density: 0.0,
            decision: DirectionDecision::default(),
        });
        r.record_span("x", 0.0);
    }

    #[test]
    fn trace_recorder_accumulates() {
        let r = TraceRecorder::new();
        assert!(r.enabled());
        r.record_counter("edges", 10);
        r.record_counter("edges", 5);
        r.record_span("load", 0.25);
        r.record_iteration(IterRecord {
            step: 0,
            frontier_size: 1,
            edges_scanned: 2,
            seconds: 0.5,
            mode: StepMode::Pull,
            density: 0.125,
            decision: DirectionDecision::heuristic(3, 2),
        });
        assert_eq!(r.counters()["edges"], 15.0);
        assert_eq!(r.spans()[0].name, "load");
        assert_eq!(r.iterations()[0].mode, StepMode::Pull);
        assert!(r.iterations()[0].decision.says_pull());
        // Without `with_iteration_perf` the hardware maps exist but
        // stay empty, keeping the two vectors parallel.
        assert_eq!(r.iteration_hardware(), vec![BTreeMap::new()]);
    }

    #[test]
    fn iteration_perf_recorder_keeps_vectors_parallel() {
        let r = TraceRecorder::with_iteration_perf(PerfCounters::open());
        for step in 0..3 {
            let mut x = 1u64;
            for i in 0..200_000u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(x);
            r.record_iteration(IterRecord {
                step,
                frontier_size: 1,
                edges_scanned: 1,
                seconds: 0.001,
                mode: StepMode::Push,
                density: 0.0,
                decision: DirectionDecision::default(),
            });
        }
        assert_eq!(r.iterations().len(), 3);
        assert_eq!(r.iteration_hardware().len(), 3);
        let mut trace = RunTrace::new("bfs");
        trace.absorb(&r);
        assert_eq!(trace.iterations.len(), 3);
        // Every iteration window samples the same counter set (which is
        // legitimately empty on restricted hosts).
        let keys: Vec<Vec<&String>> = trace
            .iterations
            .iter()
            .map(|it| it.hardware.keys().collect())
            .collect();
        assert_eq!(keys[0], keys[1]);
        assert_eq!(keys[1], keys[2]);
    }

    #[test]
    fn exec_context_composes() {
        let recorder = TraceRecorder::new();
        let ctx = ExecContext::new().with_recorder(&recorder);
        assert!(!ctx.probe.enabled());
        assert!(ctx.recorder.enabled());
    }

    fn sample_trace() -> RunTrace {
        let mut t = RunTrace::new("bfs");
        t.config.insert("layout".into(), "adjacency".into());
        t.config.insert("flow".into(), "push".into());
        t.breakdown = TimeBreakdown {
            load: 0.5,
            preprocess: 0.25,
            partition: 0.0,
            algorithm: 0.125,
            store: 0.0625,
        };
        let mut first = TraceIteration::from(IterRecord {
            step: 0,
            frontier_size: 1,
            edges_scanned: 3,
            seconds: 0.001,
            mode: StepMode::Push,
            density: 0.002,
            decision: DirectionDecision::heuristic(4, 97),
        });
        first.hardware.insert("cycles".into(), 1.5e6);
        t.iterations = vec![
            first,
            TraceIteration::from(IterRecord {
                step: 1,
                frontier_size: 42,
                edges_scanned: 977,
                seconds: 0.0025,
                mode: StepMode::Pull,
                density: 0.52,
                decision: DirectionDecision::heuristic(1019, 97),
            }),
        ];
        t.counters.insert("pool.steals".into(), 7.0);
        t.counters.insert("storage.bytes_read".into(), 65536.0);
        t.spans.push(Span {
            name: "warmup \"quoted\"".into(),
            seconds: 0.75,
        });
        let mut algo_phase = PhaseProfile {
            name: "algorithm".into(),
            seconds: 0.125,
            ..PhaseProfile::default()
        };
        algo_phase.hardware.insert("cycles".into(), 1.25e9);
        algo_phase.hardware.insert("llc_load_misses".into(), 3.0e6);
        algo_phase.simulated = Some(CacheStats {
            accesses: 1000,
            misses: 250,
        });
        algo_phase.memory = Some(PhaseMemory {
            allocated_bytes: 4_194_304,
            freed_bytes: 1_048_576,
            peak_bytes: 5_242_880,
            end_rss_bytes: 33_554_432,
        });
        t.phases.push(algo_phase);
        // No memory section on this one: both states must round-trip.
        t.phases.push(PhaseProfile {
            name: "load, restricted".into(), // comma exercises CSV quoting
            seconds: 0.5,
            ..PhaseProfile::default()
        });
        t
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let trace = sample_trace();
        let parsed = RunTrace::from_json(&trace.to_json()).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn json_rejects_foreign_schema() {
        let text = sample_trace().to_json().replace(TRACE_SCHEMA, "other/9");
        assert!(RunTrace::from_json(&text).is_err());
    }

    #[test]
    fn json_rejects_malformed_input() {
        assert!(RunTrace::from_json("{").is_err());
        assert!(RunTrace::from_json("[]").is_err());
        assert!(RunTrace::from_json("{\"schema\": 3}").is_err());
    }

    #[test]
    fn csv_has_all_record_types() {
        let text = sample_trace().to_csv();
        for tag in [
            "record,",
            "meta,algorithm",
            "breakdown,total",
            "iteration,",
            "iter_decision,,0,,,,observed,4",
            "iter_decision,,1,,,,forced,0",
            "iter_hw,,0,,,,cycles",
            "counter,pool.steals",
            "span,",
            "phase,algorithm",
            "phase_hw,algorithm,,,,,cycles",
            "phase_sim,algorithm,,,,,misses",
            "phase_mem,algorithm,,,,,peak_bytes",
        ] {
            assert!(text.contains(tag), "missing {tag} in:\n{text}");
        }
        // header + 2 meta + 2 config + 6 breakdown + 2 iterations
        // + 6 iter_decision + 1 iter_hw + 2 counters + 1 span
        // + 2 phases + 2 phase_hw + 2 phase_sim + 4 phase_mem.
        assert_eq!(
            text.lines().count(),
            1 + 2 + 2 + 6 + 2 + 6 + 1 + 2 + 1 + 2 + 2 + 2 + 4
        );
    }

    #[test]
    fn csv_round_trip_is_lossless() {
        let trace = sample_trace();
        let parsed = RunTrace::from_csv(&trace.to_csv()).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn csv_rejects_malformed_input() {
        assert!(RunTrace::from_csv("").is_err());
        assert!(RunTrace::from_csv("not,a,trace\n").is_err());
        // Valid header but no schema row.
        assert!(RunTrace::from_csv(
            "record,key,step,frontier_size,edges_scanned,seconds,mode,value\n"
        )
        .is_err());
        // phase_hw without its phase row.
        assert!(RunTrace::from_csv(
            "record,key,step,frontier_size,edges_scanned,seconds,mode,value\n\
             meta,schema,,,,,,egraph-trace/2\n\
             phase_hw,ghost,,,,,cycles,1\n"
        )
        .is_err());
    }

    #[test]
    fn schema_v1_documents_still_parse() {
        // A v1 producer never wrote `phases`; both parsers must accept
        // the old tag and leave `phases` empty.
        let mut v1 = sample_trace();
        v1.phases.clear();
        let json_text = v1.to_json().replacen(TRACE_SCHEMA, TRACE_SCHEMA_V1, 1);
        // Drop the phases key entirely, as a real v1 document would.
        let json_text = json_text.replace(",\n  \"phases\": []\n}", "\n}");
        assert!(json_text.contains(TRACE_SCHEMA_V1));
        assert!(!json_text.contains("\"phases\""));
        v1.schema = TRACE_SCHEMA_V1.to_string();
        let parsed = RunTrace::from_json(&json_text).unwrap();
        assert_eq!(parsed, v1);

        v1.schema = TRACE_SCHEMA.to_string();
        let csv_text = v1.to_csv().replacen(TRACE_SCHEMA, TRACE_SCHEMA_V1, 1);
        v1.schema = TRACE_SCHEMA_V1.to_string();
        let parsed = RunTrace::from_csv(&csv_text).unwrap();
        assert_eq!(parsed, v1);
    }

    #[test]
    fn schema_v2_documents_still_parse() {
        // A v2 producer wrote `phases` but no `memory` key inside them;
        // both parsers must accept the tag and leave `memory` `None`.
        let mut v2 = sample_trace();
        for p in &mut v2.phases {
            p.memory = None;
        }
        let json_text = v2.to_json().replacen(TRACE_SCHEMA, TRACE_SCHEMA_V2, 1);
        // Drop the memory keys entirely, as a real v2 document would.
        let json_text = json_text.replace(", \"memory\": null", "");
        assert!(json_text.contains(TRACE_SCHEMA_V2));
        assert!(!json_text.contains("\"memory\""));
        v2.schema = TRACE_SCHEMA_V2.to_string();
        let parsed = RunTrace::from_json(&json_text).unwrap();
        assert_eq!(parsed, v2);

        v2.schema = TRACE_SCHEMA.to_string();
        let csv_text = v2.to_csv().replacen(TRACE_SCHEMA, TRACE_SCHEMA_V2, 1);
        v2.schema = TRACE_SCHEMA_V2.to_string();
        let parsed = RunTrace::from_csv(&csv_text).unwrap();
        assert_eq!(parsed, v2);
    }

    #[test]
    fn schema_v3_documents_still_parse() {
        // A v3 producer wrote iterations without density, decision or
        // per-iteration hardware; both parsers must accept the tag and
        // leave those at their defaults.
        let mut v3 = sample_trace();
        for it in &mut v3.iterations {
            it.record.density = 0.0;
            it.record.decision = DirectionDecision::default();
            it.hardware.clear();
        }
        let json_text = v3.to_json().replacen(TRACE_SCHEMA, TRACE_SCHEMA_V3, 1);
        // Drop the v4 keys entirely, as a real v3 document would.
        let json_text = json_text.replace(
            ", \"density\": 0, \"decision\": {\"observed\": 0, \"cutoff\": 0, \
             \"forced\": true}, \"hardware\": {}",
            "",
        );
        assert!(json_text.contains(TRACE_SCHEMA_V3));
        assert!(!json_text.contains("\"density\""));
        assert!(!json_text.contains("\"decision\""));
        v3.schema = TRACE_SCHEMA_V3.to_string();
        let parsed = RunTrace::from_json(&json_text).unwrap();
        assert_eq!(parsed, v3);

        v3.schema = TRACE_SCHEMA.to_string();
        let csv_v4 = v3.to_csv().replacen(TRACE_SCHEMA, TRACE_SCHEMA_V3, 1);
        // A v3 document has no iter_* rows and an empty value column on
        // iteration rows.
        let csv_text: String = csv_v4
            .lines()
            .filter(|l| !l.starts_with("iter_decision") && !l.starts_with("iter_hw"))
            .map(|l| {
                if let Some(stripped) = l.strip_prefix("iteration") {
                    format!("iteration{}\n", stripped.strip_suffix('0').unwrap())
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        assert!(!csv_text.contains("iter_decision"));
        v3.schema = TRACE_SCHEMA_V3.to_string();
        let parsed = RunTrace::from_csv(&csv_text).unwrap();
        assert_eq!(parsed, v3);
    }

    #[test]
    fn direction_flips_counts_mode_changes() {
        let mut t = sample_trace();
        assert_eq!(t.direction_flips(), 1); // push → pull
        t.iterations.push(TraceIteration::from(IterRecord {
            step: 2,
            frontier_size: 9,
            edges_scanned: 12,
            seconds: 0.001,
            mode: StepMode::Push,
            density: 0.006,
            decision: DirectionDecision::heuristic(21, 97),
        }));
        assert_eq!(t.direction_flips(), 2); // ... → push again
        t.iterations.clear();
        assert_eq!(t.direction_flips(), 0);
    }

    #[test]
    fn future_schema_errors_are_typed_with_offending_tag() {
        let json_text = sample_trace()
            .to_json()
            .replacen(TRACE_SCHEMA, "egraph-trace/9", 1);
        let e = RunTrace::from_json(&json_text).unwrap_err();
        assert_eq!(e, TraceError::UnsupportedSchema("egraph-trace/9".into()));
        let msg = e.to_string();
        assert!(msg.contains("egraph-trace/9"), "offending tag in: {msg}");
        assert!(msg.contains(TRACE_SCHEMA), "accepted tags in: {msg}");

        let csv_text = sample_trace()
            .to_csv()
            .replacen(TRACE_SCHEMA, "egraph-trace/9", 1);
        let e = RunTrace::from_csv(&csv_text).unwrap_err();
        assert_eq!(e, TraceError::UnsupportedSchema("egraph-trace/9".into()));

        // Structural failures stay in the Malformed variant.
        assert!(matches!(
            RunTrace::from_json("{").unwrap_err(),
            TraceError::Malformed(_)
        ));
    }

    #[test]
    fn csv_quoting_round_trips() {
        assert_eq!(csv::field("plain"), "plain");
        assert_eq!(csv::field("a,b"), "\"a,b\"");
        assert_eq!(csv::field("say \"hi\""), "\"say \"\"hi\"\"\"");
        let line = format!("{},{},x", csv::field("a,b"), csv::field("q\"q"));
        assert_eq!(csv::split(&line).unwrap(), vec!["a,b", "q\"q", "x"]);
        assert!(csv::split("\"unterminated").is_err());
    }

    #[test]
    fn phase_profiler_records_phases() {
        let profiler = PhaseProfiler::enabled();
        let value = profiler.profile("algorithm", || {
            let mut x = 1u64;
            for i in 0..500_000u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(x)
        });
        assert_ne!(value, 0);
        profiler.attach_simulated(
            "algorithm",
            CacheStats {
                accesses: 10,
                misses: 5,
            },
        );
        let phases = profiler.take_phases();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].name, "algorithm");
        assert!(phases[0].seconds > 0.0);
        assert_eq!(
            phases[0].simulated,
            Some(CacheStats {
                accesses: 10,
                misses: 5
            })
        );
        // Hardware values only when the host grants counters — and then
        // the busy loop must have registered on every open counter.
        for kind in profiler.available_counters() {
            assert!(phases[0].hardware.contains_key(kind.name()));
        }
        // An enabled profiler always attaches the memory section; the
        // allocator fields are zero here (no TrackingAlloc in this test
        // binary) while end-RSS carries the statm fallback on Linux.
        let mem = phases[0].memory.expect("memory section present");
        if std::path::Path::new("/proc/self/statm").exists() {
            assert!(mem.end_rss_bytes > 0, "RSS fallback sampled: {mem:?}");
        }
        assert!(profiler.take_phases().is_empty());
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let profiler = PhaseProfiler::disabled();
        assert!(!profiler.is_enabled());
        assert_eq!(profiler.profile("x", || 7), 7);
        assert!(profiler.take_phases().is_empty());
        assert!(profiler.available_counters().is_empty());
    }

    #[test]
    fn hardware_llc_miss_ratio_needs_both_counters() {
        let mut p = PhaseProfile {
            name: "algorithm".into(),
            ..PhaseProfile::default()
        };
        assert_eq!(p.hardware_llc_miss_ratio(), None);
        p.hardware.insert("llc_loads".into(), 400.0);
        assert_eq!(p.hardware_llc_miss_ratio(), None);
        p.hardware.insert("llc_load_misses".into(), 100.0);
        assert_eq!(p.hardware_llc_miss_ratio(), Some(0.25));
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let v = json::parse(r#"{"a": [1, -2.5e3, "x\nλA"], "b": {"c": true, "d": null}}"#).unwrap();
        let obj = v.as_object().unwrap();
        let arr = obj[0].1.as_array().unwrap();
        assert_eq!(arr[1].as_number(), Some(-2500.0));
        assert_eq!(arr[2].as_str(), Some("x\nλA"));
        assert_eq!(obj[1].1.as_object().unwrap()[1].1, json::Value::Null);
    }
}

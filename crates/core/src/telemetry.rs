//! Run-wide telemetry: counters, per-iteration records and phase spans
//! behind a zero-cost recording interface.
//!
//! The paper's central methodological claim is that graph systems must
//! be measured *end-to-end* (§1): load + pre-process + partition +
//! algorithm, not just the kernel. This module is the machinery that
//! makes those measurements first-class: every engine driver and
//! algorithm entry point threads an [`ExecContext`] carrying a memory
//! [`MemProbe`] and a [`Recorder`], and a run can be serialized as one
//! machine-readable [`RunTrace`] document (JSON or CSV).
//!
//! Three recorder implementations matter:
//!
//! * [`NullRecorder`] — the default; compiles away (see the trait docs),
//! * [`TraceRecorder`] — collects everything for `--trace-out`,
//! * anything user-provided — the trait is public and object-safe-free
//!   by design (generics, so the optimizer can specialize).

use std::collections::BTreeMap;
use std::fmt;

use parking_lot::Mutex;

pub use egraph_cachesim::{MemProbe, NullProbe};

use crate::metrics::{IterStat, StepMode, TimeBreakdown};

/// One record per computation step of a frontier algorithm, as captured
/// by a [`Recorder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterRecord {
    /// Zero-based step index.
    pub step: usize,
    /// Active vertices at the start of the step.
    pub frontier_size: usize,
    /// Edges examined during the step.
    pub edges_scanned: usize,
    /// Wall-clock seconds of the step.
    pub seconds: f64,
    /// Direction the step ran in.
    pub mode: StepMode,
}

impl IterRecord {
    /// Builds a record from a step index and an [`IterStat`].
    pub fn from_stat(step: usize, stat: &IterStat) -> Self {
        Self {
            step,
            frontier_size: stat.frontier_size,
            edges_scanned: stat.edges_scanned,
            seconds: stat.seconds,
            mode: stat.mode,
        }
    }
}

/// A named phase duration (e.g. `"load"`, `"factor_users"`).
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Phase name.
    pub name: String,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Sink for run-wide telemetry: named counters, per-iteration records
/// and phase spans.
///
/// # The zero-cost `NullRecorder` contract
///
/// All engine drivers and algorithm entry points are *generic* over
/// `R: Recorder` rather than taking a trait object. For
/// [`NullRecorder`], `enabled()` is a constant `false` and every sink
/// method is an inlinable no-op, so after monomorphization the
/// instrumentation branches fold away and the hot path is *identical*
/// to an uninstrumented build — the same technique [`MemProbe`] /
/// [`NullProbe`] use for cache simulation. Instrumentation sites must
/// uphold the contract from their side: any work beyond calling the
/// sink methods (counter arithmetic, address math, allocation) must be
/// guarded by `if recorder.enabled()`.
pub trait Recorder: Sync {
    /// Whether this recorder stores anything. Instrumentation sites
    /// skip counter bookkeeping when `false`.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// Adds `delta` to the named counter.
    fn record_counter(&self, name: &'static str, delta: u64);

    /// Appends one per-iteration record.
    fn record_iteration(&self, record: IterRecord);

    /// Appends one phase span.
    fn record_span(&self, name: &'static str, seconds: f64);
}

/// The zero-cost recorder used when telemetry is off; see the
/// [`Recorder`] docs for the contract that makes it free.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record_counter(&self, _name: &'static str, _delta: u64) {}

    #[inline]
    fn record_iteration(&self, _record: IterRecord) {}

    #[inline]
    fn record_span(&self, _name: &'static str, _seconds: f64) {}
}

/// A recorder that collects everything into memory, for `--trace-out`
/// and the bench reporter.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    inner: Mutex<TraceInner>,
}

#[derive(Debug, Default)]
struct TraceInner {
    iterations: Vec<IterRecord>,
    counters: BTreeMap<&'static str, u64>,
    spans: Vec<Span>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-iteration records collected so far.
    pub fn iterations(&self) -> Vec<IterRecord> {
        self.inner.lock().iterations.clone()
    }

    /// The counters collected so far.
    pub fn counters(&self) -> BTreeMap<String, f64> {
        self.inner
            .lock()
            .counters
            .iter()
            .map(|(k, v)| (k.to_string(), *v as f64))
            .collect()
    }

    /// The phase spans collected so far.
    pub fn spans(&self) -> Vec<Span> {
        self.inner.lock().spans.clone()
    }
}

impl Recorder for TraceRecorder {
    fn record_counter(&self, name: &'static str, delta: u64) {
        *self.inner.lock().counters.entry(name).or_insert(0) += delta;
    }

    fn record_iteration(&self, record: IterRecord) {
        self.inner.lock().iterations.push(record);
    }

    fn record_span(&self, name: &'static str, seconds: f64) {
        self.inner.lock().spans.push(Span {
            name: name.to_string(),
            seconds,
        });
    }
}

/// The execution context threaded through every engine driver and
/// algorithm entry point: a cache [`MemProbe`] plus a telemetry
/// [`Recorder`]. Both default to their null implementations, which
/// compile the instrumentation away.
///
/// # Examples
///
/// ```
/// use egraph_core::prelude::*;
/// use egraph_core::algo::bfs;
///
/// let input = EdgeList::new(3, vec![Edge::new(0, 1), Edge::new(1, 2)]).unwrap();
/// let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&input);
///
/// // Uninstrumented run (NullProbe + NullRecorder):
/// let plain = bfs::push_ctx(&adj, 0, &ExecContext::new());
///
/// // Traced run:
/// let recorder = TraceRecorder::new();
/// let traced = bfs::push_ctx(&adj, 0, &ExecContext::new().with_recorder(&recorder));
/// assert_eq!(plain.level, traced.level);
/// assert_eq!(recorder.iterations().len(), traced.iterations.len());
/// ```
#[derive(Debug)]
pub struct ExecContext<'a, P: MemProbe = NullProbe, R: Recorder = NullRecorder> {
    /// Memory-access instrumentation hook.
    pub probe: &'a P,
    /// Telemetry sink.
    pub recorder: &'a R,
}

impl<'a, P: MemProbe, R: Recorder> Clone for ExecContext<'a, P, R> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'a, P: MemProbe, R: Recorder> Copy for ExecContext<'a, P, R> {}

impl ExecContext<'static> {
    /// The uninstrumented context: [`NullProbe`] + [`NullRecorder`].
    pub fn new() -> Self {
        Self {
            probe: &NullProbe,
            recorder: &NullRecorder,
        }
    }
}

impl Default for ExecContext<'static> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a, P: MemProbe, R: Recorder> ExecContext<'a, P, R> {
    /// This context with a different probe.
    pub fn with_probe<P2: MemProbe>(self, probe: &'a P2) -> ExecContext<'a, P2, R> {
        ExecContext {
            probe,
            recorder: self.recorder,
        }
    }

    /// This context with a different recorder.
    pub fn with_recorder<R2: Recorder>(self, recorder: &'a R2) -> ExecContext<'a, P, R2> {
        ExecContext {
            probe: self.probe,
            recorder,
        }
    }
}

/// The machine-readable document describing one end-to-end run:
/// the [`TimeBreakdown`], per-iteration records, and whatever counters
/// the engine, pool and storage layers reported.
///
/// Serializes to JSON ([`RunTrace::to_json`], schema
/// `egraph-trace/1`) and CSV ([`RunTrace::to_csv`]); parses back from
/// its own JSON ([`RunTrace::from_json`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunTrace {
    /// Algorithm name (e.g. `"bfs"`).
    pub algorithm: String,
    /// Free-form run configuration (layout, flow, sync, threads, …).
    pub config: BTreeMap<String, String>,
    /// End-to-end phase timings.
    pub breakdown: TimeBreakdown,
    /// One record per computation step.
    pub iterations: Vec<IterRecord>,
    /// Named counters from all layers (engine, pool, storage).
    pub counters: BTreeMap<String, f64>,
    /// Named phase spans beyond the fixed breakdown phases.
    pub spans: Vec<Span>,
}

/// Schema tag embedded in every JSON trace.
pub const TRACE_SCHEMA: &str = "egraph-trace/1";

/// Output format for a [`RunTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object (schema `egraph-trace/1`).
    Json,
    /// Flat CSV with a `record` discriminator column.
    Csv,
}

impl TraceFormat {
    /// Parses a format name (`"json"` / `"csv"`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "json" => Ok(TraceFormat::Json),
            "csv" => Ok(TraceFormat::Csv),
            other => Err(format!("unknown trace format '{other}' (json|csv)")),
        }
    }
}

/// Error produced when parsing a JSON trace back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError(String);

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid trace: {}", self.0)
    }
}

impl std::error::Error for TraceError {}

impl RunTrace {
    /// Creates an empty trace for `algorithm`.
    pub fn new(algorithm: impl Into<String>) -> Self {
        Self {
            algorithm: algorithm.into(),
            ..Self::default()
        }
    }

    /// Merges everything a [`TraceRecorder`] collected into this trace.
    pub fn absorb(&mut self, recorder: &TraceRecorder) {
        self.iterations.extend(recorder.iterations());
        self.counters.extend(recorder.counters());
        self.spans.extend(recorder.spans());
    }

    /// Renders the trace in `format`.
    pub fn render(&self, format: TraceFormat) -> String {
        match format {
            TraceFormat::Json => self.to_json(),
            TraceFormat::Csv => self.to_csv(),
        }
    }

    /// Serializes to a JSON object (schema [`TRACE_SCHEMA`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512 + self.iterations.len() * 96);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", json::string(TRACE_SCHEMA)));
        out.push_str(&format!(
            "  \"algorithm\": {},\n",
            json::string(&self.algorithm)
        ));
        out.push_str("  \"config\": {");
        for (i, (k, v)) in self.config.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", json::string(k), json::string(v)));
        }
        out.push_str("},\n");
        let b = &self.breakdown;
        out.push_str(&format!(
            "  \"breakdown\": {{\"load\": {}, \"preprocess\": {}, \"partition\": {}, \
             \"algorithm\": {}, \"store\": {}, \"total\": {}}},\n",
            json::number(b.load),
            json::number(b.preprocess),
            json::number(b.partition),
            json::number(b.algorithm),
            json::number(b.store),
            json::number(b.total()),
        ));
        out.push_str("  \"iterations\": [");
        for (i, it) in self.iterations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"step\": {}, \"frontier_size\": {}, \"edges_scanned\": {}, \
                 \"seconds\": {}, \"mode\": {}}}",
                it.step,
                it.frontier_size,
                it.edges_scanned,
                json::number(it.seconds),
                json::string(it.mode.as_str()),
            ));
        }
        if !self.iterations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json::string(k), json::number(*v)));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
        out.push_str("  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": {}, \"seconds\": {}}}",
                json::string(&s.name),
                json::number(s.seconds)
            ));
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a trace previously produced by [`RunTrace::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] on malformed JSON, a missing/foreign
    /// schema tag, or fields of unexpected shape.
    pub fn from_json(text: &str) -> Result<Self, TraceError> {
        let value = json::parse(text).map_err(TraceError)?;
        let obj = value
            .as_object()
            .ok_or_else(|| err("root is not an object"))?;
        let schema = get(obj, "schema")?
            .as_str()
            .ok_or_else(|| err("schema is not a string"))?;
        if schema != TRACE_SCHEMA {
            return Err(err(&format!("unsupported schema '{schema}'")));
        }
        let mut trace = RunTrace::new(
            get(obj, "algorithm")?
                .as_str()
                .ok_or_else(|| err("algorithm is not a string"))?,
        );
        for (k, v) in get(obj, "config")?
            .as_object()
            .ok_or_else(|| err("config is not an object"))?
        {
            trace.config.insert(
                k.clone(),
                v.as_str()
                    .ok_or_else(|| err("config value is not a string"))?
                    .to_string(),
            );
        }
        let b = get(obj, "breakdown")?
            .as_object()
            .ok_or_else(|| err("breakdown is not an object"))?;
        trace.breakdown = TimeBreakdown {
            load: num_field(b, "load")?,
            preprocess: num_field(b, "preprocess")?,
            partition: num_field(b, "partition")?,
            algorithm: num_field(b, "algorithm")?,
            store: num_field(b, "store")?,
        };
        for it in get(obj, "iterations")?
            .as_array()
            .ok_or_else(|| err("iterations is not an array"))?
        {
            let o = it
                .as_object()
                .ok_or_else(|| err("iteration is not an object"))?;
            trace.iterations.push(IterRecord {
                step: num_field(o, "step")? as usize,
                frontier_size: num_field(o, "frontier_size")? as usize,
                edges_scanned: num_field(o, "edges_scanned")? as usize,
                seconds: num_field(o, "seconds")?,
                mode: StepMode::parse(
                    get(o, "mode")?
                        .as_str()
                        .ok_or_else(|| err("mode is not a string"))?,
                )
                .ok_or_else(|| err("unknown step mode"))?,
            });
        }
        for (k, v) in get(obj, "counters")?
            .as_object()
            .ok_or_else(|| err("counters is not an object"))?
        {
            trace.counters.insert(
                k.clone(),
                v.as_number()
                    .ok_or_else(|| err("counter is not a number"))?,
            );
        }
        for s in get(obj, "spans")?
            .as_array()
            .ok_or_else(|| err("spans is not an array"))?
        {
            let o = s.as_object().ok_or_else(|| err("span is not an object"))?;
            trace.spans.push(Span {
                name: get(o, "name")?
                    .as_str()
                    .ok_or_else(|| err("span name is not a string"))?
                    .to_string(),
                seconds: num_field(o, "seconds")?,
            });
        }
        Ok(trace)
    }

    /// Serializes to flat CSV. The first column discriminates the
    /// record type (`meta`, `breakdown`, `iteration`, `counter`,
    /// `span`); unused columns are left empty.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("record,key,step,frontier_size,edges_scanned,seconds,mode,value\n");
        out.push_str(&format!(
            "meta,schema,,,,,,{}\nmeta,algorithm,,,,,,{}\n",
            TRACE_SCHEMA, self.algorithm
        ));
        for (k, v) in &self.config {
            out.push_str(&format!("meta,{k},,,,,,{v}\n"));
        }
        let b = &self.breakdown;
        for (name, secs) in [
            ("load", b.load),
            ("preprocess", b.preprocess),
            ("partition", b.partition),
            ("algorithm", b.algorithm),
            ("store", b.store),
            ("total", b.total()),
        ] {
            out.push_str(&format!("breakdown,{name},,,,{secs},,\n"));
        }
        for it in &self.iterations {
            out.push_str(&format!(
                "iteration,,{},{},{},{},{},\n",
                it.step,
                it.frontier_size,
                it.edges_scanned,
                it.seconds,
                it.mode.as_str()
            ));
        }
        for (k, v) in &self.counters {
            out.push_str(&format!("counter,{k},,,,,,{v}\n"));
        }
        for s in &self.spans {
            out.push_str(&format!("span,{},,,,{},,\n", s.name, s.seconds));
        }
        out
    }
}

fn err(msg: &str) -> TraceError {
    TraceError(msg.to_string())
}

fn get<'a>(obj: &'a [(String, json::Value)], key: &str) -> Result<&'a json::Value, TraceError> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| err(&format!("missing field '{key}'")))
}

fn num_field(obj: &[(String, json::Value)], key: &str) -> Result<f64, TraceError> {
    get(obj, key)?
        .as_number()
        .ok_or_else(|| err(&format!("field '{key}' is not a number")))
}

pub mod json {
    //! A minimal JSON reader/writer covering exactly what [`RunTrace`]
    //! emits (the workspace deliberately carries no serialization
    //! dependency). Strings, finite numbers, booleans, null, arrays
    //! and objects; no depth limit; objects preserve insertion order.
    //!
    //! [`RunTrace`]: super::RunTrace

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any JSON number, kept as `f64`.
        Number(f64),
        /// A string.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object, as ordered key/value pairs.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// The string content, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// The numeric value, if this is a number.
        pub fn as_number(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(v) => Some(v),
                _ => None,
            }
        }

        /// The key/value pairs, if this is an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(v) => Some(v),
                _ => None,
            }
        }
    }

    /// Renders a JSON string literal (with escaping).
    pub fn string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// Renders a JSON number. Non-finite values (which valid traces
    /// never contain) render as `null`.
    pub fn number(n: f64) -> String {
        if n.is_finite() {
            format!("{n}")
        } else {
            "null".to_string()
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed input.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected '{}' at byte {}", b as char, self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::String(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(_) => self.number(),
                None => Err("unexpected end of input".to_string()),
            }
        }

        fn literal(&mut self, lit: &str, value: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                Ok(value)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut pairs = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(pairs));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value()?;
                pairs.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                    16,
                                )
                                .map_err(|_| "bad \\u escape")?;
                                out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                                self.pos += 4;
                            }
                            _ => return Err(format!("bad escape at byte {}", self.pos)),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar.
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| "invalid UTF-8")?;
                        let c = rest.chars().next().ok_or("unexpected end in string")?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                    None => return Err("unterminated string".to_string()),
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let text =
                std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "invalid number")?;
            text.parse::<f64>()
                .map(Value::Number)
                .map_err(|_| format!("invalid number '{text}' at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled() {
        let r = NullRecorder;
        assert!(!r.enabled());
        r.record_counter("x", 1);
        r.record_iteration(IterRecord {
            step: 0,
            frontier_size: 0,
            edges_scanned: 0,
            seconds: 0.0,
            mode: StepMode::Push,
        });
        r.record_span("x", 0.0);
    }

    #[test]
    fn trace_recorder_accumulates() {
        let r = TraceRecorder::new();
        assert!(r.enabled());
        r.record_counter("edges", 10);
        r.record_counter("edges", 5);
        r.record_span("load", 0.25);
        r.record_iteration(IterRecord {
            step: 0,
            frontier_size: 1,
            edges_scanned: 2,
            seconds: 0.5,
            mode: StepMode::Pull,
        });
        assert_eq!(r.counters()["edges"], 15.0);
        assert_eq!(r.spans()[0].name, "load");
        assert_eq!(r.iterations()[0].mode, StepMode::Pull);
    }

    #[test]
    fn exec_context_composes() {
        let recorder = TraceRecorder::new();
        let ctx = ExecContext::new().with_recorder(&recorder);
        assert!(!ctx.probe.enabled());
        assert!(ctx.recorder.enabled());
    }

    fn sample_trace() -> RunTrace {
        let mut t = RunTrace::new("bfs");
        t.config.insert("layout".into(), "adjacency".into());
        t.config.insert("flow".into(), "push".into());
        t.breakdown = TimeBreakdown {
            load: 0.5,
            preprocess: 0.25,
            partition: 0.0,
            algorithm: 0.125,
            store: 0.0625,
        };
        t.iterations = vec![
            IterRecord {
                step: 0,
                frontier_size: 1,
                edges_scanned: 3,
                seconds: 0.001,
                mode: StepMode::Push,
            },
            IterRecord {
                step: 1,
                frontier_size: 42,
                edges_scanned: 977,
                seconds: 0.0025,
                mode: StepMode::Pull,
            },
        ];
        t.counters.insert("pool.steals".into(), 7.0);
        t.counters.insert("storage.bytes_read".into(), 65536.0);
        t.spans.push(Span {
            name: "warmup \"quoted\"".into(),
            seconds: 0.75,
        });
        t
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let trace = sample_trace();
        let parsed = RunTrace::from_json(&trace.to_json()).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn json_rejects_foreign_schema() {
        let text = sample_trace().to_json().replace(TRACE_SCHEMA, "other/9");
        assert!(RunTrace::from_json(&text).is_err());
    }

    #[test]
    fn json_rejects_malformed_input() {
        assert!(RunTrace::from_json("{").is_err());
        assert!(RunTrace::from_json("[]").is_err());
        assert!(RunTrace::from_json("{\"schema\": 3}").is_err());
    }

    #[test]
    fn csv_has_all_record_types() {
        let text = sample_trace().to_csv();
        for tag in [
            "record,",
            "meta,algorithm",
            "breakdown,total",
            "iteration,",
            "counter,pool.steals",
            "span,",
        ] {
            assert!(text.contains(tag), "missing {tag} in:\n{text}");
        }
        assert_eq!(text.lines().count(), 1 + 2 + 2 + 6 + 2 + 2 + 1);
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let v = json::parse(r#"{"a": [1, -2.5e3, "x\nλA"], "b": {"c": true, "d": null}}"#).unwrap();
        let obj = v.as_object().unwrap();
        let arr = obj[0].1.as_array().unwrap();
        assert_eq!(arr[1].as_number(), Some(-2500.0));
        assert_eq!(arr[2].as_str(), Some("x\nλA"));
        assert_eq!(obj[1].1.as_object().unwrap()[1].1, json::Value::Null);
    }
}

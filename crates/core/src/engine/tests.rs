//! Direct unit tests of the engine drivers, with instrumented toy
//! operators (the algorithms provide end-to-end coverage; these tests
//! pin the driver contracts themselves).

use std::sync::atomic::{AtomicUsize, Ordering};

use egraph_cachesim::{AccessKind, CacheConfig, LlcProbe};

use super::*;
use crate::layout::EdgeDirection;
use crate::preprocess::{CsrBuilder, GridBuilder, Strategy};
use crate::telemetry::TraceRecorder;
use crate::types::{Edge, EdgeList};
use crate::util::AtomicBitmap;

fn diamond() -> EdgeList<Edge> {
    // 0 -> {1,2} -> 3, plus a stray 3 -> 0 back edge.
    EdgeList::new(
        4,
        vec![
            Edge::new(0, 1),
            Edge::new(0, 2),
            Edge::new(1, 3),
            Edge::new(2, 3),
            Edge::new(3, 0),
        ],
    )
    .unwrap()
}

/// Counts pushes; activates every destination exactly once.
struct CountingOp {
    pushes: AtomicUsize,
    activated: AtomicBitmap,
    active_sources: Option<AtomicBitmap>,
}

impl CountingOp {
    fn new(nv: usize) -> Self {
        Self {
            pushes: AtomicUsize::new(0),
            activated: AtomicBitmap::new(nv),
            active_sources: None,
        }
    }

    fn with_sources(nv: usize, sources: &[u32]) -> Self {
        let bitmap = AtomicBitmap::new(nv);
        for &s in sources {
            bitmap.set(s as usize);
        }
        Self {
            pushes: AtomicUsize::new(0),
            activated: AtomicBitmap::new(nv),
            active_sources: Some(bitmap),
        }
    }
}

impl<E: EdgeRecord> PushOp<E> for CountingOp {
    fn push(&self, e: &E) -> bool {
        self.pushes.fetch_add(1, Ordering::Relaxed);
        self.activated.set(e.dst() as usize)
    }

    fn source_active(&self, src: VertexId) -> bool {
        self.active_sources
            .as_ref()
            .map(|b| b.get(src as usize))
            .unwrap_or(true)
    }
}

#[test]
fn vertex_push_processes_only_frontier_edges() {
    let graph = diamond();
    let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&graph);
    let op = CountingOp::new(4);
    let frontier = VertexSubset::from_vec(vec![0]);
    let next = vertex_push(
        adj.out(),
        &frontier,
        &op,
        ExecContext::new(),
        FrontierKind::Sparse,
    );
    assert_eq!(op.pushes.load(Ordering::Relaxed), 2, "only 0's out-edges");
    assert_eq!(next.len(), 2);
    let mut v = match next {
        VertexSubset::Sparse(v) => v,
        _ => panic!("sparse requested"),
    };
    v.sort_unstable();
    assert_eq!(v, vec![1, 2]);
}

#[test]
fn vertex_push_dense_frontier_equivalent() {
    let graph = diamond();
    let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&graph);
    let op = CountingOp::new(4);
    let frontier = VertexSubset::from_vec(vec![0]).into_dense(4);
    let next = vertex_push(
        adj.out(),
        &frontier,
        &op,
        ExecContext::new(),
        FrontierKind::Dense,
    );
    assert_eq!(op.pushes.load(Ordering::Relaxed), 2);
    assert_eq!(next.len(), 2);
}

#[test]
fn edge_push_respects_source_active() {
    let graph = diamond();
    let op = CountingOp::with_sources(4, &[1, 2]);
    let next = edge_push(
        graph.edges(),
        4,
        &op,
        ExecContext::new(),
        FrontierKind::Dense,
    );
    // Only edges out of 1 and 2 fire: (1,3) and (2,3).
    assert_eq!(op.pushes.load(Ordering::Relaxed), 2);
    assert_eq!(next.len(), 1, "3 activated once (dense dedup)");
    assert!(next.contains(3));
}

#[test]
fn grid_push_columns_covers_all_edges_once() {
    let graph = diamond();
    let grid = GridBuilder::new(Strategy::RadixSort).side(2).build(&graph);
    let op = CountingOp::new(4);
    let next = grid_push_columns(&grid, &op, ExecContext::new(), FrontierKind::Dense);
    assert_eq!(op.pushes.load(Ordering::Relaxed), graph.num_edges());
    assert_eq!(next.len(), 4);
}

#[test]
fn grid_push_cells_equals_columns() {
    let graph = diamond();
    let grid = GridBuilder::new(Strategy::RadixSort).side(2).build(&graph);
    let a = CountingOp::new(4);
    grid_push_cells(&grid, &a, ExecContext::new(), FrontierKind::Dense);
    let b = CountingOp::new(4);
    grid_push_columns(&grid, &b, ExecContext::new(), FrontierKind::Dense);
    assert_eq!(
        a.pushes.load(Ordering::Relaxed),
        b.pushes.load(Ordering::Relaxed)
    );
}

/// Pull operator that records scan lengths and stops after the first
/// in-edge (early termination).
struct EarlyStopPull {
    scanned: AtomicUsize,
}

impl<E: EdgeRecord> PullOp<E> for EarlyStopPull {
    fn wants_pull(&self, dst: VertexId) -> bool {
        dst == 3
    }

    fn pull(&self, _dst: VertexId, _e: &E) -> bool {
        self.scanned.fetch_add(1, Ordering::Relaxed);
        true // stop immediately
    }

    fn activated(&self, dst: VertexId) -> bool {
        dst == 3
    }
}

#[test]
fn vertex_pull_early_termination_and_filtering() {
    let graph = diamond();
    let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::In).build(&graph);
    let op = EarlyStopPull {
        scanned: AtomicUsize::new(0),
    };
    let next = vertex_pull(
        adj.incoming(),
        &op,
        ExecContext::new(),
        FrontierKind::Sparse,
    );
    // Vertex 3 has two in-edges but stops after one.
    assert_eq!(op.scanned.load(Ordering::Relaxed), 1);
    assert_eq!(next.len(), 1);
    assert!(next.contains(3));
}

#[test]
fn probe_sees_three_touches_per_processed_edge() {
    let graph = diamond();
    let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&graph);
    let probe = LlcProbe::new(CacheConfig::tiny(64 * 1024, 8));
    let op = CountingOp::new(4);
    let frontier = VertexSubset::from_vec(vec![0, 1, 2, 3]);
    vertex_push(
        adj.out(),
        &frontier,
        &op,
        ExecContext::new().with_probe(&probe),
        FrontierKind::Dense,
    );
    let report = probe.report();
    let edges = graph.num_edges() as u64;
    assert_eq!(report.kind(AccessKind::Edge).accesses, edges);
    assert_eq!(report.kind(AccessKind::SrcMeta).accesses, edges);
    assert_eq!(report.kind(AccessKind::DstMeta).accesses, edges);
}

#[test]
fn grid_pull_rows_sees_transposed_receivers() {
    let graph = diamond();
    let grid = GridBuilder::new(Strategy::RadixSort)
        .side(2)
        .transposed(true)
        .build(&graph);
    // Receiver = original dst. Count pulls per receiver.
    struct RecordingPull {
        per_vertex: Vec<AtomicUsize>,
    }
    impl<E: EdgeRecord> PullOp<E> for RecordingPull {
        fn wants_pull(&self, _dst: VertexId) -> bool {
            true
        }
        fn pull(&self, receiver: VertexId, _e: &E) -> bool {
            self.per_vertex[receiver as usize].fetch_add(1, Ordering::Relaxed);
            false
        }
        fn activated(&self, _dst: VertexId) -> bool {
            false
        }
    }
    let op = RecordingPull {
        per_vertex: (0..4).map(|_| AtomicUsize::new(0)).collect(),
    };
    grid_pull_rows(&grid, &op, ExecContext::new(), FrontierKind::Sparse);
    let counts: Vec<usize> = op
        .per_vertex
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .collect();
    // In-degrees of the diamond: 0<-3 (1), 1<-0 (1), 2<-0 (1), 3<-1,2 (2).
    assert_eq!(counts, vec![1, 1, 1, 2]);
}

#[test]
fn recorder_counts_edges_examined() {
    let graph = diamond();
    let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&graph);
    let recorder = TraceRecorder::new();
    let op = CountingOp::new(4);
    let frontier = VertexSubset::from_vec(vec![0, 1, 2, 3]);
    vertex_push(
        adj.out(),
        &frontier,
        &op,
        ExecContext::new().with_recorder(&recorder),
        FrontierKind::Dense,
    );
    assert_eq!(
        recorder.counters()[EDGES_EXAMINED],
        graph.num_edges() as f64
    );

    let recorder = TraceRecorder::new();
    edge_push(
        graph.edges(),
        4,
        &op,
        ExecContext::new().with_recorder(&recorder),
        FrontierKind::Dense,
    );
    assert_eq!(
        recorder.counters()[EDGES_EXAMINED],
        graph.num_edges() as f64,
        "edge-centric scans the whole edge array"
    );
}

#[test]
fn empty_graph_drivers_are_noops() {
    let graph: EdgeList<Edge> = EdgeList::new(0, vec![]).unwrap();
    let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both).build(&graph);
    let grid = GridBuilder::new(Strategy::RadixSort).side(2).build(&graph);
    let op = CountingOp::new(0);
    assert!(vertex_push(
        adj.out(),
        &VertexSubset::empty(),
        &op,
        ExecContext::new(),
        FrontierKind::Sparse
    )
    .is_empty());
    assert!(edge_push(
        graph.edges(),
        0,
        &op,
        ExecContext::new(),
        FrontierKind::Sparse
    )
    .is_empty());
    assert!(grid_push_columns(&grid, &op, ExecContext::new(), FrontierKind::Sparse).is_empty());
    assert_eq!(op.pushes.load(Ordering::Relaxed), 0);
}

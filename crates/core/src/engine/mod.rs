//! The execution engine: iteration models × information flow.
//!
//! The paper structures algorithm execution along two dimensions (§1):
//! *how the graph is iterated* — vertex-centric over adjacency lists,
//! edge-centric over edge arrays, or cell-centric over grids — and *how
//! information flows* — **push** (an active vertex writes its
//! out-neighbors) or **pull** (a vertex reads its in-neighbors and
//! updates itself). This module provides one driver per combination;
//! algorithms supply the per-edge semantics through the [`PushOp`] /
//! [`PullOp`] traits and own their vertex state (atomics, locked
//! arrays, or exclusive writes, depending on the synchronization
//! strategy being measured).
//!
//! Every driver takes an [`ExecContext`] bundling a [`MemProbe`] (so
//! the same code path can run under the LLC simulator) and a
//! [`Recorder`] (so a traced run can report edges examined per step);
//! the default [`NullProbe`](egraph_cachesim::NullProbe) /
//! [`NullRecorder`](crate::telemetry::NullRecorder) specializations
//! compile both kinds of instrumentation away.

use egraph_cachesim::probe::regions;
use egraph_cachesim::MemProbe;
use egraph_parallel::timeline;

use crate::frontier::{FrontierKind, NextFrontier, VertexSubset};
use crate::layout::{Grid, NeighborAccess};
use crate::telemetry::{ExecContext, Recorder};
use crate::types::{EdgeRecord, VertexId};

/// Counter name drivers report examined edges under.
pub const EDGES_EXAMINED: &str = "engine.edges_examined";

/// Per-edge semantics of a push-mode step.
///
/// `push` is called once per edge whose source is active; it updates
/// the destination's state (with whatever synchronization the
/// implementation chose) and reports whether the destination was
/// *newly* activated, in which case the engine adds it to the next
/// frontier.
pub trait PushOp<E: EdgeRecord>: Sync {
    /// Bytes of per-vertex metadata this algorithm touches per access —
    /// the stride used for simulated cache addresses (e.g. 1 byte for
    /// BFS's visited map, 12 bytes for PageRank's rank/degree records).
    const META_BYTES: u64 = 8;

    /// Processes one edge; returns `true` if the destination became
    /// active for the next step.
    fn push(&self, e: &E) -> bool;

    /// Whether `src` is active (used by edge-centric and grid drivers,
    /// which scan edges regardless of activity). Defaults to `true`
    /// (all-active algorithms such as PageRank and SpMV).
    #[inline]
    fn source_active(&self, _src: VertexId) -> bool {
        true
    }
}

/// Per-edge semantics of a pull-mode step.
pub trait PullOp<E: EdgeRecord>: Sync {
    /// See [`PushOp::META_BYTES`].
    const META_BYTES: u64 = 8;

    /// Whether `dst` should scan its in-edges this step (e.g. BFS skips
    /// already-discovered vertices).
    fn wants_pull(&self, dst: VertexId) -> bool;

    /// Processes one in-edge of `dst` (`e.src()` is the providing
    /// neighbor). Returns `true` to stop scanning the remaining
    /// in-edges — the mid-iteration early termination that only pull
    /// mode allows (§6.1.1).
    fn pull(&self, dst: VertexId, e: &E) -> bool;

    /// Processes one span (at most [`crate::layout::SPAN_EDGES`]
    /// in-edges) of `dst` and returns how many edges it consumed;
    /// consuming fewer than `edges.len()` stops the scan (the span
    /// form of [`Self::pull`]'s early termination, so `i + 1` when
    /// edge `i` stopped).
    ///
    /// The default forwards to [`Self::pull`] edge by edge, issuing
    /// [`Self::prefetch_src`] for the edge [`prefetch distance`]
    /// (crate::simd::prefetch_distance) ahead. Vectorized operators
    /// (PageRank/SpMV pull) override it with a whole-span gather.
    /// Drivers only take this fast path when the cache probe is off —
    /// probed runs keep the exact per-edge [`Self::pull`] loop.
    #[inline]
    fn pull_span(&self, dst: VertexId, edges: &[E]) -> usize {
        let dist = crate::simd::prefetch_distance();
        for (i, e) in edges.iter().enumerate() {
            if dist != 0 {
                if let Some(ahead) = edges.get(i + dist) {
                    self.prefetch_src(ahead);
                }
            }
            if self.pull(dst, e) {
                return i + 1;
            }
        }
        edges.len()
    }

    /// Issues a software-prefetch hint for the source-side state this
    /// operator will read when it processes `e` (e.g. `prev[e.src()]`).
    /// Default: no hint.
    #[inline]
    fn prefetch_src(&self, _e: &E) {}

    /// After the scan: did `dst` activate for the next step?
    fn activated(&self, dst: VertexId) -> bool;
}

#[inline]
fn touch_edge<P: MemProbe>(probe: &P, addr: u64) {
    probe.touch(egraph_cachesim::AccessKind::Edge, addr);
}

#[inline]
fn touch_src<P: MemProbe>(probe: &P, v: VertexId, stride: u64) {
    probe.touch(
        egraph_cachesim::AccessKind::SrcMeta,
        regions::SRC_META + v as u64 * stride,
    );
}

#[inline]
fn touch_dst<P: MemProbe>(probe: &P, v: VertexId, stride: u64) {
    probe.touch(
        egraph_cachesim::AccessKind::DstMeta,
        regions::DST_META + v as u64 * stride,
    );
}

/// Flushes one chunk's examined-edge count to the recorder; a no-op
/// under `NullRecorder` (the `enabled()` branch folds to `false`).
#[inline]
fn flush_examined<R: Recorder>(recorder: &R, examined: usize) {
    if recorder.enabled() && examined > 0 {
        recorder.record_counter(EDGES_EXAMINED, examined as u64);
    }
}

/// Vertex-centric push over an out-direction (uncompressed or ccsr):
/// processes the out-edges of every frontier vertex and returns the
/// next frontier.
pub fn vertex_push<E, A, O, P, R>(
    out: &A,
    frontier: &VertexSubset,
    op: &O,
    ctx: ExecContext<'_, P, R>,
    next_kind: FrontierKind,
) -> VertexSubset
where
    E: EdgeRecord,
    A: NeighborAccess<E>,
    O: PushOp<E>,
    P: MemProbe,
    R: Recorder,
{
    let _step = timeline::span(timeline::SpanKind::Step, "vertex_push", "push");
    let next = NextFrontier::new(next_kind, out.num_vertices());
    let probe = ctx.probe;
    // Each chunk borrows its worker's activation sink once and pushes
    // straight into the persistent per-worker buffer — no per-chunk
    // allocation, no shared-state flush.
    let process =
        |v: VertexId, sink: &mut crate::frontier::FrontierSink<'_>, examined: &mut usize| {
            let mut k = 0usize;
            out.for_each_span(v, |span| {
                *examined += span.len();
                for e in span {
                    if probe.enabled() {
                        touch_edge(probe, out.edge_sim_addr(v, k));
                        touch_src(probe, v, O::META_BYTES);
                        touch_dst(probe, e.dst(), O::META_BYTES);
                    }
                    k += 1;
                    if op.push(e) {
                        sink.add(e.dst());
                    }
                }
                span.len()
            });
        };
    match frontier {
        VertexSubset::Sparse(list) => {
            egraph_parallel::parallel_for(0..list.len(), 64, |r| {
                let mut sink = next.sink(r.start as u64);
                let mut examined = 0;
                for i in r {
                    process(list[i], &mut sink, &mut examined);
                }
                flush_examined(ctx.recorder, examined);
            });
        }
        VertexSubset::Dense { bitmap, .. } => {
            egraph_parallel::parallel_for(0..out.num_vertices(), 1024, |r| {
                let mut sink = next.sink(r.start as u64);
                let mut examined = 0;
                for v in r {
                    if bitmap.get(v) {
                        process(v as VertexId, &mut sink, &mut examined);
                    }
                }
                flush_examined(ctx.recorder, examined);
            });
        }
    }
    next.finish()
}

/// Edge-centric push: streams the entire edge array, applying `op` to
/// every edge whose source is active. "At every iteration of the
/// computation the whole edge array is scanned" (§4.1).
pub fn edge_push<E, O, P, R>(
    edges: &[E],
    num_vertices: usize,
    op: &O,
    ctx: ExecContext<'_, P, R>,
    next_kind: FrontierKind,
) -> VertexSubset
where
    E: EdgeRecord,
    O: PushOp<E>,
    P: MemProbe,
    R: Recorder,
{
    let _step = timeline::span(timeline::SpanKind::Step, "edge_push", "push");
    let next = NextFrontier::new(next_kind, num_vertices);
    let esize = std::mem::size_of::<E>() as u64;
    let probe = ctx.probe;
    egraph_parallel::parallel_for(0..edges.len(), egraph_parallel::DEFAULT_GRAIN, |r| {
        let mut sink = next.sink(r.start as u64);
        let examined = r.len();
        for i in r {
            let e = &edges[i];
            if probe.enabled() {
                touch_edge(probe, regions::EDGES + i as u64 * esize);
                touch_src(probe, e.src(), O::META_BYTES);
            }
            if op.source_active(e.src()) {
                if probe.enabled() {
                    touch_dst(probe, e.dst(), O::META_BYTES);
                }
                if op.push(e) {
                    sink.add(e.dst());
                }
            }
        }
        flush_examined(ctx.recorder, examined);
    });
    next.finish()
}

/// Vertex-centric pull over an in-direction (uncompressed or ccsr):
/// every vertex that `wants_pull` scans its in-edges (with early
/// termination) and updates only its own state — no synchronization
/// required (§6.1.2).
///
/// When the cache probe is off, each neighbor list is handed to the
/// operator span by span through [`PullOp::pull_span`] — the
/// vectorized/prefetched fast path. Probed runs keep the exact
/// per-edge loop so every simulated edge touch is still issued.
pub fn vertex_pull<E, A, O, P, R>(
    incoming: &A,
    op: &O,
    ctx: ExecContext<'_, P, R>,
    next_kind: FrontierKind,
) -> VertexSubset
where
    E: EdgeRecord,
    A: NeighborAccess<E>,
    O: PullOp<E>,
    P: MemProbe,
    R: Recorder,
{
    let _step = timeline::span(timeline::SpanKind::Step, "vertex_pull", "pull");
    let nv = incoming.num_vertices();
    let next = NextFrontier::new(next_kind, nv);
    let probe = ctx.probe;
    egraph_parallel::parallel_for(0..nv, 1024, |r| {
        let mut sink = next.sink(r.start as u64);
        let mut examined = 0;
        for v in r {
            let v = v as VertexId;
            // The pass over all vertices to check activity is the
            // inherent pull overhead the paper describes.
            if probe.enabled() {
                touch_dst(probe, v, O::META_BYTES);
            }
            if !op.wants_pull(v) {
                continue;
            }
            if probe.enabled() {
                let mut k = 0usize;
                incoming.for_each_span(v, |span| {
                    let mut consumed = 0;
                    for e in span {
                        examined += 1;
                        touch_edge(probe, incoming.edge_sim_addr(v, k));
                        touch_src(probe, e.src(), O::META_BYTES);
                        k += 1;
                        consumed += 1;
                        if op.pull(v, e) {
                            break;
                        }
                    }
                    consumed
                });
            } else {
                incoming.for_each_span(v, |span| {
                    let consumed = op.pull_span(v, span);
                    examined += consumed;
                    consumed
                });
            }
            if op.activated(v) {
                sink.add(v);
            }
        }
        flush_examined(ctx.recorder, examined);
    });
    next.finish()
}

/// Grid push with **column ownership**: each worker owns whole columns,
/// so all writes to a destination range come from one worker and need
/// no locks (§6.1.2). `op.push` may therefore use plain writes.
pub fn grid_push_columns<E, O, P, R>(
    grid: &Grid<E>,
    op: &O,
    ctx: ExecContext<'_, P, R>,
    next_kind: FrontierKind,
) -> VertexSubset
where
    E: EdgeRecord,
    O: PushOp<E>,
    P: MemProbe,
    R: Recorder,
{
    let _step = timeline::span(timeline::SpanKind::Step, "grid_push_columns", "push");
    let next = NextFrontier::new(next_kind, grid.num_vertices());
    let side = grid.side();
    let esize = std::mem::size_of::<E>() as u64;
    let probe = ctx.probe;
    egraph_parallel::parallel_for(0..side, 1, |cols| {
        let mut sink = next.sink(cols.start as u64);
        let mut examined = 0;
        for col in cols {
            for row in 0..side {
                let base = grid.cell_base_index(row, col);
                let cell = grid.cell(row, col);
                examined += cell.len();
                for (k, e) in cell.iter().enumerate() {
                    if probe.enabled() {
                        touch_edge(probe, regions::EDGES + (base + k as u64) * esize);
                        touch_src(probe, e.src(), O::META_BYTES);
                    }
                    if op.source_active(e.src()) {
                        if probe.enabled() {
                            touch_dst(probe, e.dst(), O::META_BYTES);
                        }
                        if op.push(e) {
                            sink.add(e.dst());
                        }
                    }
                }
            }
        }
        flush_examined(ctx.recorder, examined);
    });
    next.finish()
}

/// Grid push over individual cells, in arbitrary parallel order: the
/// "grid (locks)" configuration of Fig. 8 — `op.push` must synchronize
/// its destination updates.
pub fn grid_push_cells<E, O, P, R>(
    grid: &Grid<E>,
    op: &O,
    ctx: ExecContext<'_, P, R>,
    next_kind: FrontierKind,
) -> VertexSubset
where
    E: EdgeRecord,
    O: PushOp<E>,
    P: MemProbe,
    R: Recorder,
{
    let _step = timeline::span(timeline::SpanKind::Step, "grid_push_cells", "push");
    let next = NextFrontier::new(next_kind, grid.num_vertices());
    let side = grid.side();
    let esize = std::mem::size_of::<E>() as u64;
    let probe = ctx.probe;
    egraph_parallel::parallel_for(0..side * side, 1, |cells| {
        let mut sink = next.sink(cells.start as u64);
        let mut examined = 0;
        for cell_id in cells {
            let (row, col) = (cell_id / side, cell_id % side);
            let base = grid.cell_base_index(row, col);
            let cell = grid.cell(row, col);
            examined += cell.len();
            for (k, e) in cell.iter().enumerate() {
                if probe.enabled() {
                    touch_edge(probe, regions::EDGES + (base + k as u64) * esize);
                    touch_src(probe, e.src(), O::META_BYTES);
                }
                if op.source_active(e.src()) {
                    if probe.enabled() {
                        touch_dst(probe, e.dst(), O::META_BYTES);
                    }
                    if op.push(e) {
                        sink.add(e.dst());
                    }
                }
            }
        }
        flush_examined(ctx.recorder, examined);
    });
    next.finish()
}

/// Grid pull with **row ownership** over a *transposed* grid.
///
/// The grid must have been built with
/// [`crate::preprocess::GridBuilder::transposed`], so each stored edge
/// reads `(receiver, provider)`: rows group by receiver, making the
/// receiver updates of a row exclusive to its worker — pull without
/// locks (§6.1.2).
pub fn grid_pull_rows<E, O, P, R>(
    grid: &Grid<E>,
    op: &O,
    ctx: ExecContext<'_, P, R>,
    next_kind: FrontierKind,
) -> VertexSubset
where
    E: EdgeRecord,
    O: PullOp<E>,
    P: MemProbe,
    R: Recorder,
{
    let _step = timeline::span(timeline::SpanKind::Step, "grid_pull_rows", "pull");
    let next = NextFrontier::new(next_kind, grid.num_vertices());
    let side = grid.side();
    let esize = std::mem::size_of::<E>() as u64;
    let probe = ctx.probe;
    egraph_parallel::parallel_for(0..side, 1, |rows| {
        let mut sink = next.sink(rows.start as u64);
        let mut examined = 0;
        for row in rows {
            for col in 0..side {
                let base = grid.cell_base_index(row, col);
                let cell = grid.cell(row, col);
                examined += cell.len();
                for (k, e) in cell.iter().enumerate() {
                    let receiver = e.src();
                    if probe.enabled() {
                        touch_edge(probe, regions::EDGES + (base + k as u64) * esize);
                        touch_dst(probe, receiver, O::META_BYTES);
                    }
                    if !op.wants_pull(receiver) {
                        continue;
                    }
                    if probe.enabled() {
                        touch_src(probe, e.dst(), O::META_BYTES);
                    }
                    let _ = op.pull(receiver, e);
                }
            }
            // Collect activations for this row's exclusive range.
            for v in grid.vertex_range(row) {
                if op.activated(v) {
                    sink.add(v);
                }
            }
        }
        flush_examined(ctx.recorder, examined);
    });
    next.finish()
}

#[cfg(test)]
mod tests;

//! Rendering a [`RunTrace`]'s iteration telemetry as a human-readable
//! report: the engine behind `egraph explain`.
//!
//! The direction-optimization literature (Beamer's hybrid BFS, Ligra's
//! `|frontier edges| > |E|/20` rule) describes *why* an engine switches
//! between push and pull, but a finished run only leaves numbers
//! behind. This module reconstructs the narrative from the schema-v4
//! per-iteration records alone — no access to the graph or the kernel
//! is needed: a table of every step, a density sparkline showing the
//! frontier's rise and fall, and one English sentence per direction
//! switch quoting the observed load against the cutoff that justified
//! it.

use std::fmt::Write as _;

use crate::metrics::StepMode;
use crate::telemetry::{RunTrace, TraceIteration};

/// Unicode block elements from lowest to highest — the classic
/// eight-level sparkline alphabet.
const SPARK_LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Maps each value to a [`SPARK_LEVELS`] glyph, scaled to the maximum
/// of the series (an all-zero series renders as all-low).
pub fn sparkline(values: &[f64]) -> String {
    let max = values.iter().cloned().fold(0.0f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 || !v.is_finite() {
                SPARK_LEVELS[0]
            } else {
                let idx = ((v / max) * (SPARK_LEVELS.len() - 1) as f64).round() as usize;
                SPARK_LEVELS[idx.min(SPARK_LEVELS.len() - 1)]
            }
        })
        .collect()
}

/// One reconstructed direction switch.
#[derive(Debug, Clone, PartialEq)]
pub struct DirectionSwitch {
    /// Step index the engine switched *at* (the first step executed in
    /// the new direction).
    pub step: usize,
    /// Direction before the switch.
    pub from: StepMode,
    /// Direction after the switch.
    pub to: StepMode,
    /// English sentence explaining the switch from the decision log.
    pub sentence: String,
}

/// Reconstructs every push/pull switch in `trace` from its decision
/// log. Each switch quotes the observed load (frontier vertices +
/// frontier out-edges) against the recorded cutoff; forced records
/// (single-direction kernels) are reported as such rather than
/// attributed to the heuristic.
pub fn direction_switches(trace: &RunTrace) -> Vec<DirectionSwitch> {
    let mut switches = Vec::new();
    for w in trace.iterations.windows(2) {
        let (prev, cur) = (&w[0], &w[1]);
        if prev.record.mode == cur.record.mode {
            continue;
        }
        let d = cur.record.decision;
        let relation = if d.says_pull() {
            "exceeds"
        } else {
            "fell below"
        };
        let sentence = if d.forced {
            format!(
                "step {}: direction forced to {} by the variant (observed load {}, cutoff {}).",
                cur.record.step,
                cur.record.mode.as_str(),
                d.observed,
                d.cutoff,
            )
        } else {
            format!(
                "step {}: switched {} -> {} because the observed load {} ({} vertices + {} \
                 frontier edges) {} the cutoff {} (|E|/20 rule).",
                cur.record.step,
                prev.record.mode.as_str(),
                cur.record.mode.as_str(),
                d.observed,
                cur.record.frontier_size,
                d.observed.saturating_sub(cur.record.frontier_size),
                relation,
                d.cutoff,
            )
        };
        switches.push(DirectionSwitch {
            step: cur.record.step,
            from: prev.record.mode,
            to: cur.record.mode,
            sentence,
        });
    }
    switches
}

fn hardware_summary(iter: &TraceIteration) -> String {
    if iter.hardware.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = Vec::new();
    for key in ["cycles", "instructions", "llc_load_misses"] {
        if let Some(v) = iter.hardware.get(key) {
            parts.push(format!("{key}={v:.3e}"));
        }
    }
    if parts.is_empty() {
        // No headline counters available: show whatever the host gave.
        parts.extend(
            iter.hardware
                .iter()
                .take(2)
                .map(|(k, v)| format!("{k}={v:.3e}")),
        );
    }
    parts.join(" ")
}

/// Renders the full report: header, per-iteration table, density
/// sparkline, and the direction-switch narrative.
pub fn explain(trace: &RunTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} run, {} ({} iterations recorded)",
        trace.algorithm,
        trace.schema,
        trace.iterations.len()
    );
    for key in ["layout", "flow", "threads", "input"] {
        if let Some(v) = trace.config.get(key) {
            let _ = writeln!(out, "  {key}: {v}");
        }
    }
    if trace.iterations.is_empty() {
        let _ = writeln!(
            out,
            "\nno per-iteration records: the trace predates schema v4 or the \
             run recorded no steps."
        );
        return out;
    }

    let _ = writeln!(
        out,
        "\n{:>5} {:>5} {:>12} {:>12} {:>9} {:>10} {:>10} {:>10}  hw",
        "step", "mode", "frontier", "edges", "density", "observed", "cutoff", "seconds"
    );
    for iter in &trace.iterations {
        let r = &iter.record;
        let _ = writeln!(
            out,
            "{:>5} {:>5} {:>12} {:>12} {:>9.4} {:>10} {:>10} {:>10.6}  {}",
            r.step,
            r.mode.as_str(),
            r.frontier_size,
            r.edges_scanned,
            r.density,
            r.decision.observed,
            r.decision.cutoff,
            r.seconds,
            hardware_summary(iter),
        );
    }

    let densities: Vec<f64> = trace.iterations.iter().map(|i| i.record.density).collect();
    let _ = writeln!(out, "\ndensity  {}", sparkline(&densities));
    let seconds: Vec<f64> = trace.iterations.iter().map(|i| i.record.seconds).collect();
    let _ = writeln!(out, "seconds  {}", sparkline(&seconds));

    let switches = direction_switches(trace);
    if switches.is_empty() {
        let _ = writeln!(
            out,
            "\nno direction switches: every step ran {}.",
            trace
                .iterations
                .first()
                .map(|i| i.record.mode.as_str())
                .unwrap_or("in one mode")
        );
    } else {
        let _ = writeln!(
            out,
            "\n{} direction switch{}:",
            switches.len(),
            if switches.len() == 1 { "" } else { "es" }
        );
        for s in &switches {
            let _ = writeln!(out, "  {}", s.sentence);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::DirectionDecision;
    use crate::telemetry::IterRecord;

    fn iter(step: usize, mode: StepMode, observed: usize, cutoff: usize) -> TraceIteration {
        IterRecord {
            step,
            frontier_size: observed / 2,
            edges_scanned: observed,
            seconds: 0.001 * (step + 1) as f64,
            mode,
            density: observed as f64 / 1000.0,
            decision: DirectionDecision::heuristic(observed, cutoff),
        }
        .into()
    }

    fn switching_trace() -> RunTrace {
        let mut t = RunTrace::new("bfs");
        t.config.insert("layout".into(), "adj".into());
        t.config.insert("flow".into(), "push-pull".into());
        t.iterations.push(iter(0, StepMode::Push, 10, 50));
        t.iterations.push(iter(1, StepMode::Pull, 400, 50));
        t.iterations.push(iter(2, StepMode::Pull, 300, 50));
        t.iterations.push(iter(3, StepMode::Push, 20, 50));
        t
    }

    #[test]
    fn switches_are_reconstructed_with_both_directions() {
        let switches = direction_switches(&switching_trace());
        assert_eq!(switches.len(), 2);
        assert_eq!(switches[0].step, 1);
        assert_eq!(switches[0].from, StepMode::Push);
        assert_eq!(switches[0].to, StepMode::Pull);
        assert!(
            switches[0].sentence.contains("exceeds the cutoff 50"),
            "{}",
            switches[0].sentence
        );
        assert_eq!(switches[1].step, 3);
        assert!(
            switches[1].sentence.contains("fell below the cutoff 50"),
            "{}",
            switches[1].sentence
        );
    }

    #[test]
    fn forced_switches_say_so() {
        let mut t = RunTrace::new("bfs");
        t.iterations.push(
            IterRecord {
                step: 0,
                frontier_size: 1,
                edges_scanned: 5,
                seconds: 0.0,
                mode: StepMode::Push,
                density: 0.1,
                decision: DirectionDecision::forced(6, 50),
            }
            .into(),
        );
        t.iterations.push(
            IterRecord {
                step: 1,
                frontier_size: 9,
                edges_scanned: 0,
                seconds: 0.0,
                mode: StepMode::Pull,
                density: 0.2,
                decision: DirectionDecision::forced(9, 50),
            }
            .into(),
        );
        let switches = direction_switches(&t);
        assert_eq!(switches.len(), 1);
        assert!(
            switches[0].sentence.contains("forced to pull"),
            "{}",
            switches[0].sentence
        );
    }

    #[test]
    fn report_carries_table_sparkline_and_narrative() {
        let text = explain(&switching_trace());
        assert!(text.contains("bfs run"), "{text}");
        assert!(text.contains("flow: push-pull"), "{text}");
        assert!(text.contains("density  "), "{text}");
        // The dense middle maps to the top sparkline glyph.
        assert!(text.contains('█'), "{text}");
        assert!(text.contains("2 direction switches:"), "{text}");
        assert!(text.contains("switched push -> pull"), "{text}");
        assert!(text.contains("switched pull -> push"), "{text}");
    }

    #[test]
    fn empty_trace_reports_no_iterations() {
        let text = explain(&RunTrace::new("bfs"));
        assert!(text.contains("no per-iteration records"), "{text}");
    }

    #[test]
    fn single_mode_trace_reports_no_switches() {
        let mut t = RunTrace::new("pagerank");
        t.iterations.push(iter(0, StepMode::Pull, 100, 50));
        t.iterations.push(iter(1, StepMode::Pull, 100, 50));
        let text = explain(&t);
        assert!(
            text.contains("no direction switches: every step ran pull."),
            "{text}"
        );
    }

    #[test]
    fn sparkline_scales_to_max_and_survives_zeroes() {
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }
}

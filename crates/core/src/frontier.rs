//! Vertex subsets (frontiers) and their sparse/dense duality.
//!
//! Frontier-driven algorithms keep "the subset of vertices or edges to
//! be processed during a computation step […] in a work queue" (§2).
//! Small frontiers are cheapest as sparse vertex lists; large frontiers
//! (and pull-mode membership tests) want a dense bitmap. The engine
//! switches representation based on frontier density, like Ligra.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::types::VertexId;
use crate::util::AtomicBitmap;

/// A set of active vertices.
#[derive(Debug)]
pub enum VertexSubset {
    /// An unordered list of distinct vertex ids.
    Sparse(Vec<VertexId>),
    /// A bitmap over all vertices plus the number of set bits.
    Dense {
        /// Membership bitmap (length = number of graph vertices).
        bitmap: AtomicBitmap,
        /// Number of set bits.
        count: usize,
    },
}

impl VertexSubset {
    /// The empty subset.
    pub fn empty() -> Self {
        VertexSubset::Sparse(Vec::new())
    }

    /// A singleton subset.
    pub fn single(v: VertexId) -> Self {
        VertexSubset::Sparse(vec![v])
    }

    /// The full vertex set `0..num_vertices`, dense.
    pub fn all(num_vertices: usize) -> Self {
        let bitmap = AtomicBitmap::new(num_vertices);
        egraph_parallel::parallel_for(0..num_vertices, 1 << 14, |r| {
            for v in r {
                bitmap.set(v);
            }
        });
        VertexSubset::Dense {
            bitmap,
            count: num_vertices,
        }
    }

    /// Builds a sparse subset from a vertex list (must be duplicate
    /// free).
    pub fn from_vec(vertices: Vec<VertexId>) -> Self {
        VertexSubset::Sparse(vertices)
    }

    /// Number of active vertices.
    pub fn len(&self) -> usize {
        match self {
            VertexSubset::Sparse(v) => v.len(),
            VertexSubset::Dense { count, .. } => *count,
        }
    }

    /// Whether no vertex is active.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test. Sparse subsets fall back to a linear scan, so
    /// callers needing many tests should convert to dense first.
    pub fn contains(&self, v: VertexId) -> bool {
        match self {
            VertexSubset::Sparse(list) => list.contains(&v),
            VertexSubset::Dense { bitmap, .. } => bitmap.get(v as usize),
        }
    }

    /// Calls `f` for every active vertex, in parallel.
    pub fn for_each(&self, f: impl Fn(VertexId) + Sync) {
        match self {
            VertexSubset::Sparse(list) => {
                egraph_parallel::parallel_for(0..list.len(), 256, |r| {
                    for i in r {
                        f(list[i]);
                    }
                });
            }
            VertexSubset::Dense { bitmap, .. } => {
                bitmap.for_each_set(|v| f(v as VertexId));
            }
        }
    }

    /// Returns a dense version of this subset (self if already dense).
    pub fn into_dense(self, num_vertices: usize) -> Self {
        match self {
            VertexSubset::Sparse(list) => {
                let bitmap = AtomicBitmap::new(num_vertices);
                let count = list.len();
                egraph_parallel::parallel_for(0..list.len(), 1 << 12, |r| {
                    for i in r {
                        bitmap.set(list[i] as usize);
                    }
                });
                VertexSubset::Dense { bitmap, count }
            }
            dense => dense,
        }
    }

    /// Returns a sparse version of this subset (self if already
    /// sparse). The list is sorted for dense inputs.
    pub fn into_sparse(self) -> Self {
        match self {
            VertexSubset::Dense { bitmap, .. } => VertexSubset::Sparse(bitmap.to_vec()),
            sparse => sparse,
        }
    }

    /// Sum of out-degrees of the active vertices — the quantity
    /// direction-optimizing BFS compares against the push/pull switch
    /// threshold.
    pub fn out_edge_count(&self, degree_of: impl Fn(VertexId) -> usize + Sync) -> usize {
        let total = AtomicUsize::new(0);
        self.for_each(|v| {
            total.fetch_add(degree_of(v), Ordering::Relaxed);
        });
        total.into_inner()
    }
}

/// Which representation a step should produce for the next frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontierKind {
    /// Collect activated vertices into per-chunk lists (small
    /// frontiers).
    Sparse,
    /// Mark activated vertices in a bitmap (large frontiers, or when
    /// duplicate activations are possible).
    Dense,
}

/// Concurrent accumulator for the next frontier.
#[derive(Debug)]
pub enum NextFrontier {
    /// Sparse accumulation; chunks of activated vertices are appended
    /// in batches.
    Sparse(Mutex<Vec<VertexId>>),
    /// Dense accumulation via an atomic bitmap.
    Dense {
        /// Activation bitmap.
        bitmap: AtomicBitmap,
        /// Running count of activations that won their race.
        count: AtomicUsize,
    },
}

impl NextFrontier {
    /// Creates an accumulator of the requested kind for a graph of
    /// `num_vertices`.
    pub fn new(kind: FrontierKind, num_vertices: usize) -> Self {
        match kind {
            FrontierKind::Sparse => NextFrontier::Sparse(Mutex::new(Vec::new())),
            FrontierKind::Dense => NextFrontier::Dense {
                bitmap: AtomicBitmap::new(num_vertices),
                count: AtomicUsize::new(0),
            },
        }
    }

    /// Records one activated vertex. For sparse accumulation the caller
    /// must guarantee each vertex is recorded at most once (push rules
    /// do this by claiming the vertex atomically before reporting it).
    #[inline]
    pub fn add(&self, v: VertexId) {
        match self {
            NextFrontier::Sparse(list) => list.lock().push(v),
            NextFrontier::Dense { bitmap, count } => {
                if bitmap.set(v as usize) {
                    count.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Appends a batch of activated vertices (amortizes sparse
    /// locking; workers buffer per chunk and flush once).
    pub fn extend(&self, batch: &[VertexId]) {
        match self {
            NextFrontier::Sparse(list) => list.lock().extend_from_slice(batch),
            NextFrontier::Dense { bitmap, count } => {
                let mut added = 0;
                for &v in batch {
                    if bitmap.set(v as usize) {
                        added += 1;
                    }
                }
                count.fetch_add(added, Ordering::Relaxed);
            }
        }
    }

    /// Finalizes into a [`VertexSubset`].
    pub fn finish(self) -> VertexSubset {
        match self {
            NextFrontier::Sparse(list) => VertexSubset::Sparse(list.into_inner()),
            NextFrontier::Dense { bitmap, count } => VertexSubset::Dense {
                bitmap,
                count: count.into_inner(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        assert!(VertexSubset::empty().is_empty());
        let s = VertexSubset::single(7);
        assert_eq!(s.len(), 1);
        assert!(s.contains(7));
        assert!(!s.contains(6));
    }

    #[test]
    fn all_is_full() {
        let s = VertexSubset::all(100);
        assert_eq!(s.len(), 100);
        assert!(s.contains(0));
        assert!(s.contains(99));
    }

    #[test]
    fn dense_sparse_roundtrip() {
        let s = VertexSubset::from_vec(vec![3, 1, 4, 15]);
        let dense = s.into_dense(16);
        assert_eq!(dense.len(), 4);
        assert!(dense.contains(15));
        let sparse = dense.into_sparse();
        if let VertexSubset::Sparse(mut v) = sparse {
            v.sort_unstable();
            assert_eq!(v, vec![1, 3, 4, 15]);
        } else {
            panic!("expected sparse");
        }
    }

    #[test]
    fn for_each_visits_every_member() {
        let s = VertexSubset::from_vec((0..1000).collect());
        let seen = AtomicBitmap::new(1000);
        s.for_each(|v| {
            assert!(seen.set(v as usize));
        });
        assert_eq!(seen.count_ones(), 1000);
    }

    #[test]
    fn out_edge_count_sums_degrees() {
        let s = VertexSubset::from_vec(vec![0, 2]);
        let count = s.out_edge_count(|v| (v as usize + 1) * 10);
        assert_eq!(count, 10 + 30);
    }

    #[test]
    fn next_frontier_sparse_collects() {
        let nf = NextFrontier::new(FrontierKind::Sparse, 100);
        nf.add(5);
        nf.extend(&[7, 9]);
        let s = nf.finish();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn next_frontier_dense_dedups() {
        let nf = NextFrontier::new(FrontierKind::Dense, 100);
        egraph_parallel::parallel_for(0..1000, 16, |r| {
            for i in r {
                nf.add((i % 10) as u32);
            }
        });
        let s = nf.finish();
        assert_eq!(s.len(), 10);
    }
}

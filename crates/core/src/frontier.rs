//! Vertex subsets (frontiers) and their sparse/dense duality.
//!
//! Frontier-driven algorithms keep "the subset of vertices or edges to
//! be processed during a computation step […] in a work queue" (§2).
//! Small frontiers are cheapest as sparse vertex lists; large frontiers
//! (and pull-mode membership tests) want a dense bitmap. The engine
//! switches representation based on frontier density, like Ligra.

use egraph_parallel::{parallel_collect_ordered, OrderedBuf, WorkerGuard, WorkerLocal};

use crate::types::VertexId;
use crate::util::AtomicBitmap;

/// A set of active vertices.
#[derive(Debug)]
pub enum VertexSubset {
    /// An unordered list of distinct vertex ids.
    Sparse(Vec<VertexId>),
    /// A bitmap over all vertices plus the number of set bits.
    Dense {
        /// Membership bitmap (length = number of graph vertices).
        bitmap: AtomicBitmap,
        /// Number of set bits.
        count: usize,
    },
}

impl VertexSubset {
    /// The empty subset.
    pub fn empty() -> Self {
        VertexSubset::Sparse(Vec::new())
    }

    /// A singleton subset.
    pub fn single(v: VertexId) -> Self {
        VertexSubset::Sparse(vec![v])
    }

    /// The full vertex set `0..num_vertices`, dense.
    pub fn all(num_vertices: usize) -> Self {
        let bitmap = AtomicBitmap::new(num_vertices);
        egraph_parallel::parallel_for(0..num_vertices, 1 << 14, |r| {
            for v in r {
                bitmap.set(v);
            }
        });
        VertexSubset::Dense {
            bitmap,
            count: num_vertices,
        }
    }

    /// Builds a sparse subset from a vertex list (must be duplicate
    /// free).
    pub fn from_vec(vertices: Vec<VertexId>) -> Self {
        VertexSubset::Sparse(vertices)
    }

    /// Number of active vertices.
    pub fn len(&self) -> usize {
        match self {
            VertexSubset::Sparse(v) => v.len(),
            VertexSubset::Dense { count, .. } => *count,
        }
    }

    /// Whether no vertex is active.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test. Sparse subsets fall back to a linear scan, so
    /// callers needing many tests should convert to dense first.
    pub fn contains(&self, v: VertexId) -> bool {
        match self {
            VertexSubset::Sparse(list) => list.contains(&v),
            VertexSubset::Dense { bitmap, .. } => bitmap.get(v as usize),
        }
    }

    /// Calls `f` for every active vertex, in parallel.
    pub fn for_each(&self, f: impl Fn(VertexId) + Sync) {
        match self {
            VertexSubset::Sparse(list) => {
                egraph_parallel::parallel_for(0..list.len(), 256, |r| {
                    for i in r {
                        f(list[i]);
                    }
                });
            }
            VertexSubset::Dense { bitmap, .. } => {
                bitmap.for_each_set(|v| f(v as VertexId));
            }
        }
    }

    /// Returns a dense version of this subset (self if already dense).
    pub fn into_dense(self, num_vertices: usize) -> Self {
        match self {
            VertexSubset::Sparse(list) => {
                let bitmap = AtomicBitmap::new(num_vertices);
                let count = list.len();
                egraph_parallel::parallel_for(0..list.len(), 1 << 12, |r| {
                    for i in r {
                        bitmap.set(list[i] as usize);
                    }
                });
                VertexSubset::Dense { bitmap, count }
            }
            dense => dense,
        }
    }

    /// Returns a sparse version of this subset (self if already
    /// sparse). The list is sorted for dense inputs.
    pub fn into_sparse(self) -> Self {
        match self {
            VertexSubset::Dense { bitmap, .. } => VertexSubset::Sparse(bitmap.to_vec()),
            sparse => sparse,
        }
    }

    /// Sum of out-degrees of the active vertices — the quantity
    /// direction-optimizing BFS compares against the push/pull switch
    /// threshold. Runs as a parallel reduction over per-worker partial
    /// sums; no shared counter (this runs before every switch decision,
    /// so a contended atomic here taxes the whole traversal).
    pub fn out_edge_count(&self, degree_of: impl Fn(VertexId) -> usize + Sync) -> usize {
        match self {
            VertexSubset::Sparse(list) => egraph_parallel::parallel_reduce(
                0..list.len(),
                1024,
                || 0usize,
                |acc, r| list[r].iter().map(|&v| degree_of(v)).sum::<usize>() + acc,
                |a, b| a + b,
            ),
            VertexSubset::Dense { bitmap, .. } => bitmap.sum_over_set(|v| degree_of(v as VertexId)),
        }
    }
}

/// Which representation a step should produce for the next frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontierKind {
    /// Collect activated vertices into per-chunk lists (small
    /// frontiers).
    Sparse,
    /// Mark activated vertices in a bitmap (large frontiers, or when
    /// duplicate activations are possible).
    Dense,
}

/// Concurrent accumulator for the next frontier.
///
/// Sparse accumulation is lock-free: every pool worker owns a private
/// buffer ([`WorkerLocal`]) and [`finish`](NextFrontier::finish)
/// concatenates them with a prefix-sum [`parallel_collect_ordered`] —
/// the frontier-collection scheme of Ligra/GBBS, replacing the former
/// global `Mutex<Vec>`. Engine drivers tag each chunk's activations
/// with the chunk's start index ([`sink`](NextFrontier::sink)), so the
/// collected frontier comes out in serial processing order no matter
/// which worker ran which chunk. Dense accumulation writes an atomic
/// bitmap and defers counting to `finish`, so no shared counter is
/// touched on the per-activation path either.
#[derive(Debug)]
pub enum NextFrontier {
    /// Sparse accumulation into per-worker chunk-ordered buffers.
    Sparse(WorkerLocal<OrderedBuf<VertexId>>),
    /// Dense accumulation via an atomic bitmap; the cardinality is
    /// computed once at `finish`.
    Dense {
        /// Activation bitmap.
        bitmap: AtomicBitmap,
    },
}

impl NextFrontier {
    /// Creates an accumulator of the requested kind for a graph of
    /// `num_vertices`.
    pub fn new(kind: FrontierKind, num_vertices: usize) -> Self {
        match kind {
            FrontierKind::Sparse => NextFrontier::Sparse(WorkerLocal::new(OrderedBuf::new)),
            FrontierKind::Dense => NextFrontier::Dense {
                bitmap: AtomicBitmap::new(num_vertices),
            },
        }
    }

    /// Records one activated vertex. For sparse accumulation the caller
    /// must guarantee each vertex is recorded at most once (push rules
    /// do this by claiming the vertex atomically before reporting it).
    ///
    /// Inside a chunk loop, prefer [`sink`](NextFrontier::sink), which
    /// amortizes the worker-buffer borrow over the whole chunk and
    /// gives the chunk a deterministic position in the collected
    /// frontier. Loose `add`s collate after all ordered chunks.
    #[inline]
    pub fn add(&self, v: VertexId) {
        match self {
            NextFrontier::Sparse(locals) => locals.with(|buf| {
                buf.begin_unordered_chunk();
                buf.push(v);
            }),
            NextFrontier::Dense { bitmap } => {
                bitmap.set(v as usize);
            }
        }
    }

    /// Appends a batch of activated vertices.
    pub fn extend(&self, batch: &[VertexId]) {
        match self {
            NextFrontier::Sparse(locals) => locals.with(|buf| {
                buf.begin_unordered_chunk();
                buf.extend_from_slice(batch);
            }),
            NextFrontier::Dense { bitmap } => {
                for &v in batch {
                    bitmap.set(v as usize);
                }
            }
        }
    }

    /// Borrows the calling worker's activation sink for the duration of
    /// a chunk. Engine drivers hold one sink per chunk and push
    /// activations straight into the worker's persistent buffer — no
    /// per-chunk `Vec` allocation, no flush, no lock.
    ///
    /// `order` is the chunk's position key (drivers pass the chunk's
    /// start index): collected sparse frontiers are sorted by it, so
    /// the frontier order matches a serial execution regardless of
    /// which worker processed which chunk, at any thread count.
    #[inline]
    pub fn sink(&self, order: u64) -> FrontierSink<'_> {
        match self {
            NextFrontier::Sparse(locals) => {
                let mut buf = locals.borrow();
                buf.begin_chunk(order);
                FrontierSink::Sparse(buf)
            }
            NextFrontier::Dense { bitmap } => FrontierSink::Dense(bitmap),
        }
    }

    /// Finalizes into a [`VertexSubset`].
    pub fn finish(self) -> VertexSubset {
        match self {
            NextFrontier::Sparse(locals) => VertexSubset::Sparse(parallel_collect_ordered(locals)),
            NextFrontier::Dense { bitmap } => {
                let count = bitmap.count_ones();
                VertexSubset::Dense { bitmap, count }
            }
        }
    }
}

/// A per-worker activation sink borrowed from a [`NextFrontier`] for
/// the duration of one chunk of work.
pub enum FrontierSink<'a> {
    /// Exclusive access to the worker's sparse buffer.
    Sparse(WorkerGuard<'a, OrderedBuf<VertexId>>),
    /// Shared atomic bitmap (safe to write from any worker).
    Dense(&'a AtomicBitmap),
}

impl FrontierSink<'_> {
    /// Records one activated vertex.
    #[inline]
    pub fn add(&mut self, v: VertexId) {
        match self {
            FrontierSink::Sparse(buf) => buf.push(v),
            FrontierSink::Dense(bitmap) => {
                bitmap.set(v as usize);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        assert!(VertexSubset::empty().is_empty());
        let s = VertexSubset::single(7);
        assert_eq!(s.len(), 1);
        assert!(s.contains(7));
        assert!(!s.contains(6));
    }

    #[test]
    fn all_is_full() {
        let s = VertexSubset::all(100);
        assert_eq!(s.len(), 100);
        assert!(s.contains(0));
        assert!(s.contains(99));
    }

    #[test]
    fn dense_sparse_roundtrip() {
        let s = VertexSubset::from_vec(vec![3, 1, 4, 15]);
        let dense = s.into_dense(16);
        assert_eq!(dense.len(), 4);
        assert!(dense.contains(15));
        let sparse = dense.into_sparse();
        if let VertexSubset::Sparse(mut v) = sparse {
            v.sort_unstable();
            assert_eq!(v, vec![1, 3, 4, 15]);
        } else {
            panic!("expected sparse");
        }
    }

    #[test]
    fn for_each_visits_every_member() {
        let s = VertexSubset::from_vec((0..1000).collect());
        let seen = AtomicBitmap::new(1000);
        s.for_each(|v| {
            assert!(seen.set(v as usize));
        });
        assert_eq!(seen.count_ones(), 1000);
    }

    #[test]
    fn out_edge_count_sums_degrees() {
        let s = VertexSubset::from_vec(vec![0, 2]);
        let count = s.out_edge_count(|v| (v as usize + 1) * 10);
        assert_eq!(count, 10 + 30);
    }

    #[test]
    fn next_frontier_sparse_collects() {
        let nf = NextFrontier::new(FrontierKind::Sparse, 100);
        nf.add(5);
        nf.extend(&[7, 9]);
        let s = nf.finish();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn next_frontier_sparse_parallel_every_vertex_once() {
        // Stress the per-worker buffers: many chunks, each holding a
        // sink across its whole body, must collect every activation
        // exactly once.
        let n = 100_000usize;
        let nf = NextFrontier::new(FrontierKind::Sparse, n);
        egraph_parallel::parallel_for(0..n, 173, |r| {
            let mut sink = nf.sink(r.start as u64);
            for v in r {
                sink.add(v as VertexId);
            }
        });
        let s = nf.finish();
        assert_eq!(s.len(), n);
        if let VertexSubset::Sparse(mut list) = s {
            list.sort_unstable();
            for (i, &v) in list.iter().enumerate() {
                assert_eq!(v as usize, i);
            }
        } else {
            panic!("expected sparse");
        }
    }

    #[test]
    fn next_frontier_sparse_order_matches_serial_execution() {
        // Chunk-order keys make the collected frontier independent of
        // which worker processed which chunk: the result must equal
        // what a serial scan would produce, at any thread count.
        let n = 50_000usize;
        let nf = NextFrontier::new(FrontierKind::Sparse, n);
        egraph_parallel::parallel_for(0..n, 173, |r| {
            let mut sink = nf.sink(r.start as u64);
            for v in r {
                if v % 7 == 0 {
                    sink.add(v as VertexId);
                }
            }
        });
        let expected: Vec<VertexId> = (0..n).filter(|v| v % 7 == 0).map(|v| v as u32).collect();
        match nf.finish() {
            VertexSubset::Sparse(list) => assert_eq!(list, expected),
            _ => panic!("expected sparse"),
        }
    }

    #[test]
    fn dense_count_reflects_dedup_after_finish() {
        let nf = NextFrontier::new(FrontierKind::Dense, 64);
        let mut sink = nf.sink(0);
        for v in [1u32, 2, 2, 3, 1] {
            sink.add(v);
        }
        drop(sink);
        assert_eq!(nf.finish().len(), 3);
    }

    #[test]
    fn out_edge_count_dense_sums_degrees() {
        let s = VertexSubset::from_vec(vec![0, 2, 65]).into_dense(128);
        let count = s.out_edge_count(|v| v as usize + 1);
        assert_eq!(count, 1 + 3 + 66);
    }

    #[test]
    fn next_frontier_dense_dedups() {
        let nf = NextFrontier::new(FrontierKind::Dense, 100);
        egraph_parallel::parallel_for(0..1000, 16, |r| {
            for i in r {
                nf.add((i % 10) as u32);
            }
        });
        let s = nf.finish();
        assert_eq!(s.len(), 10);
    }
}

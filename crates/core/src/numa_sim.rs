//! NUMA-aware partitioning and the locality simulation behind the §7
//! experiments.
//!
//! The **partitioning work is real**: [`partition_by_target`] splits
//! vertices into edge-balanced contiguous ranges (one per NUMA node)
//! and physically groups every edge with the node owning its *target*
//! vertex — the Polymer/Gemini placement that turns push-mode writes
//! into local writes. Its cost is measured with a wall clock and
//! reported as the "Partitioning" bar of Fig. 9/10.
//!
//! The **timing consequences are modeled**: this host has one NUMA
//! node, so instead of timing remote accesses we *count* them.
//! [`pagerank_locality`] and [`bfs_locality`] replay the exact access
//! pattern of the respective algorithm against a [`Placement`] and
//! produce the node-to-node traffic matrix that
//! [`egraph_numa::CostModel`] converts into a modeled slowdown.
//! Work stealing is modeled by a waterfall ([`waterfall_issue`]): each
//! node first processes the work stored locally, then the overflow of
//! busier nodes is spread over idle ones — which is how a concentrated
//! BFS frontier ends up with every core hammering one memory
//! controller (§7.2).

use std::ops::Range;
use std::time::Instant;

use egraph_numa::{
    edge_balanced_ranges, CostModel, LocalityStats, MemoryBoundness, ModeledTime, Placement,
};

use crate::types::{EdgeList, EdgeRecord};

/// The locality summary of one algorithm execution under a placement.
///
/// Besides the aggregate node-to-node matrix, it keeps the
/// **work-weighted peak target share**: the hotspot concentration of
/// each round weighted by that round's traffic. For BFS the aggregate
/// matrix looks balanced (the hotspot moves from partition to partition
/// as the wavefront advances) while at any instant all cores hammer a
/// single controller — the weighted peak captures that (§7.2).
#[derive(Debug)]
pub struct LocalityProfile {
    /// Aggregate access matrix over the whole run.
    pub stats: LocalityStats,
    /// Work-weighted per-round peak target share.
    pub weighted_peak_share: f64,
}

impl LocalityProfile {
    /// Applies a machine cost model to this profile.
    pub fn modeled(
        &self,
        model: &CostModel,
        measured_seconds: f64,
        boundness: MemoryBoundness,
    ) -> ModeledTime {
        model.model_parts(
            measured_seconds,
            boundness,
            self.stats.remote_fraction(),
            self.weighted_peak_share,
        )
    }
}

/// Accumulates per-round matrices into an aggregate plus the
/// work-weighted peak share.
struct ProfileBuilder {
    stats: LocalityStats,
    num_nodes: usize,
    weighted_peak_sum: f64,
    weight_sum: f64,
}

impl ProfileBuilder {
    fn new(num_nodes: usize) -> Self {
        Self {
            stats: LocalityStats::new(num_nodes),
            num_nodes,
            weighted_peak_sum: 0.0,
            weight_sum: 0.0,
        }
    }

    fn add_round(&mut self, round: &LocalityStats) {
        let total = round.total();
        if total == 0 {
            return;
        }
        for from in 0..self.num_nodes {
            for to in 0..self.num_nodes {
                let c = round.get(from, to);
                if c > 0 {
                    self.stats.record(from, to, c);
                }
            }
        }
        self.weighted_peak_sum += round.peak_target_share() * total as f64;
        self.weight_sum += total as f64;
    }

    fn finish(self) -> LocalityProfile {
        let weighted_peak_share = if self.weight_sum == 0.0 {
            1.0 / self.num_nodes as f64
        } else {
            self.weighted_peak_sum / self.weight_sum
        };
        LocalityProfile {
            stats: self.stats,
            weighted_peak_share,
        }
    }
}

/// How the graph data is placed across NUMA nodes (§7.2's comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataPolicy {
    /// Pages interleaved round-robin across nodes (the baseline).
    Interleaved,
    /// Polymer/Gemini partitioning: contiguous vertex ranges, edges
    /// colocated with their target vertex.
    NumaAware,
}

/// The result of NUMA-aware partitioning.
#[derive(Debug)]
pub struct NumaPartition<E> {
    /// Vertex ownership ranges, one per node.
    pub vertex_ranges: Vec<Range<usize>>,
    /// Edges grouped by owning node (the owner of their destination).
    pub per_node_edges: Vec<Vec<E>>,
    /// Wall-clock seconds the partitioning took (the pre-processing
    /// the paper charges to NUMA-awareness).
    pub seconds: f64,
}

impl<E: EdgeRecord> NumaPartition<E> {
    /// The placement describing vertex ownership.
    pub fn placement(&self) -> Placement {
        Placement::Partitioned(self.vertex_ranges.clone())
    }

    /// Total edges across all nodes.
    pub fn num_edges(&self) -> usize {
        self.per_node_edges.iter().map(Vec::len).sum()
    }
}

/// Partitions a graph across `num_nodes` NUMA nodes following Polymer
/// and Gemini: vertices split into contiguous edge-balanced ranges,
/// "the outgoing edges of vertices are colocated with their target
/// vertices" (§7.1).
pub fn partition_by_target<E: EdgeRecord>(
    input: &EdgeList<E>,
    num_nodes: usize,
) -> NumaPartition<E> {
    let start = Instant::now();
    let num_nodes = num_nodes.max(1);
    // Balance on in-degree: the edges stored on a node are those
    // targeting its vertices. Per-worker plain histograms (merged at
    // the end) avoid an atomic increment per edge.
    let nv = input.num_vertices();
    let in_degrees = egraph_parallel::parallel_reduce(
        0..input.num_edges(),
        1 << 15,
        || vec![0u64; nv],
        |mut acc, r| {
            for e in &input.edges()[r] {
                acc[e.dst() as usize] += 1;
            }
            acc
        },
        |mut a, b| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += *y;
            }
            a
        },
    );
    let vertex_ranges = edge_balanced_ranges(&in_degrees, num_nodes);
    // O(1) ownership lookups through a dense owner table.
    let mut owner = vec![0u8; nv];
    for (node, range) in vertex_ranges.iter().enumerate() {
        owner[range.clone()].fill(node as u8);
    }
    // Physically group the edges per owner node: a single-digit radix
    // pass (sequential bucket writes, like the CSR builders).
    let mut grouped = input.edges().to_vec();
    let owner_key = |e: &E| owner[e.dst() as usize] as u64;
    egraph_sort::radix_sort_by_key(&mut grouped, egraph_sort::key_bits(num_nodes), owner_key);
    let mut per_node_edges = Vec::with_capacity(num_nodes);
    for node in 0..num_nodes {
        let head_len = grouped.partition_point(|e| owner_key(e) <= node as u64);
        let tail = grouped.split_off(head_len);
        per_node_edges.push(std::mem::replace(&mut grouped, tail));
    }
    debug_assert!(grouped.is_empty());
    NumaPartition {
        vertex_ranges,
        per_node_edges,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Models which node's threads process each node's stored work.
///
/// Returns `issue[i][s]` — the fraction of node `s`'s stored work
/// executed by threads of node `i`. Every node first runs its local
/// work up to the even-share capacity; overloaded nodes' overflow is
/// distributed over nodes with spare capacity, proportionally to that
/// spare capacity (work stealing).
pub fn waterfall_issue(work: &[u64], num_nodes: usize) -> Vec<Vec<f64>> {
    let total: u64 = work.iter().sum();
    let mut issue = vec![vec![0.0f64; num_nodes]; num_nodes];
    if total == 0 {
        return issue;
    }
    let capacity = total as f64 / num_nodes as f64;
    let mut spare = vec![0.0f64; num_nodes];
    let mut overflow = vec![0.0f64; num_nodes];
    for s in 0..num_nodes {
        let w = work[s] as f64;
        let local = w.min(capacity);
        if w > 0.0 {
            issue[s][s] = local / w;
        }
        overflow[s] = w - local;
        spare[s] = capacity - local;
    }
    let total_spare: f64 = spare.iter().sum();
    if total_spare > 0.0 {
        for s in 0..num_nodes {
            if overflow[s] > 0.0 {
                for i in 0..num_nodes {
                    if spare[i] > 0.0 {
                        // Node i steals its proportional share of s's
                        // overflow.
                        issue[i][s] += (overflow[s] / work[s] as f64) * (spare[i] / total_spare);
                    }
                }
            }
        }
    }
    issue
}

/// Per-storage-node work and read-target distribution of a set of
/// edges under a placement.
struct EdgeTraffic {
    /// `cross[s][t]`: edges stored on node `s` whose source metadata
    /// lives on node `t`.
    cross: Vec<Vec<u64>>,
    /// `work[s]`: total edges stored on node `s`.
    work: Vec<u64>,
}

/// Whether the NUMA-aware policy replicates read-mostly vertex data on
/// every node, as Polymer does ("vertex data replicated across nodes"):
/// random reads then hit the local replica, at the price of a bulk
/// per-iteration refresh that is bandwidth-friendly and negligible next
/// to the random-access traffic modeled here.
const NUMA_AWARE_REPLICATES_READS: bool = true;

fn classify_edges<'a, E: EdgeRecord>(
    edges: impl Iterator<Item = &'a E>,
    storage: &Placement,
    meta: &Placement,
    num_nodes: usize,
) -> EdgeTraffic {
    let mut cross = vec![vec![0u64; num_nodes]; num_nodes];
    let mut work = vec![0u64; num_nodes];
    for (idx, e) in edges.enumerate() {
        let s = match storage {
            // Interleaved edge pages: stripe by edge index.
            Placement::Interleaved { stripe, num_nodes } => (idx / stripe) % num_nodes,
            // NUMA-aware: colocated with the target vertex.
            Placement::Partitioned(_) => storage.owner_of(e.dst() as usize),
        };
        let src_owner = meta.owner_of(e.src() as usize);
        cross[s][src_owner] += 1;
        work[s] += 1;
    }
    EdgeTraffic { cross, work }
}

/// Fixed-point scale used when folding fractional work-stealing shares
/// into the integer locality counters (only ratios matter downstream).
const COUNT_SCALE: f64 = 4096.0;

/// Accumulates one processing round into the locality matrix: reads of
/// source metadata (per `cross`) plus writes of destination metadata
/// (local to the storage node for NUMA-aware placement, striped for
/// interleaved).
fn accumulate_round(
    stats: &LocalityStats,
    traffic: &EdgeTraffic,
    write_targets_storage: bool,
    num_nodes: usize,
) {
    let issue = waterfall_issue(&traffic.work, num_nodes);
    // The NUMA-aware policy is the one that colocates writes with
    // storage; it is also the one that replicates read-mostly data.
    let replicated_reads = write_targets_storage && NUMA_AWARE_REPLICATES_READS;
    for s in 0..num_nodes {
        if traffic.work[s] == 0 {
            continue;
        }
        for (i, issue_i) in issue.iter().enumerate() {
            let f = issue_i[s];
            if f == 0.0 {
                continue;
            }
            // Reads of source metadata.
            if replicated_reads {
                // Reads hit the issuer's local replica.
                let reads = (f * traffic.work[s] as f64 * COUNT_SCALE).round() as u64;
                if reads > 0 {
                    stats.record(i, i, reads);
                }
            } else {
                for t in 0..num_nodes {
                    let reads = (f * traffic.cross[s][t] as f64 * COUNT_SCALE).round() as u64;
                    if reads > 0 {
                        stats.record(i, t, reads);
                    }
                }
            }
            // Writes of destination metadata.
            let writes = f * traffic.work[s] as f64 * COUNT_SCALE;
            if write_targets_storage {
                let w = writes.round() as u64;
                if w > 0 {
                    stats.record(i, s, w);
                }
            } else {
                // Interleaved destination metadata: uniform spread.
                let per = (writes / num_nodes as f64).round() as u64;
                if per > 0 {
                    for t in 0..num_nodes {
                        stats.record(i, t, per);
                    }
                }
            }
        }
    }
}

fn placements_for<E: EdgeRecord>(
    input: &EdgeList<E>,
    policy: DataPolicy,
    num_nodes: usize,
) -> (Placement, Placement, bool) {
    match policy {
        DataPolicy::Interleaved => (
            Placement::interleaved(num_nodes, std::mem::size_of::<E>()),
            Placement::interleaved(num_nodes, 8),
            false,
        ),
        DataPolicy::NumaAware => {
            let in_degrees = input.in_degrees();
            let ranges = edge_balanced_ranges(&in_degrees, num_nodes);
            (
                Placement::Partitioned(ranges.clone()),
                Placement::Partitioned(ranges),
                true,
            )
        }
    }
}

/// Locality matrix of a PageRank-like computation: every edge is
/// processed once per iteration (one iteration's counts — the matrix
/// scales linearly with iterations, which cancels in the model's
/// ratios).
pub fn pagerank_locality<E: EdgeRecord>(
    input: &EdgeList<E>,
    policy: DataPolicy,
    num_nodes: usize,
) -> LocalityProfile {
    let mut builder = ProfileBuilder::new(num_nodes);
    let round = LocalityStats::new(num_nodes);
    let (storage, meta, writes_local) = placements_for(input, policy, num_nodes);
    let traffic = classify_edges(input.edges().iter(), &storage, &meta, num_nodes);
    accumulate_round(&round, &traffic, writes_local, num_nodes);
    builder.add_round(&round);
    builder.finish()
}

/// Locality matrix of a BFS from `root`: per level, only the edges out
/// of that level's frontier are processed, which concentrates work on
/// few partitions (§7.2's contention effect).
pub fn bfs_locality<E: EdgeRecord>(
    input: &EdgeList<E>,
    root: u32,
    policy: DataPolicy,
    num_nodes: usize,
) -> LocalityProfile {
    let mut builder = ProfileBuilder::new(num_nodes);
    let (storage, meta, writes_local) = placements_for(input, policy, num_nodes);

    // Reference BFS levels (serial, on a temporary adjacency).
    let nv = input.num_vertices();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); nv];
    for e in input.edges() {
        adj[e.src() as usize].push(e.dst());
    }
    let mut level = vec![u32::MAX; nv];
    if nv == 0 {
        return builder.finish();
    }
    level[root as usize] = 0;
    let mut queue = std::collections::VecDeque::from([root]);
    let mut max_level = 0;
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u as usize] {
            if level[v as usize] == u32::MAX {
                level[v as usize] = level[u as usize] + 1;
                max_level = max_level.max(level[v as usize]);
                queue.push_back(v);
            }
        }
    }

    // One accumulation round per BFS level.
    for l in 0..=max_level {
        let edges_of_level = input
            .edges()
            .iter()
            .filter(|e| level[e.src() as usize] == l);
        let traffic = classify_edges(edges_of_level, &storage, &meta, num_nodes);
        if traffic.work.iter().sum::<u64>() == 0 {
            continue;
        }
        let round = LocalityStats::new(num_nodes);
        accumulate_round(&round, &traffic, writes_local, num_nodes);
        builder.add_round(&round);
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    fn random_graph(nv: usize, ne: usize, seed: u64) -> EdgeList<Edge> {
        let mut state = seed | 1;
        let mut edges = Vec::with_capacity(ne);
        for _ in 0..ne {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let src = ((state >> 33) % nv as u64) as u32;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let dst = ((state >> 33) % nv as u64) as u32;
            edges.push(Edge::new(src, dst));
        }
        EdgeList::new(nv, edges).unwrap()
    }

    #[test]
    fn partition_conserves_edges_and_covers_vertices() {
        let input = random_graph(1000, 10_000, 3);
        let p = partition_by_target(&input, 4);
        assert_eq!(p.num_edges(), input.num_edges());
        assert_eq!(p.vertex_ranges.len(), 4);
        assert_eq!(p.vertex_ranges[0].start, 0);
        assert_eq!(p.vertex_ranges.last().unwrap().end, 1000);
        // Every edge stored on node s targets a vertex owned by s.
        let placement = p.placement();
        for (node, edges) in p.per_node_edges.iter().enumerate() {
            for e in edges {
                assert_eq!(placement.owner_of(e.dst as usize), node);
            }
        }
    }

    #[test]
    fn partition_balances_edges() {
        let input = random_graph(4000, 40_000, 9);
        let p = partition_by_target(&input, 4);
        let sizes: Vec<usize> = p.per_node_edges.iter().map(Vec::len).collect();
        let max = *sizes.iter().max().unwrap() as f64;
        let min = *sizes.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) < 1.5, "imbalanced: {sizes:?}");
    }

    #[test]
    fn waterfall_balanced_work_stays_local() {
        let issue = waterfall_issue(&[100, 100, 100, 100], 4);
        for (i, row) in issue.iter().enumerate() {
            for (s, &f) in row.iter().enumerate() {
                if i == s {
                    assert!((f - 1.0).abs() < 1e-9);
                } else {
                    assert!(f.abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn waterfall_hotspot_spreads_work() {
        let issue = waterfall_issue(&[400, 0, 0, 0], 4);
        // Node 0 keeps its even share; the rest is stolen equally.
        assert!((issue[0][0] - 0.25).abs() < 1e-9);
        for node in issue.iter().skip(1) {
            assert!((node[0] - 0.25).abs() < 1e-9);
        }
        // Everything sums to 1 per storage node with work.
        let total: f64 = (0..4).map(|i| issue[i][0]).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn waterfall_empty_work() {
        let issue = waterfall_issue(&[0, 0], 2);
        assert_eq!(issue, vec![vec![0.0; 2]; 2]);
    }

    #[test]
    fn numa_aware_pagerank_is_more_local_than_interleaved() {
        let input = random_graph(4000, 60_000, 17);
        let aware = pagerank_locality(&input, DataPolicy::NumaAware, 4);
        let inter = pagerank_locality(&input, DataPolicy::Interleaved, 4);
        assert!(
            aware.stats.remote_fraction() < inter.stats.remote_fraction(),
            "aware {} vs interleaved {}",
            aware.stats.remote_fraction(),
            inter.stats.remote_fraction()
        );
        // Interleaved traffic is ~3/4 remote on 4 nodes.
        assert!((inter.stats.remote_fraction() - 0.75).abs() < 0.1);
    }

    #[test]
    fn bfs_on_road_band_concentrates_on_numa_aware() {
        // A tall road-like lattice with row-major ids: the BFS
        // wavefront from a corner is a narrow band of consecutive rows,
        // i.e. it lives inside one vertex partition at a time — the
        // Fig. 10 effect. Interleaved placement stripes those rows over
        // all nodes, spreading the traffic.
        let (w, h) = (64usize, 256usize);
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                let v = (y * w + x) as u32;
                if x + 1 < w {
                    edges.push(Edge::new(v, v + 1));
                    edges.push(Edge::new(v + 1, v));
                }
                if y + 1 < h {
                    edges.push(Edge::new(v, v + w as u32));
                    edges.push(Edge::new(v + w as u32, v));
                }
            }
        }
        let input = EdgeList::new(w * h, edges).unwrap();
        let aware = bfs_locality(&input, 0, DataPolicy::NumaAware, 4);
        let inter = bfs_locality(&input, 0, DataPolicy::Interleaved, 4);
        // With replicated reads, the aware hotspot is write traffic:
        // all writes plus the hot node's local reads converge on one
        // controller — modeled per-round peak ≈ 0.6.
        assert!(
            aware.weighted_peak_share > 0.45,
            "aware peak {}",
            aware.weighted_peak_share
        );
        assert!(
            inter.weighted_peak_share + 0.1 < aware.weighted_peak_share,
            "interleaved peak {} vs aware {}",
            inter.weighted_peak_share,
            aware.weighted_peak_share
        );
    }

    #[test]
    fn localities_feed_cost_model_with_expected_ordering() {
        use egraph_numa::Topology;
        let input = random_graph(4000, 60_000, 23);
        let model = CostModel::new(Topology::machine_b());
        let aware = pagerank_locality(&input, DataPolicy::NumaAware, 4).modeled(
            &model,
            10.0,
            MemoryBoundness::PAGERANK,
        );
        let inter = pagerank_locality(&input, DataPolicy::Interleaved, 4).modeled(
            &model,
            10.0,
            MemoryBoundness::PAGERANK,
        );
        assert!(
            inter.modeled_seconds > aware.modeled_seconds,
            "Fig 9b: NUMA-aware PageRank must model faster on machine B"
        );
    }
}

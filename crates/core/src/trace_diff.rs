//! Comparing two [`RunTrace`] documents: the regression gate behind
//! `egraph trace diff`.
//!
//! The paper's whole argument rests on *phase-attributed* measurement —
//! a layout that wins the algorithm phase can lose end-to-end to its
//! pre-processing cost (§2). The same discipline applies to guarding a
//! codebase against performance regressions: a diff that only checks
//! total time hides a pre-processing slowdown behind an algorithm
//! speedup. This module therefore compares traces phase by phase
//! (breakdown phases, schema-v2 [`PhaseProfile`]s, and per-phase cache
//! miss ratios) and flags each metric independently.
//!
//! Time metrics gate on a *relative* slowdown above a caller-chosen
//! threshold, with an absolute floor (`min_seconds`) so that a 2 ms
//! phase jittering to 3 ms does not fail a build. Miss ratios gate on
//! the same relative rule. Raw hardware counts and run counters are
//! reported for context but never gate — they scale with the input, not
//! with code quality.

use crate::telemetry::{CounterKind, RunTrace};

/// Phases that legitimately come and go between runs. `compact`
/// ([`crate::exec::PHASE_COMPACT`]) only exists when a run merged a
/// delta log into a fresh snapshot, so a baseline recorded before any
/// updates carries it at zero seconds — the "appeared from zero" rule
/// must not turn the candidate's first compaction into a regression.
/// Optional phases still gate on relative slowdown once both traces
/// spend real time in them.
pub const OPTIONAL_PHASES: &[&str] = &["compact"];

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Metric label, e.g. `"breakdown.algorithm"` or
    /// `"phase.load.llc_miss_ratio(hw)"`.
    pub metric: String,
    /// Value in the old (baseline) trace.
    pub old: f64,
    /// Value in the new (candidate) trace.
    pub new: f64,
    /// Whether this metric participates in the regression gate.
    pub gating: bool,
    /// Whether this row regressed beyond the threshold.
    pub regressed: bool,
}

impl DiffRow {
    /// Relative change in percent (positive = the new run is bigger).
    /// Infinite when the baseline was zero and the candidate is not;
    /// NaN when either side is not a finite number (a corrupt or
    /// partial trace), so callers can render "n/a" instead of
    /// propagating garbage arithmetic.
    pub fn delta_pct(&self) -> f64 {
        if !self.old.is_finite() || !self.new.is_finite() {
            return f64::NAN;
        }
        if self.old == 0.0 {
            if self.new == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.new - self.old) / self.old * 100.0
        }
    }
}

/// The comparison of two traces.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceDiff {
    /// Every compared metric, gating rows first.
    pub rows: Vec<DiffRow>,
    /// Human-readable description of each regression.
    pub regressions: Vec<String>,
}

impl TraceDiff {
    /// Whether any gating metric regressed beyond the threshold.
    pub fn has_regressions(&self) -> bool {
        !self.regressions.is_empty()
    }
}

/// Comparison tuning for [`diff_traces`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffOptions {
    /// Relative slowdown (percent) above which a gating metric
    /// regresses.
    pub threshold_pct: f64,
    /// Time metrics where both runs stayed under this many seconds are
    /// never flagged — sub-noise phases jitter by large percentages.
    pub min_seconds: f64,
    /// Memory metrics where both runs stayed under this many bytes are
    /// never flagged — allocator noise dominates tiny footprints.
    pub min_bytes: f64,
    /// Gate on serve latency percentiles: `serve.latency.*_seconds`
    /// run counters (exported by `exp_serve_latency`) regress under the
    /// same threshold/floor rule as phase times instead of staying
    /// informational. Off by default — batch traces carry no serve
    /// percentiles and an absent counter never gates either way.
    pub gate_serve_latency: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            threshold_pct: 10.0,
            min_seconds: 1e-3,
            min_bytes: (1u64 << 20) as f64,
            gate_serve_latency: false,
        }
    }
}

/// Compares `new` against the `old` baseline.
///
/// Gating metrics: the five breakdown phases plus the derived total,
/// each schema-v2 phase's wall seconds, and each phase's hardware and
/// simulated LLC miss ratio (when both traces carry one). Everything
/// else (hardware counts, run counters) is informational, unless
/// [`DiffOptions::gate_serve_latency`] promotes `serve.latency.*`
/// percentile counters to gating status.
pub fn diff_traces(old: &RunTrace, new: &RunTrace, opts: &DiffOptions) -> TraceDiff {
    let mut diff = TraceDiff::default();

    // Both closures are total over f64: non-finite inputs (corrupt or
    // partial traces) never gate, and a metric appearing from a zero
    // baseline — where the relative rule would divide by zero — gates
    // explicitly instead of slipping through.
    let time_regressed = |old_v: f64, new_v: f64| {
        if !old_v.is_finite() || !new_v.is_finite() {
            return false;
        }
        if old_v.max(new_v) < opts.min_seconds {
            return false;
        }
        if old_v <= 0.0 {
            // A phase that was absent (zero seconds) in the baseline
            // and now costs real time is an infinite relative slowdown.
            return new_v >= opts.min_seconds;
        }
        new_v > old_v * (1.0 + opts.threshold_pct / 100.0)
    };
    let ratio_regressed = |old_v: f64, new_v: f64| {
        if !old_v.is_finite() || !new_v.is_finite() {
            return false;
        }
        if old_v <= 0.0 {
            return new_v > 0.0;
        }
        new_v > old_v * (1.0 + opts.threshold_pct / 100.0)
    };
    let bytes_regressed = |old_v: f64, new_v: f64| {
        if !old_v.is_finite() || !new_v.is_finite() {
            return false;
        }
        if old_v.max(new_v) < opts.min_bytes {
            return false;
        }
        new_v > old_v * (1.0 + opts.threshold_pct / 100.0)
    };

    let ob = &old.breakdown;
    let nb = &new.breakdown;
    for (name, old_v, new_v) in [
        ("load", ob.load, nb.load),
        ("preprocess", ob.preprocess, nb.preprocess),
        ("partition", ob.partition, nb.partition),
        ("algorithm", ob.algorithm, nb.algorithm),
        ("store", ob.store, nb.store),
        ("total", ob.total(), nb.total()),
    ] {
        push_row(
            &mut diff,
            format!("breakdown.{name}"),
            old_v,
            new_v,
            true,
            time_regressed(old_v, new_v),
            "s",
        );
    }

    // Schema-v4 iteration telemetry. Two derived metrics gate:
    //
    // * `iterations.count` — convergence regressions (a kernel change
    //   that makes BFS take 40 levels instead of 8) hide inside the
    //   relative time rule when each level got cheaper. The count gates
    //   on the relative threshold with an absolute slack of 2 steps, so
    //   data-dependent one-off levels never trip it.
    // * `iterations.direction_flips` — a healthy direction-optimizing
    //   run switches push→pull→push a handful of times; a mistuned
    //   cutoff "flaps" every step. More than one extra flip against the
    //   baseline is a decision-logic regression, no matter how fast the
    //   run was.
    //
    // A baseline recorded before schema v4 carries no iterations, so
    // the candidate's records are reported for context but cannot gate.
    if new.iterations.is_empty() || old.iterations.is_empty() {
        if !new.iterations.is_empty() {
            for (metric, value) in [
                ("iterations.count", new.iterations.len() as f64),
                ("iterations.direction_flips", new.direction_flips() as f64),
            ] {
                diff.rows.push(DiffRow {
                    metric: metric.to_string(),
                    old: 0.0,
                    new: value,
                    gating: false,
                    regressed: false,
                });
            }
        }
    } else {
        let (old_n, new_n) = (old.iterations.len() as f64, new.iterations.len() as f64);
        let count_regressed =
            new_n > old_n * (1.0 + opts.threshold_pct / 100.0) && new_n > old_n + 2.0;
        push_row(
            &mut diff,
            "iterations.count".to_string(),
            old_n,
            new_n,
            true,
            count_regressed,
            "",
        );
        let (old_f, new_f) = (old.direction_flips() as f64, new.direction_flips() as f64);
        push_row(
            &mut diff,
            "iterations.direction_flips".to_string(),
            old_f,
            new_f,
            true,
            new_f > old_f + 1.0,
            "",
        );
    }

    // Schema-v2 phases, matched by name; a phase present on only one
    // side is reported but cannot gate (there is nothing to compare).
    for new_phase in &new.phases {
        let Some(old_phase) = old.phases.iter().find(|p| p.name == new_phase.name) else {
            diff.rows.push(DiffRow {
                metric: format!("phase.{}.seconds", new_phase.name),
                old: 0.0,
                new: new_phase.seconds,
                gating: false,
                regressed: false,
            });
            continue;
        };
        let appeared_from_zero = old_phase.seconds <= 0.0;
        let exempt = appeared_from_zero && OPTIONAL_PHASES.contains(&new_phase.name.as_str());
        push_row(
            &mut diff,
            format!("phase.{}.seconds", new_phase.name),
            old_phase.seconds,
            new_phase.seconds,
            !exempt,
            !exempt && time_regressed(old_phase.seconds, new_phase.seconds),
            "s",
        );
        if let (Some(old_r), Some(new_r)) = (
            old_phase.hardware_llc_miss_ratio(),
            new_phase.hardware_llc_miss_ratio(),
        ) {
            push_row(
                &mut diff,
                format!("phase.{}.llc_miss_ratio(hw)", new_phase.name),
                old_r,
                new_r,
                true,
                ratio_regressed(old_r, new_r),
                "",
            );
        }
        if let (Some(old_sim), Some(new_sim)) = (&old_phase.simulated, &new_phase.simulated) {
            let (old_r, new_r) = (old_sim.miss_ratio(), new_sim.miss_ratio());
            push_row(
                &mut diff,
                format!("phase.{}.llc_miss_ratio(sim)", new_phase.name),
                old_r,
                new_r,
                true,
                ratio_regressed(old_r, new_r),
                "",
            );
        }
        // Schema-v3 memory: peak bytes gate, but only when both runs
        // actually tracked allocations — an untracked build reports a
        // zero peak and must not fake an "appeared from zero"
        // regression against a tracked one (or vice versa).
        if let (Some(old_m), Some(new_m)) = (&old_phase.memory, &new_phase.memory) {
            let (old_peak, new_peak) = (old_m.peak_bytes as f64, new_m.peak_bytes as f64);
            let comparable = old_peak > 0.0 && new_peak > 0.0;
            push_row(
                &mut diff,
                format!("phase.{}.peak_bytes", new_phase.name),
                old_peak,
                new_peak,
                comparable,
                comparable && bytes_regressed(old_peak, new_peak),
                "B",
            );
            for (field, old_v, new_v) in [
                (
                    "allocated_bytes",
                    old_m.allocated_bytes as f64,
                    new_m.allocated_bytes as f64,
                ),
                (
                    "end_rss_bytes",
                    old_m.end_rss_bytes as f64,
                    new_m.end_rss_bytes as f64,
                ),
            ] {
                diff.rows.push(DiffRow {
                    metric: format!("phase.{}.{field}", new_phase.name),
                    old: old_v,
                    new: new_v,
                    gating: false,
                    regressed: false,
                });
            }
        }
        // Raw counter deltas: context only.
        for kind in CounterKind::ALL {
            let key = kind.name();
            if let (Some(old_v), Some(new_v)) =
                (old_phase.hardware.get(key), new_phase.hardware.get(key))
            {
                diff.rows.push(DiffRow {
                    metric: format!("phase.{}.{key}", new_phase.name),
                    old: *old_v,
                    new: *new_v,
                    gating: false,
                    regressed: false,
                });
            }
        }
    }

    // Run counters shared by both traces: context only — except serve
    // latency percentiles, which gate like phase times when asked.
    for (key, new_v) in &new.counters {
        if let Some(old_v) = old.counters.get(key) {
            let gates = opts.gate_serve_latency
                && key.starts_with("serve.latency.")
                && key.ends_with("_seconds");
            if gates {
                push_row(
                    &mut diff,
                    format!("counter.{key}"),
                    *old_v,
                    *new_v,
                    true,
                    time_regressed(*old_v, *new_v),
                    "s",
                );
            } else {
                diff.rows.push(DiffRow {
                    metric: format!("counter.{key}"),
                    old: *old_v,
                    new: *new_v,
                    gating: false,
                    regressed: false,
                });
            }
        }
    }

    diff
}

fn push_row(
    diff: &mut TraceDiff,
    metric: String,
    old: f64,
    new: f64,
    gating: bool,
    regressed: bool,
    unit: &str,
) {
    if regressed {
        let pct = if old > 0.0 {
            (new - old) / old * 100.0
        } else {
            f64::INFINITY
        };
        let pct_str = if pct.is_finite() {
            format!("+{pct:.1}%")
        } else {
            "appeared from zero".to_string()
        };
        diff.regressions.push(format!(
            "{metric}: {old:.6}{unit} -> {new:.6}{unit} ({pct_str})"
        ));
    }
    diff.rows.push(DiffRow {
        metric,
        old,
        new,
        gating,
        regressed,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{CacheStats, PhaseProfile};

    fn trace_with(algorithm_secs: f64, miss_ratio_pct: u64) -> RunTrace {
        let mut t = RunTrace::new("bfs");
        t.breakdown.load = 0.5;
        t.breakdown.algorithm = algorithm_secs;
        let mut phase = PhaseProfile {
            name: "algorithm".into(),
            seconds: algorithm_secs,
            ..PhaseProfile::default()
        };
        phase.hardware.insert("llc_loads".into(), 100.0);
        phase
            .hardware
            .insert("llc_load_misses".into(), miss_ratio_pct as f64);
        phase.simulated = Some(CacheStats {
            accesses: 100,
            misses: miss_ratio_pct,
        });
        t.phases.push(phase);
        t.counters.insert("pool.steals".into(), 3.0);
        t
    }

    #[test]
    fn identical_traces_do_not_regress() {
        let t = trace_with(1.0, 20);
        let diff = diff_traces(&t, &t, &DiffOptions::default());
        assert!(!diff.has_regressions());
        assert!(diff.rows.iter().all(|r| !r.regressed));
        assert!(diff.rows.iter().any(|r| r.metric == "breakdown.total"));
        assert!(diff
            .rows
            .iter()
            .any(|r| r.metric == "phase.algorithm.llc_miss_ratio(hw)"));
        assert!(diff.rows.iter().any(|r| r.metric == "counter.pool.steals"));
    }

    #[test]
    fn slowdown_beyond_threshold_regresses() {
        let old = trace_with(1.0, 20);
        let new = trace_with(1.5, 20);
        let diff = diff_traces(&old, &new, &DiffOptions::default());
        assert!(diff.has_regressions());
        let metrics: Vec<&str> = diff
            .rows
            .iter()
            .filter(|r| r.regressed)
            .map(|r| r.metric.as_str())
            .collect();
        assert!(metrics.contains(&"breakdown.algorithm"));
        assert!(metrics.contains(&"phase.algorithm.seconds"));
        // The untouched load phase must not be dragged in.
        assert!(!metrics.contains(&"breakdown.load"));
    }

    #[test]
    fn slowdown_within_threshold_passes() {
        let old = trace_with(1.0, 20);
        let new = trace_with(1.05, 20);
        assert!(!diff_traces(&old, &new, &DiffOptions::default()).has_regressions());
        // ...but a tighter threshold flags it.
        let tight = DiffOptions {
            threshold_pct: 2.0,
            ..DiffOptions::default()
        };
        assert!(diff_traces(&old, &new, &tight).has_regressions());
    }

    #[test]
    fn sub_noise_phases_never_gate() {
        let old = trace_with(0.0001, 20);
        let new = trace_with(0.0005, 20); // 5x, but both under min_seconds
        assert!(!diff_traces(&old, &new, &DiffOptions::default()).has_regressions());
    }

    #[test]
    fn miss_ratio_increase_regresses() {
        let old = trace_with(1.0, 20);
        let new = trace_with(1.0, 40);
        let diff = diff_traces(&old, &new, &DiffOptions::default());
        let metrics: Vec<&str> = diff
            .rows
            .iter()
            .filter(|r| r.regressed)
            .map(|r| r.metric.as_str())
            .collect();
        assert!(metrics.contains(&"phase.algorithm.llc_miss_ratio(hw)"));
        assert!(metrics.contains(&"phase.algorithm.llc_miss_ratio(sim)"));
    }

    #[test]
    fn serve_latency_counters_gate_only_when_opted_in() {
        let old = trace_with(1.0, 20);
        let mut new = trace_with(1.0, 20);
        let mut old2 = old.clone();
        old2.counters
            .insert("serve.latency.p99_seconds".into(), 0.010);
        new.counters
            .insert("serve.latency.p99_seconds".into(), 0.020);
        // Off by default: the doubled p99 stays informational.
        let diff = diff_traces(&old2, &new, &DiffOptions::default());
        assert!(!diff.has_regressions());
        assert!(diff
            .rows
            .iter()
            .any(|r| r.metric == "counter.serve.latency.p99_seconds" && !r.gating));
        // Opted in: it gates like a phase time.
        let opts = DiffOptions {
            gate_serve_latency: true,
            ..DiffOptions::default()
        };
        let diff = diff_traces(&old2, &new, &opts);
        assert!(diff.has_regressions());
        assert!(diff
            .rows
            .iter()
            .any(|r| r.metric == "counter.serve.latency.p99_seconds" && r.gating && r.regressed));
        // Other counters (pool.steals) remain informational even opted in.
        assert!(diff
            .rows
            .iter()
            .any(|r| r.metric == "counter.pool.steals" && !r.gating));
        // Sub-noise serve latencies never gate.
        let mut old3 = old.clone();
        let mut new3 = trace_with(1.0, 20);
        old3.counters
            .insert("serve.latency.p50_seconds".into(), 1e-5);
        new3.counters
            .insert("serve.latency.p50_seconds".into(), 5e-5);
        assert!(!diff_traces(&old3, &new3, &opts).has_regressions());
    }

    #[test]
    fn raw_counts_are_informational_only() {
        let old = trace_with(1.0, 20);
        let mut new = trace_with(1.0, 20);
        // Doubling cycle counts alone (e.g. a bigger input) must not gate.
        new.phases[0].hardware.insert("cycles".into(), 2.0e9);
        let mut old2 = old.clone();
        old2.phases[0].hardware.insert("cycles".into(), 1.0e9);
        let diff = diff_traces(&old2, &new, &DiffOptions::default());
        assert!(!diff.has_regressions());
        assert!(diff
            .rows
            .iter()
            .any(|r| r.metric == "phase.algorithm.cycles" && !r.gating));
    }

    fn trace_with_peak(peak_bytes: u64) -> RunTrace {
        let mut t = trace_with(1.0, 20);
        t.phases[0].memory = Some(crate::telemetry::PhaseMemory {
            allocated_bytes: peak_bytes * 2,
            freed_bytes: peak_bytes,
            peak_bytes,
            end_rss_bytes: peak_bytes + (1 << 20),
        });
        t
    }

    #[test]
    fn peak_memory_regression_beyond_threshold_gates() {
        let old = trace_with_peak(100 << 20);
        let new = trace_with_peak(150 << 20);
        let diff = diff_traces(&old, &new, &DiffOptions::default());
        assert!(diff.has_regressions());
        let row = diff
            .rows
            .iter()
            .find(|r| r.metric == "phase.algorithm.peak_bytes")
            .expect("peak row present");
        assert!(row.gating && row.regressed);
        // Allocation totals and RSS only provide context.
        for metric in [
            "phase.algorithm.allocated_bytes",
            "phase.algorithm.end_rss_bytes",
        ] {
            let r = diff.rows.iter().find(|r| r.metric == metric).unwrap();
            assert!(!r.gating && !r.regressed, "{metric} must not gate");
        }
    }

    #[test]
    fn peak_memory_within_threshold_passes() {
        let old = trace_with_peak(100 << 20);
        let new = trace_with_peak(105 << 20);
        assert!(!diff_traces(&old, &new, &DiffOptions::default()).has_regressions());
    }

    #[test]
    fn untracked_zero_peaks_never_gate() {
        // An alloc-track build vs a plain build: one side's peak is 0.
        let tracked = trace_with_peak(100 << 20);
        let untracked = trace_with_peak(0);
        for (old, new) in [(&tracked, &untracked), (&untracked, &tracked)] {
            let diff = diff_traces(old, new, &DiffOptions::default());
            assert!(
                !diff.has_regressions(),
                "zero-peak side must disarm the gate: {:?}",
                diff.regressions
            );
            let row = diff
                .rows
                .iter()
                .find(|r| r.metric == "phase.algorithm.peak_bytes")
                .expect("row still reported for context");
            assert!(!row.gating);
        }
    }

    #[test]
    fn tiny_footprints_below_min_bytes_never_gate() {
        let old = trace_with_peak(100 << 10); // 100 KiB
        let new = trace_with_peak(500 << 10); // 5x, but both < 1 MiB
        assert!(!diff_traces(&old, &new, &DiffOptions::default()).has_regressions());
        // A lower floor re-arms the gate.
        let tight = DiffOptions {
            min_bytes: 1024.0,
            ..DiffOptions::default()
        };
        assert!(diff_traces(&old, &new, &tight).has_regressions());
    }

    #[test]
    fn memory_missing_on_either_side_is_ignored() {
        let with_mem = trace_with_peak(100 << 20);
        let without_mem = trace_with(1.0, 20); // v2-style phase, memory None
        let diff = diff_traces(&without_mem, &with_mem, &DiffOptions::default());
        assert!(!diff.has_regressions());
        assert!(!diff
            .rows
            .iter()
            .any(|r| r.metric == "phase.algorithm.peak_bytes"));
    }

    #[test]
    fn optional_compact_phase_may_appear_from_zero() {
        // Baseline recorded before any updates: compact phase at zero.
        let old = trace_with(1.0, 20);
        let mut old2 = old.clone();
        old2.phases.push(PhaseProfile {
            name: "compact".into(),
            seconds: 0.0,
            ..PhaseProfile::default()
        });
        let mut new = trace_with(1.0, 20);
        new.phases.push(PhaseProfile {
            name: "compact".into(),
            seconds: 0.25,
            ..PhaseProfile::default()
        });
        let diff = diff_traces(&old2, &new, &DiffOptions::default());
        assert!(
            !diff.has_regressions(),
            "compact appearing from zero must not gate: {:?}",
            diff.regressions
        );
        let row = diff
            .rows
            .iter()
            .find(|r| r.metric == "phase.compact.seconds")
            .expect("compact row still reported for context");
        assert!(!row.gating && !row.regressed);

        // A non-optional phase appearing from zero still gates.
        let mut old3 = old.clone();
        old3.phases.push(PhaseProfile {
            name: "partition".into(),
            seconds: 0.0,
            ..PhaseProfile::default()
        });
        let mut new3 = trace_with(1.0, 20);
        new3.phases.push(PhaseProfile {
            name: "partition".into(),
            seconds: 0.25,
            ..PhaseProfile::default()
        });
        assert!(diff_traces(&old3, &new3, &DiffOptions::default()).has_regressions());

        // And compact itself still gates on relative slowdown once both
        // runs spend real time compacting.
        let mut old4 = old.clone();
        old4.phases.push(PhaseProfile {
            name: "compact".into(),
            seconds: 0.1,
            ..PhaseProfile::default()
        });
        let mut new4 = trace_with(1.0, 20);
        new4.phases.push(PhaseProfile {
            name: "compact".into(),
            seconds: 0.5,
            ..PhaseProfile::default()
        });
        let diff = diff_traces(&old4, &new4, &DiffOptions::default());
        assert!(diff.has_regressions());
        assert!(diff
            .rows
            .iter()
            .any(|r| r.metric == "phase.compact.seconds" && r.gating && r.regressed));
    }

    /// `trace` plus one iteration record per entry of `modes`.
    fn with_iterations(modes: &[crate::metrics::StepMode]) -> RunTrace {
        use crate::metrics::DirectionDecision;
        use crate::telemetry::IterRecord;
        let mut t = trace_with(1.0, 20);
        for (step, &mode) in modes.iter().enumerate() {
            t.iterations.push(
                IterRecord {
                    step,
                    frontier_size: 10,
                    edges_scanned: 100,
                    seconds: 0.01,
                    mode,
                    density: 0.1,
                    decision: DirectionDecision::heuristic(110, 50),
                }
                .into(),
            );
        }
        t
    }

    #[test]
    fn iteration_count_blowup_gates_but_small_growth_passes() {
        use crate::metrics::StepMode::Push;
        let old = with_iterations(&[Push; 8]);
        // +2 steps is inside the absolute slack even though it exceeds
        // the 10% relative threshold.
        let near = with_iterations(&[Push; 10]);
        assert!(!diff_traces(&old, &near, &DiffOptions::default()).has_regressions());
        // A convergence blowup trips the gate even with identical times.
        let blowup = with_iterations(&[Push; 40]);
        let diff = diff_traces(&old, &blowup, &DiffOptions::default());
        assert!(diff.has_regressions());
        assert!(diff
            .rows
            .iter()
            .any(|r| r.metric == "iterations.count" && r.gating && r.regressed));
    }

    #[test]
    fn direction_flapping_gates() {
        use crate::metrics::StepMode::{Pull, Push};
        // Healthy run: push, two pull steps in the dense middle, push.
        let old = with_iterations(&[Push, Pull, Pull, Push]);
        // One extra flip is tolerated (data-dependent frontier shapes).
        let ok = with_iterations(&[Push, Pull, Push, Push]);
        assert!(!diff_traces(&old, &ok, &DiffOptions::default()).has_regressions());
        // Flapping every step is a decision-logic regression.
        let flapping = with_iterations(&[Push, Pull, Push, Pull, Push, Pull]);
        let diff = diff_traces(&old, &flapping, &DiffOptions::default());
        assert!(diff.has_regressions());
        assert!(diff
            .rows
            .iter()
            .any(|r| r.metric == "iterations.direction_flips" && r.gating && r.regressed));
    }

    #[test]
    fn pre_v4_baseline_keeps_iteration_metrics_informational() {
        use crate::metrics::StepMode::{Pull, Push};
        let old = trace_with(1.0, 20); // no iteration records (v3 era)
        let new = with_iterations(&[Push, Pull, Push, Pull, Push, Pull]);
        let diff = diff_traces(&old, &new, &DiffOptions::default());
        assert!(!diff.has_regressions());
        for metric in ["iterations.count", "iterations.direction_flips"] {
            let row = diff.rows.iter().find(|r| r.metric == metric).unwrap();
            assert!(!row.gating, "{metric} must not gate without a baseline");
        }
        // And nothing at all when the candidate has no iterations either.
        let diff = diff_traces(&old, &old, &DiffOptions::default());
        assert!(!diff
            .rows
            .iter()
            .any(|r| r.metric.starts_with("iterations.")));
    }

    #[test]
    fn delta_pct_handles_zero_baseline() {
        let row = DiffRow {
            metric: "x".into(),
            old: 0.0,
            new: 1.0,
            gating: false,
            regressed: false,
        };
        assert!(row.delta_pct().is_infinite());
        let zero = DiffRow { new: 0.0, ..row };
        assert_eq!(zero.delta_pct(), 0.0);
    }
}

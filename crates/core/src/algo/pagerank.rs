//! PageRank \[24\] in every configuration of Fig. 3, Fig. 5 and Fig. 8:
//! vertex-centric push (locks or atomics), vertex-centric pull (no
//! locks), edge-centric, grid push (cells+locks or columns without
//! locks) and grid pull (rows without locks).
//!
//! All variants run the same fixed number of power iterations (the
//! paper uses 10) with damping 0.85 and produce identical ranks up to
//! floating-point reassociation.

use egraph_cachesim::MemProbe;
use egraph_parallel::atomicf::AtomicF32;
use std::sync::atomic::Ordering;

use crate::engine::{self, PullOp, PushOp};
use crate::frontier::{FrontierKind, VertexSubset};
use crate::layout::{Adjacency, Grid, NeighborAccess};
use crate::metrics::{direction_cutoff, frontier_density, timed, DirectionDecision, StepMode};
use crate::telemetry::{ExecContext, IterRecord, Recorder};
use crate::types::{EdgeList, EdgeRecord, VertexId};
use crate::util::{StripedLocks, UnsyncSlice};

/// PageRank metadata footprint: rank + degree + accumulator ≈ 12 bytes
/// ("a cache line can fit at most 6 vertices for Pagerank", §5.2 —
/// 64 / 6 ≈ 11).
const PR_META_BYTES: u64 = 12;

/// Configuration of a PageRank run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PagerankConfig {
    /// Maximum number of power iterations (the paper uses 10).
    pub iterations: usize,
    /// Damping factor.
    pub damping: f32,
    /// Optional convergence threshold: stop early once the L1 change
    /// of the rank vector drops below this (an extension beyond the
    /// paper's fixed iteration count; `None` reproduces the paper).
    pub tolerance: Option<f32>,
}

impl Default for PagerankConfig {
    fn default() -> Self {
        Self {
            iterations: 10,
            damping: 0.85,
            tolerance: None,
        }
    }
}

/// L1 distance between consecutive rank vectors, computed in parallel.
fn l1_delta(a: &[f32], b: &[f32]) -> f32 {
    egraph_parallel::parallel_reduce(
        0..a.len(),
        1 << 14,
        || 0.0f64,
        |acc, r| acc + r.map(|v| (a[v] - b[v]).abs() as f64).sum::<f64>(),
        |x, y| x + y,
    ) as f32
}

/// Returns `true` when iteration should stop early under `cfg`.
fn converged(cfg: &PagerankConfig, old: &[f32], new: &[f32]) -> bool {
    match cfg.tolerance {
        None => false,
        Some(tol) => l1_delta(old, new) < tol,
    }
}

/// The result of a PageRank run.
#[derive(Debug, Clone)]
pub struct PagerankResult {
    /// Final rank per vertex.
    pub ranks: Vec<f32>,
    /// Iterations executed.
    pub iterations: usize,
    /// Wall-clock seconds spent in the algorithm.
    pub seconds: f64,
}

impl PagerankResult {
    /// Indices of the `k` highest-ranked vertices, descending.
    pub fn top_k(&self, k: usize) -> Vec<VertexId> {
        let mut idx: Vec<VertexId> = (0..self.ranks.len() as u32).collect();
        idx.sort_unstable_by(|&a, &b| {
            self.ranks[b as usize]
                .partial_cmp(&self.ranks[a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(k);
        idx
    }
}

/// Per-source contribution table: `contrib[u] = rank[u] / out_degree[u]`.
fn contributions(ranks: &[f32], out_degrees: &[u32]) -> Vec<f32> {
    egraph_parallel::ops::parallel_init(ranks.len(), 1 << 14, |v| {
        let d = out_degrees[v];
        if d == 0 {
            0.0
        } else {
            ranks[v] / d as f32
        }
    })
}

/// Folds accumulated neighbor sums into the next rank vector.
fn finalize(acc: &[f32], damping: f32, nv: usize) -> Vec<f32> {
    let base = (1.0 - damping) / nv as f32;
    egraph_parallel::ops::parallel_init(nv, 1 << 14, |v| base + damping * acc[v])
}

/// The shared power-iteration loop: times each iteration, reports it to
/// the context's recorder (every vertex is active each step, so the
/// frontier size is `nv`), and handles the optional tolerance.
/// `accumulate` runs one contribution-gathering step.
fn run_power<P, R, F>(
    ctx: ExecContext<'_, P, R>,
    nv: usize,
    edges_per_iter: usize,
    mode: StepMode,
    out_degrees: &[u32],
    cfg: PagerankConfig,
    mut accumulate: F,
) -> PagerankResult
where
    P: MemProbe,
    R: Recorder,
    F: FnMut(&[f32]) -> Vec<f32>,
{
    let mut ranks = vec![1.0 / nv.max(1) as f32; nv];
    let mut executed = 0usize;
    let mut total = 0.0f64;
    // Power iteration activates every vertex every step; the direction
    // is a property of the variant, never a per-iteration choice.
    let observed = nv + edges_per_iter;
    let cutoff = direction_cutoff(edges_per_iter);
    for _ in 0..cfg.iterations {
        let (new_ranks, seconds) = timed(|| {
            let contrib = contributions(&ranks, out_degrees);
            let acc = accumulate(&contrib);
            finalize(&acc, cfg.damping, nv)
        });
        total += seconds;
        if ctx.recorder.enabled() {
            ctx.recorder.record_iteration(IterRecord {
                step: executed,
                frontier_size: nv,
                edges_scanned: edges_per_iter,
                seconds,
                mode,
                density: frontier_density(observed, edges_per_iter),
                decision: DirectionDecision::forced(observed, cutoff),
            });
        }
        executed += 1;
        let stop = converged(&cfg, &ranks, &new_ranks);
        ranks = new_ranks;
        if stop {
            break;
        }
    }
    PagerankResult {
        ranks,
        iterations: executed,
        seconds: total,
    }
}

/// Vertex-centric pull without locks: each vertex sums the
/// contributions of its in-neighbors and writes only its own
/// accumulator (Fig. 8, "adj. pull (no lock)"). Runs on any
/// [`NeighborAccess`] in-adjacency (uncompressed CSR or ccsr).
pub fn pull<E: EdgeRecord, A: NeighborAccess<E>>(
    incoming: &A,
    out_degrees: &[u32],
    cfg: PagerankConfig,
) -> PagerankResult {
    pull_impl(incoming, out_degrees, cfg, &ExecContext::new())
}

pub(crate) fn pull_impl<E: EdgeRecord, A: NeighborAccess<E>, P: MemProbe, R: Recorder>(
    incoming: &A,
    out_degrees: &[u32],
    cfg: PagerankConfig,
    ctx: &ExecContext<'_, P, R>,
) -> PagerankResult {
    let ctx = *ctx;
    let nv = incoming.num_vertices();
    run_power(
        ctx,
        nv,
        incoming.num_edges(),
        StepMode::Pull,
        out_degrees,
        cfg,
        |contrib| {
            let mut acc = vec![0.0f32; nv];
            {
                struct PrPull<'a> {
                    contrib: &'a [f32],
                    acc: UnsyncSlice<'a, f32>,
                }
                impl<E: EdgeRecord> PullOp<E> for PrPull<'_> {
                    const META_BYTES: u64 = PR_META_BYTES;

                    #[inline]
                    fn wants_pull(&self, _dst: VertexId) -> bool {
                        true
                    }

                    #[inline]
                    fn pull(&self, dst: VertexId, e: &E) -> bool {
                        // SAFETY: `vertex_pull` assigns each `dst` to
                        // exactly one worker, so `acc[dst]` has a single
                        // writer.
                        unsafe {
                            self.acc
                                .update(dst as usize, |a| *a += self.contrib[e.src() as usize]);
                        }
                        false
                    }

                    #[inline]
                    fn pull_span(&self, dst: VertexId, edges: &[E]) -> usize {
                        // Vectorized inner loop: gather `contrib[src]`
                        // over the whole span with a fixed 8-lane
                        // association (bit-identical with or without
                        // the `simd` feature — see `crate::simd`).
                        let sum = crate::simd::gather_sum(self.contrib, edges);
                        // SAFETY: as in `pull` — single writer per `dst`.
                        unsafe {
                            self.acc.update(dst as usize, |a| *a += sum);
                        }
                        edges.len()
                    }

                    #[inline]
                    fn activated(&self, _dst: VertexId) -> bool {
                        false
                    }
                }
                let op = PrPull {
                    contrib,
                    acc: UnsyncSlice::new(&mut acc),
                };
                engine::vertex_pull(incoming, &op, ctx, FrontierKind::Sparse);
            }
            acc
        },
    )
}

/// Push rule accumulating into atomic floats (CAS loops).
struct PrPushAtomic<'a> {
    contrib: &'a [f32],
    acc: &'a [AtomicF32],
}

impl<E: EdgeRecord> PushOp<E> for PrPushAtomic<'_> {
    const META_BYTES: u64 = PR_META_BYTES;

    #[inline]
    fn push(&self, e: &E) -> bool {
        self.acc[e.dst() as usize].fetch_add(self.contrib[e.src() as usize], Ordering::Relaxed);
        false
    }
}

/// Push rule accumulating under striped per-vertex locks — the paper's
/// lock-based synchronization ("40% of the algorithm execution time is
/// spent in code protected by locks", §6.1.2).
struct PrPushLocked<'a> {
    contrib: &'a [f32],
    acc: UnsyncSlice<'a, f32>,
    locks: &'a StripedLocks,
}

impl<E: EdgeRecord> PushOp<E> for PrPushLocked<'_> {
    const META_BYTES: u64 = PR_META_BYTES;

    #[inline]
    fn push(&self, e: &E) -> bool {
        let dst = e.dst();
        self.locks.with(dst, || {
            // SAFETY: `acc[dst]` is only touched under `dst`'s stripe
            // lock during the parallel step.
            unsafe {
                self.acc
                    .update(dst as usize, |a| *a += self.contrib[e.src() as usize]);
            }
        });
        false
    }
}

/// Push rule with *plain* writes, for drivers that guarantee exclusive
/// destination ownership (grid columns).
struct PrPushExclusive<'a> {
    contrib: &'a [f32],
    acc: UnsyncSlice<'a, f32>,
}

impl<E: EdgeRecord> PushOp<E> for PrPushExclusive<'_> {
    const META_BYTES: u64 = PR_META_BYTES;

    #[inline]
    fn push(&self, e: &E) -> bool {
        // SAFETY: only used with `grid_push_columns`, which gives this
        // worker exclusive ownership of every destination in its
        // columns.
        unsafe {
            self.acc
                .update(e.dst() as usize, |a| *a += self.contrib[e.src() as usize]);
        }
        false
    }
}

/// Synchronization flavor of a push-mode PageRank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushSync {
    /// Striped per-vertex locks (the paper's baseline).
    Locks,
    /// Atomic compare-and-swap accumulation (ablation).
    Atomics,
}

/// Vertex-centric push PageRank over an out-adjacency (Fig. 8, "adj.
/// push (locks)"). Runs on any [`NeighborAccess`] out-adjacency.
pub fn push<E: EdgeRecord, A: NeighborAccess<E>>(
    out: &A,
    out_degrees: &[u32],
    cfg: PagerankConfig,
    sync: PushSync,
) -> PagerankResult {
    push_impl(out, out_degrees, cfg, sync, &ExecContext::new())
}

pub(crate) fn push_impl<E: EdgeRecord, A: NeighborAccess<E>, P: MemProbe, R: Recorder>(
    out: &A,
    out_degrees: &[u32],
    cfg: PagerankConfig,
    sync: PushSync,
    ctx: &ExecContext<'_, P, R>,
) -> PagerankResult {
    let ctx = *ctx;
    let nv = out.num_vertices();
    let all = VertexSubset::all(nv);
    run_power(
        ctx,
        nv,
        out.num_edges(),
        StepMode::Push,
        out_degrees,
        cfg,
        |contrib| {
            run_push_step(
                PushDriver::Vertex { out, all: &all },
                contrib,
                nv,
                sync,
                ctx,
            )
        },
    )
}

/// Edge-centric PageRank over the raw edge array (Fig. 3b).
pub fn edge_centric<E: EdgeRecord>(
    edges: &EdgeList<E>,
    out_degrees: &[u32],
    cfg: PagerankConfig,
    sync: PushSync,
) -> PagerankResult {
    edge_centric_impl(edges, out_degrees, cfg, sync, &ExecContext::new())
}

pub(crate) fn edge_centric_impl<E: EdgeRecord, P: MemProbe, R: Recorder>(
    edges: &EdgeList<E>,
    out_degrees: &[u32],
    cfg: PagerankConfig,
    sync: PushSync,
    ctx: &ExecContext<'_, P, R>,
) -> PagerankResult {
    let ctx = *ctx;
    let nv = edges.num_vertices();
    run_power(
        ctx,
        nv,
        edges.num_edges(),
        StepMode::Push,
        out_degrees,
        cfg,
        |contrib| {
            run_push_step(
                PushDriver::<E, Adjacency<E>>::EdgeArray(edges),
                contrib,
                nv,
                sync,
                ctx,
            )
        },
    )
}

/// Grid-push PageRank. `locked = true` iterates cells in arbitrary
/// parallel order with striped locks ("grid (locks)"); `locked = false`
/// uses column ownership and plain writes ("grid (no lock)") — Fig. 8.
pub fn grid_push<E: EdgeRecord>(
    grid: &Grid<E>,
    out_degrees: &[u32],
    cfg: PagerankConfig,
    locked: bool,
) -> PagerankResult {
    grid_push_impl(grid, out_degrees, cfg, locked, &ExecContext::new())
}

pub(crate) fn grid_push_impl<E: EdgeRecord, P: MemProbe, R: Recorder>(
    grid: &Grid<E>,
    out_degrees: &[u32],
    cfg: PagerankConfig,
    locked: bool,
    ctx: &ExecContext<'_, P, R>,
) -> PagerankResult {
    let ctx = *ctx;
    let nv = grid.num_vertices();
    run_power(
        ctx,
        nv,
        grid.num_edges(),
        StepMode::Push,
        out_degrees,
        cfg,
        |contrib| {
            let driver = if locked {
                PushDriver::<E, Adjacency<E>>::GridCells(grid)
            } else {
                PushDriver::<E, Adjacency<E>>::GridColumns(grid)
            };
            let sync = if locked {
                PushSync::Locks
            } else {
                PushSync::Atomics // ignored by GridColumns (exclusive writes)
            };
            run_push_step(driver, contrib, nv, sync, ctx)
        },
    )
}

/// Grid-pull PageRank over a **transposed** grid: row ownership makes
/// the receiving vertex exclusive, so no locks are needed.
pub fn grid_pull<E: EdgeRecord>(
    transposed: &Grid<E>,
    out_degrees: &[u32],
    cfg: PagerankConfig,
) -> PagerankResult {
    grid_pull_impl(transposed, out_degrees, cfg, &ExecContext::new())
}

pub(crate) fn grid_pull_impl<E: EdgeRecord, P: MemProbe, R: Recorder>(
    transposed: &Grid<E>,
    out_degrees: &[u32],
    cfg: PagerankConfig,
    ctx: &ExecContext<'_, P, R>,
) -> PagerankResult {
    let ctx = *ctx;
    let nv = transposed.num_vertices();
    run_power(
        ctx,
        nv,
        transposed.num_edges(),
        StepMode::Pull,
        out_degrees,
        cfg,
        |contrib| {
            let mut acc = vec![0.0f32; nv];
            {
                struct PrGridPull<'a> {
                    contrib: &'a [f32],
                    acc: UnsyncSlice<'a, f32>,
                }
                impl<E: EdgeRecord> PullOp<E> for PrGridPull<'_> {
                    const META_BYTES: u64 = PR_META_BYTES;

                    #[inline]
                    fn wants_pull(&self, _dst: VertexId) -> bool {
                        true
                    }

                    #[inline]
                    fn pull(&self, receiver: VertexId, e: &E) -> bool {
                        // SAFETY: `grid_pull_rows` gives this worker
                        // exclusive ownership of every receiver in its
                        // rows (the grid is transposed, so receivers
                        // group by row).
                        unsafe {
                            self.acc.update(receiver as usize, |a| {
                                *a += self.contrib[e.dst() as usize]
                            });
                        }
                        false
                    }

                    #[inline]
                    fn activated(&self, _dst: VertexId) -> bool {
                        false
                    }
                }
                let op = PrGridPull {
                    contrib,
                    acc: UnsyncSlice::new(&mut acc),
                };
                engine::grid_pull_rows(transposed, &op, ctx, FrontierKind::Sparse);
            }
            acc
        },
    )
}

/// Which driver a push step runs on.
enum PushDriver<'a, E: EdgeRecord, A> {
    Vertex { out: &'a A, all: &'a VertexSubset },
    EdgeArray(&'a EdgeList<E>),
    GridCells(&'a Grid<E>),
    GridColumns(&'a Grid<E>),
}

/// Runs one accumulation step with the chosen driver/synchronization
/// and returns the accumulator as plain floats.
fn run_push_step<E: EdgeRecord, A: NeighborAccess<E>, P: MemProbe, R: Recorder>(
    driver: PushDriver<'_, E, A>,
    contrib: &[f32],
    nv: usize,
    sync: PushSync,
    ctx: ExecContext<'_, P, R>,
) -> Vec<f32> {
    match (&driver, sync) {
        (PushDriver::GridColumns(grid), _) => {
            let mut acc = vec![0.0f32; nv];
            {
                let op = PrPushExclusive {
                    contrib,
                    acc: UnsyncSlice::new(&mut acc),
                };
                engine::grid_push_columns(*grid, &op, ctx, FrontierKind::Sparse);
            }
            acc
        }
        (_, PushSync::Atomics) => {
            let acc: Vec<AtomicF32> = (0..nv).map(|_| AtomicF32::new(0.0)).collect();
            let op = PrPushAtomic { contrib, acc: &acc };
            dispatch_push(driver, &op, ctx);
            acc.into_iter().map(|a| a.load(Ordering::Relaxed)).collect()
        }
        (_, PushSync::Locks) => {
            let locks = StripedLocks::default();
            let mut acc = vec![0.0f32; nv];
            {
                let op = PrPushLocked {
                    contrib,
                    acc: UnsyncSlice::new(&mut acc),
                    locks: &locks,
                };
                dispatch_push(driver, &op, ctx);
            }
            acc
        }
    }
}

fn dispatch_push<E: EdgeRecord, A: NeighborAccess<E>, O: PushOp<E>, P: MemProbe, R: Recorder>(
    driver: PushDriver<'_, E, A>,
    op: &O,
    ctx: ExecContext<'_, P, R>,
) {
    match driver {
        PushDriver::Vertex { out, all } => {
            engine::vertex_push(out, all, op, ctx, FrontierKind::Sparse);
        }
        PushDriver::EdgeArray(edges) => {
            engine::edge_push(
                edges.edges(),
                edges.num_vertices(),
                op,
                ctx,
                FrontierKind::Sparse,
            );
        }
        PushDriver::GridCells(grid) => {
            engine::grid_push_cells(grid, op, ctx, FrontierKind::Sparse);
        }
        PushDriver::GridColumns(grid) => {
            engine::grid_push_columns(grid, op, ctx, FrontierKind::Sparse);
        }
    }
}

/// Serial reference PageRank for validation.
pub fn reference<E: EdgeRecord>(
    edges: &EdgeList<E>,
    out_degrees: &[u32],
    cfg: PagerankConfig,
) -> Vec<f32> {
    let nv = edges.num_vertices();
    let mut ranks = vec![1.0 / nv.max(1) as f32; nv];
    for _ in 0..cfg.iterations {
        let mut acc = vec![0.0f32; nv];
        for e in edges.edges() {
            let d = out_degrees[e.src() as usize];
            if d > 0 {
                acc[e.dst() as usize] += ranks[e.src() as usize] / d as f32;
            }
        }
        let base = (1.0 - cfg.damping) / nv as f32;
        for v in 0..nv {
            ranks[v] = base + cfg.damping * acc[v];
        }
    }
    ranks
}

/// Serial Jacobi PageRank run to convergence in f64 — the update
/// oracle's ground truth. Unlike [`reference`] (which reproduces the
/// paper's fixed iteration count), this solves the fixed point
/// `r = (1-d)/n + d·Σ r_u/deg_u` to machine-level precision, so it is
/// comparable with [`IncrementalPagerank`], which converges to the same
/// fixed point by a different route.
pub fn reference_converged<E: EdgeRecord>(
    edges: &EdgeList<E>,
    out_degrees: &[u32],
    damping: f32,
) -> Vec<f32> {
    let nv = edges.num_vertices();
    if nv == 0 {
        return Vec::new();
    }
    let damping = f64::from(damping);
    let base = (1.0 - damping) / nv as f64;
    let mut ranks = vec![1.0 / nv as f64; nv];
    for _ in 0..CONVERGED_MAX_ITERS {
        let mut acc = vec![0.0f64; nv];
        for e in edges.edges() {
            let d = out_degrees[e.src() as usize];
            if d > 0 {
                acc[e.dst() as usize] += ranks[e.src() as usize] / f64::from(d);
            }
        }
        let mut max_delta = 0.0f64;
        for v in 0..nv {
            let next = base + damping * acc[v];
            max_delta = max_delta.max((next - ranks[v]).abs());
            ranks[v] = next;
        }
        if max_delta < CONVERGED_EPS {
            break;
        }
    }
    ranks.into_iter().map(|r| r as f32).collect()
}

/// Per-entry convergence threshold of the f64 solvers — far below the
/// testkit's f32 comparison tolerance, so both routes to the fixed
/// point agree after rounding.
const CONVERGED_EPS: f64 = 1e-12;

/// Iteration cap of [`reference_converged`]; at damping 0.85 the power
/// method contracts by ~0.85/iter, so 1e-12 needs ~170 iterations.
const CONVERGED_MAX_ITERS: usize = 1000;

/// Residual push threshold of [`IncrementalPagerank`]'s repair path.
///
/// Looser than [`CONVERGED_EPS`] on purpose: each abandoned residual
/// bounds that vertex's rank error by `REPAIR_EPS/(1-d)` per batch —
/// orders of magnitude inside the testkit's 1e-4 conformance tolerance
/// even accumulated over many batches — while keeping the pushed
/// frontier proportional to the batch instead of the graph.
const REPAIR_EPS: f64 = 1e-8;

/// Incremental PageRank over the delta layout (DESIGN.md §16): keeps
/// the f64 rank vector of the previous graph and, per applied batch,
/// re-solves only the region the changed edges perturb.
///
/// Seeds are the endpoints of every changed edge plus the out-neighbors
/// of every changed source (their in-sum term `r_src/deg_src` moved
/// even when `r_src` did not). From the seeds a Gauss–Seidel worklist
/// recomputes `r_v = (1-d)/n + d·Σ r_u/deg_u` and propagates to
/// out-neighbors only while the change exceeds [`CONVERGED_EPS`] — on
/// small deltas the perturbation decays geometrically and the worklist
/// stays near the changed region.
#[derive(Debug, Clone)]
pub struct IncrementalPagerank {
    damping: f64,
    ranks: Vec<f64>,
    batches_applied: usize,
}

impl IncrementalPagerank {
    /// Solves the initial graph to convergence. `merged` must expose
    /// both directions; `degrees` are its out-degrees.
    pub fn new<E, L>(merged: &L, degrees: &[u32], damping: f32) -> Self
    where
        E: EdgeRecord,
        L: crate::layout::VertexLayout<E>,
    {
        let nv = merged.num_vertices();
        let mut engine = Self {
            damping: f64::from(damping),
            ranks: vec![1.0 / nv.max(1) as f64; nv],
            batches_applied: 0,
        };
        engine.solve(merged, degrees, (0..nv as VertexId).collect());
        engine
    }

    /// The current ranks, rounded to the f32 the batch variants emit.
    pub fn ranks(&self) -> Vec<f32> {
        self.ranks.iter().map(|&r| r as f32).collect()
    }

    /// Repairs the ranks after `batch` was applied to the graph.
    /// `merged` is the post-batch graph (typically a
    /// [`crate::layout::DeltaList`] over the unchanged base CSR) and
    /// `degrees` its out-degrees.
    pub fn apply<E, L>(
        &mut self,
        merged: &L,
        degrees: &[u32],
        batch: &crate::layout::DeltaBatch<E>,
    ) -> super::IncrementalOutcome
    where
        E: EdgeRecord,
        L: crate::layout::VertexLayout<E>,
    {
        self.apply_ctx(merged, degrees, batch, &ExecContext::new())
    }

    /// [`Self::apply`] with an execution context: each applied batch is
    /// reported to the recorder as one iteration (the decision log
    /// shows the batch size against the full-solve fallback cutoff).
    pub fn apply_ctx<E, L, P: MemProbe, R: Recorder>(
        &mut self,
        merged: &L,
        degrees: &[u32],
        batch: &crate::layout::DeltaBatch<E>,
        ctx: &ExecContext<'_, P, R>,
    ) -> super::IncrementalOutcome
    where
        E: EdgeRecord,
        L: crate::layout::VertexLayout<E>,
    {
        let (outcome, seconds) = timed(|| self.apply_inner(merged, degrees, batch));
        let step = self.batches_applied;
        self.batches_applied += 1;
        if ctx.recorder.enabled() {
            let ne = merged.num_edges();
            let cutoff = ((ne as f64 * super::INCREMENTAL_FALLBACK_FRACTION) as usize).max(1);
            ctx.recorder.record_iteration(IterRecord {
                step,
                frontier_size: outcome.touched,
                edges_scanned: batch.len(),
                seconds,
                mode: StepMode::Push,
                density: frontier_density(batch.len(), ne),
                decision: DirectionDecision::heuristic(batch.len(), cutoff),
            });
        }
        outcome
    }

    fn apply_inner<E, L>(
        &mut self,
        merged: &L,
        degrees: &[u32],
        batch: &crate::layout::DeltaBatch<E>,
    ) -> super::IncrementalOutcome
    where
        E: EdgeRecord,
        L: crate::layout::VertexLayout<E>,
    {
        let nv = merged.num_vertices();
        let fraction = batch.len() as f64 / merged.num_edges().max(1) as f64;
        if fraction > super::INCREMENTAL_FALLBACK_FRACTION {
            self.ranks = vec![1.0 / nv.max(1) as f64; nv];
            let touched = self.solve(merged, degrees, (0..nv as VertexId).collect());
            return super::IncrementalOutcome {
                fallback: true,
                touched,
            };
        }
        let touched = self.repair(merged, degrees, batch);
        super::IncrementalOutcome {
            fallback: false,
            touched,
        }
    }

    /// Gauss–Southwell residual push for the repair path.
    ///
    /// The previous ranks were converged, so after a batch the linear
    /// system's residual `res_v = (1-d)/n + d·Σ_{u→v} r_u/deg_u − r_v`
    /// is nonzero only where an in-sum term moved: at the endpoints of
    /// changed edges and at the out-neighbors of every changed source
    /// (whose `r_src/deg_src` term changed with `deg_src`). Those
    /// residuals are computed exactly, then pushed forward — absorbing
    /// `res_v` into `ranks_v` sends `d·res_v/deg_v` of fresh residual
    /// to each out-neighbor — until every residual is under
    /// [`REPAIR_EPS`]. Each push destroys at least `(1-d)·|res_v|` of
    /// residual mass, so the work is proportional to the perturbation,
    /// not the graph: a solver-threshold sweep (see [`Self::solve`])
    /// would re-relax the whole graph on low-diameter inputs, where
    /// every vertex moves by more than [`CONVERGED_EPS`].
    fn repair<E, L>(
        &mut self,
        merged: &L,
        degrees: &[u32],
        batch: &crate::layout::DeltaBatch<E>,
    ) -> usize
    where
        E: EdgeRecord,
        L: crate::layout::VertexLayout<E>,
    {
        let nv = merged.num_vertices();
        if nv == 0 {
            return 0;
        }
        let base = (1.0 - self.damping) / nv as f64;
        let mut res = vec![0.0f64; nv];
        let mut exact = vec![false; nv];
        let mut queued = vec![false; nv];
        let mut worklist = std::collections::VecDeque::new();
        let mut affect =
            |v: VertexId,
             exact: &mut Vec<bool>,
             res: &mut Vec<f64>,
             worklist: &mut std::collections::VecDeque<VertexId>| {
                if exact[v as usize] {
                    return;
                }
                exact[v as usize] = true;
                let mut sum = 0.0f64;
                merged.incoming().for_each_span(v, |span| {
                    for e in span {
                        // In-adjacency records keep their original
                        // orientation: the in-neighbor is `src`.
                        let d = degrees[e.src() as usize];
                        if d > 0 {
                            sum += self.ranks[e.src() as usize] / f64::from(d);
                        }
                    }
                    span.len()
                });
                res[v as usize] = base + self.damping * sum - self.ranks[v as usize];
                if res[v as usize].abs() > REPAIR_EPS && !queued[v as usize] {
                    queued[v as usize] = true;
                    worklist.push_back(v);
                }
            };
        for op in &batch.ops {
            let (src, dst) = op.endpoints();
            affect(src, &mut exact, &mut res, &mut worklist);
            affect(dst, &mut exact, &mut res, &mut worklist);
            merged.out().for_each_span(src, |span| {
                for e in span {
                    affect(e.dst(), &mut exact, &mut res, &mut worklist);
                }
                span.len()
            });
        }
        let mut pushes = 0usize;
        while let Some(v) = worklist.pop_front() {
            queued[v as usize] = false;
            let r = res[v as usize];
            if r.abs() <= REPAIR_EPS {
                continue;
            }
            pushes += 1;
            self.ranks[v as usize] += r;
            // Zero before distributing so a self-loop's share lands.
            res[v as usize] = 0.0;
            let deg = degrees[v as usize];
            if deg == 0 {
                // Dangling source: its mass teleports, like in the
                // batch kernels and the serial reference.
                continue;
            }
            let share = self.damping * r / f64::from(deg);
            merged.out().for_each_span(v, |span| {
                for e in span {
                    let w = e.dst() as usize;
                    res[w] += share;
                    if res[w].abs() > REPAIR_EPS && !queued[w] {
                        queued[w] = true;
                        worklist.push_back(w as VertexId);
                    }
                }
                span.len()
            });
        }
        pushes
    }

    /// Gauss–Seidel worklist solve from `seeds`; returns how many
    /// relaxations ran.
    fn solve<E, L>(&mut self, merged: &L, degrees: &[u32], seeds: Vec<VertexId>) -> usize
    where
        E: EdgeRecord,
        L: crate::layout::VertexLayout<E>,
    {
        let nv = merged.num_vertices();
        if nv == 0 {
            return 0;
        }
        let base = (1.0 - self.damping) / nv as f64;
        let mut queued = vec![false; nv];
        let mut worklist = std::collections::VecDeque::with_capacity(seeds.len());
        for v in seeds {
            if !queued[v as usize] {
                queued[v as usize] = true;
                worklist.push_back(v);
            }
        }
        let mut relaxations = 0usize;
        while let Some(v) = worklist.pop_front() {
            queued[v as usize] = false;
            relaxations += 1;
            let mut sum = 0.0f64;
            merged.incoming().for_each_span(v, |span| {
                for e in span {
                    // In-adjacency records keep their original
                    // orientation: the in-neighbor is `src`.
                    let u = e.src() as usize;
                    let d = degrees[u];
                    if d > 0 {
                        sum += self.ranks[u] / f64::from(d);
                    }
                }
                span.len()
            });
            let next = base + self.damping * sum;
            if (next - self.ranks[v as usize]).abs() > CONVERGED_EPS {
                self.ranks[v as usize] = next;
                merged.out().for_each_span(v, |span| {
                    for e in span {
                        let w = e.dst();
                        if !queued[w as usize] {
                            queued[w as usize] = true;
                            worklist.push_back(w);
                        }
                    }
                    span.len()
                });
            }
        }
        relaxations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::EdgeDirection;
    use crate::preprocess::{CsrBuilder, GridBuilder, Strategy};
    use crate::types::Edge;

    fn test_graph(nv: usize, ne: usize, seed: u64) -> EdgeList<Edge> {
        let mut state = seed | 1;
        let mut edges = Vec::with_capacity(ne);
        for _ in 0..ne {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let src = ((state >> 33) % nv as u64) as u32;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let dst = ((state >> 33) % nv as u64) as u32;
            edges.push(Edge::new(src, dst));
        }
        EdgeList::new(nv, edges).unwrap()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32, name: &str) {
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert!(
                (a[i] - b[i]).abs() <= tol * (a[i].abs() + b[i].abs() + 1e-6),
                "{name}: rank[{i}] {} vs {}",
                a[i],
                b[i]
            );
        }
    }

    #[test]
    fn all_variants_match_reference() {
        let input = test_graph(300, 4000, 99);
        let degrees: Vec<u32> = input.out_degrees().iter().map(|&d| d as u32).collect();
        let cfg = PagerankConfig {
            iterations: 5,
            ..Default::default()
        };
        let expected = reference(&input, &degrees, cfg);

        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both).build(&input);
        let grid_n = GridBuilder::new(Strategy::RadixSort).side(4).build(&input);
        let grid_t = GridBuilder::new(Strategy::RadixSort)
            .side(4)
            .transposed(true)
            .build(&input);

        let variants: Vec<(&str, PagerankResult)> = vec![
            ("pull", pull(adj.incoming(), &degrees, cfg)),
            (
                "push-locks",
                push(adj.out(), &degrees, cfg, PushSync::Locks),
            ),
            (
                "push-atomics",
                push(adj.out(), &degrees, cfg, PushSync::Atomics),
            ),
            (
                "edge-atomics",
                edge_centric(&input, &degrees, cfg, PushSync::Atomics),
            ),
            (
                "edge-locks",
                edge_centric(&input, &degrees, cfg, PushSync::Locks),
            ),
            ("grid-nolock", grid_push(&grid_n, &degrees, cfg, false)),
            ("grid-locks", grid_push(&grid_n, &degrees, cfg, true)),
            ("grid-pull", grid_pull(&grid_t, &degrees, cfg)),
        ];
        for (name, result) in variants {
            assert_eq!(result.iterations, 5);
            assert_close(&result.ranks, &expected, 1e-3, name);
        }
    }

    #[test]
    fn ranks_sum_to_at_most_one() {
        // With dangling vertices, total rank leaks but never exceeds 1.
        let input = test_graph(200, 1000, 5);
        let degrees: Vec<u32> = input.out_degrees().iter().map(|&d| d as u32).collect();
        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::In).build(&input);
        let result = pull(adj.incoming(), &degrees, PagerankConfig::default());
        let total: f32 = result.ranks.iter().sum();
        assert!(total <= 1.0 + 1e-3, "total = {total}");
        assert!(total > 0.1);
    }

    #[test]
    fn hub_ranks_highest() {
        // A star graph: everyone points at vertex 0.
        let edges: Vec<Edge> = (1..100).map(|v| Edge::new(v, 0)).collect();
        let input = EdgeList::new(100, edges).unwrap();
        let degrees: Vec<u32> = input.out_degrees().iter().map(|&d| d as u32).collect();
        let adj = CsrBuilder::new(Strategy::CountSort, EdgeDirection::In).build(&input);
        let result = pull(adj.incoming(), &degrees, PagerankConfig::default());
        assert_eq!(result.top_k(1), vec![0]);
        assert!(result.ranks[0] > 10.0 * result.ranks[1]);
    }

    #[test]
    fn tolerance_stops_early_with_same_answer() {
        let input = test_graph(200, 2000, 12);
        let degrees: Vec<u32> = input.out_degrees().iter().map(|&d| d as u32).collect();
        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::In).build(&input);
        let exact = pull(
            adj.incoming(),
            &degrees,
            PagerankConfig {
                iterations: 100,
                ..Default::default()
            },
        );
        let tol = pull(
            adj.incoming(),
            &degrees,
            PagerankConfig {
                iterations: 100,
                tolerance: Some(1e-7),
                ..Default::default()
            },
        );
        assert!(
            tol.iterations < exact.iterations,
            "tolerance should stop early: {} vs {}",
            tol.iterations,
            exact.iterations
        );
        for v in 0..exact.ranks.len() {
            assert!(
                (tol.ranks[v] - exact.ranks[v]).abs() < 1e-4,
                "rank[{v}] diverged"
            );
        }
    }

    #[test]
    fn result_reports_executed_iterations() {
        let input = test_graph(50, 300, 4);
        let degrees: Vec<u32> = input.out_degrees().iter().map(|&d| d as u32).collect();
        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::In).build(&input);
        let cfg = PagerankConfig {
            iterations: 7,
            ..Default::default()
        };
        assert_eq!(pull(adj.incoming(), &degrees, cfg).iterations, 7);
    }

    #[test]
    fn zero_iterations_keeps_uniform() {
        let input = test_graph(50, 100, 3);
        let degrees: Vec<u32> = input.out_degrees().iter().map(|&d| d as u32).collect();
        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::In).build(&input);
        let cfg = PagerankConfig {
            iterations: 0,
            ..Default::default()
        };
        let result = pull(adj.incoming(), &degrees, cfg);
        assert!(result.ranks.iter().all(|&r| (r - 0.02).abs() < 1e-6));
    }

    /// Merged delta layout + its out-degrees, the incremental engine's
    /// two inputs.
    fn delta_view(
        base: &EdgeList<Edge>,
        log: &crate::layout::DeltaLog<Edge>,
    ) -> (crate::layout::DeltaList<Edge>, Vec<u32>) {
        use crate::layout::VertexLayout;
        let (out, inc) = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both)
            .sort_neighbors(true)
            .build(base)
            .into_parts();
        let dl = crate::layout::DeltaList::new(out, inc, log);
        let degrees: Vec<u32> = (0..base.num_vertices() as u32)
            .map(|v| dl.out().degree(v) as u32)
            .collect();
        (dl, degrees)
    }

    #[test]
    fn incremental_pagerank_tracks_the_converged_reference_through_updates() {
        use crate::layout::{DeltaBatch, DeltaLog, DeltaOp};
        let base = test_graph(64, 400, 7);
        let mut log = DeltaLog::new();
        let (dl, degrees) = delta_view(&base, &log);
        let mut engine = IncrementalPagerank::new(&dl, &degrees, 0.85);
        let want = reference_converged(&base, &degrees, 0.85);
        assert_close(&engine.ranks(), &want, 1e-4, "initial solve");

        // A small mixed batch repairs incrementally.
        let mut batch = DeltaBatch::new();
        batch.ops.push(DeltaOp::Insert(Edge::new(0, 63)));
        batch.ops.push(DeltaOp::Insert(Edge::new(63, 1)));
        batch.ops.push(DeltaOp::Delete { src: 3, dst: 5 });
        for op in &batch.ops {
            log.push(*op);
        }
        let merged = log.merge_into(&base);
        let (dl, degrees) = delta_view(&base, &log);
        let outcome = engine.apply(&dl, &degrees, &batch);
        assert!(!outcome.fallback, "3 ops on 400 edges stays incremental");
        let want = reference_converged(&merged, &degrees, 0.85);
        assert_close(&engine.ranks(), &want, 1e-4, "after small batch");

        // A batch above the threshold falls back to a full solve.
        let mut big = DeltaBatch::new();
        for v in 0..30u32 {
            big.ops.push(DeltaOp::Insert(Edge::new(v, v + 30)));
        }
        for op in &big.ops {
            log.push(*op);
        }
        let merged = log.merge_into(&base);
        let (dl, degrees) = delta_view(&base, &log);
        let outcome = engine.apply(&dl, &degrees, &big);
        assert!(outcome.fallback, "30 ops on ~400 edges exceeds 5%");
        let want = reference_converged(&merged, &degrees, 0.85);
        assert_close(&engine.ranks(), &want, 1e-4, "after fallback");
    }
}

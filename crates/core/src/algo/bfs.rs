//! Breadth-first search in every configuration the paper studies:
//! vertex-centric push (atomics or locks), vertex-centric pull with
//! early termination, direction-optimizing push-pull (Beamer's
//! heuristic, as in Ligra), edge-centric, and grid.

use std::sync::atomic::{AtomicU32, Ordering};

use egraph_cachesim::MemProbe;

use crate::engine::{self, PullOp, PushOp};
use crate::frontier::{FrontierKind, VertexSubset};
use crate::layout::{Adjacency, Grid, NeighborAccess, VertexLayout};
use crate::metrics::{
    direction_cutoff, frontier_density, timed, DirectionDecision, IterStat, StepMode,
};
use crate::telemetry::{ExecContext, IterRecord, Recorder};
use crate::types::{EdgeList, EdgeRecord, VertexId, INVALID_VERTEX};
use crate::util::{AtomicBitmap, StripedLocks, UnsyncSlice};

/// Appends `stat` to the run's iteration log and mirrors it to the
/// context's recorder (free under the default `NullRecorder`).
pub(crate) fn record_iter<P: MemProbe, R: Recorder>(
    ctx: ExecContext<'_, P, R>,
    iterations: &mut Vec<IterStat>,
    stat: IterStat,
) {
    if ctx.recorder.enabled() {
        ctx.recorder
            .record_iteration(IterRecord::from_stat(iterations.len(), &stat));
    }
    iterations.push(stat);
}

/// BFS metadata footprint: one byte of visited state per vertex ("a
/// cache line only contains the metadata associated with very few
/// vertices (64 in the case of BFS)", §5.2).
const BFS_META_BYTES: u64 = 1;

/// The result of a BFS run.
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// BFS tree: `parent[v]` is the predecessor of `v`, or
    /// [`INVALID_VERTEX`] if `v` is unreachable. `parent[root] == root`.
    pub parent: Vec<VertexId>,
    /// Discovery depth per vertex (`u32::MAX` if unreachable).
    pub level: Vec<u32>,
    /// Per-iteration statistics (Fig. 6).
    pub iterations: Vec<IterStat>,
}

impl BfsResult {
    /// Number of vertices reachable from the root (including it).
    pub fn reachable_count(&self) -> usize {
        self.parent.iter().filter(|&&p| p != INVALID_VERTEX).count()
    }

    /// Total algorithm seconds across iterations.
    pub fn algorithm_seconds(&self) -> f64 {
        self.iterations.iter().map(|s| s.seconds).sum()
    }
}

/// Shared BFS state: atomically claimed parents plus discovery levels.
struct BfsState {
    parent: Vec<AtomicU32>,
    level: Vec<AtomicU32>,
    round: AtomicU32,
}

impl BfsState {
    fn new(nv: usize, root: VertexId) -> Self {
        let state = Self {
            parent: (0..nv).map(|_| AtomicU32::new(INVALID_VERTEX)).collect(),
            level: (0..nv).map(|_| AtomicU32::new(u32::MAX)).collect(),
            round: AtomicU32::new(0),
        };
        state.parent[root as usize].store(root, Ordering::Relaxed);
        state.level[root as usize].store(0, Ordering::Relaxed);
        state
    }

    fn into_result(self, iterations: Vec<IterStat>) -> BfsResult {
        BfsResult {
            parent: self.parent.into_iter().map(AtomicU32::into_inner).collect(),
            level: self.level.into_iter().map(AtomicU32::into_inner).collect(),
            iterations,
        }
    }
}

/// Push rule claiming destinations with a compare-and-swap.
struct AtomicPushOp<'a> {
    state: &'a BfsState,
}

impl<E: EdgeRecord> PushOp<E> for AtomicPushOp<'_> {
    const META_BYTES: u64 = BFS_META_BYTES;

    #[inline]
    fn push(&self, e: &E) -> bool {
        let dst = e.dst() as usize;
        if self.state.parent[dst].load(Ordering::Relaxed) != INVALID_VERTEX {
            return false;
        }
        let won = self.state.parent[dst]
            .compare_exchange(
                INVALID_VERTEX,
                e.src(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_ok();
        if won {
            self.state.level[dst]
                .store(self.state.round.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        won
    }

    #[inline]
    fn source_active(&self, src: VertexId) -> bool {
        // Edge-centric/grid scans: only sources discovered in the
        // previous round push this round.
        let round = self.state.round.load(Ordering::Relaxed);
        self.state.level[src as usize].load(Ordering::Relaxed) == round - 1
    }
}

/// Vertex-centric push BFS with atomic parent claims (the baseline
/// "adj. push" configuration). Runs on any [`VertexLayout`]
/// (uncompressed CSR or ccsr).
pub fn push<E: EdgeRecord, L: VertexLayout<E>>(adj: &L, root: VertexId) -> BfsResult {
    push_impl(adj, root, &ExecContext::new())
}

pub(crate) fn push_impl<E: EdgeRecord, L: VertexLayout<E>, P: MemProbe, R: Recorder>(
    adj: &L,
    root: VertexId,
    ctx: &ExecContext<'_, P, R>,
) -> BfsResult {
    let ctx = *ctx;
    let out = adj.out();
    let cutoff = direction_cutoff(out.num_edges());
    let state = BfsState::new(out.num_vertices(), root);
    let op = AtomicPushOp { state: &state };
    let mut frontier = VertexSubset::single(root);
    let mut iterations = Vec::new();
    while !frontier.is_empty() {
        state.round.fetch_add(1, Ordering::Relaxed);
        let frontier_size = frontier.len();
        let frontier_edges = frontier.out_edge_count(|v| out.degree(v));
        let observed = frontier_edges + frontier_size;
        let (next, seconds) =
            timed(|| engine::vertex_push(out, &frontier, &op, ctx, FrontierKind::Sparse));
        record_iter(
            ctx,
            &mut iterations,
            IterStat {
                frontier_size,
                edges_scanned: frontier_edges,
                seconds,
                mode: StepMode::Push,
                density: frontier_density(observed, out.num_edges()),
                decision: DirectionDecision::forced(observed, cutoff),
            },
        );
        frontier = next;
    }
    state.into_result(iterations)
}

/// Vertex-centric push BFS with per-vertex (striped) locks — the
/// paper's "push (with locks)" configuration (§6.1.2).
pub fn push_locked<E: EdgeRecord, L: VertexLayout<E>>(adj: &L, root: VertexId) -> BfsResult {
    let out = adj.out();
    let nv = out.num_vertices();
    let mut parent = vec![INVALID_VERTEX; nv];
    let mut level = vec![u32::MAX; nv];
    parent[root as usize] = root;
    level[root as usize] = 0;
    let locks = StripedLocks::default();
    let mut iterations = Vec::new();

    struct LockedPushOp<'a> {
        parent: UnsyncSlice<'a, VertexId>,
        level: UnsyncSlice<'a, u32>,
        locks: &'a StripedLocks,
        round: u32,
    }
    impl<E: EdgeRecord> PushOp<E> for LockedPushOp<'_> {
        const META_BYTES: u64 = BFS_META_BYTES;

        #[inline]
        fn push(&self, e: &E) -> bool {
            let dst = e.dst();
            self.locks.with(dst, || {
                // SAFETY: every access to `parent[dst]`/`level[dst]`
                // during the parallel step happens under the stripe
                // lock of `dst`, so the element is never accessed
                // concurrently.
                unsafe {
                    if self.parent.read(dst as usize) != INVALID_VERTEX {
                        return false;
                    }
                    self.parent.write(dst as usize, e.src());
                    self.level.write(dst as usize, self.round);
                    true
                }
            })
        }
    }

    let cutoff = direction_cutoff(out.num_edges());
    let mut frontier = VertexSubset::single(root);
    let mut round = 0u32;
    while !frontier.is_empty() {
        round += 1;
        let frontier_size = frontier.len();
        let frontier_edges = frontier.out_edge_count(|v| out.degree(v));
        let observed = frontier_edges + frontier_size;
        let op = LockedPushOp {
            parent: UnsyncSlice::new(&mut parent),
            level: UnsyncSlice::new(&mut level),
            locks: &locks,
            round,
        };
        let (next, seconds) = timed(|| {
            engine::vertex_push(
                out,
                &frontier,
                &op,
                ExecContext::new(),
                FrontierKind::Sparse,
            )
        });
        iterations.push(IterStat {
            frontier_size,
            edges_scanned: frontier_edges,
            seconds,
            mode: StepMode::Push,
            density: frontier_density(observed, out.num_edges()),
            decision: DirectionDecision::forced(observed, cutoff),
        });
        frontier = next;
    }
    BfsResult {
        parent,
        level,
        iterations,
    }
}

/// Pull rule: an undiscovered vertex scans its in-neighbors for a
/// member of the previous frontier and stops at the first hit — no
/// synchronization needed, since each vertex only writes itself.
struct PullState<'a> {
    state: &'a BfsState,
    in_frontier: &'a AtomicBitmap,
    activated: &'a AtomicBitmap,
}

impl<E: EdgeRecord> PullOp<E> for PullState<'_> {
    const META_BYTES: u64 = BFS_META_BYTES;

    #[inline]
    fn wants_pull(&self, dst: VertexId) -> bool {
        self.state.parent[dst as usize].load(Ordering::Relaxed) == INVALID_VERTEX
    }

    #[inline]
    fn pull(&self, dst: VertexId, e: &E) -> bool {
        let u = e.src();
        if self.in_frontier.get(u as usize) {
            // Only this thread writes `dst`'s state in pull mode.
            self.state.parent[dst as usize].store(u, Ordering::Relaxed);
            self.state.level[dst as usize]
                .store(self.state.round.load(Ordering::Relaxed), Ordering::Relaxed);
            self.activated.set(dst as usize);
            return true; // Early termination (§6.1.1).
        }
        false
    }

    #[inline]
    fn prefetch_src(&self, e: &E) {
        // The hot random read of a BFS pull is the frontier bit of the
        // providing neighbor.
        self.in_frontier.prefetch(e.src() as usize);
    }

    #[inline]
    fn activated(&self, dst: VertexId) -> bool {
        self.activated.get(dst as usize)
    }
}

/// Vertex-centric pull BFS (lock free). Requires in-edges.
pub fn pull<E: EdgeRecord, L: VertexLayout<E>>(adj: &L, root: VertexId) -> BfsResult {
    pull_impl(adj, root, &ExecContext::new())
}

pub(crate) fn pull_impl<E: EdgeRecord, L: VertexLayout<E>, P: MemProbe, R: Recorder>(
    adj: &L,
    root: VertexId,
    ctx: &ExecContext<'_, P, R>,
) -> BfsResult {
    let ctx = *ctx;
    let incoming = adj.incoming();
    let nv = incoming.num_vertices();
    let state = BfsState::new(nv, root);
    let mut iterations = Vec::new();

    let mut frontier = VertexSubset::single(root).into_dense(nv);
    while !frontier.is_empty() {
        state.round.fetch_add(1, Ordering::Relaxed);
        let frontier_size = frontier.len();
        let in_frontier = match &frontier {
            VertexSubset::Dense { bitmap, .. } => bitmap,
            VertexSubset::Sparse(_) => unreachable!("pull frontier is always dense"),
        };
        let activated = AtomicBitmap::new(nv);
        let op = PullState {
            state: &state,
            in_frontier,
            activated: &activated,
        };
        let (next, seconds) =
            timed(|| engine::vertex_pull(incoming, &op, ctx, FrontierKind::Dense));
        record_iter(
            ctx,
            &mut iterations,
            IterStat {
                frontier_size,
                edges_scanned: 0,
                seconds,
                mode: StepMode::Pull,
                // Pure pull never sums frontier degrees, so the load
                // estimate degrades to the vertex term alone.
                density: frontier_density(frontier_size, incoming.num_edges()),
                decision: DirectionDecision::forced(
                    frontier_size,
                    direction_cutoff(incoming.num_edges()),
                ),
            },
        );
        frontier = next;
    }
    state.into_result(iterations)
}

/// Direction-optimizing BFS: starts pushing, switches to pull while the
/// frontier is a large fraction of the graph, then back (Beamer \[2\],
/// Ligra \[29\]). Requires both edge directions (hence the doubled
/// pre-processing cost of Fig. 1).
pub fn push_pull<E: EdgeRecord, L: VertexLayout<E>>(adj: &L, root: VertexId) -> BfsResult {
    push_pull_impl(adj, root, &ExecContext::new())
}

pub(crate) fn push_pull_impl<E: EdgeRecord, L: VertexLayout<E>, P: MemProbe, R: Recorder>(
    adj: &L,
    root: VertexId,
    ctx: &ExecContext<'_, P, R>,
) -> BfsResult {
    let ctx = *ctx;
    let out = adj.out();
    let incoming = adj.incoming();
    let nv = out.num_vertices();
    // Beamer's switch threshold (|E| / 20) as adopted by Ligra.
    let edge_threshold = direction_cutoff(out.num_edges());
    let state = BfsState::new(nv, root);
    let mut iterations = Vec::new();

    let mut frontier = VertexSubset::single(root);
    while !frontier.is_empty() {
        state.round.fetch_add(1, Ordering::Relaxed);
        let frontier_size = frontier.len();
        let frontier_edges = frontier.out_edge_count(|v| out.degree(v));
        let decision = DirectionDecision::heuristic(frontier_edges + frontier_size, edge_threshold);
        let density = frontier_density(frontier_edges + frontier_size, out.num_edges());
        if decision.says_pull() {
            let dense = frontier.into_dense(nv);
            let in_frontier = match &dense {
                VertexSubset::Dense { bitmap, .. } => bitmap,
                VertexSubset::Sparse(_) => unreachable!(),
            };
            let activated = AtomicBitmap::new(nv);
            let op = PullState {
                state: &state,
                in_frontier,
                activated: &activated,
            };
            let (next, seconds) =
                timed(|| engine::vertex_pull(incoming, &op, ctx, FrontierKind::Dense));
            record_iter(
                ctx,
                &mut iterations,
                IterStat {
                    frontier_size,
                    edges_scanned: frontier_edges,
                    seconds,
                    mode: StepMode::Pull,
                    density,
                    decision,
                },
            );
            frontier = next;
        } else {
            let op = AtomicPushOp { state: &state };
            let (next, seconds) =
                timed(|| engine::vertex_push(out, &frontier, &op, ctx, FrontierKind::Sparse));
            record_iter(
                ctx,
                &mut iterations,
                IterStat {
                    frontier_size,
                    edges_scanned: frontier_edges,
                    seconds,
                    mode: StepMode::Push,
                    density,
                    decision,
                },
            );
            frontier = next;
        }
    }
    state.into_result(iterations)
}

/// Edge-centric BFS: every iteration streams the whole edge array and
/// pushes from last round's discoveries (§4.1's "full scan" drawback).
pub fn edge_centric<E: EdgeRecord>(edges: &EdgeList<E>, root: VertexId) -> BfsResult {
    edge_centric_impl(edges, root, &ExecContext::new())
}

pub(crate) fn edge_centric_impl<E: EdgeRecord, P: MemProbe, R: Recorder>(
    edges: &EdgeList<E>,
    root: VertexId,
    ctx: &ExecContext<'_, P, R>,
) -> BfsResult {
    let ctx = *ctx;
    let nv = edges.num_vertices();
    let state = BfsState::new(nv, root);
    let op = AtomicPushOp { state: &state };
    let mut iterations = Vec::new();
    let mut active = 1usize;
    while active > 0 {
        state.round.fetch_add(1, Ordering::Relaxed);
        let (next, seconds) =
            timed(|| engine::edge_push(edges.edges(), nv, &op, ctx, FrontierKind::Dense));
        record_iter(
            ctx,
            &mut iterations,
            IterStat {
                frontier_size: active,
                edges_scanned: edges.num_edges(),
                seconds,
                mode: StepMode::Push,
                // Edge-centric scans everything every round: the load
                // is the full edge array plus the active vertices.
                density: frontier_density(edges.num_edges() + active, edges.num_edges()),
                decision: DirectionDecision::forced(
                    edges.num_edges() + active,
                    direction_cutoff(edges.num_edges()),
                ),
            },
        );
        active = next.len();
    }
    state.into_result(iterations)
}

/// Grid BFS: push over grid cells with column ownership; sources are
/// filtered to last round's discoveries.
pub fn grid<E: EdgeRecord>(grid: &Grid<E>, root: VertexId) -> BfsResult {
    grid_impl(grid, root, &ExecContext::new())
}

pub(crate) fn grid_impl<E: EdgeRecord, P: MemProbe, R: Recorder>(
    grid: &Grid<E>,
    root: VertexId,
    ctx: &ExecContext<'_, P, R>,
) -> BfsResult {
    let ctx = *ctx;
    let nv = grid.num_vertices();
    let state = BfsState::new(nv, root);
    let op = AtomicPushOp { state: &state };
    let mut iterations = Vec::new();
    let mut active = 1usize;
    while active > 0 {
        state.round.fetch_add(1, Ordering::Relaxed);
        let (next, seconds) =
            timed(|| engine::grid_push_columns(grid, &op, ctx, FrontierKind::Dense));
        record_iter(
            ctx,
            &mut iterations,
            IterStat {
                frontier_size: active,
                edges_scanned: grid.num_edges(),
                seconds,
                mode: StepMode::Push,
                density: frontier_density(grid.num_edges() + active, grid.num_edges()),
                decision: DirectionDecision::forced(
                    grid.num_edges() + active,
                    direction_cutoff(grid.num_edges()),
                ),
            },
        );
        active = next.len();
    }
    state.into_result(iterations)
}

/// A serial reference BFS used by tests and result validation.
pub fn reference<E: EdgeRecord>(out: &Adjacency<E>, root: VertexId) -> Vec<u32> {
    let nv = out.num_vertices();
    let mut level = vec![u32::MAX; nv];
    level[root as usize] = 0;
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(u) = queue.pop_front() {
        for e in out.neighbors(u) {
            let v = e.dst() as usize;
            if level[v] == u32::MAX {
                level[v] = level[u as usize] + 1;
                queue.push_back(e.dst());
            }
        }
    }
    level
}

/// Incremental BFS over the delta layout (DESIGN.md §16): keeps the
/// level array of a fixed root and repairs only the affected subgraph
/// per applied batch.
///
/// Insertions are decrease-relaxations. Deletions run a two-phase
/// repair: first an *invalidation* fix-point — a vertex whose every
/// in-neighbor at `level-1` has itself been invalidated loses its
/// level, cascading down the tree — then a unit-weight Dijkstra over
/// the invalid region seeded from the still-valid boundary. Batches
/// over [`super::INCREMENTAL_FALLBACK_FRACTION`] recompute from
/// scratch.
#[derive(Debug, Clone)]
pub struct IncrementalBfs {
    root: VertexId,
    level: Vec<u32>,
    batches_applied: usize,
}

impl IncrementalBfs {
    /// Runs the initial full BFS from `root` on `merged` (any layout
    /// exposing both directions — the delta layout in the intended
    /// use).
    pub fn new<E, L>(merged: &L, root: VertexId) -> Self
    where
        E: EdgeRecord,
        L: VertexLayout<E>,
    {
        Self {
            root,
            level: Self::from_scratch(merged, root),
            batches_applied: 0,
        }
    }

    /// The current shortest-hop levels (`u32::MAX` = unreached).
    pub fn level(&self) -> &[u32] {
        &self.level
    }

    fn from_scratch<E, L>(merged: &L, root: VertexId) -> Vec<u32>
    where
        E: EdgeRecord,
        L: VertexLayout<E>,
    {
        let nv = merged.num_vertices();
        let mut level = vec![u32::MAX; nv];
        level[root as usize] = 0;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            let next = level[u as usize] + 1;
            merged.out().for_each_span(u, |span| {
                for e in span {
                    let v = e.dst();
                    if level[v as usize] == u32::MAX {
                        level[v as usize] = next;
                        queue.push_back(v);
                    }
                }
                span.len()
            });
        }
        level
    }

    /// Repairs the levels after `batch` was applied; `merged` is the
    /// post-batch graph with both directions present.
    pub fn apply<E, L>(
        &mut self,
        merged: &L,
        batch: &crate::layout::DeltaBatch<E>,
    ) -> super::IncrementalOutcome
    where
        E: EdgeRecord,
        L: VertexLayout<E>,
    {
        self.apply_ctx(merged, batch, &ExecContext::new())
    }

    /// [`apply`](Self::apply) with telemetry: each batch repair is
    /// recorded as one iteration — the touched vertices as the
    /// frontier, the batch size as the scanned edges, and the
    /// repair-vs-fallback threshold as the decision log.
    pub fn apply_ctx<E, L, P: MemProbe, R: Recorder>(
        &mut self,
        merged: &L,
        batch: &crate::layout::DeltaBatch<E>,
        ctx: &ExecContext<'_, P, R>,
    ) -> super::IncrementalOutcome
    where
        E: EdgeRecord,
        L: VertexLayout<E>,
    {
        let (outcome, seconds) = timed(|| self.apply_inner(merged, batch));
        let step = self.batches_applied;
        self.batches_applied += 1;
        if ctx.recorder.enabled() {
            let ne = merged.num_edges();
            let cutoff = ((ne as f64 * super::INCREMENTAL_FALLBACK_FRACTION) as usize).max(1);
            ctx.recorder.record_iteration(IterRecord {
                step,
                frontier_size: outcome.touched,
                edges_scanned: batch.len(),
                seconds,
                mode: StepMode::Push,
                density: frontier_density(batch.len(), ne),
                decision: DirectionDecision::heuristic(batch.len(), cutoff),
            });
        }
        outcome
    }

    fn apply_inner<E, L>(
        &mut self,
        merged: &L,
        batch: &crate::layout::DeltaBatch<E>,
    ) -> super::IncrementalOutcome
    where
        E: EdgeRecord,
        L: VertexLayout<E>,
    {
        let fraction = batch.len() as f64 / merged.num_edges().max(1) as f64;
        if fraction > super::INCREMENTAL_FALLBACK_FRACTION {
            self.level = Self::from_scratch(merged, self.root);
            return super::IncrementalOutcome {
                fallback: true,
                touched: merged.num_vertices(),
            };
        }
        let nv = merged.num_vertices();
        let mut invalid = vec![false; nv];
        let mut suspects = std::collections::VecDeque::new();
        for op in &batch.ops {
            if let crate::layout::DeltaOp::Delete { src, dst } = op {
                // Only a deleted tree-edge candidate (dst one level
                // below src) can unsupport dst.
                if self.level[*src as usize] != u32::MAX
                    && self.level[*dst as usize] == self.level[*src as usize].saturating_add(1)
                {
                    suspects.push_back(*dst);
                }
            }
        }
        // Phase 1: invalidation fix-point. A suspect keeps its level
        // while any valid in-neighbor sits exactly one level above it;
        // losing the last supporter cascades to the out-subtree.
        let mut invalidated = 0usize;
        while let Some(v) = suspects.pop_front() {
            if v == self.root || invalid[v as usize] || self.level[v as usize] == u32::MAX {
                continue;
            }
            let want = self.level[v as usize] - 1;
            let mut supported = false;
            merged.incoming().for_each_span(v, |span| {
                for (k, e) in span.iter().enumerate() {
                    let u = e.src();
                    if !invalid[u as usize] && self.level[u as usize] == want {
                        supported = true;
                        return k;
                    }
                }
                span.len()
            });
            if !supported {
                invalid[v as usize] = true;
                invalidated += 1;
                let below = self.level[v as usize] + 1;
                merged.out().for_each_span(v, |span| {
                    for e in span {
                        let w = e.dst();
                        if !invalid[w as usize] && self.level[w as usize] == below {
                            suspects.push_back(w);
                        }
                    }
                    span.len()
                });
            }
        }
        // Phase 2: repair. Invalid vertices drop to unreached, then a
        // unit-weight Dijkstra seeded from their valid in-boundary (and
        // from insert-relaxations) restores shortest levels.
        use std::cmp::Reverse;
        let mut heap = std::collections::BinaryHeap::new();
        for v in 0..nv as VertexId {
            if invalid[v as usize] {
                self.level[v as usize] = u32::MAX;
            }
        }
        for v in 0..nv as VertexId {
            if !invalid[v as usize] {
                continue;
            }
            let mut best = u32::MAX;
            merged.incoming().for_each_span(v, |span| {
                for e in span {
                    let u = e.src() as usize;
                    if !invalid[u] && self.level[u] != u32::MAX {
                        best = best.min(self.level[u].saturating_add(1));
                    }
                }
                span.len()
            });
            if best != u32::MAX {
                heap.push(Reverse((best, v)));
            }
        }
        for op in &batch.ops {
            if let crate::layout::DeltaOp::Insert(e) = op {
                let (src, dst) = (e.src() as usize, e.dst() as usize);
                if self.level[src] != u32::MAX
                    && self.level[src].saturating_add(1) < self.level[dst]
                {
                    heap.push(Reverse((self.level[src] + 1, e.dst())));
                }
            }
        }
        let mut improved = 0usize;
        while let Some(Reverse((cand, v))) = heap.pop() {
            if cand >= self.level[v as usize] {
                continue;
            }
            self.level[v as usize] = cand;
            improved += 1;
            merged.out().for_each_span(v, |span| {
                for e in span {
                    let w = e.dst();
                    if cand + 1 < self.level[w as usize] {
                        heap.push(Reverse((cand + 1, w)));
                    }
                }
                span.len()
            });
        }
        super::IncrementalOutcome {
            fallback: false,
            touched: invalidated + improved,
        }
    }
}

/// Validates that a BFS result is a correct shortest-hop tree for the
/// graph; returns the number of reachable vertices.
///
/// # Panics
///
/// Panics (with a description) if the parent array or levels are
/// inconsistent with `reference` levels.
pub fn validate<E: EdgeRecord>(out: &Adjacency<E>, root: VertexId, result: &BfsResult) -> usize {
    let expected = reference(out, root);
    assert_eq!(expected.len(), result.level.len());
    for v in 0..expected.len() {
        assert_eq!(
            result.level[v], expected[v],
            "vertex {v}: level {} != reference {}",
            result.level[v], expected[v]
        );
        if expected[v] != u32::MAX && v as u32 != root {
            let p = result.parent[v];
            assert_ne!(p, INVALID_VERTEX, "reachable vertex {v} has no parent");
            assert_eq!(
                expected[p as usize] + 1,
                expected[v],
                "vertex {v}: parent {p} is not one level up"
            );
        }
    }
    expected.iter().filter(|&&l| l != u32::MAX).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{AdjacencyList, EdgeDirection};
    use crate::preprocess::{CsrBuilder, GridBuilder, Strategy};
    use crate::types::Edge;

    /// A deterministic pseudo-random graph with a giant component.
    fn test_graph(nv: usize, ne: usize, seed: u64) -> EdgeList<Edge> {
        let mut state = seed | 1;
        let mut edges = Vec::with_capacity(ne + nv);
        // A chain guarantees reachability structure worth testing.
        for v in 0..nv as u32 / 2 {
            edges.push(Edge::new(v, v + 1));
        }
        for _ in 0..ne {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let src = ((state >> 33) % nv as u64) as u32;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let dst = ((state >> 33) % nv as u64) as u32;
            edges.push(Edge::new(src, dst));
        }
        EdgeList::new(nv, edges).unwrap()
    }

    fn layouts(input: &EdgeList<Edge>) -> (AdjacencyList<Edge>, Grid<Edge>) {
        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both).build(input);
        let grid = GridBuilder::new(Strategy::RadixSort).side(8).build(input);
        (adj, grid)
    }

    #[test]
    fn push_matches_reference() {
        let input = test_graph(500, 2000, 42);
        let (adj, _) = layouts(&input);
        let result = push(&adj, 0);
        let reachable = validate(adj.out(), 0, &result);
        assert!(reachable > 200);
        assert_eq!(result.reachable_count(), reachable);
    }

    #[test]
    fn push_locked_matches_reference() {
        let input = test_graph(400, 1500, 7);
        let (adj, _) = layouts(&input);
        let result = push_locked(&adj, 0);
        validate(adj.out(), 0, &result);
    }

    #[test]
    fn pull_matches_reference() {
        let input = test_graph(400, 1500, 11);
        let (adj, _) = layouts(&input);
        let result = pull(&adj, 0);
        validate(adj.out(), 0, &result);
        assert!(result.iterations.iter().all(|s| s.mode == StepMode::Pull));
    }

    #[test]
    fn push_pull_matches_reference_and_switches() {
        let input = test_graph(2000, 30_000, 13);
        let (adj, _) = layouts(&input);
        let result = push_pull(&adj, 0);
        validate(adj.out(), 0, &result);
        // A dense random graph must trigger at least one pull step.
        assert!(result.iterations.iter().any(|s| s.mode == StepMode::Pull));
        assert!(result.iterations.iter().any(|s| s.mode == StepMode::Push));
    }

    #[test]
    fn edge_centric_matches_reference() {
        let input = test_graph(300, 1000, 17);
        let (adj, _) = layouts(&input);
        let result = edge_centric(&input, 0);
        validate(adj.out(), 0, &result);
    }

    #[test]
    fn grid_matches_reference() {
        let input = test_graph(300, 1000, 19);
        let (adj, grid_layout) = layouts(&input);
        let result = grid(&grid_layout, 0);
        validate(adj.out(), 0, &result);
    }

    #[test]
    fn disconnected_root_only() {
        let input = EdgeList::new(5, vec![Edge::new(1, 2)]).unwrap();
        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both).build(&input);
        let result = push(&adj, 0);
        assert_eq!(result.reachable_count(), 1);
        assert_eq!(result.parent[0], 0);
        assert_eq!(result.parent[3], INVALID_VERTEX);
    }

    #[test]
    fn self_loops_and_duplicates_are_harmless() {
        let input = EdgeList::new(
            3,
            vec![
                Edge::new(0, 0),
                Edge::new(0, 1),
                Edge::new(0, 1),
                Edge::new(1, 2),
            ],
        )
        .unwrap();
        let adj = CsrBuilder::new(Strategy::CountSort, EdgeDirection::Both).build(&input);
        for result in [push(&adj, 0), pull(&adj, 0), push_pull(&adj, 0)] {
            assert_eq!(result.reachable_count(), 3);
            assert_eq!(result.level[2], 2);
        }
    }

    #[test]
    fn all_variants_agree_on_levels() {
        let input = test_graph(800, 5000, 23);
        let (adj, grid_layout) = layouts(&input);
        let baseline = reference(adj.out(), 0);
        for (name, result) in [
            ("push", push(&adj, 0)),
            ("push_locked", push_locked(&adj, 0)),
            ("pull", pull(&adj, 0)),
            ("push_pull", push_pull(&adj, 0)),
            ("edge", edge_centric(&input, 0)),
            ("grid", grid(&grid_layout, 0)),
        ] {
            assert_eq!(result.level, baseline, "{name}");
        }
    }

    #[test]
    fn recorder_matches_result_iterations_on_diamond() {
        let input = EdgeList::new(
            4,
            vec![
                Edge::new(0, 1),
                Edge::new(0, 2),
                Edge::new(1, 3),
                Edge::new(2, 3),
            ],
        )
        .unwrap();
        let (adj, _) = layouts(&input);
        let recorder = crate::telemetry::TraceRecorder::new();
        let result = push_impl(&adj, 0, &ExecContext::new().with_recorder(&recorder));
        let recorded = recorder.iterations();
        assert_eq!(recorded.len(), result.iterations.len());
        for (step, (rec, stat)) in recorded.iter().zip(&result.iterations).enumerate() {
            assert_eq!(rec.step, step);
            assert_eq!(*rec, IterRecord::from_stat(step, stat));
        }
        // Diamond levels: 0, 1, 1, 2 — three push steps discover, the
        // fourth finds an empty next frontier.
        assert_eq!(recorded[0].frontier_size, 1);
        assert_eq!(recorded[0].edges_scanned, 2);
    }

    #[test]
    fn null_recorder_results_identical_to_traced() {
        let input = test_graph(600, 4000, 31);
        let (adj, _) = layouts(&input);
        let plain = push(&adj, 0);
        let recorder = crate::telemetry::TraceRecorder::new();
        let traced = push_impl(&adj, 0, &ExecContext::new().with_recorder(&recorder));
        assert_eq!(plain.parent, traced.parent);
        assert_eq!(plain.level, traced.level);
        assert!(recorder.counters()[crate::engine::EDGES_EXAMINED] > 0.0);
    }

    #[test]
    fn iteration_stats_recorded() {
        let input = test_graph(500, 3000, 29);
        let (adj, _) = layouts(&input);
        let result = push(&adj, 0);
        assert!(!result.iterations.is_empty());
        assert_eq!(result.iterations[0].frontier_size, 1);
        assert!(result.algorithm_seconds() >= 0.0);
    }

    /// The merged delta layout the incremental engine repairs over.
    fn delta_view(
        base: &EdgeList<Edge>,
        log: &crate::layout::DeltaLog<Edge>,
    ) -> crate::layout::DeltaList<Edge> {
        let (out, inc) = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both)
            .sort_neighbors(true)
            .build(base)
            .into_parts();
        crate::layout::DeltaList::new(out, inc, log)
    }

    /// Reference levels of the merged graph (fresh CSR, serial BFS).
    fn merged_levels(base: &EdgeList<Edge>, log: &crate::layout::DeltaLog<Edge>) -> Vec<u32> {
        let merged = log.merge_into(base);
        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out)
            .sort_neighbors(true)
            .build(&merged);
        reference(adj.out(), 0)
    }

    #[test]
    fn incremental_bfs_repairs_inserts_and_deletes() {
        use crate::layout::{DeltaBatch, DeltaLog, DeltaOp};
        let base = test_graph(200, 900, 41);
        let mut log = DeltaLog::new();
        let mut engine = IncrementalBfs::new(&delta_view(&base, &log), 0);
        assert_eq!(engine.level(), &merged_levels(&base, &log)[..]);

        // Mixed small batch: shortcut inserts plus deletions that hit
        // tree edges (every (s, d) one level apart is a candidate).
        let mut batch = DeltaBatch::new();
        batch.ops.push(DeltaOp::Insert(Edge::new(0, 150)));
        batch.ops.push(DeltaOp::Insert(Edge::new(150, 151)));
        let lv = engine.level().to_vec();
        let tree_edge = base
            .edges()
            .iter()
            .find(|e| {
                lv[e.src() as usize] != u32::MAX && lv[e.dst() as usize] == lv[e.src() as usize] + 1
            })
            .copied()
            .expect("some tree edge exists");
        batch.ops.push(DeltaOp::Delete {
            src: tree_edge.src(),
            dst: tree_edge.dst(),
        });
        for op in &batch.ops {
            log.push(*op);
        }
        let outcome = engine.apply(&delta_view(&base, &log), &batch);
        assert!(!outcome.fallback, "3 ops on 900 edges stays incremental");
        assert_eq!(engine.level(), &merged_levels(&base, &log)[..]);

        // Severing a chain leaves the tail unreached.
        let chain = EdgeList::new(40, (0..39).map(|v| Edge::new(v, v + 1)).collect()).unwrap();
        let mut clog = DeltaLog::new();
        let mut ce = IncrementalBfs::new(&delta_view(&chain, &clog), 0);
        let mut batch = DeltaBatch::new();
        batch.ops.push(DeltaOp::Delete { src: 20, dst: 21 });
        clog.push(batch.ops[0]);
        let outcome = ce.apply(&delta_view(&chain, &clog), &batch);
        assert!(!outcome.fallback);
        assert_eq!(ce.level(), &merged_levels(&chain, &clog)[..]);
        assert_eq!(ce.level()[21], u32::MAX);

        // Oversized batches fall back to from-scratch.
        let mut big = DeltaBatch::new();
        for v in 0..60u32 {
            big.ops.push(DeltaOp::Insert(Edge::new(v, v + 100)));
        }
        for op in &big.ops {
            log.push(*op);
        }
        let outcome = engine.apply(&delta_view(&base, &log), &big);
        assert!(outcome.fallback, "60 ops on ~900 edges exceeds 5%");
        assert_eq!(engine.level(), &merged_levels(&base, &log)[..]);
    }
}

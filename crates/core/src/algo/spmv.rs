//! Sparse matrix–vector multiplication: `y = A·x` where `A` is the
//! graph's (weighted) adjacency matrix.
//!
//! "SpMV is an algorithm that makes only a single pass over the graph.
//! Here, edge-centric computation produces the best end-to-end result,
//! since the cost of building adjacency lists for vertex-centric
//! execution is not amortized by any gains in algorithm execution
//! time." (§4.2)

use std::sync::atomic::Ordering;

use egraph_cachesim::MemProbe;
use egraph_parallel::atomicf::AtomicF32;

use crate::engine::{self, PullOp, PushOp};
use crate::frontier::{FrontierKind, VertexSubset};
use crate::layout::NeighborAccess;
use crate::metrics::{direction_cutoff, frontier_density, timed, DirectionDecision, StepMode};
use crate::telemetry::{ExecContext, IterRecord, Recorder};
use crate::types::{EdgeList, EdgeRecord, VertexId};
use crate::util::UnsyncSlice;

/// Reports the single SpMV pass as one iteration record.
fn record_pass<P: MemProbe, R: Recorder>(
    ctx: ExecContext<'_, P, R>,
    nv: usize,
    edges: usize,
    seconds: f64,
    mode: StepMode,
) {
    if ctx.recorder.enabled() {
        ctx.recorder.record_iteration(IterRecord {
            step: 0,
            frontier_size: nv,
            edges_scanned: edges,
            seconds,
            mode,
            // A single full pass: every vertex active, every edge read.
            density: frontier_density(nv + edges, edges),
            decision: DirectionDecision::forced(nv + edges, direction_cutoff(edges)),
        });
    }
}

/// The result of an SpMV run.
#[derive(Debug, Clone)]
pub struct SpmvResult {
    /// The output vector `y`.
    pub y: Vec<f32>,
    /// Wall-clock seconds of the single pass.
    pub seconds: f64,
}

struct SpmvPushOp<'a> {
    x: &'a [f32],
    y: &'a [AtomicF32],
}

impl<E: EdgeRecord> PushOp<E> for SpmvPushOp<'_> {
    const META_BYTES: u64 = 4;

    #[inline]
    fn push(&self, e: &E) -> bool {
        self.y[e.dst() as usize]
            .fetch_add(e.weight() * self.x[e.src() as usize], Ordering::Relaxed);
        false
    }
}

/// Edge-centric SpMV: one streaming pass over the edge array, atomic
/// accumulation into `y`.
///
/// # Panics
///
/// Panics if `x.len() != edges.num_vertices()`.
pub fn edge_centric<E: EdgeRecord>(edges: &EdgeList<E>, x: &[f32]) -> SpmvResult {
    edge_centric_impl(edges, x, &ExecContext::new())
}

pub(crate) fn edge_centric_impl<E: EdgeRecord, P: MemProbe, R: Recorder>(
    edges: &EdgeList<E>,
    x: &[f32],
    ctx: &ExecContext<'_, P, R>,
) -> SpmvResult {
    let ctx = *ctx;
    let nv = edges.num_vertices();
    assert_eq!(x.len(), nv, "input vector length");
    let y: Vec<AtomicF32> = (0..nv).map(|_| AtomicF32::new(0.0)).collect();
    let op = SpmvPushOp { x, y: &y };
    let (_, seconds) = timed(|| {
        engine::edge_push(edges.edges(), nv, &op, ctx, FrontierKind::Sparse);
    });
    record_pass(ctx, nv, edges.num_edges(), seconds, StepMode::Push);
    SpmvResult {
        y: y.into_iter().map(|v| v.load(Ordering::Relaxed)).collect(),
        seconds,
    }
}

/// Vertex-centric push SpMV over an out-adjacency (the "adj" bar of
/// Fig. 3c — its pre-processing is what never pays off). Runs on any
/// [`NeighborAccess`] out-adjacency (uncompressed CSR or ccsr).
pub fn push<E: EdgeRecord, A: NeighborAccess<E>>(out: &A, x: &[f32]) -> SpmvResult {
    push_impl(out, x, &ExecContext::new())
}

pub(crate) fn push_impl<E: EdgeRecord, A: NeighborAccess<E>, P: MemProbe, R: Recorder>(
    out: &A,
    x: &[f32],
    ctx: &ExecContext<'_, P, R>,
) -> SpmvResult {
    let ctx = *ctx;
    let nv = out.num_vertices();
    assert_eq!(x.len(), nv, "input vector length");
    let y: Vec<AtomicF32> = (0..nv).map(|_| AtomicF32::new(0.0)).collect();
    let op = SpmvPushOp { x, y: &y };
    let all = VertexSubset::all(nv);
    let (_, seconds) = timed(|| {
        engine::vertex_push(out, &all, &op, ctx, FrontierKind::Sparse);
    });
    record_pass(ctx, nv, out.num_edges(), seconds, StepMode::Push);
    SpmvResult {
        y: y.into_iter().map(|v| v.load(Ordering::Relaxed)).collect(),
        seconds,
    }
}

/// Vertex-centric pull SpMV over an in-adjacency: each output element
/// is summed by its own vertex — no synchronization at all.
pub fn pull<E: EdgeRecord, A: NeighborAccess<E>>(incoming: &A, x: &[f32]) -> SpmvResult {
    pull_impl(incoming, x, &ExecContext::new())
}

pub(crate) fn pull_impl<E: EdgeRecord, A: NeighborAccess<E>, P: MemProbe, R: Recorder>(
    incoming: &A,
    x: &[f32],
    ctx: &ExecContext<'_, P, R>,
) -> SpmvResult {
    let ctx = *ctx;
    let nv = incoming.num_vertices();
    assert_eq!(x.len(), nv, "input vector length");
    let mut y = vec![0.0f32; nv];
    let (_, seconds) = timed(|| {
        struct SpmvPull<'a> {
            x: &'a [f32],
            y: UnsyncSlice<'a, f32>,
        }
        impl<E: EdgeRecord> PullOp<E> for SpmvPull<'_> {
            const META_BYTES: u64 = 4;

            #[inline]
            fn wants_pull(&self, _dst: VertexId) -> bool {
                true
            }

            #[inline]
            fn pull(&self, dst: VertexId, e: &E) -> bool {
                // SAFETY: `vertex_pull` gives `dst` a single writer.
                unsafe {
                    self.y.update(dst as usize, |a| {
                        *a += e.weight() * self.x[e.src() as usize]
                    });
                }
                false
            }

            #[inline]
            fn pull_span(&self, dst: VertexId, edges: &[E]) -> usize {
                // Vectorized inner loop: gather `x[src]` and multiply
                // by the edge weight over the whole span with a fixed
                // 8-lane association (bit-identical with or without
                // the `simd` feature — see `crate::simd`).
                let sum = crate::simd::gather_mul_sum(self.x, edges);
                // SAFETY: as in `pull` — single writer per `dst`.
                unsafe {
                    self.y.update(dst as usize, |a| *a += sum);
                }
                edges.len()
            }

            #[inline]
            fn activated(&self, _dst: VertexId) -> bool {
                false
            }
        }
        let op = SpmvPull {
            x,
            y: UnsyncSlice::new(&mut y),
        };
        engine::vertex_pull(incoming, &op, ctx, FrontierKind::Sparse);
    });
    record_pass(ctx, nv, incoming.num_edges(), seconds, StepMode::Pull);
    SpmvResult { y, seconds }
}

/// Grid SpMV: column-exclusive push with plain writes (no locks, no
/// atomics) — the grid's structural synchronization applied to the
/// single-pass kernel.
pub fn grid<E: EdgeRecord>(grid: &crate::layout::Grid<E>, x: &[f32]) -> SpmvResult {
    grid_impl(grid, x, &ExecContext::new())
}

pub(crate) fn grid_impl<E: EdgeRecord, P: MemProbe, R: Recorder>(
    grid: &crate::layout::Grid<E>,
    x: &[f32],
    ctx: &ExecContext<'_, P, R>,
) -> SpmvResult {
    let ctx = *ctx;
    let nv = grid.num_vertices();
    assert_eq!(x.len(), nv, "input vector length");
    let mut y = vec![0.0f32; nv];
    let (_, seconds) = timed(|| {
        struct GridOp<'a> {
            x: &'a [f32],
            y: UnsyncSlice<'a, f32>,
        }
        impl<E: EdgeRecord> PushOp<E> for GridOp<'_> {
            const META_BYTES: u64 = 4;

            #[inline]
            fn push(&self, e: &E) -> bool {
                // SAFETY: `grid_push_columns` gives this worker
                // exclusive ownership of every destination in its
                // columns.
                unsafe {
                    self.y.update(e.dst() as usize, |a| {
                        *a += e.weight() * self.x[e.src() as usize]
                    });
                }
                false
            }
        }
        let op = GridOp {
            x,
            y: UnsyncSlice::new(&mut y),
        };
        engine::grid_push_columns(grid, &op, ctx, FrontierKind::Sparse);
    });
    record_pass(ctx, nv, grid.num_edges(), seconds, StepMode::Push);
    SpmvResult { y, seconds }
}

/// Serial reference SpMV.
pub fn reference<E: EdgeRecord>(edges: &EdgeList<E>, x: &[f32]) -> Vec<f32> {
    let mut y = vec![0.0f32; edges.num_vertices()];
    for e in edges.edges() {
        y[e.dst() as usize] += e.weight() * x[e.src() as usize];
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::EdgeDirection;
    use crate::preprocess::{CsrBuilder, Strategy};
    use crate::types::WEdge;

    fn test_matrix(nv: usize, ne: usize, seed: u64) -> EdgeList<WEdge> {
        let mut state = seed | 1;
        let mut edges = Vec::with_capacity(ne);
        for _ in 0..ne {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let src = ((state >> 33) % nv as u64) as u32;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let dst = ((state >> 33) % nv as u64) as u32;
            edges.push(WEdge::new(src, dst, ((state >> 20) % 16) as f32 / 4.0));
        }
        EdgeList::new(nv, edges).unwrap()
    }

    fn assert_close(a: &[f32], b: &[f32]) {
        for i in 0..a.len() {
            assert!(
                (a[i] - b[i]).abs() < 1e-2 * (1.0 + a[i].abs()),
                "y[{i}]: {} vs {}",
                a[i],
                b[i]
            );
        }
    }

    #[test]
    fn all_variants_match_reference() {
        let input = test_matrix(300, 3000, 55);
        let x: Vec<f32> = (0..300).map(|i| (i % 10) as f32 / 3.0).collect();
        let expected = reference(&input, &x);
        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both).build(&input);
        let g = crate::preprocess::GridBuilder::new(Strategy::RadixSort)
            .side(4)
            .build(&input);
        assert_close(&edge_centric(&input, &x).y, &expected);
        assert_close(&push(adj.out(), &x).y, &expected);
        assert_close(&pull(adj.incoming(), &x).y, &expected);
        assert_close(&grid(&g, &x).y, &expected);
    }

    #[test]
    fn identity_like_matrix() {
        // Each vertex points at itself with weight 2 => y = 2x.
        let edges: Vec<WEdge> = (0..10u32).map(|v| WEdge::new(v, v, 2.0)).collect();
        let input = EdgeList::new(10, edges).unwrap();
        let x: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let y = edge_centric(&input, &x).y;
        for (i, &yi) in y.iter().enumerate() {
            assert_eq!(yi, 2.0 * i as f32);
        }
    }

    #[test]
    #[should_panic(expected = "input vector length")]
    fn rejects_wrong_vector_size() {
        let input = test_matrix(10, 20, 9);
        let _ = edge_centric(&input, &[1.0]);
    }

    #[test]
    fn empty_matrix_gives_zero() {
        let input: EdgeList<WEdge> = EdgeList::new(4, vec![]).unwrap();
        let y = edge_centric(&input, &[1.0; 4]).y;
        assert_eq!(y, vec![0.0; 4]);
    }
}

//! The six study algorithms (§2), each implemented for every data
//! layout × information flow × synchronization combination the paper
//! evaluates.
//!
//! | Algorithm | Kind | Active set per step | Layout variants |
//! |---|---|---|---|
//! | [`bfs`] | traversal | small subset | adj push/pull/push-pull, edge array, grid |
//! | [`wcc`] | traversal (undirected) | shrinking subset | adj push, edge array |
//! | [`sssp`] | traversal (weighted) | subset, re-activation | adj push, edge array |
//! | [`pagerank`] | ranking | whole graph | adj push/pull, edge array, grid push/pull |
//! | [`spmv`] | single pass | whole graph | adj push, edge array, adj pull |
//! | [`als`] | machine learning (bipartite) | one side per half-step | adj pull |

pub mod als;
pub mod bfs;
pub mod pagerank;
pub mod spmv;
pub mod sssp;
pub mod wcc;

//! The six study algorithms (§2), each implemented for every data
//! layout × information flow × synchronization combination the paper
//! evaluates.
//!
//! | Algorithm | Kind | Active set per step | Layout variants |
//! |---|---|---|---|
//! | [`bfs`] | traversal | small subset | adj push/pull/push-pull, edge array, grid |
//! | [`wcc`] | traversal (undirected) | shrinking subset | adj push, edge array |
//! | [`sssp`] | traversal (weighted) | subset, re-activation | adj push, edge array |
//! | [`pagerank`] | ranking | whole graph | adj push/pull, edge array, grid push/pull |
//! | [`spmv`] | single pass | whole graph | adj push, edge array, adj pull |
//! | [`als`] | machine learning (bipartite) | one side per half-step | adj pull |
//!
//! Three algorithms additionally ship an **incremental** engine for the
//! mutable delta layout (DESIGN.md §16): [`pagerank::IncrementalPagerank`]
//! (residual propagation from the endpoints of changed edges),
//! [`wcc::IncrementalWcc`] (union-find over inserted edges) and
//! [`bfs::IncrementalBfs`] (affected-subgraph invalidation + repair).
//! Each falls back to from-scratch recompute when the applied batch
//! exceeds [`INCREMENTAL_FALLBACK_FRACTION`] of the merged edge count,
//! reporting which path ran via [`IncrementalOutcome`].

pub mod als;
pub mod bfs;
pub mod pagerank;
pub mod spmv;
pub mod sssp;
pub mod wcc;

/// Delta fraction (batch ops / merged edges) above which the
/// incremental engines recompute from scratch instead of repairing —
/// past this point the affected subgraph approaches the whole graph and
/// repair bookkeeping only adds overhead.
pub const INCREMENTAL_FALLBACK_FRACTION: f64 = 0.05;

/// What an incremental engine did with one applied batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementalOutcome {
    /// The batch exceeded the fallback threshold (or was otherwise
    /// unrepairable) and the engine recomputed from scratch.
    pub fallback: bool,
    /// Vertices whose value was recomputed (the whole graph on
    /// fallback).
    pub touched: usize,
}

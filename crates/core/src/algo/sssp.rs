//! Single-source shortest paths (frontier-driven Bellman-Ford).
//!
//! "SSSP is very similar to BFS […] The only difference is that BFS
//! discovers a vertex only once, whereas in SSSP a vertex may update
//! its path many times during the computation, leading to an increase
//! both in the number of iterations and the number of vertices active
//! in each iteration." (§8)

use std::sync::atomic::Ordering;

use egraph_cachesim::MemProbe;
use egraph_parallel::atomicf::AtomicF32;

use super::bfs::record_iter;
use crate::engine::{self, PushOp};
use crate::frontier::{FrontierKind, NextFrontier, VertexSubset};
use crate::layout::{AdjacencyList, NeighborAccess, VertexLayout};
use crate::metrics::{
    direction_cutoff, frontier_density, timed, DirectionDecision, IterStat, StepMode,
};
use crate::telemetry::{ExecContext, Recorder};
use crate::types::{EdgeList, EdgeRecord, VertexId};

/// The result of an SSSP run.
#[derive(Debug, Clone)]
pub struct SsspResult {
    /// Shortest distance from the source (`f32::INFINITY` when
    /// unreachable).
    pub dist: Vec<f32>,
    /// Per-iteration statistics.
    pub iterations: Vec<IterStat>,
}

impl SsspResult {
    /// Number of vertices with a finite distance.
    pub fn reachable_count(&self) -> usize {
        self.dist.iter().filter(|d| d.is_finite()).count()
    }

    /// Total algorithm seconds.
    pub fn algorithm_seconds(&self) -> f64 {
        self.iterations.iter().map(|s| s.seconds).sum()
    }
}

struct SsspPushOp<'a> {
    dist: &'a [AtomicF32],
}

impl<E: EdgeRecord> PushOp<E> for SsspPushOp<'_> {
    const META_BYTES: u64 = 4; // one f32 distance per vertex

    #[inline]
    fn push(&self, e: &E) -> bool {
        let d = self.dist[e.src() as usize].load(Ordering::Relaxed);
        if !d.is_finite() {
            return false;
        }
        self.dist[e.dst() as usize].fetch_min(d + e.weight(), Ordering::Relaxed)
    }
}

/// Vertex-centric push SSSP over an out-adjacency. Distances relax via
/// atomic minimum; re-activated vertices re-enter the (deduplicated)
/// frontier.
///
/// Negative edge weights are a caller bug (the relaxation still
/// terminates only for non-negative weights).
pub fn push<E: EdgeRecord, L: VertexLayout<E>>(adj: &L, source: VertexId) -> SsspResult {
    push_impl(adj, source, &ExecContext::new())
}

pub(crate) fn push_impl<E: EdgeRecord, L: VertexLayout<E>, P: MemProbe, R: Recorder>(
    adj: &L,
    source: VertexId,
    ctx: &ExecContext<'_, P, R>,
) -> SsspResult {
    let ctx = *ctx;
    let out = adj.out();
    let nv = out.num_vertices();
    let dist: Vec<AtomicF32> = (0..nv).map(|_| AtomicF32::new(f32::INFINITY)).collect();
    dist[source as usize].store(0.0, Ordering::Relaxed);
    let op = SsspPushOp { dist: &dist };
    let mut frontier = VertexSubset::single(source);
    let mut iterations = Vec::new();
    let cutoff = direction_cutoff(out.num_edges());
    while !frontier.is_empty() {
        let frontier_size = frontier.len();
        let frontier_edges = frontier.out_edge_count(|v| out.degree(v));
        let observed = frontier_edges + frontier_size;
        // Dense accumulation: a vertex improved several times in one
        // step must appear once in the next frontier.
        let (next, seconds) =
            timed(|| engine::vertex_push(out, &frontier, &op, ctx, FrontierKind::Dense));
        record_iter(
            ctx,
            &mut iterations,
            IterStat {
                frontier_size,
                edges_scanned: frontier_edges,
                seconds,
                mode: StepMode::Push,
                density: frontier_density(observed, out.num_edges()),
                decision: DirectionDecision::forced(observed, cutoff),
            },
        );
        frontier = next.into_sparse();
    }
    SsspResult {
        dist: dist
            .into_iter()
            .map(|d| d.load(Ordering::Relaxed))
            .collect(),
        iterations,
    }
}

/// Edge-centric SSSP: every iteration streams the whole edge array,
/// relaxing edges whose source improved last round.
pub fn edge_centric<E: EdgeRecord>(edges: &EdgeList<E>, source: VertexId) -> SsspResult {
    edge_centric_impl(edges, source, &ExecContext::new())
}

pub(crate) fn edge_centric_impl<E: EdgeRecord, P: MemProbe, R: Recorder>(
    edges: &EdgeList<E>,
    source: VertexId,
    ctx: &ExecContext<'_, P, R>,
) -> SsspResult {
    let ctx = *ctx;
    let nv = edges.num_vertices();
    let dist: Vec<AtomicF32> = (0..nv).map(|_| AtomicF32::new(f32::INFINITY)).collect();
    dist[source as usize].store(0.0, Ordering::Relaxed);
    let mut iterations = Vec::new();

    struct ActiveOp<'a> {
        dist: &'a [AtomicF32],
        active: &'a crate::util::AtomicBitmap,
    }
    impl<E: EdgeRecord> PushOp<E> for ActiveOp<'_> {
        const META_BYTES: u64 = 4;

        #[inline]
        fn push(&self, e: &E) -> bool {
            let d = self.dist[e.src() as usize].load(Ordering::Relaxed);
            self.dist[e.dst() as usize].fetch_min(d + e.weight(), Ordering::Relaxed)
        }

        #[inline]
        fn source_active(&self, src: VertexId) -> bool {
            self.active.get(src as usize)
        }
    }

    let mut frontier = VertexSubset::single(source).into_dense(nv);
    while !frontier.is_empty() {
        let frontier_size = frontier.len();
        let active = match &frontier {
            VertexSubset::Dense { bitmap, .. } => bitmap,
            VertexSubset::Sparse(_) => unreachable!("edge-centric frontier is dense"),
        };
        let op = ActiveOp {
            dist: &dist,
            active,
        };
        let (next, seconds) =
            timed(|| engine::edge_push(edges.edges(), nv, &op, ctx, FrontierKind::Dense));
        record_iter(
            ctx,
            &mut iterations,
            IterStat {
                frontier_size,
                edges_scanned: edges.num_edges(),
                seconds,
                mode: StepMode::Push,
                // Edge-centric streams the full edge array every round.
                density: frontier_density(edges.num_edges() + frontier_size, edges.num_edges()),
                decision: DirectionDecision::forced(
                    edges.num_edges() + frontier_size,
                    direction_cutoff(edges.num_edges()),
                ),
            },
        );
        frontier = next;
    }
    SsspResult {
        dist: dist
            .into_iter()
            .map(|d| d.load(Ordering::Relaxed))
            .collect(),
        iterations,
    }
}

/// Delta-stepping SSSP (Meyer & Sanders) — an extension beyond the
/// paper's frontier Bellman-Ford, provided for the ablation benches.
///
/// Vertices are bucketed by `floor(dist / delta)`; each bucket is
/// settled by repeated *light*-edge relaxations (weight ≤ delta, which
/// can re-activate within the bucket) followed by one round of *heavy*
/// relaxations into later buckets. Small deltas approach Dijkstra
/// (little wasted work, many rounds); large deltas approach
/// Bellman-Ford.
///
/// # Panics
///
/// Panics if `delta` is not strictly positive.
pub fn delta_stepping<E: EdgeRecord>(
    adj: &AdjacencyList<E>,
    source: VertexId,
    delta: f32,
) -> SsspResult {
    assert!(delta > 0.0, "delta must be positive");
    let out = adj.out();
    let nv = out.num_vertices();
    let dist: Vec<AtomicF32> = (0..nv).map(|_| AtomicF32::new(f32::INFINITY)).collect();
    dist[source as usize].store(0.0, Ordering::Relaxed);
    let mut iterations = Vec::new();

    let bucket_of = |d: f32| -> usize { (d / delta) as usize };
    let mut buckets: Vec<Vec<VertexId>> = vec![vec![source]];
    let mut current = 0usize;

    while current < buckets.len() {
        // Settle this bucket with light-edge rounds.
        loop {
            let frontier: Vec<VertexId> = {
                let b = &mut buckets[current];
                // A vertex may have been re-bucketed upward after
                // insertion; only process ones still in range.
                let members: Vec<VertexId> = b
                    .drain(..)
                    .filter(|&v| {
                        let d = dist[v as usize].load(Ordering::Relaxed);
                        d.is_finite() && bucket_of(d) == current
                    })
                    .collect();
                members
            };
            if frontier.is_empty() {
                break;
            }
            let (light_activations, seconds) = timed(|| {
                let next = NextFrontier::new(FrontierKind::Dense, nv);
                egraph_parallel::parallel_for(0..frontier.len(), 64, |r| {
                    for &u in &frontier[r] {
                        let du = dist[u as usize].load(Ordering::Relaxed);
                        for e in out.neighbors(u) {
                            if e.weight() <= delta
                                && dist[e.dst() as usize]
                                    .fetch_min(du + e.weight(), Ordering::Relaxed)
                            {
                                next.add(e.dst());
                            }
                        }
                    }
                });
                next.finish()
            });
            iterations.push(IterStat {
                frontier_size: frontier.len(),
                edges_scanned: 0,
                seconds,
                mode: StepMode::Push,
                // Bucketed relaxation has no pull alternative; the
                // bucket membership alone is the observed load.
                density: frontier_density(frontier.len(), out.num_edges()),
                decision: DirectionDecision::forced(
                    frontier.len(),
                    direction_cutoff(out.num_edges()),
                ),
            });
            // Re-bucket light activations (serially — `buckets` is not
            // shared); heavy edges are handled after the round.
            if let VertexSubset::Dense { bitmap, .. } = &light_activations {
                for v in bitmap.to_vec() {
                    let d = dist[v as usize].load(Ordering::Relaxed);
                    let b = bucket_of(d);
                    if b >= buckets.len() {
                        buckets.resize(b + 1, Vec::new());
                    }
                    buckets[b].push(v);
                }
            }
            // Heavy relaxations of this round's frontier.
            let next = NextFrontier::new(FrontierKind::Dense, nv);
            egraph_parallel::parallel_for(0..frontier.len(), 64, |r| {
                for &u in &frontier[r] {
                    let du = dist[u as usize].load(Ordering::Relaxed);
                    for e in out.neighbors(u) {
                        if e.weight() > delta
                            && dist[e.dst() as usize].fetch_min(du + e.weight(), Ordering::Relaxed)
                        {
                            next.add(e.dst());
                        }
                    }
                }
            });
            if let VertexSubset::Dense { bitmap, .. } = &next.finish() {
                for v in bitmap.to_vec() {
                    let d = dist[v as usize].load(Ordering::Relaxed);
                    let b = bucket_of(d);
                    if b >= buckets.len() {
                        buckets.resize(b + 1, Vec::new());
                    }
                    buckets[b].push(v);
                }
            }
        }
        current += 1;
    }
    SsspResult {
        dist: dist
            .into_iter()
            .map(|d| d.load(Ordering::Relaxed))
            .collect(),
        iterations,
    }
}

/// Serial Dijkstra reference for validation.
pub fn reference<E: EdgeRecord>(edges: &EdgeList<E>, source: VertexId) -> Vec<f32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let nv = edges.num_vertices();
    let mut adj: Vec<Vec<(u32, f32)>> = vec![Vec::new(); nv];
    for e in edges.edges() {
        adj[e.src() as usize].push((e.dst(), e.weight()));
    }
    let mut dist = vec![f32::INFINITY; nv];
    dist[source as usize] = 0.0;
    let mut heap: BinaryHeap<Reverse<(ordered::F32, u32)>> = BinaryHeap::new();
    heap.push(Reverse((ordered::F32(0.0), source)));
    while let Some(Reverse((ordered::F32(d), u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for &(v, w) in &adj[u as usize] {
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((ordered::F32(nd), v)));
            }
        }
    }
    dist
}

/// A totally ordered `f32` wrapper for the reference Dijkstra's heap.
mod ordered {
    /// `f32` with total ordering (no NaNs expected in distances).
    #[derive(PartialEq, Clone, Copy)]
    pub struct F32(pub f32);

    impl Eq for F32 {}

    impl PartialOrd for F32 {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    impl Ord for F32 {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0
                .partial_cmp(&other.0)
                .unwrap_or(std::cmp::Ordering::Equal)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::EdgeDirection;
    use crate::preprocess::{CsrBuilder, Strategy};
    use crate::types::WEdge;

    fn weighted_graph(nv: usize, ne: usize, seed: u64) -> EdgeList<WEdge> {
        let mut state = seed | 1;
        let mut edges = Vec::with_capacity(ne + nv / 2);
        for v in 0..nv as u32 / 2 {
            edges.push(WEdge::new(v, v + 1, 1.0 + (v % 7) as f32));
        }
        for _ in 0..ne {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let src = ((state >> 33) % nv as u64) as u32;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let dst = ((state >> 33) % nv as u64) as u32;
            let w = 0.5 + ((state >> 16) % 100) as f32 / 10.0;
            edges.push(WEdge::new(src, dst, w));
        }
        EdgeList::new(nv, edges).unwrap()
    }

    fn assert_dists_match(got: &[f32], expected: &[f32]) {
        for v in 0..got.len() {
            if expected[v].is_infinite() {
                assert!(got[v].is_infinite(), "vertex {v} should be unreachable");
            } else {
                assert!(
                    (got[v] - expected[v]).abs() < 1e-3,
                    "vertex {v}: {} vs {}",
                    got[v],
                    expected[v]
                );
            }
        }
    }

    #[test]
    fn push_matches_dijkstra() {
        let input = weighted_graph(400, 3000, 77);
        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&input);
        let result = push(&adj, 0);
        assert_dists_match(&result.dist, &reference(&input, 0));
        assert!(result.reachable_count() > 100);
    }

    #[test]
    fn edge_centric_matches_dijkstra() {
        let input = weighted_graph(300, 2000, 33);
        let result = edge_centric(&input, 0);
        assert_dists_match(&result.dist, &reference(&input, 0));
    }

    #[test]
    fn unreachable_vertices_stay_infinite() {
        let input = EdgeList::new(4, vec![WEdge::new(0, 1, 2.0)]).unwrap();
        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&input);
        let result = push(&adj, 0);
        assert_eq!(result.dist[1], 2.0);
        assert!(result.dist[2].is_infinite());
        assert_eq!(result.reachable_count(), 2);
    }

    #[test]
    fn shorter_path_wins_over_fewer_hops() {
        // 0 -> 2 direct costs 10; 0 -> 1 -> 2 costs 3.
        let input = EdgeList::new(
            3,
            vec![
                WEdge::new(0, 2, 10.0),
                WEdge::new(0, 1, 1.0),
                WEdge::new(1, 2, 2.0),
            ],
        )
        .unwrap();
        let adj = CsrBuilder::new(Strategy::CountSort, EdgeDirection::Out).build(&input);
        let result = push(&adj, 0);
        assert_eq!(result.dist[2], 3.0);
    }

    #[test]
    fn delta_stepping_matches_dijkstra() {
        let input = weighted_graph(400, 3000, 88);
        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&input);
        let expected = reference(&input, 0);
        for delta in [0.5f32, 2.0, 8.0, 100.0] {
            let result = delta_stepping(&adj, 0, delta);
            assert_dists_match(&result.dist, &expected);
        }
    }

    #[test]
    fn delta_stepping_small_delta_on_chain() {
        // A weighted chain exercises many buckets.
        let edges: Vec<WEdge> = (0..50u32).map(|v| WEdge::new(v, v + 1, 1.5)).collect();
        let input = EdgeList::new(51, edges).unwrap();
        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&input);
        let result = delta_stepping(&adj, 0, 1.0);
        assert_eq!(result.dist[50], 75.0);
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn delta_stepping_rejects_zero_delta() {
        let input = weighted_graph(10, 10, 1);
        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&input);
        let _ = delta_stepping(&adj, 0, 0.0);
    }

    #[test]
    fn sssp_runs_more_iterations_than_bfs_levels() {
        // Weighted relaxations revisit vertices; iterations recorded.
        let input = weighted_graph(200, 1500, 11);
        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&input);
        let result = push(&adj, 0);
        assert!(!result.iterations.is_empty());
        assert!(result.algorithm_seconds() >= 0.0);
    }
}

//! Weakly connected components via label propagation.
//!
//! WCC runs on the undirected view of the graph. The paper's §8
//! observation: adjacency lists must be built from a doubled
//! (undirected) edge list — extra pre-processing — while the
//! edge-centric kernel simply propagates labels in both directions of
//! each stored edge at no pre-processing cost. Which side wins depends
//! on the diameter: low-diameter graphs converge in few iterations
//! (edge array wins), high-diameter graphs need many (adjacency list
//! wins).

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use egraph_cachesim::MemProbe;

use super::bfs::record_iter;
use crate::engine::{self, PullOp, PushOp};
use crate::frontier::{FrontierKind, VertexSubset};
use crate::layout::{NeighborAccess, VertexLayout};
use crate::metrics::{
    direction_cutoff, frontier_density, timed, DirectionDecision, IterStat, StepMode,
};
use crate::telemetry::{ExecContext, IterRecord, Recorder};
use crate::types::VertexId;
use crate::types::{EdgeList, EdgeRecord};
use crate::util::AtomicBitmap;

/// The result of a WCC run.
#[derive(Debug, Clone)]
pub struct WccResult {
    /// Component label per vertex (the minimum vertex id in the
    /// component).
    pub label: Vec<u32>,
    /// Per-iteration statistics.
    pub iterations: Vec<IterStat>,
}

impl WccResult {
    /// Number of distinct components.
    pub fn component_count(&self) -> usize {
        let mut labels: Vec<u32> = self.label.clone();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }

    /// Total algorithm seconds.
    pub fn algorithm_seconds(&self) -> f64 {
        self.iterations.iter().map(|s| s.seconds).sum()
    }
}

struct WccPushOp<'a> {
    label: &'a [AtomicU32],
}

impl<E: EdgeRecord> PushOp<E> for WccPushOp<'_> {
    const META_BYTES: u64 = 4;

    #[inline]
    fn push(&self, e: &E) -> bool {
        let l = self.label[e.src() as usize].load(Ordering::Relaxed);
        // `fetch_min` returns the previous value; the label moved (and
        // the destination re-activates) iff the previous value was
        // larger.
        self.label[e.dst() as usize].fetch_min(l, Ordering::Relaxed) > l
    }
}

/// Vertex-centric push WCC over an **undirected** adjacency (build it
/// from [`EdgeList::to_undirected`], which is what doubles the
/// pre-processing cost). Runs on any [`VertexLayout`].
pub fn push<E: EdgeRecord, L: VertexLayout<E>>(adj: &L) -> WccResult {
    push_impl(adj, &ExecContext::new())
}

pub(crate) fn push_impl<E: EdgeRecord, L: VertexLayout<E>, P: MemProbe, R: Recorder>(
    adj: &L,
    ctx: &ExecContext<'_, P, R>,
) -> WccResult {
    let ctx = *ctx;
    let out = adj.out();
    let nv = out.num_vertices();
    let label: Vec<AtomicU32> = (0..nv as u32).map(AtomicU32::new).collect();
    let op = WccPushOp { label: &label };
    let cutoff = direction_cutoff(out.num_edges());
    let mut frontier = VertexSubset::all(nv);
    let mut iterations = Vec::new();
    while !frontier.is_empty() {
        let frontier_size = frontier.len();
        let (next, seconds) =
            timed(|| engine::vertex_push(out, &frontier, &op, ctx, FrontierKind::Dense));
        record_iter(
            ctx,
            &mut iterations,
            IterStat {
                frontier_size,
                edges_scanned: 0,
                seconds,
                // Pure push never sums frontier degrees here, so the
                // load estimate degrades to the vertex term alone.
                density: frontier_density(frontier_size, out.num_edges()),
                mode: StepMode::Push,
                decision: DirectionDecision::forced(frontier_size, cutoff),
            },
        );
        frontier = next;
    }
    WccResult {
        label: label.into_iter().map(AtomicU32::into_inner).collect(),
        iterations,
    }
}

/// Edge-centric WCC over the raw (directed) edge array: each stored
/// edge propagates the smaller label to the other endpoint, so no
/// undirected copy — and no pre-processing at all — is needed.
pub fn edge_centric<E: EdgeRecord>(edges: &EdgeList<E>) -> WccResult {
    edge_centric_impl(edges, &ExecContext::new())
}

pub(crate) fn edge_centric_impl<E: EdgeRecord, P: MemProbe, R: Recorder>(
    edges: &EdgeList<E>,
    ctx: &ExecContext<'_, P, R>,
) -> WccResult {
    let ctx = *ctx;
    let nv = edges.num_vertices();
    let label: Vec<AtomicU32> = (0..nv as u32).map(AtomicU32::new).collect();
    let mut iterations = Vec::new();
    loop {
        let changed = AtomicBool::new(false);
        let (_, seconds) = timed(|| {
            egraph_parallel::parallel_for(
                0..edges.num_edges(),
                egraph_parallel::DEFAULT_GRAIN,
                |r| {
                    let mut any = false;
                    for e in &edges.edges()[r] {
                        let (s, d) = (e.src() as usize, e.dst() as usize);
                        let ls = label[s].load(Ordering::Relaxed);
                        let ld = label[d].load(Ordering::Relaxed);
                        if ls < ld {
                            any |= label[d].fetch_min(ls, Ordering::Relaxed) > ls;
                        } else if ld < ls {
                            any |= label[s].fetch_min(ld, Ordering::Relaxed) > ld;
                        }
                    }
                    if any {
                        changed.store(true, Ordering::Relaxed);
                    }
                },
            );
        });
        record_iter(
            ctx,
            &mut iterations,
            IterStat {
                frontier_size: nv,
                edges_scanned: edges.num_edges(),
                seconds,
                mode: StepMode::Push,
                density: frontier_density(edges.num_edges() + nv, edges.num_edges()),
                decision: DirectionDecision::forced(
                    edges.num_edges() + nv,
                    direction_cutoff(edges.num_edges()),
                ),
            },
        );
        if !changed.load(Ordering::Relaxed) {
            break;
        }
    }
    WccResult {
        label: label.into_iter().map(AtomicU32::into_inner).collect(),
        iterations,
    }
}

/// Pull rule for label propagation: a vertex folds the minimum of its
/// neighbors' labels into its own slot — single writer per vertex, no
/// synchronization beyond atomic loads/stores. Labels only decrease,
/// so racing with a neighbor's concurrent update can only read an
/// *earlier or newer-but-smaller* value; both preserve convergence.
struct WccPullOp<'a> {
    label: &'a [AtomicU32],
    activated: &'a AtomicBitmap,
    in_frontier: &'a AtomicBitmap,
}

impl<E: EdgeRecord> PullOp<E> for WccPullOp<'_> {
    const META_BYTES: u64 = 4;

    #[inline]
    fn wants_pull(&self, _dst: VertexId) -> bool {
        true
    }

    #[inline]
    fn pull(&self, dst: VertexId, e: &E) -> bool {
        // Works over an in-adjacency (neighbor = src) or, for
        // undirected graphs, an out-adjacency (neighbor = dst).
        let u = if e.src() == dst { e.dst() } else { e.src() };
        // Only labels that moved last round can lower ours.
        if !self.in_frontier.get(u as usize) {
            return false;
        }
        let lu = self.label[u as usize].load(Ordering::Relaxed);
        if lu < self.label[dst as usize].load(Ordering::Relaxed) {
            self.label[dst as usize].store(lu, Ordering::Relaxed);
            self.activated.set(dst as usize);
        }
        false
    }

    #[inline]
    fn prefetch_src(&self, e: &E) {
        // The hot random read is the frontier bit of the neighbor; the
        // neighbor is `src` over an in-adjacency and `dst` over an
        // undirected out-adjacency, so hint both endpoints.
        self.in_frontier.prefetch(e.src() as usize);
        self.in_frontier.prefetch(e.dst() as usize);
    }

    #[inline]
    fn activated(&self, dst: VertexId) -> bool {
        self.activated.get(dst as usize)
    }
}

/// Vertex-centric pull WCC over an **undirected** adjacency list: no
/// locks, no CAS — each vertex writes only itself (§6.1.2 applied to
/// label propagation).
pub fn pull<E: EdgeRecord, L: VertexLayout<E>>(adj: &L) -> WccResult {
    pull_impl(adj, &ExecContext::new())
}

pub(crate) fn pull_impl<E: EdgeRecord, L: VertexLayout<E>, P: MemProbe, R: Recorder>(
    adj: &L,
    ctx: &ExecContext<'_, P, R>,
) -> WccResult {
    let ctx = *ctx;
    let incoming = adj.incoming_opt().unwrap_or_else(|| adj.out());
    let nv = incoming.num_vertices();
    let label: Vec<AtomicU32> = (0..nv as u32).map(AtomicU32::new).collect();
    let mut frontier = VertexSubset::all(nv);
    let mut iterations = Vec::new();
    while !frontier.is_empty() {
        let frontier_size = frontier.len();
        let dense = frontier.into_dense(nv);
        let in_frontier = match &dense {
            VertexSubset::Dense { bitmap, .. } => bitmap,
            VertexSubset::Sparse(_) => unreachable!("converted above"),
        };
        let activated = AtomicBitmap::new(nv);
        let op = WccPullOp {
            label: &label,
            activated: &activated,
            in_frontier,
        };
        let (next, seconds) =
            timed(|| engine::vertex_pull(incoming, &op, ctx, FrontierKind::Dense));
        record_iter(
            ctx,
            &mut iterations,
            IterStat {
                frontier_size,
                edges_scanned: incoming.num_edges(),
                seconds,
                mode: StepMode::Pull,
                density: frontier_density(
                    incoming.num_edges() + frontier_size,
                    incoming.num_edges(),
                ),
                decision: DirectionDecision::forced(
                    incoming.num_edges() + frontier_size,
                    direction_cutoff(incoming.num_edges()),
                ),
            },
        );
        frontier = next;
    }
    WccResult {
        label: label.into_iter().map(AtomicU32::into_inner).collect(),
        iterations,
    }
}

/// Direction-optimizing WCC: push rounds while the active set is
/// small, pull rounds while it is large (the Ligra recipe applied to
/// label propagation). Requires an undirected adjacency list.
pub fn push_pull<E: EdgeRecord, L: VertexLayout<E>>(adj: &L) -> WccResult {
    push_pull_impl(adj, &ExecContext::new())
}

pub(crate) fn push_pull_impl<E: EdgeRecord, L: VertexLayout<E>, P: MemProbe, R: Recorder>(
    adj: &L,
    ctx: &ExecContext<'_, P, R>,
) -> WccResult {
    let ctx = *ctx;
    let out = adj.out();
    let nv = out.num_vertices();
    // Beamer's switch threshold (|E| / 20) as adopted by Ligra.
    let edge_threshold = direction_cutoff(out.num_edges());
    let label: Vec<AtomicU32> = (0..nv as u32).map(AtomicU32::new).collect();
    let mut frontier = VertexSubset::all(nv);
    let mut iterations = Vec::new();
    while !frontier.is_empty() {
        let frontier_size = frontier.len();
        let frontier_edges = frontier.out_edge_count(|v| out.degree(v));
        let decision = DirectionDecision::heuristic(frontier_edges + frontier_size, edge_threshold);
        let density = frontier_density(frontier_edges + frontier_size, out.num_edges());
        if decision.says_pull() {
            // Pull round.
            let dense = frontier.into_dense(nv);
            let in_frontier = match &dense {
                VertexSubset::Dense { bitmap, .. } => bitmap,
                VertexSubset::Sparse(_) => unreachable!(),
            };
            let activated = AtomicBitmap::new(nv);
            let op = WccPullOp {
                label: &label,
                activated: &activated,
                in_frontier,
            };
            let (next, seconds) = timed(|| engine::vertex_pull(out, &op, ctx, FrontierKind::Dense));
            record_iter(
                ctx,
                &mut iterations,
                IterStat {
                    frontier_size,
                    edges_scanned: out.num_edges(),
                    seconds,
                    mode: StepMode::Pull,
                    density,
                    decision,
                },
            );
            frontier = next;
        } else {
            let op = WccPushOp { label: &label };
            let (next, seconds) =
                timed(|| engine::vertex_push(out, &frontier, &op, ctx, FrontierKind::Dense));
            record_iter(
                ctx,
                &mut iterations,
                IterStat {
                    frontier_size,
                    edges_scanned: frontier_edges,
                    seconds,
                    mode: StepMode::Push,
                    density,
                    decision,
                },
            );
            frontier = next;
        }
    }
    WccResult {
        label: label.into_iter().map(AtomicU32::into_inner).collect(),
        iterations,
    }
}

/// Grid WCC: like [`edge_centric`] but iterating cells in grid order,
/// so the labels of a cell's two vertex ranges stay cache-resident —
/// the §5 locality argument applied to label propagation.
pub fn grid<E: EdgeRecord>(grid: &crate::layout::Grid<E>) -> WccResult {
    grid_impl(grid, &ExecContext::new())
}

pub(crate) fn grid_impl<E: EdgeRecord, P: MemProbe, R: Recorder>(
    grid: &crate::layout::Grid<E>,
    ctx: &ExecContext<'_, P, R>,
) -> WccResult {
    let ctx = *ctx;
    let nv = grid.num_vertices();
    let label: Vec<AtomicU32> = (0..nv as u32).map(AtomicU32::new).collect();
    let side = grid.side();
    let mut iterations = Vec::new();
    loop {
        let changed = AtomicBool::new(false);
        let (_, seconds) = timed(|| {
            egraph_parallel::parallel_for(0..side * side, 1, |cells| {
                let mut any = false;
                for cell_id in cells {
                    let (row, col) = (cell_id / side, cell_id % side);
                    for e in grid.cell(row, col) {
                        let (s, d) = (e.src() as usize, e.dst() as usize);
                        let ls = label[s].load(Ordering::Relaxed);
                        let ld = label[d].load(Ordering::Relaxed);
                        if ls < ld {
                            any |= label[d].fetch_min(ls, Ordering::Relaxed) > ls;
                        } else if ld < ls {
                            any |= label[s].fetch_min(ld, Ordering::Relaxed) > ld;
                        }
                    }
                }
                if any {
                    changed.store(true, Ordering::Relaxed);
                }
            });
        });
        record_iter(
            ctx,
            &mut iterations,
            IterStat {
                frontier_size: nv,
                edges_scanned: grid.num_edges(),
                seconds,
                mode: StepMode::Push,
                density: frontier_density(grid.num_edges() + nv, grid.num_edges()),
                decision: DirectionDecision::forced(
                    grid.num_edges() + nv,
                    direction_cutoff(grid.num_edges()),
                ),
            },
        );
        if !changed.load(Ordering::Relaxed) {
            break;
        }
    }
    WccResult {
        label: label.into_iter().map(AtomicU32::into_inner).collect(),
        iterations,
    }
}

/// Serial union-find reference for validation.
pub fn reference<E: EdgeRecord>(edges: &EdgeList<E>) -> Vec<u32> {
    let nv = edges.num_vertices();
    let mut parent: Vec<u32> = (0..nv as u32).collect();
    fn find(parent: &mut [u32], v: u32) -> u32 {
        let mut root = v;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = v;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for e in edges.edges() {
        let a = find(&mut parent, e.src());
        let b = find(&mut parent, e.dst());
        if a != b {
            parent[a.max(b) as usize] = a.min(b);
        }
    }
    // Normalize every vertex to its component's minimum id.
    let mut label = vec![0u32; nv];
    for v in 0..nv as u32 {
        label[v as usize] = find(&mut parent, v);
    }
    label
}

/// Incremental WCC over the delta layout (DESIGN.md §16): keeps the
/// per-vertex component labels (component minima, the same shape
/// [`reference`] emits) and repairs them per applied batch.
///
/// Edge insertions only ever merge components, so an insert-only batch
/// is a union-find pass over the *labels* of the inserted endpoints
/// followed by a relabel — no graph traversal at all. Deletions can
/// split components, which connectivity labels cannot repair locally,
/// so any batch with a delete (or one exceeding
/// [`super::INCREMENTAL_FALLBACK_FRACTION`]) recomputes from scratch on
/// the merged edge list.
#[derive(Debug, Clone)]
pub struct IncrementalWcc {
    labels: Vec<u32>,
    batches_applied: usize,
}

impl IncrementalWcc {
    /// Labels the initial graph (treated as undirected, like every WCC
    /// variant).
    pub fn new<E: EdgeRecord>(edges: &EdgeList<E>) -> Self {
        Self {
            labels: reference(edges),
            batches_applied: 0,
        }
    }

    /// The current per-vertex component labels (component minima).
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Repairs the labels after `batch` was applied. `merged` is the
    /// post-batch edge list (only traversed on the fallback path).
    pub fn apply<E: EdgeRecord>(
        &mut self,
        merged: &EdgeList<E>,
        batch: &crate::layout::DeltaBatch<E>,
    ) -> super::IncrementalOutcome {
        self.apply_ctx(merged, batch, &ExecContext::new())
    }

    /// [`apply`](Self::apply) with telemetry: each batch repair is
    /// recorded as one iteration, with the batch-size-vs-fallback
    /// threshold as the decision log (deletes force the fallback
    /// regardless of the comparison).
    pub fn apply_ctx<E: EdgeRecord, P: MemProbe, R: Recorder>(
        &mut self,
        merged: &EdgeList<E>,
        batch: &crate::layout::DeltaBatch<E>,
        ctx: &ExecContext<'_, P, R>,
    ) -> super::IncrementalOutcome {
        let (outcome, seconds) = timed(|| self.apply_inner(merged, batch));
        let step = self.batches_applied;
        self.batches_applied += 1;
        if ctx.recorder.enabled() {
            let ne = merged.num_edges();
            let cutoff = ((ne as f64 * super::INCREMENTAL_FALLBACK_FRACTION) as usize).max(1);
            ctx.recorder.record_iteration(IterRecord {
                step,
                frontier_size: outcome.touched,
                edges_scanned: batch.len(),
                seconds,
                mode: StepMode::Push,
                density: frontier_density(batch.len(), ne),
                decision: DirectionDecision::heuristic(batch.len(), cutoff),
            });
        }
        outcome
    }

    fn apply_inner<E: EdgeRecord>(
        &mut self,
        merged: &EdgeList<E>,
        batch: &crate::layout::DeltaBatch<E>,
    ) -> super::IncrementalOutcome {
        let fraction = batch.len() as f64 / merged.num_edges().max(1) as f64;
        if batch.has_deletes() || fraction > super::INCREMENTAL_FALLBACK_FRACTION {
            self.labels = reference(merged);
            return super::IncrementalOutcome {
                fallback: true,
                touched: merged.num_vertices(),
            };
        }
        // Union-find over label values: labels are component minima, so
        // unioning toward the smaller root keeps them minima.
        let nv = self.labels.len();
        let mut parent: Vec<u32> = (0..nv as u32).collect();
        fn find(parent: &mut [u32], v: u32) -> u32 {
            let mut root = v;
            while parent[root as usize] != root {
                root = parent[root as usize];
            }
            let mut cur = v;
            while parent[cur as usize] != root {
                let next = parent[cur as usize];
                parent[cur as usize] = root;
                cur = next;
            }
            root
        }
        let mut merged_components = 0usize;
        for op in &batch.ops {
            let (src, dst) = op.endpoints();
            let a = find(&mut parent, self.labels[src as usize]);
            let b = find(&mut parent, self.labels[dst as usize]);
            if a != b {
                parent[a.max(b) as usize] = a.min(b);
                merged_components += 1;
            }
        }
        if merged_components > 0 {
            for label in self.labels.iter_mut() {
                *label = find(&mut parent, *label);
            }
        }
        super::IncrementalOutcome {
            fallback: false,
            touched: merged_components,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::EdgeDirection;
    use crate::preprocess::{CsrBuilder, Strategy};
    use crate::types::Edge;

    fn components_graph() -> EdgeList<Edge> {
        // Component {0,1,2,3}, component {4,5}, isolated {6}.
        EdgeList::new(
            7,
            vec![
                Edge::new(1, 0),
                Edge::new(2, 1),
                Edge::new(3, 2),
                Edge::new(5, 4),
            ],
        )
        .unwrap()
    }

    #[test]
    fn reference_labels() {
        let labels = reference(&components_graph());
        assert_eq!(labels, vec![0, 0, 0, 0, 4, 4, 6]);
    }

    #[test]
    fn push_matches_reference() {
        let input = components_graph();
        let undirected = input.to_undirected();
        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&undirected);
        let result = push(&adj);
        assert_eq!(result.label, reference(&input));
        assert_eq!(result.component_count(), 3);
    }

    #[test]
    fn edge_centric_matches_reference() {
        let input = components_graph();
        let result = edge_centric(&input);
        assert_eq!(result.label, reference(&input));
    }

    #[test]
    fn random_graph_agreement() {
        let nv = 600usize;
        let mut state = 21u64;
        let mut edges = Vec::new();
        for _ in 0..900 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let src = ((state >> 33) % nv as u64) as u32;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let dst = ((state >> 33) % nv as u64) as u32;
            edges.push(Edge::new(src, dst));
        }
        let input = EdgeList::new(nv, edges).unwrap();
        let expected = reference(&input);
        let undirected = input.to_undirected();
        let adj = CsrBuilder::new(Strategy::CountSort, EdgeDirection::Out).build(&undirected);
        assert_eq!(push(&adj).label, expected);
        assert_eq!(edge_centric(&input).label, expected);
    }

    #[test]
    fn pull_matches_reference() {
        let input = components_graph();
        let undirected = input.to_undirected();
        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&undirected);
        let result = pull(&adj);
        assert_eq!(result.label, reference(&input));
        assert!(result.iterations.iter().all(|s| s.mode == StepMode::Pull));
    }

    #[test]
    fn push_pull_matches_reference_random() {
        let nv = 500usize;
        let mut state = 31u64;
        let mut edges = Vec::new();
        for _ in 0..1200 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let src = ((state >> 33) % nv as u64) as u32;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let dst = ((state >> 33) % nv as u64) as u32;
            edges.push(Edge::new(src, dst));
        }
        let input = EdgeList::new(nv, edges).unwrap();
        let expected = reference(&input);
        let undirected = input.to_undirected();
        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&undirected);
        assert_eq!(pull(&adj).label, expected, "pull");
        let pp = push_pull(&adj);
        assert_eq!(pp.label, expected, "push-pull");
        // A dense random graph starts with a full frontier: the first
        // round must be a pull.
        assert_eq!(pp.iterations[0].mode, StepMode::Pull);
    }

    #[test]
    fn grid_matches_reference() {
        use crate::preprocess::GridBuilder;
        let input = components_graph();
        let g = GridBuilder::new(Strategy::RadixSort).side(2).build(&input);
        assert_eq!(grid(&g).label, reference(&input));
    }

    #[test]
    fn grid_matches_reference_random() {
        use crate::preprocess::GridBuilder;
        let nv = 400usize;
        let mut state = 77u64;
        let mut edges = Vec::new();
        for _ in 0..700 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let src = ((state >> 33) % nv as u64) as u32;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let dst = ((state >> 33) % nv as u64) as u32;
            edges.push(Edge::new(src, dst));
        }
        let input = EdgeList::new(nv, edges).unwrap();
        let g = GridBuilder::new(Strategy::CountSort).side(8).build(&input);
        assert_eq!(grid(&g).label, reference(&input));
    }

    #[test]
    fn empty_graph_has_all_singletons() {
        let input: EdgeList<Edge> = EdgeList::new(5, vec![]).unwrap();
        let result = edge_centric(&input);
        assert_eq!(result.component_count(), 5);
    }

    #[test]
    fn chain_needs_many_iterations_edge_centric() {
        // A long path whose edges are stored *against* the scan order,
        // so the minimum label travels roughly one hop per pass — the
        // high-diameter behaviour that §8 says favours adjacency lists.
        let n = 64u32;
        let edges: Vec<Edge> = (0..n - 1).rev().map(|v| Edge::new(v, v + 1)).collect();
        let input = EdgeList::new(n as usize, edges).unwrap();
        let result = edge_centric(&input);
        assert_eq!(result.component_count(), 1);
        assert!(result.label.iter().all(|&l| l == 0));
        assert!(
            result.iterations.len() > 5,
            "{} iterations",
            result.iterations.len()
        );
    }

    #[test]
    fn incremental_wcc_unions_inserts_and_falls_back_on_deletes() {
        use crate::layout::{DeltaBatch, DeltaLog, DeltaOp};
        use crate::types::Edge;
        // Two chains: components {0..29} and {30..59}.
        let mut edges: Vec<Edge> = (0..29).map(|v| Edge::new(v, v + 1)).collect();
        edges.extend((30..59).map(|v| Edge::new(v, v + 1)));
        let base = EdgeList::new(60, edges).unwrap();
        let mut log = DeltaLog::new();
        let mut engine = IncrementalWcc::new(&base);
        assert_eq!(engine.labels()[37], 30);

        // Inserting a bridge merges the components without traversal.
        let mut batch = DeltaBatch::new();
        batch.ops.push(DeltaOp::Insert(Edge::new(2, 37)));
        for op in &batch.ops {
            log.push(*op);
        }
        let merged = log.merge_into(&base);
        let outcome = engine.apply(&merged, &batch);
        assert!(!outcome.fallback);
        assert_eq!(outcome.touched, 1, "one component merge");
        assert_eq!(engine.labels(), &reference(&merged)[..]);
        assert!(engine.labels().iter().all(|&l| l == 0));

        // Deleting the bridge cannot be repaired locally: fallback.
        let mut batch = DeltaBatch::new();
        batch.ops.push(DeltaOp::Delete { src: 2, dst: 37 });
        for op in &batch.ops {
            log.push(*op);
        }
        let merged = log.merge_into(&base);
        let outcome = engine.apply(&merged, &batch);
        assert!(outcome.fallback, "deletes force recompute");
        assert_eq!(engine.labels(), &reference(&merged)[..]);
        assert_eq!(engine.labels()[37], 30, "split restored");
    }
}

//! Alternating least squares (ALS) collaborative filtering on a
//! bipartite ratings graph \[35\].
//!
//! "ALS computes recommendations from a bipartite graph. The left side
//! of the graph represents users and the other side items being rated.
//! During every iteration, a subset of the graph (the left or right
//! side) is active, and hence adjacency lists are the best data
//! layout." (§8)
//!
//! Users are vertices `0..num_users`, items `num_users..num_vertices`;
//! every rating is an edge `user → item` whose weight is the rating.
//! Each half-iteration solves, per active-side vertex, the regularized
//! normal equations `(QᵀQ + λI)·f = Qᵀr` with the dense Cholesky kernel
//! from [`crate::linalg`]. Both half-steps are pull-style: a vertex
//! reads its neighbors' factors and writes only its own — lock free.

use egraph_cachesim::MemProbe;

use crate::layout::Adjacency;
use crate::linalg::cholesky_solve_in_place;
use crate::metrics::{direction_cutoff, frontier_density, timed, DirectionDecision, StepMode};
use crate::telemetry::{ExecContext, IterRecord, Recorder};
use crate::types::{EdgeRecord, VertexId, WEdge};
use crate::util::UnsyncSlice;

/// Configuration of an ALS run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlsConfig {
    /// Latent factor dimensionality.
    pub rank: usize,
    /// Ridge regularization λ.
    pub lambda: f64,
    /// Number of full (user+item) iterations.
    pub iterations: usize,
}

impl Default for AlsConfig {
    fn default() -> Self {
        Self {
            rank: 8,
            lambda: 0.1,
            iterations: 5,
        }
    }
}

/// The result of an ALS run.
#[derive(Debug, Clone)]
pub struct AlsResult {
    /// Row-major `num_vertices × rank` factor matrix (users then
    /// items).
    pub factors: Vec<f32>,
    /// Factor dimensionality.
    pub rank: usize,
    /// Training RMSE after each full iteration.
    pub rmse_history: Vec<f64>,
    /// Wall-clock seconds of the algorithm.
    pub seconds: f64,
}

impl AlsResult {
    /// The factor vector of one vertex.
    pub fn factor(&self, v: VertexId) -> &[f32] {
        &self.factors[v as usize * self.rank..(v as usize + 1) * self.rank]
    }

    /// Predicted rating of `user` for `item`.
    pub fn predict(&self, user: VertexId, item: VertexId) -> f32 {
        self.factor(user)
            .iter()
            .zip(self.factor(item))
            .map(|(a, b)| a * b)
            .sum()
    }
}

/// Runs ALS on a bipartite ratings graph.
///
/// `out` must hold the user→item edges grouped by user, `incoming` the
/// same edges grouped by item (build with `EdgeDirection::Both`).
///
/// # Panics
///
/// Panics if the adjacencies disagree on vertex count or `num_users`
/// exceeds it.
pub fn als(
    out: &Adjacency<WEdge>,
    incoming: &Adjacency<WEdge>,
    num_users: usize,
    cfg: AlsConfig,
) -> AlsResult {
    als_impl(out, incoming, num_users, cfg, &ExecContext::new())
}

pub(crate) fn als_impl<P: MemProbe, R: Recorder>(
    out: &Adjacency<WEdge>,
    incoming: &Adjacency<WEdge>,
    num_users: usize,
    cfg: AlsConfig,
    ctx: &ExecContext<'_, P, R>,
) -> AlsResult {
    let ctx = *ctx;
    let probe = ctx.probe;
    let nv = out.num_vertices();
    assert_eq!(nv, incoming.num_vertices(), "direction vertex counts");
    assert!(num_users <= nv, "num_users exceeds vertex count");
    let k = cfg.rank.max(1);

    // Deterministic small initial factors.
    let mut factors: Vec<f32> = egraph_parallel::ops::parallel_init(nv * k, 1 << 14, |i| {
        let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        0.1 + ((h >> 40) as f32 / (1u64 << 24) as f32) * 0.1
    });

    let mut rmse_history = Vec::with_capacity(cfg.iterations);
    let mut total = 0.0;
    for step in 0..cfg.iterations {
        // Solve users from item factors (users read their out-edges),
        // then items from user factors (items read their in-edges).
        let (_, seconds) = timed(|| {
            solve_side(&mut factors, out, 0..num_users, k, cfg.lambda, false, probe);
            solve_side(
                &mut factors,
                incoming,
                num_users..nv,
                k,
                cfg.lambda,
                true,
                probe,
            );
        });
        total += seconds;
        if ctx.recorder.enabled() {
            let scanned = out.num_edges() + incoming.num_edges();
            ctx.recorder.record_iteration(IterRecord {
                step,
                frontier_size: nv,
                edges_scanned: scanned,
                seconds,
                mode: StepMode::Pull,
                // Both bipartite halves stream all their edges; the
                // pull direction is structural, never chosen.
                density: frontier_density(nv + scanned, scanned),
                decision: DirectionDecision::forced(nv + scanned, direction_cutoff(scanned)),
            });
        }
        rmse_history.push(rmse(&factors, out, k, num_users));
    }
    AlsResult {
        factors,
        rank: k,
        rmse_history,
        seconds: total,
    }
}

/// Solves the normal equations for every vertex in `range`, reading
/// neighbor factors and writing only the vertex's own factor row.
#[allow(clippy::too_many_arguments)]
fn solve_side<P: MemProbe>(
    factors: &mut [f32],
    adj: &Adjacency<WEdge>,
    range: std::ops::Range<usize>,
    k: usize,
    lambda: f64,
    neighbors_are_sources: bool,
    probe: &P,
) {
    let shared = UnsyncSlice::new(factors);
    egraph_parallel::parallel_for(range, 64, |vs| {
        let mut a = vec![0.0f64; k * k];
        let mut b = vec![0.0f64; k];
        let mut q = vec![0.0f64; k];
        for v in vs {
            let edges = adj.neighbors(v as VertexId);
            if edges.is_empty() {
                continue;
            }
            a.fill(0.0);
            b.fill(0.0);
            for (idx, e) in edges.iter().enumerate() {
                let n = if neighbors_are_sources {
                    e.src()
                } else {
                    e.dst()
                } as usize;
                if probe.enabled() {
                    probe.touch(
                        egraph_cachesim::AccessKind::Edge,
                        adj.edge_sim_addr(v as VertexId, idx),
                    );
                    probe.touch(
                        egraph_cachesim::AccessKind::SrcMeta,
                        egraph_cachesim::probe::regions::SRC_META + (n * k * 4) as u64,
                    );
                }
                for (j, qj) in q.iter_mut().enumerate() {
                    // SAFETY: neighbor rows belong to the *other* side
                    // of the bipartite graph, which this half-step
                    // never writes; reads cannot race with writes.
                    *qj = unsafe { shared.read(n * k + j) } as f64;
                }
                let r = e.weight() as f64;
                for i in 0..k {
                    b[i] += r * q[i];
                    for j in i..k {
                        a[i * k + j] += q[i] * q[j];
                    }
                }
            }
            // Mirror the upper triangle and regularize.
            for i in 0..k {
                for j in 0..i {
                    a[i * k + j] = a[j * k + i];
                }
                a[i * k + i] += lambda * edges.len() as f64;
            }
            if cholesky_solve_in_place(&mut a, &mut b, k) {
                for (j, &x) in b.iter().enumerate() {
                    // SAFETY: each `v` is processed by exactly one
                    // worker (disjoint parallel ranges), so the row
                    // `v*k..v*k+k` has a single writer.
                    unsafe { shared.write(v * k + j, x as f32) };
                }
            }
        }
    });
}

/// Training root-mean-square error over all ratings.
fn rmse(factors: &[f32], out: &Adjacency<WEdge>, k: usize, num_users: usize) -> f64 {
    let (sum, count) = egraph_parallel::parallel_reduce(
        0..num_users,
        256,
        || (0.0f64, 0u64),
        |(mut s, mut c), range| {
            for u in range {
                for e in out.neighbors(u as VertexId) {
                    let i = e.dst() as usize;
                    let pred: f32 = (0..k)
                        .map(|j| factors[u * k + j] * factors[i * k + j])
                        .sum();
                    let err = pred as f64 - e.weight() as f64;
                    s += err * err;
                    c += 1;
                }
            }
            (s, c)
        },
        |(s1, c1), (s2, c2)| (s1 + s2, c1 + c2),
    );
    if count == 0 {
        0.0
    } else {
        (sum / count as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::EdgeDirection;
    use crate::preprocess::{CsrBuilder, Strategy};
    use crate::types::EdgeList;

    /// A small bipartite ratings graph with planted structure: users
    /// 0..4 like even items, users 4..8 like odd items.
    fn ratings() -> (EdgeList<WEdge>, usize) {
        let num_users = 8usize;
        let num_items = 6usize;
        let mut edges = Vec::new();
        for u in 0..num_users as u32 {
            for i in 0..num_items as u32 {
                let item = num_users as u32 + i;
                let liked = (u < 4) == (i % 2 == 0);
                edges.push(WEdge::new(u, item, if liked { 5.0 } else { 1.0 }));
            }
        }
        (
            EdgeList::new(num_users + num_items, edges).unwrap(),
            num_users,
        )
    }

    fn run(cfg: AlsConfig) -> AlsResult {
        let (input, num_users) = ratings();
        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both).build(&input);
        als(adj.out(), adj.incoming(), num_users, cfg)
    }

    #[test]
    fn rmse_decreases() {
        let result = run(AlsConfig {
            iterations: 8,
            ..Default::default()
        });
        assert_eq!(result.rmse_history.len(), 8);
        let first = result.rmse_history[0];
        let last = *result.rmse_history.last().unwrap();
        assert!(last < first, "rmse went {first} -> {last}");
        assert!(last < 0.5, "final rmse {last}");
    }

    #[test]
    fn predictions_recover_planted_structure() {
        let result = run(AlsConfig {
            iterations: 10,
            ..Default::default()
        });
        // User 0 (likes even items) should prefer item 8 (even) over
        // item 9 (odd); user 5 the opposite.
        let (even_item, odd_item) = (8, 9);
        assert!(result.predict(0, even_item) > result.predict(0, odd_item));
        assert!(result.predict(5, odd_item) > result.predict(5, even_item));
    }

    #[test]
    fn rank_one_works() {
        let result = run(AlsConfig {
            rank: 1,
            iterations: 5,
            lambda: 0.1,
        });
        assert!(result.rmse_history.last().unwrap().is_finite());
    }

    #[test]
    fn vertices_without_ratings_keep_initial_factors() {
        let num_users = 2usize;
        let edges = vec![WEdge::new(0, 2, 4.0)];
        let input = EdgeList::new(4, edges).unwrap();
        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both).build(&input);
        let result = als(adj.out(), adj.incoming(), num_users, AlsConfig::default());
        // User 1 and item 3 have no ratings; factors stay finite.
        assert!(result.factor(1).iter().all(|f| f.is_finite()));
        assert!(result.factor(3).iter().all(|f| f.is_finite()));
    }
}

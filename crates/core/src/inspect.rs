//! Graph inspection: structural statistics and sanity checks used by
//! the CLI's `info` command and by experiment setup code.

use std::collections::HashSet;

use crate::types::{EdgeList, EdgeRecord};

/// Structural summary of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSummary {
    /// Vertex count.
    pub num_vertices: usize,
    /// Edge count.
    pub num_edges: usize,
    /// Mean out-degree.
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: u64,
    /// Maximum in-degree.
    pub max_in_degree: u64,
    /// Vertices with no outgoing edges.
    pub sinks: usize,
    /// Vertices with no incident edges at all.
    pub isolated: usize,
    /// Self-loop edges.
    pub self_loops: usize,
    /// Edges appearing more than once (extra occurrences).
    pub duplicate_edges: usize,
    /// Whether every edge has its reverse (the graph is symmetric).
    pub symmetric: bool,
}

/// Computes a [`GraphSummary`].
///
/// Duplicate detection and the symmetry check materialize an edge set,
/// so this is an O(E) memory pass — intended for inspection, not inner
/// loops.
pub fn summarize<E: EdgeRecord>(graph: &EdgeList<E>) -> GraphSummary {
    let nv = graph.num_vertices();
    let out_degrees = graph.out_degrees();
    let in_degrees = graph.in_degrees();
    let sinks = out_degrees.iter().filter(|&&d| d == 0).count();
    let isolated = (0..nv)
        .filter(|&v| out_degrees[v] == 0 && in_degrees[v] == 0)
        .count();

    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(graph.num_edges());
    let mut self_loops = 0usize;
    let mut duplicate_edges = 0usize;
    for e in graph.edges() {
        if e.src() == e.dst() {
            self_loops += 1;
        }
        if !seen.insert((e.src(), e.dst())) {
            duplicate_edges += 1;
        }
    }
    let symmetric = graph
        .edges()
        .iter()
        .all(|e| e.src() == e.dst() || seen.contains(&(e.dst(), e.src())));

    GraphSummary {
        num_vertices: nv,
        num_edges: graph.num_edges(),
        avg_degree: graph.num_edges() as f64 / nv.max(1) as f64,
        max_out_degree: out_degrees.iter().max().copied().unwrap_or(0),
        max_in_degree: in_degrees.iter().max().copied().unwrap_or(0),
        sinks,
        isolated,
        self_loops,
        duplicate_edges,
        symmetric,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    #[test]
    fn summary_of_small_graph() {
        let g = EdgeList::new(
            5,
            vec![
                Edge::new(0, 1),
                Edge::new(1, 0),
                Edge::new(0, 1), // duplicate
                Edge::new(2, 2), // self-loop
            ],
        )
        .unwrap();
        let s = summarize(&g);
        assert_eq!(s.num_vertices, 5);
        assert_eq!(s.num_edges, 4);
        assert_eq!(s.self_loops, 1);
        assert_eq!(s.duplicate_edges, 1);
        assert_eq!(s.sinks, 2, "vertices 3 and 4");
        assert_eq!(s.isolated, 2);
        assert_eq!(s.max_out_degree, 2);
        assert!(
            s.symmetric,
            "0<->1 both ways; self-loop counts as symmetric"
        );
    }

    #[test]
    fn asymmetric_graph_detected() {
        let g = EdgeList::new(3, vec![Edge::new(0, 1)]).unwrap();
        assert!(!summarize(&g).symmetric);
    }

    #[test]
    fn empty_graph_summary() {
        let g: EdgeList<Edge> = EdgeList::new(0, vec![]).unwrap();
        let s = summarize(&g);
        assert_eq!(s.num_edges, 0);
        assert!(s.symmetric);
        assert_eq!(s.avg_degree, 0.0);
    }

    #[test]
    fn road_lattice_is_symmetric_and_clean() {
        // Build a small lattice inline (4-neighbor, both directions).
        let (w, h) = (6usize, 4usize);
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                let v = (y * w + x) as u32;
                if x + 1 < w {
                    edges.push(Edge::new(v, v + 1));
                    edges.push(Edge::new(v + 1, v));
                }
                if y + 1 < h {
                    edges.push(Edge::new(v, v + w as u32));
                    edges.push(Edge::new(v + w as u32, v));
                }
            }
        }
        let g = EdgeList::new(w * h, edges).unwrap();
        let s = summarize(&g);
        assert!(s.symmetric);
        assert_eq!(s.self_loops, 0);
        assert_eq!(s.duplicate_edges, 0);
        assert_eq!(s.isolated, 0);
    }
}

//! Pre-processing: converting the edge-array input into adjacency
//! lists and grids, with the three construction strategies of §3.2 and
//! wall-clock accounting for the paper's end-to-end view.

use std::time::Instant;

use egraph_parallel::ops::parallel_init;
use parking_lot::Mutex;

use crate::layout::{Adjacency, AdjacencyList, EdgeDirection, Grid};
use crate::types::{EdgeList, EdgeRecord};

/// How per-vertex (or per-cell) edge arrays are constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Grow per-vertex arrays while scanning the input. No sorting, but
    /// reallocations and poor locality; fully overlappable with
    /// loading (§3.4).
    Dynamic,
    /// Two passes: count degrees, then scatter to final offsets.
    /// Pass-optimal but cache-hostile; the counting pass can overlap
    /// with loading.
    CountSort,
    /// Parallel 8-bit-digit radix sort; sequential bucket writes give
    /// the best locality (Table 2) but nothing overlaps with loading.
    RadixSort,
}

impl Strategy {
    /// All strategies, in the paper's presentation order.
    pub const ALL: [Strategy; 3] = [Strategy::Dynamic, Strategy::CountSort, Strategy::RadixSort];

    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Dynamic => "dynamic",
            Strategy::CountSort => "count-sort",
            Strategy::RadixSort => "radix-sort",
        }
    }
}

/// Wall-clock cost of one pre-processing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreprocessStats {
    /// The strategy that was used.
    pub strategy: Strategy,
    /// Total seconds spent building the layout.
    pub seconds: f64,
}

/// Builder for adjacency-list layouts.
///
/// # Examples
///
/// ```
/// use egraph_core::preprocess::{CsrBuilder, Strategy};
/// use egraph_core::layout::EdgeDirection;
/// use egraph_core::types::{Edge, EdgeList};
///
/// let edges = EdgeList::new(3, vec![Edge::new(0, 1), Edge::new(0, 2)]).unwrap();
/// let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&edges);
/// assert_eq!(adj.out().degree(0), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    strategy: Strategy,
    direction: EdgeDirection,
    sort_neighbors: bool,
}

impl CsrBuilder {
    /// Creates a builder with the given strategy and edge direction.
    pub fn new(strategy: Strategy, direction: EdgeDirection) -> Self {
        Self {
            strategy,
            direction,
            sort_neighbors: false,
        }
    }

    /// Additionally sorts each per-vertex array by neighbor id (the
    /// "adj. sorted" variant of §5).
    pub fn sort_neighbors(mut self, yes: bool) -> Self {
        self.sort_neighbors = yes;
        self
    }

    /// Builds the layout.
    pub fn build<E: EdgeRecord>(&self, input: &EdgeList<E>) -> AdjacencyList<E> {
        self.build_timed(input).0
    }

    /// Builds the layout, returning the pre-processing cost alongside.
    pub fn build_timed<E: EdgeRecord>(
        &self,
        input: &EdgeList<E>,
    ) -> (AdjacencyList<E>, PreprocessStats) {
        let start = Instant::now();
        let out = match self.direction {
            EdgeDirection::Out | EdgeDirection::Both => {
                Some(build_one_direction(input, self.strategy, false))
            }
            EdgeDirection::In => None,
        };
        let inc = match self.direction {
            EdgeDirection::In | EdgeDirection::Both => {
                Some(build_one_direction(input, self.strategy, true))
            }
            EdgeDirection::Out => None,
        };
        let mut list = AdjacencyList::new(out, inc);
        if self.sort_neighbors {
            if let Some(adj) = list.out_mut() {
                adj.sort_neighbor_arrays();
            }
            if let Some(adj) = list.incoming_mut() {
                adj.sort_neighbor_arrays();
            }
        }
        let stats = PreprocessStats {
            strategy: self.strategy,
            seconds: start.elapsed().as_secs_f64(),
        };
        (list, stats)
    }
}

/// Builds one direction of adjacency (`by_dst = true` groups by
/// destination, producing an in-adjacency).
pub fn build_one_direction<E: EdgeRecord>(
    input: &EdgeList<E>,
    strategy: Strategy,
    by_dst: bool,
) -> Adjacency<E> {
    let nv = input.num_vertices();
    let key = move |e: &E| -> u64 {
        if by_dst {
            e.dst() as u64
        } else {
            e.src() as u64
        }
    };
    match strategy {
        Strategy::Dynamic => {
            let lists = dynamic_group(input.edges(), nv, key);
            Adjacency::from_per_vertex(nv, lists, by_dst)
        }
        Strategy::CountSort => {
            let sorted = egraph_sort::count_sort_by_key(input.edges(), nv.max(1), key);
            let mut offsets = sorted.offsets;
            offsets.truncate(nv + 1);
            if nv == 0 {
                offsets = vec![0];
            }
            Adjacency::from_csr(nv, offsets, sorted.sorted, by_dst)
        }
        Strategy::RadixSort => {
            let mut edges = input.edges().to_vec();
            let bits = egraph_sort::key_bits(nv);
            egraph_sort::radix_sort_by_key(&mut edges, bits, key);
            let offsets = offsets_from_sorted(&edges, nv, key);
            Adjacency::from_csr(nv, offsets, edges, by_dst)
        }
    }
}

/// Groups edges into growable per-vertex vectors under striped locks —
/// the "dynamically allocating and resizing" technique.
fn dynamic_group<E: EdgeRecord>(
    edges: &[E],
    nv: usize,
    key: impl Fn(&E) -> u64 + Sync,
) -> Vec<Vec<E>> {
    let lists: Vec<Mutex<Vec<E>>> = (0..nv).map(|_| Mutex::new(Vec::new())).collect();
    egraph_parallel::for_each_chunk(edges, egraph_parallel::DEFAULT_GRAIN, |_, chunk| {
        for e in chunk {
            lists[key(e) as usize].lock().push(*e);
        }
    });
    lists.into_iter().map(Mutex::into_inner).collect()
}

/// Computes the CSR offset table of an already-sorted edge array by
/// binary-searching each vertex boundary (cache-friendly and parallel,
/// unlike a histogram pass).
fn offsets_from_sorted<E: EdgeRecord>(
    edges: &[E],
    nv: usize,
    key: impl Fn(&E) -> u64 + Sync,
) -> Vec<u64> {
    parallel_init(nv + 1, 4096, |v| {
        edges.partition_point(|e| key(e) < v as u64) as u64
    })
}

/// Builder for grid layouts.
///
/// # Examples
///
/// ```
/// use egraph_core::preprocess::{GridBuilder, Strategy};
/// use egraph_core::types::{Edge, EdgeList};
///
/// let edges = EdgeList::new(4, vec![Edge::new(0, 3), Edge::new(2, 1)]).unwrap();
/// let grid = GridBuilder::new(Strategy::RadixSort).side(2).build(&edges);
/// assert_eq!(grid.cell(0, 1), &[Edge::new(0, 3)]);
/// assert_eq!(grid.cell(1, 0), &[Edge::new(2, 1)]);
/// ```
#[derive(Debug, Clone)]
pub struct GridBuilder {
    strategy: Strategy,
    side: usize,
    transposed: bool,
}

impl GridBuilder {
    /// Creates a builder with the default 256×256 grid.
    pub fn new(strategy: Strategy) -> Self {
        Self {
            strategy,
            side: crate::layout::grid::DEFAULT_GRID_SIDE,
            transposed: false,
        }
    }

    /// Sets the grid side P (the grid gets P×P cells).
    pub fn side(mut self, side: usize) -> Self {
        assert!(side > 0, "grid side must be positive");
        self.side = side;
        self
    }

    /// Stores every edge reversed. A transposed grid makes row
    /// iteration exclusive over the *receiving* vertex of the original
    /// graph, which is how pull-mode grid computation runs without
    /// locks (§6.1.2).
    pub fn transposed(mut self, yes: bool) -> Self {
        self.transposed = yes;
        self
    }

    /// Builds the grid.
    pub fn build<E: EdgeRecord>(&self, input: &EdgeList<E>) -> Grid<E> {
        self.build_timed(input).0
    }

    /// Builds the grid, returning the pre-processing cost alongside.
    pub fn build_timed<E: EdgeRecord>(&self, input: &EdgeList<E>) -> (Grid<E>, PreprocessStats) {
        let start = Instant::now();
        let nv = input.num_vertices();
        let side = self.side;
        let range_len = nv.div_ceil(side).max(1);
        let num_cells = side * side;
        let transposed = self.transposed;
        let cell_key = move |e: &E| -> u64 {
            let (src, dst) = if transposed {
                (e.dst(), e.src())
            } else {
                (e.src(), e.dst())
            };
            (src as usize / range_len * side + dst as usize / range_len) as u64
        };
        let map_edge = move |e: &E| -> E {
            if transposed {
                e.reversed()
            } else {
                *e
            }
        };

        let grid = match self.strategy {
            Strategy::RadixSort => {
                let mut edges: Vec<E> = input.edges().iter().map(map_edge).collect();
                let bits = egraph_sort::key_bits(num_cells);
                // After mapping, the key no longer needs transposition.
                let key = move |e: &E| -> u64 {
                    (e.src() as usize / range_len * side + e.dst() as usize / range_len) as u64
                };
                egraph_sort::radix_sort_by_key(&mut edges, bits, key);
                let offsets = parallel_init(num_cells + 1, 1024, |c| {
                    edges.partition_point(|e| key(e) < c as u64) as u64
                });
                Grid::from_parts(nv, side, offsets, edges)
            }
            Strategy::CountSort => {
                let mapped: Vec<E> = input.edges().iter().map(map_edge).collect();
                let key = move |e: &E| -> u64 {
                    (e.src() as usize / range_len * side + e.dst() as usize / range_len) as u64
                };
                let sorted = egraph_sort::count_sort_by_key(&mapped, num_cells, key);
                Grid::from_parts(nv, side, sorted.offsets, sorted.sorted)
            }
            Strategy::Dynamic => {
                let cells: Vec<Mutex<Vec<E>>> =
                    (0..num_cells).map(|_| Mutex::new(Vec::new())).collect();
                egraph_parallel::for_each_chunk(
                    input.edges(),
                    egraph_parallel::DEFAULT_GRAIN,
                    |_, chunk| {
                        for e in chunk {
                            cells[cell_key(e) as usize].lock().push(map_edge(e));
                        }
                    },
                );
                let mut offsets = Vec::with_capacity(num_cells + 1);
                let mut edges = Vec::with_capacity(input.num_edges());
                offsets.push(0u64);
                for cell in cells {
                    let cell = cell.into_inner();
                    edges.extend_from_slice(&cell);
                    offsets.push(edges.len() as u64);
                }
                Grid::from_parts(nv, side, offsets, edges)
            }
        };
        let stats = PreprocessStats {
            strategy: self.strategy,
            seconds: start.elapsed().as_secs_f64(),
        };
        (grid, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    fn sample_input() -> EdgeList<Edge> {
        EdgeList::new(
            4,
            vec![
                Edge::new(0, 1),
                Edge::new(1, 0),
                Edge::new(0, 2),
                Edge::new(0, 3),
                Edge::new(2, 3),
            ],
        )
        .unwrap()
    }

    fn degrees_of(adj: &Adjacency<Edge>) -> Vec<usize> {
        (0..adj.num_vertices())
            .map(|v| adj.degree(v as u32))
            .collect()
    }

    #[test]
    fn all_strategies_agree_on_out_degrees() {
        let input = sample_input();
        for strategy in Strategy::ALL {
            let adj = CsrBuilder::new(strategy, EdgeDirection::Out).build(&input);
            assert_eq!(degrees_of(adj.out()), vec![3, 1, 1, 0], "{strategy:?}");
        }
    }

    #[test]
    fn all_strategies_agree_on_in_degrees() {
        let input = sample_input();
        for strategy in Strategy::ALL {
            let adj = CsrBuilder::new(strategy, EdgeDirection::In).build(&input);
            assert_eq!(degrees_of(adj.incoming()), vec![1, 1, 1, 2], "{strategy:?}");
        }
    }

    #[test]
    fn both_directions_built_together() {
        let input = sample_input();
        let (adj, stats) =
            CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both).build_timed(&input);
        assert!(adj.out_opt().is_some() && adj.incoming_opt().is_some());
        assert!(stats.seconds >= 0.0);
    }

    #[test]
    fn neighbors_contain_expected_edges() {
        let input = sample_input();
        let adj = CsrBuilder::new(Strategy::CountSort, EdgeDirection::Out).build(&input);
        let mut dsts: Vec<u32> = adj.out().neighbors(0).iter().map(|e| e.dst).collect();
        dsts.sort_unstable();
        assert_eq!(dsts, vec![1, 2, 3]);
    }

    #[test]
    fn sorted_neighbors_are_sorted() {
        let input = sample_input();
        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out)
            .sort_neighbors(true)
            .build(&input);
        let dsts: Vec<u32> = adj.out().neighbors(0).iter().map(|e| e.dst).collect();
        assert_eq!(dsts, vec![1, 2, 3]);
    }

    #[test]
    fn grid_strategies_agree() {
        let input = sample_input();
        let reference = GridBuilder::new(Strategy::RadixSort).side(2).build(&input);
        for strategy in [Strategy::CountSort, Strategy::Dynamic] {
            let grid = GridBuilder::new(strategy).side(2).build(&input);
            for r in 0..2 {
                for c in 0..2 {
                    let mut a: Vec<(u32, u32)> = reference
                        .cell(r, c)
                        .iter()
                        .map(|e| (e.src, e.dst))
                        .collect();
                    let mut b: Vec<(u32, u32)> =
                        grid.cell(r, c).iter().map(|e| (e.src, e.dst)).collect();
                    a.sort_unstable();
                    b.sort_unstable();
                    assert_eq!(a, b, "{strategy:?} cell ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn transposed_grid_reverses_edges() {
        let input = EdgeList::new(4, vec![Edge::new(0, 3)]).unwrap();
        let grid = GridBuilder::new(Strategy::RadixSort)
            .side(2)
            .transposed(true)
            .build(&input);
        // The reversed edge (3, 0) lives in cell (1, 0).
        assert_eq!(grid.cell(1, 0), &[Edge::new(3, 0)]);
        assert!(grid.cell(0, 1).is_empty());
    }

    #[test]
    fn empty_graph_builds() {
        let input: EdgeList<Edge> = EdgeList::new(0, vec![]).unwrap();
        for strategy in Strategy::ALL {
            let adj = CsrBuilder::new(strategy, EdgeDirection::Out).build(&input);
            assert_eq!(adj.num_vertices(), 0);
            assert_eq!(adj.num_edges(), 0);
        }
    }

    #[test]
    fn large_random_graph_all_strategies_equal() {
        // Deterministic pseudo-random multigraph with self-loops and
        // duplicates; every strategy must produce identical neighbor
        // multisets.
        let nv = 1000usize;
        let mut state = 12345u64;
        let mut edges = Vec::new();
        for _ in 0..20_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let src = ((state >> 33) % nv as u64) as u32;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let dst = ((state >> 33) % nv as u64) as u32;
            edges.push(Edge::new(src, dst));
        }
        let input = EdgeList::new(nv, edges).unwrap();
        let reference = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&input);
        for strategy in [Strategy::CountSort, Strategy::Dynamic] {
            let adj = CsrBuilder::new(strategy, EdgeDirection::Out).build(&input);
            for v in 0..nv as u32 {
                let mut a: Vec<u32> = reference.out().neighbors(v).iter().map(|e| e.dst).collect();
                let mut b: Vec<u32> = adj.out().neighbors(v).iter().map(|e| e.dst).collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "{strategy:?} vertex {v}");
            }
        }
    }
}
